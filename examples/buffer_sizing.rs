//! Sizing finite switch buffers against the infinite-buffer model.
//!
//! ```text
//! cargo run --release --example buffer_sizing
//! ```
//!
//! The paper idealizes buffers as infinite, arguing that "for
//! light-to-moderate loads, moderate-sized buffers provide approximately
//! the same performance" (§I) and leaves finite-buffer formulas as future
//! work (§VI). This example does the engineering version of that future
//! work: for each load, find the smallest per-port buffer capacity whose
//! simulated behaviour is within a tolerance of the infinite-buffer §V
//! prediction, with zero rejected injections.

use banyan_repro::prelude::*;

fn main() {
    let (k, n, m) = (2u32, 6u32, 1u32);
    let tolerance = 0.05; // 5% on the mean total waiting time
    println!("=== Smallest buffer capacity matching the infinite-buffer model ===");
    println!("network: {n} stages of {k}x{k} switches, unit messages");
    println!("criterion: no rejections and mean total wait within {:.0}%\n", tolerance * 100.0);
    println!(
        "{:>5}  {:>10}  {:>9}  {:>12}  {:>12}",
        "p", "pred mean", "capacity", "sim mean", "accept rate"
    );

    for &p in &[0.2, 0.4, 0.5, 0.6, 0.7, 0.8] {
        let model = TotalWaiting::new(k, n, p, m);
        let pred = model.mean_total();
        let mut chosen: Option<(usize, f64, f64)> = None;
        for cap in [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
            let mut cfg = NetworkConfig::new(k, n, Workload::uniform(p, m));
            cfg.buffer_capacity = Some(cap);
            cfg.warmup_cycles = 3_000;
            cfg.measure_cycles = 30_000;
            cfg.seed = 0xB1F + cap as u64;
            let stats = run_network(cfg);
            let offered = stats.injected_total + stats.rejected_total;
            let accept = stats.injected_total as f64 / offered.max(1) as f64;
            let err = (stats.total_wait.mean() - pred).abs() / pred.max(1e-9);
            if stats.rejected_total == 0 && err <= tolerance {
                chosen = Some((cap, stats.total_wait.mean(), accept));
                break;
            }
        }
        match chosen {
            Some((cap, mean, accept)) => println!(
                "{p:>5.2}  {pred:>10.3}  {cap:>9}  {mean:>12.3}  {accept:>12.4}"
            ),
            None => println!("{p:>5.2}  {pred:>10.3}  {:>9}  (none <= 32 met the criterion)", "-"),
        }
    }
    println!("\nThe required capacity grows with load — single-digit buffers");
    println!("suffice through p = 0.6 and 16 slots carry p = 0.8, which is why");
    println!("the paper's infinite-buffer formulas were useful for real machines.");
}
