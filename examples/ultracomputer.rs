//! Design-space exploration for an Ultracomputer/RP3-class machine.
//!
//! ```text
//! cargo run --release --example ultracomputer
//! ```
//!
//! The paper's formulas "have been heavily used in designing both the NYU
//! Ultracomputer and RP3" (§I). This example replays that use case: a
//! 4096-processor shared-memory machine whose processor–memory network
//! can be built from 2×2 (12 stages), 4×4 (6 stages), or 8×8 (4 stages)
//! switches. For each option and a sweep of offered loads it reports the
//! predicted memory-access waiting time — mean, standard deviation, and
//! the gamma-model 99th percentile (the variance matters: "the speed of
//! the slowest processor dictates the system speed", §I) — and the
//! maximum load that keeps the 99th-percentile network waiting under a
//! latency budget.

use banyan_repro::core::design::{explore, Objective};
use banyan_repro::prelude::*;

struct Option_ {
    k: u32,
    stages: u32,
}

fn main() {
    let ports: u64 = 4096;
    let options = [
        Option_ { k: 2, stages: 12 },
        Option_ { k: 4, stages: 6 },
        Option_ { k: 8, stages: 4 },
    ];
    let m = 1u32; // single-packet requests

    println!("=== 4096-PE machine: processor->memory network options ===\n");
    for opt in &options {
        assert_eq!((opt.k as u64).pow(opt.stages), ports);
        println!(
            "--- {}x{} switches, {} stages (service through network: {} cycles) ---",
            opt.k,
            opt.k,
            opt.stages,
            opt.stages + m - 1
        );
        println!(
            "{:>6}  {:>10} {:>10} {:>10} {:>12}",
            "p", "E[total w]", "std", "p99 (gamma)", "E[delay]"
        );
        for &p in &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
            let model = TotalWaiting::new(opt.k, opt.stages, p, m);
            let mean = model.mean_total();
            let var = model.var_total();
            let p99 = model
                .gamma()
                .map(|g| g.quantile(0.99))
                .unwrap_or(0.0);
            println!(
                "{p:>6.2}  {mean:>10.3} {:>10.3} {p99:>10.2} {:>12.3}",
                var.sqrt(),
                model.mean_total_delay()
            );
        }
        // Largest load whose 99th-percentile *waiting* stays under budget.
        let budget = 2.0 * opt.stages as f64; // 2 cycles of slack per stage
        let mut best = 0.0;
        let mut p = 0.01;
        while p < 0.995 {
            let model = TotalWaiting::new(opt.k, opt.stages, p, m);
            let p99 = model.gamma().map(|g| g.quantile(0.99)).unwrap_or(0.0);
            if p99 <= budget {
                best = p;
            }
            p += 0.005;
        }
        println!(
            "max load with p99 waiting <= {budget:.0} cycles: p ≈ {best:.3}\n"
        );
    }

    // The same exploration through the library's design module, ranked
    // by p99 delay with a budget, over *all* factorizations of 4096.
    println!("--- design::explore ranking at p = 0.5 (p99 objective, budget 30 cycles) ---");
    let ranked = explore(
        ports,
        Objective {
            p: 0.5,
            m: 1,
            percentile: 0.99,
            delay_budget: Some(30.0),
        },
        StageConstants::default(),
    );
    for pt in &ranked {
        println!(
            "  {:>4}x{:<4} {} stages: p99 delay {:>7.2}, mean {:>6.2}, max load {:.3}",
            pt.k,
            pt.k,
            pt.stages,
            pt.delay_percentile,
            pt.mean_delay,
            pt.max_load.unwrap_or(0.0)
        );
    }
    println!();

    // Spot-check the middle option against simulation at p = 0.5.
    println!("--- spot check: 4x4 option at p = 0.5, simulated ---");
    let model = TotalWaiting::new(4, 6, 0.5, 1);
    let mut cfg = NetworkConfig::new(4, 6, Workload::uniform(0.5, 1));
    cfg.warmup_cycles = 2_000;
    cfg.measure_cycles = 6_000;
    let stats = run_network(cfg);
    println!(
        "predicted total waiting mean {:.3}, simulated {:.3}  ({} messages)",
        model.mean_total(),
        stats.total_wait.mean(),
        stats.delivered
    );
    println!(
        "predicted variance {:.3}, simulated {:.3}",
        model.var_total(),
        stats.total_wait.variance()
    );
}
