//! The message-size trade-off the paper closes with (§VI).
//!
//! ```text
//! cargo run --release --example message_size_tradeoff
//! ```
//!
//! "While using larger messages may save the overhead of duplicating the
//! same routing information over several packets, it may dramatically
//! increase delays in all but very lightly loaded networks."
//!
//! Model: a processor must move a payload of `B` data packets per
//! request. It can send it as one message of `m = B + h` packets (one
//! header `h` per message) or split it into `j` messages of
//! `m = B/j + h`, paying the header once per message. At a fixed rate of
//! payload per cycle, splitting lowers the per-message size (waiting
//! drops ~linearly in m, variance ~quadratically — Eqs. 8/9, 15/16) but
//! raises the message rate and total header traffic. This example finds
//! the sweet spot for several loads on a 6-stage, 2×2-switch network.

use banyan_repro::prelude::*;

fn main() {
    let (k, n) = (2u32, 6u32);
    let payload = 8u32; // data packets per request
    let header = 1u32; // routing-info packets per message
    println!(
        "=== Splitting a {payload}-packet payload (+{header} header/message) across j messages ==="
    );
    println!("network: {n} stages of {k}x{k} switches\n");

    for &req_rate in &[0.01, 0.02, 0.05, 0.08] {
        println!("request rate = {req_rate} requests/cycle/port");
        println!(
            "{:>3} {:>5} {:>7} {:>8} {:>12} {:>12} {:>12}",
            "j", "m", "rho", "E[w] tot", "Var[w] tot", "E[delay]", "p99 delay"
        );
        let mut best: Option<(u32, f64)> = None;
        for j in 1..=payload {
            if !payload.is_multiple_of(j) {
                continue;
            }
            let m = payload / j + header;
            let p = req_rate * j as f64; // message rate per port
            let rho = p * m as f64;
            if rho >= 1.0 {
                println!("{j:>3} {m:>5} {rho:>7.3}  saturated");
                continue;
            }
            let model = TotalWaiting::new(k, n, p, m);
            // A request completes when its last message is delivered; as
            // a simple service model we charge the waiting of one message
            // plus pipeline service of all j messages back to back.
            let mean_wait = model.mean_total();
            let var_wait = model.var_total();
            let service = (n + m - 1) as f64 + (j as f64 - 1.0) * m as f64;
            let delay = mean_wait + service;
            let p99 = model
                .gamma()
                .map(|g| g.quantile(0.99) + service)
                .unwrap_or(service);
            println!(
                "{j:>3} {m:>5} {rho:>7.3} {mean_wait:>8.3} {var_wait:>12.3} {delay:>12.3} {p99:>12.2}"
            );
            if best.is_none_or(|(_, d)| delay < d) {
                best = Some((j, delay));
            }
        }
        if let Some((j, d)) = best {
            println!("--> best split: j = {j} (mean delay {d:.2} cycles)\n");
        }
    }
    println!("At light load one big message wins (headers dominate); as load");
    println!("grows, the quadratic variance of long messages pushes the optimum");
    println!("toward smaller messages — the paper's §VI point, quantified.");
}
