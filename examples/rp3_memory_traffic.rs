//! RP3-style memory traffic: mixed read/write sizes and hot-spot locality.
//!
//! ```text
//! cargo run --release --example rp3_memory_traffic
//! ```
//!
//! Two effects the paper analyzes beyond the uniform unit-size base case:
//!
//! * **Multiple message sizes** (§III-D-2, §IV-C): "read requests are
//!   likely to have different sizes than write requests". We model short
//!   read requests (1 packet) mixed with long write requests (4 packets)
//!   and show how the write fraction degrades waiting times at fixed
//!   request rate.
//! * **Nonuniform favorite-output traffic** (§III-A-3, §IV-D): "each
//!   input is likely to have a distinct favorite output port (e.g., the
//!   output port connecting a processor to its private memory)". We show
//!   how locality `q` relieves contention, validated by simulation.

use banyan_repro::prelude::*;

fn main() {
    let k = 2u32;

    // ---- Part 1: read/write mixtures ------------------------------------
    println!("=== Part 1: read/write size mixture (k = {k}, request rate fixed) ===");
    println!("reads: 1 packet; writes: 4 packets; p = 0.15 requests/cycle/port\n");
    println!(
        "{:>8}  {:>6} {:>8} {:>8} {:>10} {:>10}",
        "writes%", "rho", "E[w1]", "Var[w1]", "E[w_inf]", "Var[w_inf]"
    );
    let consts = StageConstants::default();
    let p = 0.15;
    for &wfrac in &[0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let sizes = vec![(1u32, 1.0 - wfrac), (4u32, wfrac)];
        let mbar: f64 = sizes.iter().map(|&(m, g)| m as f64 * g).sum();
        if mbar * p >= 1.0 {
            println!("{:>8}  saturated (rho = {:.2})", wfrac * 100.0, mbar * p);
            continue;
        }
        let q = mixed_queue(k, p, sizes).expect("stable");
        let winf = consts.w_inf_multi(p, k, mbar, q.mean_wait());
        let vinf = consts.v_inf_multi(p, k, mbar, q.var_wait());
        println!(
            "{:>8.0}  {:>6.3} {:>8.3} {:>8.3} {:>10.3} {:>10.3}",
            wfrac * 100.0,
            mbar * p,
            q.mean_wait(),
            q.var_wait(),
            winf,
            vinf,
        );
    }
    println!(
        "\nNote the paper's warning (§VI): at fixed intensity, waiting grows\n\
         linearly and variance quadratically with message size — long writes\n\
         dominate the tail.\n"
    );

    // ---- Part 2: locality (favorite memory module) ----------------------
    println!("=== Part 2: hot-spot locality q (k = {k}, p = 0.5, unit messages) ===\n");
    println!(
        "{:>5}  {:>8} {:>8} {:>10} | {:>10} {:>10}",
        "q", "E[w1]", "w_inf", "w_inf sim", "Var[w1]", "v_inf sim"
    );
    for &qf in &[0.0, 0.2, 0.4, 0.6, 0.8] {
        let exact = nonuniform_queue(k, 0.5, qf, 1).expect("stable");
        let winf = consts.w_inf_nonuniform(0.5, k, qf, exact.mean_wait());
        // Simulate an 8-stage network with each processor favoring its
        // own memory module.
        let mut cfg = NetworkConfig::new(k, 8, Workload::hotspot(0.5, qf));
        cfg.warmup_cycles = 3_000;
        cfg.measure_cycles = 30_000;
        let stats = run_network(cfg);
        let ns = stats.stage_waits.len();
        let deep_w = 0.5
            * (stats.stage_waits[ns - 1].mean() + stats.stage_waits[ns - 2].mean());
        let deep_v = 0.5
            * (stats.stage_waits[ns - 1].variance()
                + stats.stage_waits[ns - 2].variance());
        println!(
            "{qf:>5.1}  {:>8.4} {winf:>8.4} {deep_w:>10.4} | {:>10.4} {deep_v:>10.4}",
            exact.mean_wait(),
            exact.var_wait(),
        );
    }
    println!("\nLocality empties the shared part of the network: by q = 0.8 the");
    println!("deep-stage waiting is a small fraction of the uniform-traffic value.");
}
