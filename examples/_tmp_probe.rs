fn main() {
    use banyan_sim::network::{run_network, NetworkConfig};
    use banyan_sim::traffic::Workload;
    use banyan_core::models::eq7_var_wait;
    for (p, m) in [(0.05f64, 4u32), (0.125, 4), (0.2, 4), (0.1, 2), (0.4, 2), (0.025, 8), (0.1, 8)] {
        let mut cfg = NetworkConfig::new(2, 8, Workload::uniform(p, m));
        cfg.warmup_cycles = 20_000; cfg.measure_cycles = 200_000; cfg.seed = 99;
        let s = run_network(cfg);
        let n = s.stage_waits.len();
        let v = 0.5*(s.stage_waits[n-1].variance()+s.stage_waits[n-2].variance());
        let w = 0.5*(s.stage_waits[n-1].mean()+s.stage_waits[n-2].mean());
        let rho = p * m as f64;
        let base = (m as f64).powi(2) * eq7_var_wait(2, rho);
        println!("p={p} m={m} rho={rho}: w_deep={w:.4} v_deep={v:.4} v/base={:.4}", v/base);
    }
}
