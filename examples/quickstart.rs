//! Quickstart: analyze one network configuration end to end and check the
//! formulas against a live simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's pipeline for a 6-stage network of 2×2
//! switches at load p = 0.5 with single-cycle messages:
//!  1. exact first-stage waiting time (Theorem 1): mean, variance, full
//!     distribution, tail decay rate;
//!  2. later-stage approximations (§IV);
//!  3. total waiting time and its gamma approximation (§V);
//!  4. a simulation of the same network to confirm all of it.

use banyan_repro::prelude::*;

fn main() {
    let (k, n, p, m) = (2u32, 6u32, 0.5f64, 1u32);
    println!("=== Banyan network: {n} stages of {k}x{k} switches, p = {p}, m = {m} ===\n");

    // 1. Exact first-stage analysis (paper §II–III).
    let q = uniform_queue(k, p, m).expect("load is stable");
    println!("first stage (exact, Theorem 1):");
    println!("  traffic intensity rho      = {:.4}", q.rho());
    println!("  mean waiting time  E(w)    = {:.4}  (paper Eq. 6)", q.mean_wait());
    println!("  waiting variance   Var(w)  = {:.4}  (paper Eq. 7)", q.var_wait());
    if let Some(r) = q.tail_decay_rate() {
        println!("  tail decay                 : P(w = j) ~ C * {r:.4}^j");
    }
    let pmf = q.pmf(8);
    println!("  first probabilities        : {}",
        pmf.iter().map(|p| format!("{p:.4}")).collect::<Vec<_>>().join(" "));

    // 2. Later stages (paper §IV).
    let consts = StageConstants::default();
    println!("\nlater stages (spatial steady state approximation):");
    for i in [1u32, 2, 3, 6] {
        println!("  stage {i}: w ≈ {:.4}", consts.w_stage(i, p, k));
    }
    println!("  limit   : w∞ ≈ {:.4}, v∞ ≈ {:.4}", consts.w_inf(p, k), consts.v_inf(p, k));

    // 3. Total waiting time and the gamma approximation (paper §V).
    let model = TotalWaiting::new(k, n, p, m);
    let gamma = model.gamma().expect("nonzero load");
    println!("\ntotal waiting time over {n} stages (predicted):");
    println!("  mean = {:.4}, variance = {:.4}", model.mean_total(), model.var_total());
    println!(
        "  gamma approximation: shape {:.3}, scale {:.3}; 99th percentile = {:.2} cycles",
        gamma.shape(),
        gamma.scale(),
        gamma.quantile(0.99)
    );
    println!(
        "  total delay = waiting + service = {:.4} + {} cycles",
        model.mean_total(),
        model.total_service()
    );

    // 4. Confirm by simulation.
    println!("\nsimulating the same network (deterministic seed)...");
    let mut cfg = NetworkConfig::new(k, n, Workload::uniform(p, m));
    cfg.warmup_cycles = 5_000;
    cfg.measure_cycles = 60_000;
    let stats = run_network(cfg);
    println!("  {} messages delivered", stats.delivered);
    println!(
        "  stage-1 sim: w = {:.4}, v = {:.4}   (exact: {:.4}, {:.4})",
        stats.stage_waits[0].mean(),
        stats.stage_waits[0].variance(),
        q.mean_wait(),
        q.var_wait()
    );
    println!(
        "  total   sim: mean = {:.4}, var = {:.4}   (predicted: {:.4}, {:.4})",
        stats.total_wait.mean(),
        stats.total_wait.variance(),
        model.mean_total(),
        model.var_total()
    );
    let sim99 = stats.total_hist.quantile(0.99).unwrap();
    println!(
        "  total   sim: 99th percentile = {} cycles   (gamma: {:.2})",
        sim99,
        gamma.quantile(0.99)
    );
}
