#!/usr/bin/env bash
# Tier-1 verification, exactly as CI would run it, with the network off.
#
#   1. No Cargo.toml may declare a non-path dependency (the workspace is
#      hermetic by construction; this catches regressions).
#   2. The workspace builds and tests with --offline.
#   3. If clippy is installed, it must pass with -D warnings.
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== checking that every dependency is a path dependency =="
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Within [dependencies]/[dev-dependencies]/[build-dependencies]/
    # [workspace.dependencies] sections, every non-comment entry must
    # reference the workspace or a path.
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) }
        in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
            if ($0 !~ /workspace[[:space:]]*=[[:space:]]*true/ && $0 !~ /path[[:space:]]*=/) print
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "non-path dependency in $manifest:" >&2
        echo "$bad" >&2
        fail=1
    fi
done
[ "$fail" -eq 0 ] || exit 1
echo "ok: all dependencies are path/workspace entries"

echo "== offline release build =="
cargo build --workspace --release --offline

echo "== offline test suite =="
cargo test --workspace -q --offline

if cargo clippy --version >/dev/null 2>&1; then
    echo "== clippy (-D warnings) =="
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "== clippy not installed; skipping =="
fi

echo "verify: OK"
