#!/usr/bin/env bash
# Tier-1 verification, exactly as CI would run it, with the network off.
#
#   1. No Cargo.toml may declare a non-path dependency (the workspace is
#      hermetic by construction; this catches regressions).
#   2. The workspace builds and tests with --offline.
#   3. If clippy is installed, it must pass with -D warnings.
#
# Usage:
#   scripts/verify.sh           # full tier-1 run, per-suite wall times
#   scripts/verify.sh --quick   # dep check + build + lib/unit tests only
#                               # (budget: well under 60 s — skips the
#                               # statistical integration suites)
#
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

# Runs a labelled step and prints its wall time, so slow suites can't
# creep back in unnoticed. Pure bash integer math (no bc in the image).
timed() {
    local label="$1"
    shift
    local start_ms end_ms elapsed_ms
    start_ms=$(date +%s%3N)
    "$@"
    end_ms=$(date +%s%3N)
    elapsed_ms=$((end_ms - start_ms))
    printf '== %-28s %4d.%01ds ==\n' "$label" \
        $((elapsed_ms / 1000)) $((elapsed_ms % 1000 / 100))
}

echo "== checking that every dependency is a path dependency =="
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Within [dependencies]/[dev-dependencies]/[build-dependencies]/
    # [workspace.dependencies] sections, every non-comment entry must
    # reference the workspace or a path.
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]/) }
        in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
            if ($0 !~ /workspace[[:space:]]*=[[:space:]]*true/ && $0 !~ /path[[:space:]]*=/) print
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "non-path dependency in $manifest:" >&2
        echo "$bad" >&2
        fail=1
    fi
done
[ "$fail" -eq 0 ] || exit 1
echo "ok: all dependencies are path/workspace entries"

echo "== offline release build =="
timed "release build" cargo build --workspace --release --offline

echo "== telemetry smoke =="
telemetry_smoke() {
    local workdir
    workdir=$(mktemp -d)
    ./target/release/banyan simulate --stages 3 --p 0.4 --cycles 2000 \
        --telemetry "$workdir/t.json" --dist-out "$workdir/d.json" \
        --trace-out "$workdir/tr.json" --progress > /dev/null
    python3 - "$workdir/t.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["schema"] == "banyan-obs/manifest/v2", m["schema"]
c = m["metrics"]["counters"]
for key in ("net.injected_total", "net.delivered_total", "net.in_flight_at_end"):
    assert key in c, f"missing counter {key}"
assert c["net.injected_total"] == c["net.delivered_total"] + c["net.in_flight_at_end"], c
assert any(s.startswith("net/") for s in m["spans"]), m["spans"].keys()
assert "net.wait.total" in m["distributions"], m["distributions"].keys()
assert m["span_quantiles"], "span quantiles missing"
assert any(g.startswith("net.drift.ks_ppm.") for g in m["metrics"]["gauges"]), \
    m["metrics"]["gauges"].keys()
print("ok: manifest v2 parses; conservation ledger closes; sketches + drift present")
PY
    # Structural validation of all three artifacts by the dedicated tool.
    ./target/release/manifest_check "$workdir/t.json" "$workdir/d.json" "$workdir/tr.json"
    rm -rf "$workdir"
}
timed "telemetry smoke" telemetry_smoke

echo "== serve smoke =="
serve_smoke() {
    local workdir pid addr expected
    workdir=$(mktemp -d)
    # Fast drift polling + cheap probes so the operational surface
    # (readyz, /metrics drift gauges) settles within the smoke budget.
    ./target/release/banyan serve --addr 127.0.0.1:0 \
        --telemetry "$workdir/serve.manifest.json" \
        --access-log "$workdir/access.jsonl" \
        --drift-threshold 0.9 --drift-poll-ms 100 \
        --probe-cycles 800 --probe-reps 2 > "$workdir/serve.out" &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^banyan serve listening on //p' "$workdir/serve.out")
        [ -n "$addr" ] && break
        sleep 0.05
    done
    if [ -z "$addr" ]; then
        echo "serve smoke: daemon never reported its address" >&2
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    # The daemon's analytic answer must agree with the CLI's evaluation
    # of the same closed form.
    expected=$(./target/release/banyan total --stages 6 --p 0.5 \
        | sed -n 's/^E(total waiting)[[:space:]]*= //p')
    python3 - "$addr" "$expected" <<'PY'
import http.client, json, sys, time
host, port = sys.argv[1].rsplit(":", 1)
expected = float(sys.argv[2])
conn = http.client.HTTPConnection(host, int(port), timeout=10)
body = json.dumps({"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"})
conn.request("POST", "/query", body=body)
r = conn.getresponse()
assert r.status == 200, (r.status, r.read())
assert r.getheader("X-Banyan-Cache") == "miss", r.getheaders()
first = json.loads(r.read())
assert first["source"] == "analytic", first
assert abs(first["wait"]["mean"] - expected) < 5e-7, (first["wait"]["mean"], expected)
assert first["wait"]["p50"] <= first["wait"]["p99"] <= first["wait"]["p999"], first["wait"]
# Same query on the same keep-alive connection: a byte-identical cache hit.
conn.request("POST", "/query", body=body)
r = conn.getresponse()
assert r.getheader("X-Banyan-Cache") == "hit", r.getheaders()
assert json.loads(r.read()) == first
# Operational surface: liveness, the Prometheus exposition, readiness.
conn.request("GET", "/healthz")
r = conn.getresponse()
assert r.status == 200 and b"ok" in r.read(), "healthz must answer ok"
scrape = ""
for _ in range(100):  # wait for the drift monitor to probe the hot key
    conn.request("GET", "/metrics")
    r = conn.getresponse()
    assert r.status == 200, (r.status, r.read())
    ctype = r.getheader("Content-Type") or ""
    assert ctype.startswith("text/plain; version=0.0.4"), ctype
    scrape = r.read().decode()
    if "serve_drift_probe_ks_ppm" in scrape:
        break
    time.sleep(0.05)
else:
    raise AssertionError("drift monitor never probed the hot key:\n" + scrape)
assert "# TYPE serve_http_requests_total counter" in scrape, scrape
assert "serve_cache_hits 1" in scrape, scrape
assert 'serve_rolling_latency_us{route="query",window="10s",quantile="p99"}' in scrape, scrape
conn.request("GET", "/readyz")
r = conn.getresponse()
ready = r.read()
assert r.status == 200 and b"ready" in ready, (r.status, ready)
conn.request("POST", "/shutdown")
assert conn.getresponse().status == 200
print("ok: serve answered the closed form, cache hit, ops surface healthy")
PY
    wait "$pid"
    # The run manifest and the structured access log are both checked
    # structurally (the access log by its per-line v1 schema).
    ./target/release/manifest_check "$workdir/serve.manifest.json" \
        "$workdir/access.jsonl"

    # The other drift direction: a zero KS threshold marks every
    # analytic probe as drifted, which must flip /readyz to 503.
    ./target/release/banyan serve --addr 127.0.0.1:0 \
        --drift-threshold 0.0 --drift-poll-ms 100 \
        --probe-cycles 800 --probe-reps 2 > "$workdir/serve2.out" &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^banyan serve listening on //p' "$workdir/serve2.out")
        [ -n "$addr" ] && break
        sleep 0.05
    done
    if [ -z "$addr" ]; then
        echo "serve smoke: degraded daemon never reported its address" >&2
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    python3 - "$addr" <<'PY'
import http.client, json, sys, time
host, port = sys.argv[1].rsplit(":", 1)
conn = http.client.HTTPConnection(host, int(port), timeout=10)
body = json.dumps({"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"})
conn.request("POST", "/query", body=body)
r = conn.getresponse()
assert r.status == 200, (r.status, r.read())
r.read()
text = ""
for _ in range(100):
    conn.request("GET", "/readyz")
    r = conn.getresponse()
    status, text = r.status, r.read().decode()
    if status == 503:
        break
    time.sleep(0.05)
else:
    raise AssertionError("readyz never went not-ready under a zero KS threshold")
assert "not-ready" in text and "drift" in text, text
conn.request("POST", "/shutdown")
assert conn.getresponse().status == 200
print("ok: zero-threshold drift flips /readyz to 503")
PY
    wait "$pid"
    rm -rf "$workdir"
}
timed "serve smoke" serve_smoke

echo "== flow smoke =="
flow_smoke() {
    local workdir pid addr
    workdir=$(mktemp -d)
    # CLI --json must be byte-identical to the daemon's GET /v1/flow
    # for the same canonical query.
    ./target/release/banyan flow --topo mesh --rows 2 --cols 2 --p 0.5 \
        --json > "$workdir/cli.json"
    ./target/release/banyan serve --addr 127.0.0.1:0 > "$workdir/serve.out" &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^banyan serve listening on //p' "$workdir/serve.out")
        [ -n "$addr" ] && break
        sleep 0.05
    done
    if [ -z "$addr" ]; then
        echo "flow smoke: daemon never reported its address" >&2
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    python3 - "$addr" "$workdir/cli.json" <<'PY'
import http.client, json, sys
host, port = sys.argv[1].rsplit(":", 1)
cli_body = open(sys.argv[2], "rb").read()
conn = http.client.HTTPConnection(host, int(port), timeout=10)
conn.request("GET", "/v1/flow?topo=mesh&rows=2&cols=2&p=0.5")
r = conn.getresponse()
assert r.status == 200, (r.status, r.read())
served = r.read()
assert served == cli_body, "CLI --json and /v1/flow bodies differ"
doc = json.loads(served)
assert doc["schema"] == "banyan-serve/flow/v1", doc["schema"]
assert doc["flows"] == 12 and len(doc["per_flow"]) == 12, doc["flows"]
# A batch: two identical capacity queries (the second must be served
# from the cache as the same answer) and one flow query.
batch = json.dumps([
    {"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"},
    {"stages": 6, "k": 2, "mode": "analytic", "p": 0.5},
    {"topo": "mesh", "rows": 2, "cols": 2, "p": 0.5},
])
conn.request("POST", "/v1/batch", body=batch)
r = conn.getresponse()
assert r.status == 200, (r.status, r.read())
out = json.loads(r.read())
assert out["schema"] == "banyan-serve/batch/v1" and out["count"] == 3, out
assert out["results"][0] == out["results"][1], "batch cache must dedup"
assert out["results"][2]["schema"] == "banyan-serve/flow/v1", out["results"][2]
conn.request("POST", "/shutdown")
assert conn.getresponse().status == 200
print("ok: flow CLI/daemon bodies byte-identical; batch answered through the cache")
PY
    wait "$pid"
    # The flow drift path: a small sim dump must pass the dist checker.
    ./target/release/banyan flow --topo mesh --rows 2 --cols 2 --p 0.5 \
        --dist-out "$workdir/fd.json" --cycles 2000 --reps 1 > /dev/null
    ./target/release/manifest_check "$workdir/fd.json"
    rm -rf "$workdir"
}
timed "flow smoke" flow_smoke

echo "== msg-trace smoke =="
msgtrace_smoke() {
    local workdir
    workdir=$(mktemp -d)
    # The tracer's core contract: the scalar and lane engines sample the
    # same messages and emit byte-identical trace files.
    ./target/release/banyan simulate --stages 4 --p 0.5 --cycles 2000 \
        --reps 2 --engine scalar --msg-trace "$workdir/scalar.jsonl" \
        --msg-trace-rate 0.5 > /dev/null
    ./target/release/banyan simulate --stages 4 --p 0.5 --cycles 2000 \
        --reps 2 --engine lanes --msg-trace "$workdir/lanes.jsonl" \
        --msg-trace-rate 0.5 > /dev/null
    cmp "$workdir/scalar.jsonl" "$workdir/lanes.jsonl"
    echo "ok: scalar and lane engine trace files byte-identical"
    # Structural validation (header schema, cycle chains, wait sums)
    # by the dedicated tool, then the inspector must accept the file.
    ./target/release/manifest_check "$workdir/scalar.jsonl"
    ./target/release/banyan trace --file "$workdir/scalar.jsonl" > /dev/null
    rm -rf "$workdir"
}
timed "msg-trace smoke" msgtrace_smoke

if [ "$QUICK" -eq 1 ]; then
    echo "== offline unit tests (--quick: libs + bins, minus the bench suites) =="
    # banyan-bench's lib tests exercise real timed benchmark runs
    # (calibration loops), far over the quick budget — full runs cover it.
    timed "unit tests" cargo test --workspace --exclude banyan-bench -q --offline --lib --bins
    # The lane-vs-scalar engine equivalence property test is cheap and
    # guards the simulator's core bit-identity contract, so it runs even
    # in the quick tier (integration suites are otherwise skipped).
    timed "lane bit-identity" cargo test -q --offline -p banyan-sim --test properties lane_engine_bit_identity
    echo "verify: OK (quick tier — bench + integration suites not run)"
    exit 0
fi

echo "== offline test suite (per-suite wall times) =="
timed "lib + bin tests" cargo test --workspace -q --offline --lib --bins
# Workspace-level integration suites, one timing line each.
for suite in tests/*.rs; do
    name=$(basename "$suite" .rs)
    timed "suite: $name" cargo test -q --offline --test "$name"
done
# Per-crate integration suites.
for suite in crates/*/tests/*.rs; do
    dir=${suite%/tests/*}
    pkg=$(sed -n 's/^name = "\(.*\)"$/\1/p' "$dir/Cargo.toml" | head -n 1)
    name=$(basename "$suite" .rs)
    timed "suite: $pkg/$name" cargo test -q --offline -p "$pkg" --test "$name"
done
timed "doc tests" cargo test --workspace -q --offline --doc

echo "== telemetry overhead guard =="
timed "overhead guard" cargo run -q --offline --release -p banyan-bench --bin overhead_guard

echo "== manifest check over recorded artifacts =="
# Every committed run manifest (plus any freshly regenerated ones) must
# stay structurally valid: schema v1 or v2, finite numbers, pmf mass
# equal to sketch counts, conservation ledger closed.
timed "manifest check" ./target/release/manifest_check \
    results/*.manifest.json results/BENCH_serve.json results/BENCH_flow.json


if cargo clippy --version >/dev/null 2>&1; then
    echo "== clippy (-D warnings) =="
    timed "clippy" cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "== clippy not installed; skipping =="
fi

echo "verify: OK"
