//! Randomized property tests for the analytical layer: the §III
//! closed forms, Theorem 1's transform machinery, and the §IV/§V models
//! across randomized parameters. Driven by the seeded in-repo harness
//! (`banyan_prng::check`).

use banyan_core::later_stages::StageConstants;
use banyan_core::models::{
    bulk_queue, eq6_mean_wait, eq7_var_wait, eq8_mean_wait, geometric_queue, mixed_queue,
    nonuniform_queue, uniform_queue,
};
use banyan_core::total_delay::TotalWaiting;
use banyan_core::{FirstStage, Pgf, TabulatedPgf};
use banyan_numerics::series::pmf_mean_var;
use banyan_prng::check::check;

const CASES: u32 = 64;

#[test]
fn uniform_queue_moments_nonnegative_and_match_closed_forms() {
    check(CASES, |g| {
        let k = g.u32(2..16);
        let p = g.f64(0.01..0.95);
        let q = uniform_queue(k, p, 1).unwrap();
        assert!(q.mean_wait() >= 0.0);
        assert!(q.var_wait() >= 0.0);
        assert!((q.mean_wait() - eq6_mean_wait(k, p)).abs() < 1e-11);
        assert!((q.var_wait() - eq7_var_wait(k, p)).abs() < 1e-10);
    });
}

#[test]
fn mean_wait_monotone_in_load() {
    check(CASES, |g| {
        let k = g.u32(2..9);
        let p = g.f64(0.05..0.9);
        let w_lo = uniform_queue(k, p, 1).unwrap().mean_wait();
        let w_hi = uniform_queue(k, (p + 0.05).min(0.99), 1).unwrap().mean_wait();
        assert!(w_hi >= w_lo);
    });
}

#[test]
fn constant_size_matches_eq8() {
    check(CASES, |g| {
        let k = g.u32(2..9);
        let m = g.u32(1..9);
        let rho = g.f64(0.05..0.9);
        let p = rho / m as f64;
        let q = uniform_queue(k, p, m).unwrap();
        assert!((q.mean_wait() - eq8_mean_wait(k, p, m as f64)).abs() < 1e-9);
    });
}

#[test]
fn hotspot_mean_decreases_in_q() {
    check(CASES, |g| {
        let k = g.u32(2..9);
        let p = g.f64(0.1..0.9);
        let q = g.f64(0.0..0.9);
        let w = nonuniform_queue(k, p, q, 1).unwrap().mean_wait();
        let w2 = nonuniform_queue(k, p, (q + 0.1).min(1.0), 1).unwrap().mean_wait();
        assert!(w2 <= w + 1e-12);
    });
}

#[test]
fn bulk_b1_equals_single() {
    check(CASES, |g| {
        let k = g.u32(2..9);
        let p = g.f64(0.05..0.9);
        let b = bulk_queue(k, p, 1).unwrap();
        let s = uniform_queue(k, p, 1).unwrap();
        assert!((b.mean_wait() - s.mean_wait()).abs() < 1e-12);
        assert!((b.var_wait() - s.var_wait()).abs() < 1e-11);
    });
}

#[test]
fn geometric_mu1_equals_unit_service() {
    check(CASES, |g| {
        let k = g.u32(2..9);
        let p = g.f64(0.05..0.9);
        let geo = geometric_queue(k, p, 1.0).unwrap();
        let s = uniform_queue(k, p, 1).unwrap();
        assert!((geo.mean_wait() - s.mean_wait()).abs() < 1e-12);
        assert!((geo.var_wait() - s.var_wait()).abs() < 1e-11);
    });
}

#[test]
fn pmf_is_distribution_with_exact_moments() {
    check(CASES, |g| {
        let k = g.u32(2..5);
        let p = g.f64(0.1..0.8);
        let q = uniform_queue(k, p, 1).unwrap();
        let pmf = q.pmf(192);
        assert!(pmf.iter().all(|&x| x >= 0.0));
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "mass {total}");
        let (mean, var) = pmf_mean_var(&pmf);
        assert!((mean - q.mean_wait()).abs() < 1e-5 * (1.0 + q.mean_wait()));
        assert!((var - q.var_wait()).abs() < 1e-3 * (1.0 + q.var_wait()));
    });
}

#[test]
fn transform_bounded_on_unit_circle() {
    check(CASES, |g| {
        let k = g.u32(2..6);
        let p = g.f64(0.1..0.85);
        let theta = g.f64(0.01..6.27);
        let q = uniform_queue(k, p, 1).unwrap();
        let z = banyan_numerics::Complex::cis(theta);
        assert!(q.transform(z).abs() <= 1.0 + 1e-8);
    });
}

#[test]
fn tail_decay_rate_in_unit_interval() {
    check(CASES, |g| {
        let k = g.u32(2..6);
        let p = g.f64(0.1..0.9);
        let q = uniform_queue(k, p, 1).unwrap();
        if let Some(r) = q.tail_decay_rate() {
            assert!(r > 0.0 && r < 1.0);
            // Heavier load ⇒ slower decay (larger r).
            if p < 0.85 {
                let q2 = uniform_queue(k, p + 0.05, 1).unwrap();
                if let Some(r2) = q2.tail_decay_rate() {
                    assert!(r2 > r - 1e-9);
                }
            }
        }
    });
}

#[test]
fn tabulated_arrivals_consistent_with_theorem1() {
    check(CASES, |g| {
        // Normalize to a pmf, scale so λ < 1 comfortably.
        let raw = g.vec_with(2..5, |g| g.f64(0.01..1.0));
        let total: f64 = raw.iter().sum();
        let pmf: Vec<f64> = raw.iter().map(|x| x / total).collect();
        let gf = TabulatedPgf::new(pmf);
        // Keep ρ away from 1 so a 512-term window holds ~all the mass
        // (at ρ → 1 the support grows without bound).
        if gf.d1() <= 1e-6 || gf.d1() >= 0.85 {
            return;
        }
        let q = FirstStage::new(gf, banyan_core::ConstantService::unit()).unwrap();
        let dist = q.pmf(512);
        let (mean, _) = pmf_mean_var(&dist);
        assert!((mean - q.mean_wait()).abs() < 1e-4 * (1.0 + q.mean_wait()));
    });
}

#[test]
fn mixture_mean_size_bounds_waiting() {
    check(CASES, |g| {
        // A {4,8} mixture waits at least as long as all-4 and at most…
        // not bounded by all-8 in general, but the mean must be finite,
        // nonnegative, and increasing in the share of long messages.
        let p = g.f64(0.01..0.1);
        let g4 = g.f64(0.0..1.0);
        let sizes = vec![(4u32, g4), (8u32, 1.0 - g4)];
        let q = mixed_queue(2, p, sizes).unwrap();
        assert!(q.mean_wait() >= 0.0);
        let more_long = vec![(4u32, (g4 - 0.2).max(0.0)), (8u32, 1.0 - (g4 - 0.2).max(0.0))];
        let q2 = mixed_queue(2, p, more_long).unwrap();
        assert!(q2.mean_wait() >= q.mean_wait() - 1e-12);
    });
}

#[test]
fn stage_estimates_bracket_first_and_limit() {
    check(CASES, |g| {
        let p = g.f64(0.05..0.9);
        let k = g.u32(2..9);
        let i = g.u32(1..30);
        let c = StageConstants::default();
        let w1 = c.w_stage(1, p, k);
        let winf = c.w_inf(p, k);
        let wi = c.w_stage(i, p, k);
        assert!(wi >= w1 - 1e-12 && wi <= winf + 1e-12);
    });
}

#[test]
fn total_waiting_monotone_in_stages() {
    check(CASES, |g| {
        let p = g.f64(0.05..0.85);
        let n = g.u32(1..12);
        let a = TotalWaiting::new(2, n, p, 1);
        let b = TotalWaiting::new(2, n + 1, p, 1);
        assert!(b.mean_total() > a.mean_total());
        assert!(b.var_total() > a.var_total());
    });
}

#[test]
fn covariance_params_in_valid_range() {
    check(CASES, |g| {
        let p = g.f64(0.01..0.95);
        let k = g.u32(2..9);
        let m = g.u32(1..4);
        if m as f64 * p >= 1.0 {
            return;
        }
        let t = TotalWaiting::new(k, 6, p, m);
        let (a, b) = t.cov_params();
        assert!((0.0..1.0).contains(&a));
        assert!(b > 0.0 && b < 1.0, "b = {b}");
    });
}

#[test]
fn gamma_approx_moments_match_model() {
    check(CASES, |g| {
        let p = g.f64(0.05..0.85);
        let n = g.u32(1..13);
        let t = TotalWaiting::new(2, n, p, 1);
        let gamma = t.gamma().unwrap();
        assert!((gamma.mean() - t.mean_total()).abs() < 1e-9 * (1.0 + t.mean_total()));
        assert!((gamma.variance() - t.var_total()).abs() < 1e-9 * (1.0 + t.var_total()));
    });
}

#[test]
fn skewness_positive_for_all_stable_uniform_queues() {
    check(CASES, |g| {
        let k = g.u32(2..8);
        let p = g.f64(0.05..0.9);
        let q = uniform_queue(k, p, 1).unwrap();
        let s = q.skewness_wait();
        assert!(s.is_finite() && s > 0.0, "skew = {s}");
    });
}

#[test]
fn unfinished_work_pmf_mass_and_moments() {
    check(CASES, |g| {
        let k = g.u32(2..5);
        let p = g.f64(0.1..0.8);
        let q = uniform_queue(k, p, 1).unwrap();
        let pmf = q.unfinished_work_pmf(256);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "mass {total}");
        let (mean, _) = pmf_mean_var(&pmf);
        let (es, _) = q.unfinished_work_moments();
        assert!((mean - es).abs() < 1e-5 * (1.0 + es));
    });
}

#[test]
fn overflow_probability_decreasing_in_capacity() {
    check(CASES, |g| {
        let k = g.u32(2..5);
        let p = g.f64(0.1..0.85);
        let q = uniform_queue(k, p, 1).unwrap();
        let mut prev = 1.0;
        for b in [1usize, 2, 4, 8, 16] {
            let pb = q.backlog_overflow_probability(b);
            assert!(pb <= prev + 1e-12 && (0.0..=1.0).contains(&pb));
            prev = pb;
        }
    });
}

#[test]
fn design_factorizations_are_exact() {
    check(CASES, |g| {
        let exp = g.u32(1..13);
        let k = g.u64(2..5);
        let ports = k.pow(exp);
        for (kk, n) in banyan_core::design::factorizations(ports) {
            assert_eq!((kk as u64).pow(n), ports);
        }
    });
}

#[test]
fn delay_quantiles_monotone() {
    check(CASES, |g| {
        let p = g.f64(0.05..0.85);
        let n = g.u32(1..13);
        let t = TotalWaiting::new(2, n, p, 1);
        let q50 = t.delay_quantile(0.5);
        let q90 = t.delay_quantile(0.9);
        let q99 = t.delay_quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        assert!(q50 >= t.total_service() as f64);
    });
}
