//! Exact first-stage analysis — Theorem 1 of the paper.
//!
//! An output port of a first-stage switch is a discrete-time single-server
//! queue: at each cycle a batch of messages arrives (count pgf `R`, mean
//! `λ`), each message needs an i.i.d. service time (pgf `U`, mean `m`),
//! and the server completes one cycle of work per cycle. With traffic
//! intensity `ρ = mλ < 1` the steady-state waiting time `w` of a message
//! has z-transform (Theorem 1):
//!
//! ```text
//! t(z) = E(z^w) = Ψ(z)·φ(U(z))
//!      = [(1−mλ)(1−z) / (R(U(z)) − z)] · [(1 − R(U(z))) / (λ(1 − U(z)))]
//! ```
//!
//! where `Ψ` is the transform of the unfinished work seen by an arriving
//! batch and `φ(U(z))` accounts for batch-mates served first. From the
//! transform this module computes:
//!
//! * the exact mean (paper Eq. 2) and variance (paper Eq. 3) — derived
//!   here by series expansion of `t` at `z = 1` rather than transcribing
//!   the printed formulas, and cross-checked against them in tests,
//! * the **full pmf** of `w`, by sampling `t` on the unit circle and
//!   inverting with an FFT ("in principle, this gives the complete
//!   distribution of the waiting time" — here it does in practice too),
//! * the geometric decay rate of the tail, from the dominant real
//!   singularity of `t` (the root of `R(U(z)) = z` beyond 1).

use crate::gf::Pgf;
use banyan_numerics::fft::coefficients_from_unit_circle;
use banyan_numerics::{brent, next_pow2, Complex};

/// Exact mean and variance of the first-stage waiting time from raw
/// factorial moments, without constructing pgf objects.
///
/// Inputs: arrival rate `λ = R'(1)`, mean service `m = U'(1)`, and the
/// higher factorial moments `r2 = R''(1)`, `r3 = R'''(1)`, `u2 = U''(1)`,
/// `u3 = U'''(1)`. Requires `ρ = mλ ∈ (0, 1)`.
///
/// Derivation (used instead of transcribing the paper's printed Eq. 3,
/// whose scan is partly illegible; tests confirm it reproduces Eq. 5/7/9
/// and simulation): write `z = 1 + ε` and `V(z) = R(U(z))`, so
/// `V₂ = m²r2 + λu2` and `V₃ = m³r3 + 3m·u2·r2 + λu3`. The two factors of
/// Theorem 1's `t(z) = Ψ(z)·φ(U(z))` expand as
///
/// ```text
/// Ψ = 1 − aε + (a² − b)ε²,        a = −V₂/(2(1−ρ)), b = −V₃/(6(1−ρ)),
/// φ∘U = 1 + (V₂/(2ρ) − u₁)ε + (V₃/(6ρ) − u₁V₂/(2ρ) + u₁² − u₂)ε²,
///        u₁ = u2/(2m), u₂ = u3/(6m),
/// ```
///
/// giving `t'(1)`, `t''(1)` and hence `E(w) = t'(1)`,
/// `Var(w) = t''(1) + t'(1) − t'(1)²`.
///
/// This extends verbatim to *real* `m` (pseudo-deterministic service of
/// non-integer mean size), which §IV-C uses for multi-size traffic.
pub fn wait_moments(lambda: f64, m: f64, r2: f64, r3: f64, u2: f64, u3: f64) -> (f64, f64) {
    if lambda == 0.0 {
        // No traffic: waiting time is identically zero (continuous limit
        // of the formulas below).
        return (0.0, 0.0);
    }
    let rho = lambda * m;
    assert!(
        lambda > 0.0 && rho < 1.0,
        "wait_moments requires 0 < ρ < 1, got λ={lambda}, m={m}"
    );
    let v2 = m * m * r2 + lambda * u2;
    let v3 = m * m * m * r3 + 3.0 * m * u2 * r2 + lambda * u3;

    let a1 = v2 / (2.0 * (1.0 - rho));
    let a2 = v2 * v2 / (2.0 * (1.0 - rho).powi(2)) + v3 / (3.0 * (1.0 - rho));

    let q1 = u2 / (2.0 * m);
    let q2 = u3 / (6.0 * m);
    let b1 = v2 / (2.0 * rho) - q1;
    let b2 = 2.0 * (v3 / (6.0 * rho) - v2 / (2.0 * rho) * q1 + q1 * q1 - q2);

    let t1 = a1 + b1;
    let t2 = a2 + 2.0 * a1 * b1 + b2;
    (t1, t2 + t1 - t1 * t1)
}

/// Exact mean, variance, and **third central moment** of the waiting
/// time, from factorial moments up to the fourth order.
///
/// Extends the series of [`wait_moments`] one order: with
/// `V₄ = m⁴r4 + 6m²r3·u2 + r2(4m·u3 + 3u2²) + λu4` (Faà di Bruno at 1)
/// and `s₁ = V₂/(2(1−ρ))`,
///
/// ```text
/// Ψ'''(1)     = 6s₁³ + 2s₁V₃/(1−ρ) + V₄/(4(1−ρ)),
/// (φ∘U)'''(1) = 6[n₃ − n₂u₁ + n₁(u₁²−u₂) + (−u₁³ + 2u₁u₂ − u₃)],
///   n_j = V_{j+1}/((j+1)!·ρ),  u_j = U^{(j+1)}(1)/((j+1)!·m),
/// ```
///
/// and `t''' = Ψ''' + 3Ψ''·(φ∘U)' + 3Ψ'·(φ∘U)'' + (φ∘U)'''`. The raw
/// moments then give `μ₃ = E w³ − 3·E w·E w² + 2(E w)³`.
///
/// Used to quantify how close the waiting-time *skewness* is to the
/// gamma approximation's `2/√shape` (paper §V).
#[allow(clippy::too_many_arguments)]
pub fn wait_three_moments(
    lambda: f64,
    m: f64,
    r2: f64,
    r3: f64,
    r4: f64,
    u2: f64,
    u3: f64,
    u4: f64,
) -> (f64, f64, f64) {
    if lambda == 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let rho = lambda * m;
    assert!(
        lambda > 0.0 && rho < 1.0,
        "wait_three_moments requires 0 < ρ < 1, got λ={lambda}, m={m}"
    );
    let v2 = m * m * r2 + lambda * u2;
    let v3 = m * m * m * r3 + 3.0 * m * u2 * r2 + lambda * u3;
    let v4 = m.powi(4) * r4 + 6.0 * m * m * r3 * u2 + r2 * (4.0 * m * u3 + 3.0 * u2 * u2)
        + lambda * u4;

    let om = 1.0 - rho;
    let s1 = v2 / (2.0 * om);
    let a1 = s1;
    let a2 = v2 * v2 / (2.0 * om * om) + v3 / (3.0 * om);
    let a3 = 6.0 * s1.powi(3) + 2.0 * s1 * v3 / om + v4 / (4.0 * om);

    let n1 = v2 / (2.0 * rho);
    let n2 = v3 / (6.0 * rho);
    let n3 = v4 / (24.0 * rho);
    let q1 = u2 / (2.0 * m);
    let q2 = u3 / (6.0 * m);
    let q3 = u4 / (24.0 * m);
    let b1 = n1 - q1;
    let b2c = n2 - n1 * q1 + (q1 * q1 - q2);
    let b3c = n3 - n2 * q1 + n1 * (q1 * q1 - q2) + (-q1.powi(3) + 2.0 * q1 * q2 - q3);
    let b2 = 2.0 * b2c;
    let b3 = 6.0 * b3c;

    let t1 = a1 + b1;
    let t2 = a2 + 2.0 * a1 * b1 + b2;
    let t3 = a3 + 3.0 * a2 * b1 + 3.0 * a1 * b2 + b3;

    let ew = t1;
    let ew2 = t2 + t1;
    let ew3 = t3 + 3.0 * t2 + t1;
    let var = ew2 - ew * ew;
    let mu3 = ew3 - 3.0 * ew * ew2 + 2.0 * ew.powi(3);
    (ew, var, mu3)
}

/// Errors constructing a first-stage model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ModelError {
    /// Traffic intensity `ρ = mλ` is not below 1 — no steady state.
    Unstable {
        /// The offending traffic intensity.
        rho: f64,
    },
    /// No traffic at all (`λ = 0`); waiting time is identically zero and
    /// the transform machinery degenerates.
    ZeroTraffic,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Unstable { rho } => {
                write!(f, "traffic intensity ρ = {rho} >= 1: queue is unstable")
            }
            ModelError::ZeroTraffic => write!(f, "arrival rate is zero"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The exact first-stage queueing model for an arrival pgf `R` and a
/// service pgf `U` (paper §II).
///
/// ```
/// use banyan_core::{FirstStage, UniformBernoulli, ConstantService};
///
/// // One output port of a 2×2 switch at input load p = 0.5.
/// let q = FirstStage::new(
///     UniformBernoulli::square(2, 0.5),
///     ConstantService::unit(),
/// ).unwrap();
/// assert_eq!(q.mean_wait(), 0.25);           // paper Eq. 6
/// assert_eq!(q.var_wait(), 0.25);            // paper Eq. 7
/// let pmf = q.pmf(16);                       // the full distribution
/// assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-6);
/// assert!((q.tail_decay_rate().unwrap() - 1.0 / 9.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct FirstStage<R, U> {
    arrivals: R,
    service: U,
    lambda: f64,
    m: f64,
}

impl<R: Pgf, U: Pgf> FirstStage<R, U> {
    /// Builds the model, validating stability (`ρ = mλ < 1`, `λ > 0`).
    pub fn new(arrivals: R, service: U) -> Result<Self, ModelError> {
        let lambda = arrivals.d1();
        let m = service.d1();
        if lambda <= 0.0 {
            return Err(ModelError::ZeroTraffic);
        }
        let rho = lambda * m;
        if rho >= 1.0 {
            return Err(ModelError::Unstable { rho });
        }
        Ok(FirstStage {
            arrivals,
            service,
            lambda,
            m,
        })
    }

    /// Arrival rate `λ` (messages per cycle).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean service time `m` (cycles).
    pub fn mean_service(&self) -> f64 {
        self.m
    }

    /// Traffic intensity `ρ = mλ` (also the long-run utilization of the
    /// output port).
    pub fn rho(&self) -> f64 {
        self.lambda * self.m
    }

    /// The arrival process.
    pub fn arrivals(&self) -> &R {
        &self.arrivals
    }

    /// The service distribution.
    pub fn service(&self) -> &U {
        &self.service
    }

    /// `(E(w), Var(w))` from the series expansion of `t` at `z = 1`
    /// (see [`wait_moments`]).
    fn moments(&self) -> (f64, f64) {
        wait_moments(
            self.lambda,
            self.m,
            self.arrivals.d2(),
            self.arrivals.d3(),
            self.service.d2(),
            self.service.d3(),
        )
    }

    /// Exact mean waiting time `E(w)` (paper Eq. 2):
    ///
    /// ```text
    /// E(w) = (m·R''(1) + λ²·U''(1)) / (2λ(1 − mλ)).
    /// ```
    pub fn mean_wait(&self) -> f64 {
        // Equivalent to transform_derivatives().0; kept in the paper's
        // printed form so the two can cross-check each other in tests.
        let lam = self.lambda;
        let m = self.m;
        (m * self.arrivals.d2() + lam * lam * self.service.d2())
            / (2.0 * lam * (1.0 - m * lam))
    }

    /// Exact variance of the waiting time (paper Eq. 3), via
    /// `Var(w) = t''(1) + t'(1) − t'(1)²`.
    pub fn var_wait(&self) -> f64 {
        self.moments().1
    }

    /// Mean *delay* through the stage: waiting plus own service.
    pub fn mean_delay(&self) -> f64 {
        self.mean_wait() + self.m
    }

    /// Variance of the delay. Arrivals are independent of queue length,
    /// so the delay variance is the waiting variance plus the service
    /// variance (paper §III, opening remarks).
    pub fn var_delay(&self) -> f64 {
        self.var_wait() + self.service.variance()
    }

    /// The waiting-time transform `t(z)` at a complex point on the closed
    /// unit disk. `t(1) = 1` by convention (removable singularity).
    pub fn transform(&self, z: Complex) -> Complex {
        if (z - Complex::ONE).abs() < 1e-12 {
            return Complex::ONE;
        }
        let rho = self.rho();
        let uz = self.service.eval_complex(z);
        let ruz = self.arrivals.eval_complex(uz);
        let psi = (Complex::ONE - z) * (1.0 - rho) / (ruz - z);
        let phi = (Complex::ONE - ruz) / ((Complex::ONE - uz) * self.lambda);
        psi * phi
    }

    /// `t(z)` for real `z` (valid on `[0, 1]` and slightly beyond).
    pub fn transform_real(&self, z: f64) -> f64 {
        self.transform(Complex::from_real(z)).re
    }

    /// The full waiting-time pmf `P(w = 0), …, P(w = len−1)`, recovered
    /// by inverse DFT of `t` sampled on the unit circle.
    ///
    /// The FFT size is chosen from the tail decay rate so that aliasing
    /// is below `1e-10`; tiny negative round-off values are clamped to 0.
    pub fn pmf(&self, len: usize) -> Vec<f64> {
        let n = self.fft_size(len);
        let samples: Vec<Complex> = (0..n)
            .map(|l| {
                let theta = 2.0 * std::f64::consts::PI * l as f64 / n as f64;
                self.transform(Complex::cis(theta))
            })
            .collect();
        let mut coeffs = coefficients_from_unit_circle(&samples);
        coeffs.truncate(len);
        for c in coeffs.iter_mut() {
            if *c < 0.0 && *c > -1e-9 {
                *c = 0.0;
            }
        }
        coeffs
    }

    /// Exact third central moment `μ₃` of the waiting time (see
    /// [`wait_three_moments`]).
    pub fn third_central_moment(&self) -> f64 {
        wait_three_moments(
            self.lambda,
            self.m,
            self.arrivals.d2(),
            self.arrivals.d3(),
            self.arrivals.d4(),
            self.service.d2(),
            self.service.d3(),
            self.service.d4(),
        )
        .2
    }

    /// Exact skewness `μ₃/σ³` of the waiting time. Infinite when the
    /// variance is zero.
    pub fn skewness_wait(&self) -> f64 {
        let v = self.var_wait();
        self.third_central_moment() / v.powf(1.5)
    }

    /// Moments `(E[s], Var[s])` of the steady-state **unfinished work**
    /// `s` at the end of a cycle — the `Ψ(z)` factor in Theorem 1's
    /// proof, with transform `Ψ(z) = (1−ρ)(1−z)/(R(U(z)) − z)`.
    ///
    /// An arriving batch sees exactly this backlog (the arrival process
    /// is memoryless), so `w = s + (work of batch-mates served first)`.
    pub fn unfinished_work_moments(&self) -> (f64, f64) {
        let rho = self.rho();
        let r2 = self.arrivals.d2();
        let r3 = self.arrivals.d3();
        let u2 = self.service.d2();
        let u3 = self.service.d3();
        let m = self.m;
        let lam = self.lambda;
        let v2 = m * m * r2 + lam * u2;
        let v3 = m * m * m * r3 + 3.0 * m * u2 * r2 + lam * u3;
        let mean = v2 / (2.0 * (1.0 - rho));
        let second_fact = v2 * v2 / (2.0 * (1.0 - rho).powi(2)) + v3 / (3.0 * (1.0 - rho));
        (mean, second_fact + mean - mean * mean)
    }

    /// Probability that the port is idle at the end of a cycle,
    /// `P(s = 0) = Ψ(0)`.
    pub fn idle_probability(&self) -> f64 {
        let ru0 = self.arrivals.eval(self.service.eval(0.0));
        (1.0 - self.rho()) / ru0
    }

    /// The unfinished-work transform `Ψ(z)` on the closed unit disk
    /// (`Ψ(1) = 1` by convention).
    pub fn unfinished_work_transform(&self, z: Complex) -> Complex {
        if (z - Complex::ONE).abs() < 1e-12 {
            return Complex::ONE;
        }
        let uz = self.service.eval_complex(z);
        let ruz = self.arrivals.eval_complex(uz);
        (Complex::ONE - z) * (1.0 - self.rho()) / (ruz - z)
    }

    /// The full pmf of the end-of-cycle unfinished work `s`, recovered by
    /// inverting `Ψ` on the unit circle.
    ///
    /// This is the quantity a *finite* buffer truncates: `P(s >= B)`
    /// approximates how often a buffer of `B` work units would overflow —
    /// the bridge the paper's §VI sketches toward finite-buffer formulas
    /// ("given our formulas for infinite buffer delays … one could
    /// develop good approximate formulas for finite buffer delays").
    pub fn unfinished_work_pmf(&self, len: usize) -> Vec<f64> {
        let n = self.fft_size(len);
        let samples: Vec<Complex> = (0..n)
            .map(|l| {
                let theta = 2.0 * std::f64::consts::PI * l as f64 / n as f64;
                self.unfinished_work_transform(Complex::cis(theta))
            })
            .collect();
        let mut coeffs = coefficients_from_unit_circle(&samples);
        coeffs.truncate(len);
        for c in coeffs.iter_mut() {
            if *c < 0.0 && *c > -1e-9 {
                *c = 0.0;
            }
        }
        coeffs
    }

    /// Tail probability `P(s >= b)` of the unfinished work — a first-cut
    /// buffer-overflow estimate for a buffer holding `b` work units.
    pub fn backlog_overflow_probability(&self, b: usize) -> f64 {
        let pmf = self.unfinished_work_pmf(b);
        (1.0 - pmf.iter().sum::<f64>()).clamp(0.0, 1.0)
    }

    /// CDF of the waiting time at integer `v`, from the inverted pmf.
    pub fn wait_cdf(&self, v: u64) -> f64 {
        let pmf = self.pmf(v as usize + 1);
        pmf.iter().sum::<f64>().min(1.0)
    }

    /// Cumulative table `[P(w <= 0), …, P(w <= len−1)]` from a single
    /// pmf inversion. Prefer this over repeated [`wait_cdf`] calls when
    /// the CDF is needed at many points (e.g. KS drift checks): one FFT
    /// instead of `len`.
    pub fn wait_cdf_table(&self, len: usize) -> Vec<f64> {
        let pmf = self.pmf(len);
        let mut acc = 0.0;
        pmf.iter()
            .map(|&p| {
                acc += p;
                acc.min(1.0)
            })
            .collect()
    }

    /// Smallest `v` with `P(w <= v) >= q`, for `q ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    pub fn wait_quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q < 1.0, "quantile level must be in (0,1)");
        // Expand the pmf window until the target mass is covered.
        let mut len = 64usize;
        loop {
            let pmf = self.pmf(len);
            let mut acc = 0.0;
            for (v, &p) in pmf.iter().enumerate() {
                acc += p;
                if acc >= q {
                    return v as u64;
                }
            }
            len *= 2;
            assert!(len <= 1 << 22, "quantile window blew up (load too close to 1?)");
        }
    }

    /// The pmf of the *delay* through the stage (waiting plus own
    /// service): the convolution of the waiting pmf with the service
    /// pmf. Arrivals are independent of queue state, so waiting and own
    /// service are independent.
    pub fn delay_pmf(&self, len: usize) -> Vec<f64> {
        let wait = self.pmf(len);
        let service = crate::gf::pgf_to_pmf(&self.service, len);
        let mut out = banyan_numerics::fft::convolve(&wait, &service);
        out.truncate(len);
        out
    }

    /// Picks an FFT size large enough that the aliased tail mass is
    /// negligible.
    fn fft_size(&self, len: usize) -> usize {
        let base = next_pow2(2 * len.max(32));
        match self.tail_decay_rate() {
            Some(r) if r < 1.0 && r > 0.0 => {
                // Need r^N < 1e-12 → N > −12 ln 10 / ln r.
                let need = (-12.0 * std::f64::consts::LN_10 / r.ln()).ceil();
                let need = if need.is_finite() { need as usize } else { 1 << 20 };
                next_pow2(base.max(need)).min(1 << 20)
            }
            _ => base.clamp(1 << 14, 1 << 20),
        }
    }

    /// Geometric decay rate `r ∈ (0, 1)` of the waiting-time tail:
    /// `P(w = j) ~ C·r^j`. Computed as `1/σ` where `σ > 1` is the
    /// smallest real root of `R(U(z)) = z` beyond 1 — the dominant pole
    /// of `t`.
    ///
    /// Returns `None` when the search cannot bracket a root inside the
    /// region where both pgfs converge (e.g. extremely light traffic,
    /// where the pole sits beyond the service pgf's radius).
    pub fn tail_decay_rate(&self) -> Option<f64> {
        let zmax = self.service.radius_hint().min(1e6);
        let f = |z: f64| self.arrivals.eval(self.service.eval(z)) - z;
        // f(1) = 0, f'(1) = ρ − 1 < 0, and f is convex on [1, zmax), so
        // the second root (if any) is where f crosses back up through 0.
        // March outward until the sign flips.
        let mut lo = 1.0 + 1e-9;
        if f(lo) >= 0.0 {
            // ρ ≈ 1: no usable gap below the pole.
            return None;
        }
        let mut step = 1e-3;
        let mut hi = lo + step;
        for _ in 0..200 {
            if hi >= zmax {
                hi = zmax * (1.0 - 1e-12);
                if f(hi) <= 0.0 || !f(hi).is_finite() {
                    return None;
                }
                break;
            }
            let fh = f(hi);
            if !fh.is_finite() {
                return None;
            }
            if fh > 0.0 {
                break;
            }
            lo = hi;
            step *= 2.0;
            hi += step;
        }
        if f(hi) <= 0.0 {
            return None;
        }
        let sigma = brent(f, lo, hi, 1e-13).ok()?;
        if sigma > 1.0 {
            Some(1.0 / sigma)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{PoissonArrivals, UniformBernoulli, UniformBulk};
    use crate::gf::TabulatedPgf;
    use crate::service::{ConstantService, GeometricService, MixedService};
    use banyan_numerics::series::{finite_derivatives, pmf_mean_var};

    #[test]
    fn rejects_unstable_and_empty() {
        let r = UniformBernoulli::square(2, 0.5);
        let err = FirstStage::new(r, ConstantService::new(4)).unwrap_err();
        assert!(matches!(err, ModelError::Unstable { .. }));
        let empty = UniformBernoulli::square(2, 0.0);
        assert_eq!(
            FirstStage::new(empty, ConstantService::unit()).unwrap_err(),
            ModelError::ZeroTraffic
        );
    }

    #[test]
    fn eq6_uniform_unit_service_mean() {
        // E(w) = (1 − 1/k)·λ / (2(1 − λ))  (paper Eq. 6, λ = kp/s = p).
        for &(k, p) in &[(2u32, 0.2), (2, 0.5), (2, 0.8), (4, 0.5), (8, 0.5)] {
            let q = FirstStage::new(
                UniformBernoulli::square(k, p),
                ConstantService::unit(),
            )
            .unwrap();
            let want = (1.0 - 1.0 / k as f64) * p / (2.0 * (1.0 - p));
            assert!((q.mean_wait() - want).abs() < 1e-13, "k={k} p={p}");
        }
    }

    #[test]
    fn eq7_uniform_unit_service_variance() {
        // Var(w) = (1−1/k)λ[6 − 5λ(1+1/k) + 2λ²(1+1/k)] / (12(1−λ)²).
        for &(k, p) in &[(2u32, 0.2), (2, 0.5), (2, 0.8), (4, 0.5), (8, 0.3)] {
            let q = FirstStage::new(
                UniformBernoulli::square(k, p),
                ConstantService::unit(),
            )
            .unwrap();
            let ik = 1.0 / k as f64;
            let want = (1.0 - ik) * p
                * (6.0 - 5.0 * p * (1.0 + ik) + 2.0 * p * p * (1.0 + ik))
                / (12.0 * (1.0 - p) * (1.0 - p));
            assert!(
                (q.var_wait() - want).abs() < 1e-12,
                "k={k} p={p}: {} vs {want}",
                q.var_wait()
            );
        }
    }

    #[test]
    fn table_i_anchor_point() {
        // k = 2, p = 0.5, m = 1: w₁ = 0.25, v₁ = 0.25 (used throughout
        // §IV as the calibration anchor).
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.5),
            ConstantService::unit(),
        )
        .unwrap();
        assert!((q.mean_wait() - 0.25).abs() < 1e-14);
        assert!((q.var_wait() - 0.25).abs() < 1e-14);
    }

    #[test]
    fn eq8_constant_service_mean() {
        // E(w) = ρ(m − 1/k) / (2(1 − ρ)) with ρ = mλ (paper Eq. 8
        // rearranged; reduces to Eq. 6 at m = 1).
        for &(k, p, m) in &[(2u32, 0.25, 2u32), (2, 0.125, 4), (2, 0.0625, 8), (4, 0.1, 5)] {
            let q = FirstStage::new(
                UniformBernoulli::square(k, p),
                ConstantService::new(m),
            )
            .unwrap();
            let rho = m as f64 * p;
            let want = rho * (m as f64 - 1.0 / k as f64) / (2.0 * (1.0 - rho));
            assert!((q.mean_wait() - want).abs() < 1e-12, "k={k} p={p} m={m}");
        }
    }

    #[test]
    fn mean_matches_series_derivation() {
        // Paper Eq. 2 (printed form) vs our series expansion t'(1): the
        // two must agree identically for every traffic/service class.
        let cases: Vec<(Box<dyn Pgf>, Box<dyn Pgf>)> = vec![
            (
                Box::new(UniformBernoulli::square(4, 0.6)),
                Box::new(ConstantService::new(1)),
            ),
            (
                Box::new(UniformBulk::new(2, 2, 0.2, 3)),
                Box::new(ConstantService::new(1)),
            ),
            (
                Box::new(UniformBernoulli::square(2, 0.3)),
                Box::new(GeometricService::new(0.5)),
            ),
            (
                Box::new(PoissonArrivals::new(0.1)),
                Box::new(MixedService::new(vec![(4, 0.5), (8, 0.5)])),
            ),
        ];
        for (r, u) in cases {
            let q = FirstStage::new(r, u).unwrap();
            let (t1, _) = q.moments();
            assert!(
                (q.mean_wait() - t1).abs() < 1e-11 * t1.abs().max(1.0),
                "printed Eq. 2 disagrees with series derivation"
            );
        }
    }

    // Pgf for Box<dyn Pgf> so the table-driven test above can mix types.
    impl Pgf for Box<dyn Pgf> {
        fn eval(&self, z: f64) -> f64 {
            (**self).eval(z)
        }
        fn eval_complex(&self, z: Complex) -> Complex {
            (**self).eval_complex(z)
        }
        fn d1(&self) -> f64 {
            (**self).d1()
        }
        fn d2(&self) -> f64 {
            (**self).d2()
        }
        fn d3(&self) -> f64 {
            (**self).d3()
        }
        fn d4(&self) -> f64 {
            (**self).d4()
        }
        fn radius_hint(&self) -> f64 {
            (**self).radius_hint()
        }
    }

    #[test]
    fn moments_match_numerical_transform_derivatives() {
        // Differentiate t(z) numerically at z = 1 and compare with the
        // closed forms — this validates the *transform* too.
        let q = FirstStage::new(
            UniformBulk::new(2, 2, 0.15, 2),
            MixedService::new(vec![(1, 0.6), (3, 0.4)]),
        )
        .unwrap();
        let (d1, d2, _) = finite_derivatives(|z| q.transform_real(z), 1.0, 1e-4);
        let m = q.mean_wait();
        assert!((d1 - m).abs() < 1e-3 * m.abs().max(1.0), "{d1} vs {m}");
        let var = d2 + d1 - d1 * d1;
        let v = q.var_wait();
        assert!((var - v).abs() < 1e-2 * v.abs().max(1.0), "{var} vs {v}");
    }

    #[test]
    fn transform_is_one_at_one_and_bounded_on_circle() {
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.5),
            ConstantService::unit(),
        )
        .unwrap();
        assert!((q.transform(Complex::ONE) - Complex::ONE).abs() < 1e-12);
        for l in 1..64 {
            let z = Complex::cis(2.0 * std::f64::consts::PI * l as f64 / 64.0);
            let t = q.transform(z);
            assert!(t.abs() <= 1.0 + 1e-9, "|t| = {} at l = {l}", t.abs());
        }
    }

    #[test]
    fn pmf_is_a_distribution_with_matching_moments() {
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.5),
            ConstantService::unit(),
        )
        .unwrap();
        let pmf = q.pmf(128);
        assert!(pmf.iter().all(|&p| p >= 0.0));
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass = {total}");
        let (mean, var) = pmf_mean_var(&pmf);
        assert!((mean - q.mean_wait()).abs() < 1e-8);
        assert!((var - q.var_wait()).abs() < 1e-6);
    }

    #[test]
    fn pmf_matches_known_geo_distribution_for_unit_queue() {
        // k = 2, p = 0.5, m = 1. Here t(z) is rational of degree 2 and the
        // pmf can be computed by the direct recursion on the unfinished
        // work; instead we verify the first probabilities against direct
        // enumeration of the Lindley recursion via the transform's own
        // Taylor series at 0 (finite differences on [0, small]).
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.5),
            ConstantService::unit(),
        )
        .unwrap();
        let pmf = q.pmf(64);
        // P(w=0) = t(0).
        assert!((pmf[0] - q.transform_real(0.0)).abs() < 1e-10);
        // Tail ratio approaches the computed decay rate (use indices where
        // the mass, ~r^j, is still far above FFT round-off).
        let r = q.tail_decay_rate().unwrap();
        let ratio = pmf[8] / pmf[7];
        assert!((ratio - r).abs() < 1e-4, "ratio {ratio} vs decay {r}");
    }

    #[test]
    fn tail_decay_rate_unit_service_closed_form() {
        // For R(z) = (1−a+az)² with a = p/2, unit service:
        // R(z) = z has roots z = 1 and z = (1−a)²/a². Decay = a²/(1−a)².
        let p = 0.5f64;
        let a = p / 2.0;
        let q = FirstStage::new(
            UniformBernoulli::square(2, p),
            ConstantService::unit(),
        )
        .unwrap();
        let want = (a / (1.0 - a)).powi(2);
        let got = q.tail_decay_rate().unwrap();
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
    }

    #[test]
    fn mm1_limit_of_geometric_service() {
        // §III-C: scale time by n; the discrete queue converges to M/M/1
        // with ρ = pk/(s·μ_cont). Check the mean against ρ/(μ(1−ρ)) as n
        // grows.
        let rho = 0.6;
        let mut prev_err = f64::INFINITY;
        for &n in &[8u32, 64, 512] {
            let mu_n = 1.0 / n as f64; // mean service n cycles
            let p_n = rho / n as f64; // keeps ρ fixed
            let q = FirstStage::new(
                PoissonArrivals::new(p_n),
                GeometricService::new(mu_n),
            )
            .unwrap();
            // In unscaled time units (divide cycles by n):
            let mean_scaled = q.mean_wait() / n as f64;
            let want = rho / (1.0 - rho); // ρ/(μ(1−ρ)) with μ = 1
            let err = (mean_scaled - want).abs();
            assert!(err < prev_err + 1e-12, "not converging at n={n}");
            prev_err = err;
        }
        assert!(prev_err < 0.01, "final error {prev_err}");
    }

    #[test]
    fn md1_limit_of_constant_service() {
        // Poisson arrivals + deterministic service ⇒ M/D/1:
        // E(w) = ρm/(2(1−ρ)), Var(w) = ρm²(4−ρ)/(12(1−ρ)²) − wait, use
        // the known Pollaczek–Khinchine moments: for M/G/1,
        // E(w) = λE[S²]/(2(1−ρ)) and
        // Var(w) = E(w)² + λE[S³]/(3(1−ρ)).
        // Our discrete queue with large m approaches this.
        let rho = 0.5;
        let m = 256u32;
        let lam = rho / m as f64;
        let q = FirstStage::new(PoissonArrivals::new(lam), ConstantService::new(m)).unwrap();
        let mf = m as f64;
        let ew = lam * mf * mf / (2.0 * (1.0 - rho));
        let vw = ew * ew + lam * mf.powi(3) / (3.0 * (1.0 - rho));
        assert!((q.mean_wait() - ew).abs() / ew < 1e-12);
        // The discrete correction is O(1/m) relative.
        assert!((q.var_wait() - vw).abs() / vw < 0.02, "{} vs {vw}", q.var_wait());
    }

    #[test]
    fn bulk_arrival_mean_closed_form() {
        // §III-A-2 with constant batch size b, unit service:
        // E(w) = (b − 1 + (1−1/k)λ) / (2(1−λ)).
        for &(k, p, b) in &[(2u32, 0.2, 2u32), (2, 0.1, 4), (4, 0.05, 8)] {
            let q = FirstStage::new(UniformBulk::new(k, k, p, b), ConstantService::unit())
                .unwrap();
            let lam = p * b as f64;
            let want =
                ((b as f64 - 1.0) + (1.0 - 1.0 / k as f64) * lam) / (2.0 * (1.0 - lam));
            assert!((q.mean_wait() - want).abs() < 1e-12, "k={k} p={p} b={b}");
        }
    }

    #[test]
    fn geometric_service_mean_closed_form() {
        // §III-B with uniform single arrivals:
        // Eq. 2 with U'' = 2(1−μ)/μ²:
        // E(w) = [R''/μ + 2λ²(1−μ)/μ²] / (2λ(1−λ/μ)).
        let (k, p, mu) = (2u32, 0.3, 0.75);
        let r = UniformBernoulli::square(k, p);
        let q = FirstStage::new(r, GeometricService::new(mu)).unwrap();
        let lam = p;
        let r2 = lam * lam * 0.5;
        let want = (r2 / mu + 2.0 * lam * lam * (1.0 - mu) / (mu * mu))
            / (2.0 * lam * (1.0 - lam / mu));
        assert!((q.mean_wait() - want).abs() < 1e-13);
    }

    #[test]
    fn delay_moments_add_service() {
        let u = MixedService::new(vec![(2, 0.5), (6, 0.5)]);
        let q = FirstStage::new(UniformBernoulli::square(2, 0.2), u.clone()).unwrap();
        assert!((q.mean_delay() - (q.mean_wait() + 4.0)).abs() < 1e-13);
        assert!((q.var_delay() - (q.var_wait() + u.variance())).abs() < 1e-13);
    }

    #[test]
    fn tabulated_arrivals_work_end_to_end() {
        // Arbitrary batch distribution: P(0)=0.5, P(1)=0.3, P(2)=0.2.
        let r = TabulatedPgf::new(vec![0.5, 0.3, 0.2]);
        let q = FirstStage::new(r, ConstantService::unit()).unwrap();
        let pmf = q.pmf(64);
        let (mean, var) = pmf_mean_var(&pmf);
        assert!((mean - q.mean_wait()).abs() < 1e-9);
        assert!((var - q.var_wait()).abs() < 1e-7);
    }

    #[test]
    fn three_moments_agree_with_wait_moments() {
        // The third-order expansion must reproduce the second-order one.
        for &(k, p, m) in &[(2u32, 0.5, 1u32), (4, 0.3, 2), (2, 0.1, 4)] {
            let q = FirstStage::new(
                UniformBernoulli::square(k, p),
                ConstantService::new(m),
            )
            .unwrap();
            let (ew, var, _) = wait_three_moments(
                q.lambda(),
                q.mean_service(),
                q.arrivals().d2(),
                q.arrivals().d3(),
                q.arrivals().d4(),
                q.service().d2(),
                q.service().d3(),
                q.service().d4(),
            );
            assert!((ew - q.mean_wait()).abs() < 1e-12, "k={k} p={p} m={m}");
            assert!((var - q.var_wait()).abs() < 1e-11, "k={k} p={p} m={m}");
        }
    }

    #[test]
    fn third_moment_matches_inverted_pmf() {
        for &(k, p, m) in &[(2u32, 0.5, 1u32), (2, 0.7, 1), (4, 0.4, 1), (2, 0.15, 3)] {
            let q = FirstStage::new(
                UniformBernoulli::square(k, p),
                ConstantService::new(m),
            )
            .unwrap();
            let pmf = q.pmf(512);
            let mean: f64 = pmf.iter().enumerate().map(|(j, &pr)| j as f64 * pr).sum();
            let mu3_pmf: f64 = pmf
                .iter()
                .enumerate()
                .map(|(j, &pr)| (j as f64 - mean).powi(3) * pr)
                .sum();
            let mu3 = q.third_central_moment();
            assert!(
                (mu3 - mu3_pmf).abs() < 1e-4 * (1.0 + mu3.abs()),
                "k={k} p={p} m={m}: {mu3} vs pmf {mu3_pmf}"
            );
        }
    }

    #[test]
    fn skewness_is_positive_and_grows_with_load() {
        // Waiting times are right-skewed; the geometric tail thickens
        // with load but skewness (normalized) actually decreases toward
        // the exponential's 2 — just check positivity and finiteness.
        for &p in &[0.2, 0.5, 0.8] {
            let q = FirstStage::new(
                UniformBernoulli::square(2, p),
                ConstantService::unit(),
            )
            .unwrap();
            let s = q.skewness_wait();
            assert!(s.is_finite() && s > 0.0, "p={p}: skew {s}");
        }
    }

    #[test]
    fn unfinished_work_relation_to_waiting() {
        // With single arrivals (no batch-mates) w = s seen at arrival;
        // by memorylessness E[w] = E[s] and Var[w] = Var[s]: check for a
        // near-single-arrival case… more robustly, for unit service and
        // k = 2 the relation E(w) = E(s) + E(batch-mate work) holds with
        // E(batch-mate work) = φ'(1) = R''/(2λ).
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.5),
            ConstantService::unit(),
        )
        .unwrap();
        let (es, _) = q.unfinished_work_moments();
        let r2 = q.arrivals().d2();
        let batch_part = r2 / (2.0 * q.lambda());
        assert!((q.mean_wait() - (es + batch_part)).abs() < 1e-13);
    }

    #[test]
    fn idle_probability_closed_form() {
        // P(s = 0) = (1−ρ)/R(U(0)); unit service ⇒ R(0) = (1 − p/2)².
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.5),
            ConstantService::unit(),
        )
        .unwrap();
        assert!((q.idle_probability() - 0.5 / 0.5625).abs() < 1e-13);
        assert!(q.idle_probability() <= 1.0);
        assert!(q.idle_probability() >= 1.0 - q.rho());
    }

    #[test]
    fn unfinished_work_pmf_is_consistent() {
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.5),
            ConstantService::unit(),
        )
        .unwrap();
        let pmf = q.unfinished_work_pmf(128);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        // P(s=0) matches the closed form Ψ(0).
        assert!((pmf[0] - q.idle_probability()).abs() < 1e-10);
        // Moments match the series expansion.
        let (mean, var) = pmf_mean_var(&pmf);
        let (es, vs) = q.unfinished_work_moments();
        assert!((mean - es).abs() < 1e-8);
        assert!((var - vs).abs() < 1e-6);
        // Overflow probability is the tail of the same pmf.
        let p4 = q.backlog_overflow_probability(4);
        let tail: f64 = 1.0 - pmf[..4].iter().sum::<f64>();
        assert!((p4 - tail).abs() < 1e-9);
        // ...and decreases in the buffer size.
        assert!(q.backlog_overflow_probability(8) < p4);
    }

    #[test]
    fn wait_cdf_and_quantile_consistent_with_pmf() {
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.7),
            ConstantService::unit(),
        )
        .unwrap();
        let pmf = q.pmf(64);
        let cdf3: f64 = pmf[..4].iter().sum();
        assert!((q.wait_cdf(3) - cdf3).abs() < 1e-10);
        for &level in &[0.5, 0.9, 0.99] {
            let v = q.wait_quantile(level);
            assert!(q.wait_cdf(v) >= level - 1e-9);
            if v > 0 {
                assert!(q.wait_cdf(v - 1) < level);
            }
        }
    }

    #[test]
    fn wait_cdf_table_matches_pointwise_cdf() {
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.5),
            ConstantService::unit(),
        )
        .unwrap();
        let table = q.wait_cdf_table(12);
        assert_eq!(table.len(), 12);
        for (v, &c) in table.iter().enumerate() {
            assert!((c - q.wait_cdf(v as u64)).abs() < 1e-12, "v={v}");
            assert!((0.0..=1.0).contains(&c));
        }
        // Monotone nondecreasing, approaching 1.
        assert!(table.windows(2).all(|w| w[1] >= w[0]));
        assert!(table[11] > 0.999);
    }

    #[test]
    fn delay_pmf_is_shifted_for_constant_service() {
        // With deterministic service m the delay pmf is the waiting pmf
        // shifted by m.
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.2),
            ConstantService::new(3),
        )
        .unwrap();
        let wait = q.pmf(48);
        let delay = q.delay_pmf(48);
        for j in 0..45 {
            let want = if j >= 3 { wait[j - 3] } else { 0.0 };
            assert!((delay[j] - want).abs() < 1e-10, "j={j}");
        }
    }

    #[test]
    fn delay_pmf_moments_match_mean_delay() {
        let q = FirstStage::new(
            UniformBernoulli::square(2, 0.2),
            MixedService::new(vec![(1, 0.5), (4, 0.5)]),
        )
        .unwrap();
        let delay = q.delay_pmf(96);
        let (mean, var) = pmf_mean_var(&delay);
        assert!((mean - q.mean_delay()).abs() < 1e-6);
        assert!((var - q.var_delay()).abs() < 1e-4);
    }

    #[test]
    fn heavier_load_means_longer_waits() {
        let mk = |p: f64| {
            FirstStage::new(UniformBernoulli::square(2, p), ConstantService::unit())
                .unwrap()
                .mean_wait()
        };
        let mut prev = 0.0;
        for &p in &[0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let w = mk(p);
            assert!(w > prev);
            prev = w;
        }
    }

    #[test]
    fn error_display() {
        let e = ModelError::Unstable { rho: 1.25 };
        assert!(e.to_string().contains("unstable"));
        assert!(ModelError::ZeroTraffic.to_string().contains("zero"));
    }
}
