//! # banyan-core
//!
//! Analytical models from Kruskal, Snir & Weiss, *The Distribution of
//! Waiting Times in Clocked Multistage Interconnection Networks* (IEEE
//! Trans. Computers 37(11), 1988; ICPP 1986). The paper analyzes the
//! random delay of a message traversing a buffered, multistage,
//! packet-switching banyan network of clocked `k × s` output-queued
//! switches.
//!
//! ## Layout
//!
//! * [`gf`] — the [`gf::Pgf`] trait: probability generating functions
//!   with factorial moments, the paper's working representation.
//! * [`arrivals`] / [`service`] — the §III traffic and service classes
//!   (uniform Bernoulli, bulk, nonuniform favorite-output, Poisson;
//!   constant, geometric, mixed-size service).
//! * [`first_stage`] — **Theorem 1**: the exact waiting-time transform at
//!   the first stage, its mean (Eq. 2), variance (Eq. 3), full pmf (FFT
//!   inversion on the unit circle), and geometric tail rate.
//! * [`models`] — named scenario constructors and the printed closed
//!   forms (Eqs. 6–9) used as cross-checks.
//! * [`later_stages`] — the §IV spatial-steady-state approximations
//!   (Eqs. 10–16 plus the multi-size and nonuniform variants), with all
//!   interpolation constants exposed in
//!   [`later_stages::StageConstants`].
//! * [`total_delay`] — §V: total waiting time through `n` stages, the
//!   geometric covariance model, and the gamma approximation of the full
//!   distribution (Figs. 3–8).
//! * [`calibrate`] — re-fits the interpolation constants from simulation,
//!   reproducing the paper's own methodology.
//!
//! ## Quick example
//!
//! ```
//! use banyan_core::models::uniform_queue;
//! use banyan_core::total_delay::TotalWaiting;
//!
//! // First stage of a 2×2-switch network at load p = 0.5, 1-cycle messages.
//! let q = uniform_queue(2, 0.5, 1).unwrap();
//! assert!((q.mean_wait() - 0.25).abs() < 1e-12);   // paper Eq. 6
//! assert!((q.var_wait() - 0.25).abs() < 1e-12);    // paper Eq. 7
//!
//! // Total waiting time through 12 stages, with its gamma approximation.
//! let total = TotalWaiting::new(2, 12, 0.5, 1);
//! let gamma = total.gamma().unwrap();
//! assert!((gamma.mean() - total.mean_total()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod calibrate;
pub mod design;
pub mod first_stage;
pub mod gf;
pub mod later_stages;
pub mod limits;
pub mod models;
pub mod service;
pub mod total_delay;

pub use arrivals::{NonuniformFavorite, PoissonArrivals, UniformBernoulli, UniformBulk};
pub use first_stage::{wait_moments, FirstStage, ModelError};
pub use gf::{Pgf, TabulatedPgf};
pub use later_stages::StageConstants;
pub use service::{ConstantService, GeometricService, MixedService};
pub use total_delay::{covariance_params, TotalWaiting};
