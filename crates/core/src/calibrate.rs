//! Fitting the §IV interpolation constants from simulation output.
//!
//! The paper's methodology is explicitly empirical: "We use simulations to
//! estimate r(1/2), and then simply linearly interpolate" (§IV), following
//! Burman & Smith's light/heavy-traffic interpolation. This module
//! implements those fits so the whole calibration loop — simulate, fit,
//! predict — is reproducible, and so the constants lost to the illegible
//! scan can be re-derived the same way the authors derived them.

use crate::later_stages::StageConstants;

/// One observation for the mean-ratio fit: a simulated deep-stage mean
/// `w_inf` against the exact first-stage mean `w1` at load `p` on `k × k`
/// switches.
#[derive(Clone, Copy, Debug)]
pub struct MeanRatioPoint {
    /// Input load.
    pub p: f64,
    /// Switch size.
    pub k: u32,
    /// Exact first-stage mean waiting time.
    pub w1: f64,
    /// Simulated limiting (deep-stage) mean waiting time.
    pub w_inf: f64,
}

/// Least-squares fit of `mean_coeff` in `r(p, k) = 1 + mean_coeff·p/k`:
/// regression through the origin of `(w_inf/w1 − 1)` on `p/k`.
///
/// Returns `None` when no usable points are provided.
pub fn fit_mean_coeff(points: &[MeanRatioPoint]) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for pt in points {
        if pt.w1 <= 0.0 {
            continue;
        }
        let x = pt.p / pt.k as f64;
        let y = pt.w_inf / pt.w1 - 1.0;
        num += x * y;
        den += x * x;
    }
    (den > 0.0).then(|| num / den)
}

/// One observation for the variance-multiplier fit (unit-size messages).
#[derive(Clone, Copy, Debug)]
pub struct VarRatioPoint {
    /// Input load.
    pub p: f64,
    /// Switch size.
    pub k: u32,
    /// Exact first-stage waiting-time variance.
    pub v1: f64,
    /// Simulated limiting (deep-stage) waiting-time variance.
    pub v_inf: f64,
}

/// Least-squares fit of `(var_p1, var_p2)` in
/// `v_inf/v1 = 1 + (var_p1·p + var_p2·p²)/k` — a 2-parameter linear
/// regression through the origin with basis `(p/k, p²/k)`.
///
/// Returns `None` when the normal equations are singular (e.g. all points
/// share one `p`, making the two basis vectors collinear).
pub fn fit_var_coeffs(points: &[VarRatioPoint]) -> Option<(f64, f64)> {
    let (mut s11, mut s12, mut s22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for pt in points {
        if pt.v1 <= 0.0 {
            continue;
        }
        let x1 = pt.p / pt.k as f64;
        let x2 = pt.p * pt.p / pt.k as f64;
        let y = pt.v_inf / pt.v1 - 1.0;
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        b1 += x1 * y;
        b2 += x2 * y;
    }
    let det = s11 * s22 - s12 * s12;
    if det.abs() < 1e-12 * (s11 * s22).max(1e-300) {
        return None;
    }
    Some(((s22 * b1 - s12 * b2) / det, (s11 * b2 - s12 * b1) / det))
}

/// Fits the geometric stage-approach rate `α` from a profile of simulated
/// per-stage means `w_1, w_2, …` and the limit `w_inf`: the gaps
/// `g_i = w_inf − w_i` satisfy `g_i ∝ α^{i−1}`, so `ln g_i` is linear in
/// `i` with slope `ln α`.
///
/// Returns `None` with fewer than two positive gaps.
pub fn fit_alpha(stage_means: &[f64], w_inf: f64) -> Option<f64> {
    let pts: Vec<(f64, f64)> = stage_means
        .iter()
        .enumerate()
        .filter_map(|(idx, &w)| {
            let gap = w_inf - w;
            (gap > 0.0).then(|| (idx as f64, gap.ln()))
        })
        .collect();
    if pts.len() < 2 {
        return None;
    }
    // Simple least squares on (i, ln g).
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let alpha = slope.exp();
    (alpha > 0.0 && alpha < 1.0).then_some(alpha)
}

/// Fits a slope `B` of a ratio that is linear in a covariate `x` with a
/// known intercept: `y(x) ≈ intercept + B·x` (used for the §IV-D
/// nonuniform-traffic multipliers, `x = q`).
pub fn fit_slope_with_intercept(points: &[(f64, f64)], intercept: f64) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for &(x, y) in points {
        num += x * (y - intercept);
        den += x * x;
    }
    (den > 0.0).then(|| num / den)
}

/// Convenience: builds a [`StageConstants`] from fitted pieces, keeping
/// paper defaults for anything not supplied.
#[derive(Clone, Copy, Debug, Default)]
pub struct CalibrationResult {
    /// Fitted `mean_coeff`, if a fit was performed.
    pub mean_coeff: Option<f64>,
    /// Fitted `(var_p1, var_p2)`.
    pub var_coeffs: Option<(f64, f64)>,
    /// Fitted stage-approach rate `α`.
    pub alpha: Option<f64>,
    /// Fitted nonuniform mean slope.
    pub nonuni_mean_slope: Option<f64>,
    /// Fitted nonuniform variance slope.
    pub nonuni_var_slope: Option<f64>,
}

impl CalibrationResult {
    /// Merges the fitted constants over the paper defaults.
    pub fn into_constants(self) -> StageConstants {
        let mut c = StageConstants::default();
        if let Some(a) = self.mean_coeff {
            c.mean_coeff = a;
        }
        if let Some((p1, p2)) = self.var_coeffs {
            c.var_p1 = p1;
            c.var_p2 = p2;
        }
        if let Some(al) = self.alpha {
            c.alpha = al;
        }
        if let Some(s) = self.nonuni_mean_slope {
            c.nonuni_mean_slope = s;
        }
        if let Some(s) = self.nonuni_var_slope {
            c.nonuni_var_slope = s;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_coeff_recovers_exact_relation() {
        // Synthesize points from r = 1 + 0.8·p/k exactly.
        let pts: Vec<MeanRatioPoint> = [(0.2, 2u32), (0.5, 2), (0.8, 2), (0.5, 4), (0.5, 8)]
            .iter()
            .map(|&(p, k)| {
                let w1 = 0.25; // arbitrary positive anchor
                MeanRatioPoint {
                    p,
                    k,
                    w1,
                    w_inf: (1.0 + 0.8 * p / k as f64) * w1,
                }
            })
            .collect();
        let c = fit_mean_coeff(&pts).unwrap();
        assert!((c - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mean_coeff_handles_noise_symmetrically() {
        let mut pts = Vec::new();
        for (i, &(p, k)) in [(0.2, 2u32), (0.5, 2), (0.8, 2)].iter().enumerate() {
            let w1 = 1.0;
            let noise = if i % 2 == 0 { 1.01 } else { 0.99 };
            pts.push(MeanRatioPoint {
                p,
                k,
                w1,
                w_inf: (1.0 + 0.8 * p / k as f64) * w1 * noise,
            });
        }
        let c = fit_mean_coeff(&pts).unwrap();
        assert!((c - 0.8).abs() < 0.15);
    }

    #[test]
    fn mean_coeff_empty_is_none() {
        assert!(fit_mean_coeff(&[]).is_none());
        let degenerate = [MeanRatioPoint {
            p: 0.5,
            k: 2,
            w1: 0.0,
            w_inf: 0.3,
        }];
        assert!(fit_mean_coeff(&degenerate).is_none());
    }

    #[test]
    fn var_coeffs_recover_exact_relation() {
        let (c1, c2) = (1.25, 0.75);
        let pts: Vec<VarRatioPoint> = [(0.2, 2u32), (0.5, 2), (0.8, 2), (0.5, 4)]
            .iter()
            .map(|&(p, k)| VarRatioPoint {
                p,
                k,
                v1: 0.4,
                v_inf: (1.0 + (c1 * p + c2 * p * p) / k as f64) * 0.4,
            })
            .collect();
        let (f1, f2) = fit_var_coeffs(&pts).unwrap();
        assert!((f1 - c1).abs() < 1e-10);
        assert!((f2 - c2).abs() < 1e-10);
    }

    #[test]
    fn var_coeffs_singular_when_single_p() {
        let pts: Vec<VarRatioPoint> = (0..4)
            .map(|_| VarRatioPoint {
                p: 0.5,
                k: 2,
                v1: 1.0,
                v_inf: 1.3,
            })
            .collect();
        assert!(fit_var_coeffs(&pts).is_none());
    }

    #[test]
    fn alpha_recovered_from_geometric_profile() {
        let alpha: f64 = 0.4;
        let w_inf = 0.3;
        let w1 = 0.25;
        let means: Vec<f64> = (1..=8)
            .map(|i| w_inf - (w_inf - w1) * alpha.powi(i - 1))
            .collect();
        let fitted = fit_alpha(&means, w_inf).unwrap();
        assert!((fitted - alpha).abs() < 1e-10);
    }

    #[test]
    fn alpha_needs_two_gaps() {
        assert!(fit_alpha(&[0.25], 0.3).is_none());
        assert!(fit_alpha(&[0.31, 0.32], 0.3).is_none(), "no positive gaps");
    }

    #[test]
    fn slope_fit_with_intercept() {
        let pts: Vec<(f64, f64)> = [0.0, 0.1, 0.2, 0.3]
            .iter()
            .map(|&q| (q, 1.2 - 0.75 * q))
            .collect();
        let b = fit_slope_with_intercept(&pts, 1.2).unwrap();
        assert!((b + 0.75).abs() < 1e-12);
        assert!(fit_slope_with_intercept(&[(0.0, 1.2)], 1.2).is_none());
    }

    #[test]
    fn calibration_result_merges_over_defaults() {
        let r = CalibrationResult {
            mean_coeff: Some(0.9),
            var_coeffs: None,
            alpha: Some(0.35),
            nonuni_mean_slope: None,
            nonuni_var_slope: None,
        };
        let c = r.into_constants();
        assert_eq!(c.mean_coeff, 0.9);
        assert_eq!(c.alpha, 0.35);
        assert_eq!(c.var_p1, StageConstants::default().var_p1);
    }
}
