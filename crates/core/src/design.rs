//! Network design-space exploration — the use the formulas were built
//! for.
//!
//! "In order to study the multitude of options available in actually
//! building a machine, it is extremely useful to have formulas that
//! approximate the performance of an interconnection network. In fact,
//! formulas derived in a previous paper … have been heavily used in
//! designing both the NYU Ultracomputer and RP3" (§I).
//!
//! Given a port count `N`, this module enumerates the `(k, n)` switch
//! options with `k^n = N`, evaluates each with the §IV/§V models, and
//! ranks them against a latency objective. Percentile objectives use the
//! gamma approximation of the total waiting time — the variance-aware
//! sizing the paper argues for ("it is not sufficient to have a low
//! expected memory access time; high variance will impede performance").

use crate::later_stages::StageConstants;
use crate::total_delay::TotalWaiting;

/// One candidate network organization for a given port count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignPoint {
    /// Switch arity.
    pub k: u32,
    /// Stage count (`k^n = ports`).
    pub stages: u32,
    /// Mean total delay (waiting + pipelined service) at the design load.
    pub mean_delay: f64,
    /// Standard deviation of the total waiting time.
    pub std_waiting: f64,
    /// The objective percentile of the total delay (gamma model).
    pub delay_percentile: f64,
    /// Largest load `p` (within 1e-3) whose objective percentile stays
    /// under the budget, if a budget was given.
    pub max_load: Option<f64>,
}

/// Objective for ranking design points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objective {
    /// Design load (messages per port per cycle).
    pub p: f64,
    /// Constant message size.
    pub m: u32,
    /// Percentile of the total delay to optimize (e.g. 0.99).
    pub percentile: f64,
    /// Optional delay budget in cycles for the max-load search.
    pub delay_budget: Option<f64>,
}

impl Objective {
    /// A 99th-percentile objective at the given load, unit messages.
    pub fn p99(p: f64) -> Self {
        Objective {
            p,
            m: 1,
            percentile: 0.99,
            delay_budget: None,
        }
    }
}

/// Enumerates all `(k, n)` with `k^n = ports`, `k >= 2`, `n >= 1`.
///
/// Returns an empty vector when `ports` is not a nontrivial perfect
/// power (i.e. `ports < 2`).
pub fn factorizations(ports: u64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    if ports < 2 {
        return out;
    }
    for k in 2..=ports.min(1 << 16) {
        let mut acc = 1u64;
        let mut n = 0u32;
        while acc < ports {
            match acc.checked_mul(k) {
                Some(next) => {
                    acc = next;
                    n += 1;
                }
                None => break,
            }
        }
        if acc == ports && n >= 1 {
            out.push((k as u32, n));
        }
    }
    out
}

/// Evaluates every organization of an `N`-port network against the
/// objective, sorted by the objective percentile (best first).
///
/// Options whose load is unstable (`ρ >= 1`) or that exceed the
/// simulator/model limits are skipped. Uses the supplied interpolation
/// constants (pass `StageConstants::default()` for the paper's).
pub fn explore(
    ports: u64,
    objective: Objective,
    constants: StageConstants,
) -> Vec<DesignPoint> {
    assert!(
        objective.percentile > 0.0 && objective.percentile < 1.0,
        "percentile must be in (0,1)"
    );
    let mut points: Vec<DesignPoint> = factorizations(ports)
        .into_iter()
        .filter(|&(_, n)| n <= 16)
        .filter_map(|(k, n)| {
            let rho = objective.m as f64 * objective.p;
            if rho >= 1.0 {
                return None;
            }
            let model =
                TotalWaiting::with_constants(k, n, objective.p, objective.m, constants);
            let delay_percentile = model.delay_quantile(objective.percentile);
            let max_load = objective.delay_budget.map(|budget| {
                let mut best = 0.0;
                let mut p = 0.001;
                while objective.m as f64 * p < 0.999 {
                    let trial =
                        TotalWaiting::with_constants(k, n, p, objective.m, constants);
                    if trial.delay_quantile(objective.percentile) <= budget {
                        best = p;
                    }
                    p += 0.001;
                }
                best
            });
            Some(DesignPoint {
                k,
                stages: n,
                mean_delay: model.mean_total_delay(),
                std_waiting: model.var_total().sqrt(),
                delay_percentile,
                max_load,
            })
        })
        .collect();
    points.sort_by(|a, b| {
        a.delay_percentile
            .partial_cmp(&b.delay_percentile)
            .expect("finite objective values")
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_of_4096() {
        let mut f = factorizations(4096);
        f.sort();
        assert_eq!(f, vec![(2, 12), (4, 6), (8, 4), (16, 3), (64, 2), (4096, 1)]);
    }

    #[test]
    fn factorizations_of_prime_is_trivial() {
        assert_eq!(factorizations(7), vec![(7, 1)]);
        assert!(factorizations(1).is_empty());
        assert!(factorizations(0).is_empty());
    }

    #[test]
    fn factorizations_of_non_power() {
        let f = factorizations(12);
        assert_eq!(f, vec![(12, 1)]); // 12 = 12¹ only (not a perfect power)
    }

    #[test]
    fn explore_ranks_options() {
        let pts = explore(4096, Objective::p99(0.5), StageConstants::default());
        assert!(pts.len() >= 3);
        // Sorted ascending by p99 delay.
        for w in pts.windows(2) {
            assert!(w[0].delay_percentile <= w[1].delay_percentile);
        }
        // At moderate load, fewer stages of wider switches win on
        // percentile delay (shorter pipeline dominates the extra
        // contention) — the classic Ultracomputer/RP3 trade-off.
        let best = &pts[0];
        let deepest = pts.iter().find(|p| p.k == 2).unwrap();
        assert!(best.stages <= deepest.stages);
    }

    #[test]
    fn explore_respects_budget() {
        let obj = Objective {
            p: 0.5,
            m: 1,
            percentile: 0.99,
            delay_budget: Some(24.0),
        };
        let pts = explore(4096, obj, StageConstants::default());
        for p in &pts {
            let max = p.max_load.expect("budget given");
            assert!((0.0..1.0).contains(&max));
            if max > 0.0 {
                // At the reported max load the budget must indeed hold.
                let m = TotalWaiting::new(p.k, p.stages, max, 1);
                assert!(m.delay_quantile(0.99) <= 24.0 + 1e-6);
            }
        }
    }

    #[test]
    fn unstable_objective_yields_nothing() {
        let obj = Objective {
            p: 0.3,
            m: 4,
            percentile: 0.99,
            delay_budget: None,
        };
        assert!(explore(64, obj, StageConstants::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        explore(64, Objective { p: 0.5, m: 1, percentile: 1.0, delay_budget: None },
            StageConstants::default());
    }
}
