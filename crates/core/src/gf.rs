//! Probability generating functions (the paper's working currency).
//!
//! Section II of the paper describes first-stage traffic by two pgfs:
//!
//! * `R(z) = Σ f_j z^j` — the number of messages arriving at an output
//!   queue in one cycle (`f_j` = probability of a batch of `j`),
//! * `U(z) = Σ g_j z^j` — the service time of one message in cycles.
//!
//! Everything downstream (Theorem 1, Eqs. 2–3, the §III closed forms)
//! consumes only `R`, `U`, their values on `[0, 1]` / the complex unit
//! disk, and their first three derivatives at `z = 1` (the factorial
//! moments). [`Pgf`] captures exactly that interface.

use banyan_numerics::Complex;

/// A probability generating function `G(z) = Σ_j P(X = j) z^j` of a
/// nonnegative integer random variable, exposing values and the first
/// three derivatives at `z = 1`.
pub trait Pgf {
    /// `G(z)` for real `z` in `[0, 1]` (implementations are typically
    /// valid on a larger disk; callers may rely on correctness slightly
    /// beyond 1 for tail analysis when [`Pgf::radius_hint`] allows).
    fn eval(&self, z: f64) -> f64;

    /// `G(z)` for complex `z` on the closed unit disk.
    fn eval_complex(&self, z: Complex) -> Complex;

    /// First derivative at 1: the mean `E[X]`.
    fn d1(&self) -> f64;

    /// Second derivative at 1: `E[X(X−1)]`.
    fn d2(&self) -> f64;

    /// Third derivative at 1: `E[X(X−1)(X−2)]`.
    fn d3(&self) -> f64;

    /// Fourth derivative at 1: `E[X(X−1)(X−2)(X−3)]`. Needed only for
    /// third-moment (skewness) analysis of the waiting time.
    fn d4(&self) -> f64;

    /// Mean `E[X]` (alias of [`Pgf::d1`]).
    fn mean(&self) -> f64 {
        self.d1()
    }

    /// Variance `E[X²] − (E[X])²`, from the factorial moments.
    fn variance(&self) -> f64 {
        let m = self.d1();
        self.d2() + m - m * m
    }

    /// A radius `ζ > 1` up to which [`Pgf::eval`] remains valid, used by
    /// tail-exponent searches. Defaults to `+∞` for entire functions
    /// (polynomial pgfs); distributions with geometric tails override it.
    fn radius_hint(&self) -> f64 {
        f64::INFINITY
    }
}

/// A pgf given explicitly by a (finite) pmf `pmf[j] = P(X = j)`.
///
/// The workhorse for tests and for exotic traffic classes not covered by
/// the named constructors.
#[derive(Clone, Debug)]
pub struct TabulatedPgf {
    pmf: Vec<f64>,
}

impl TabulatedPgf {
    /// Creates a pgf from a pmf. The probabilities must be nonnegative
    /// and sum to 1 within `1e-9`.
    ///
    /// # Panics
    /// Panics on negative entries or a total mass away from 1.
    pub fn new(pmf: Vec<f64>) -> Self {
        assert!(
            pmf.iter().all(|&p| p >= 0.0),
            "pmf entries must be nonnegative"
        );
        let total: f64 = banyan_numerics::kahan_sum(&pmf);
        assert!(
            (total - 1.0).abs() < 1e-9,
            "pmf must sum to 1, got {total}"
        );
        TabulatedPgf { pmf }
    }

    /// The underlying pmf.
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }
}

impl Pgf for TabulatedPgf {
    fn eval(&self, z: f64) -> f64 {
        self.pmf.iter().rev().fold(0.0, |acc, &p| acc * z + p)
    }

    fn eval_complex(&self, z: Complex) -> Complex {
        self.pmf
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &p| acc * z + p)
    }

    fn d1(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| j as f64 * p)
            .sum()
    }

    fn d2(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| (j * j.saturating_sub(1)) as f64 * p)
            .sum()
    }

    fn d3(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| {
                if j >= 3 {
                    (j * (j - 1) * (j - 2)) as f64 * p
                } else {
                    0.0
                }
            })
            .sum()
    }

    fn d4(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| {
                if j >= 4 {
                    (j * (j - 1) * (j - 2) * (j - 3)) as f64 * p
                } else {
                    0.0
                }
            })
            .sum()
    }
}

/// Recovers the pmf of any [`Pgf`] numerically: samples `G` at the
/// roots of unity and inverts with an FFT. Exact (to round-off) for
/// distributions supported on `0..len` once the FFT size exceeds the
/// support; for infinite-support distributions the aliased tail mass is
/// folded in, so pick `len` comfortably past the effective support.
pub fn pgf_to_pmf<G: Pgf + ?Sized>(g: &G, len: usize) -> Vec<f64> {
    let n = banyan_numerics::next_pow2(2 * len.max(16));
    let samples: Vec<Complex> = (0..n)
        .map(|l| {
            let theta = 2.0 * std::f64::consts::PI * l as f64 / n as f64;
            g.eval_complex(Complex::cis(theta))
        })
        .collect();
    let mut coeffs = banyan_numerics::fft::coefficients_from_unit_circle(&samples);
    coeffs.truncate(len);
    for c in coeffs.iter_mut() {
        if *c < 0.0 && *c > -1e-9 {
            *c = 0.0;
        }
    }
    coeffs
}

/// Numerical cross-check: estimates `(d1, d2, d3)` of any [`Pgf`] by
/// finite differences at `z = 1`.
///
/// Used throughout the test suites to confirm that hand-derived moment
/// formulas match the implementations' `eval`.
pub fn numeric_derivatives<G: Pgf + ?Sized>(g: &G, h: f64) -> (f64, f64, f64) {
    banyan_numerics::series::finite_derivatives(|z| g.eval(z), 1.0, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulated_pgf_basic_properties() {
        let g = TabulatedPgf::new(vec![0.2, 0.3, 0.5]);
        assert!((g.eval(1.0) - 1.0).abs() < 1e-15);
        assert!((g.eval(0.0) - 0.2).abs() < 1e-15);
        assert!((g.d1() - (0.3 + 1.0)).abs() < 1e-15);
        // E X(X-1) = 2·0.5 = 1
        assert!((g.d2() - 1.0).abs() < 1e-15);
        assert_eq!(g.d3(), 0.0);
        // Var = EX² − (EX)²; EX² = 0.3 + 4·0.5 = 2.3; EX = 1.3.
        assert!((g.variance() - (2.3 - 1.69)).abs() < 1e-14);
    }

    #[test]
    fn tabulated_matches_numeric_derivatives() {
        let g = TabulatedPgf::new(vec![0.1, 0.2, 0.3, 0.25, 0.15]);
        let (d1, d2, d3) = numeric_derivatives(&g, 1e-3);
        assert!((d1 - g.d1()).abs() < 1e-8);
        assert!((d2 - g.d2()).abs() < 1e-6);
        assert!((d3 - g.d3()).abs() < 1e-4);
    }

    #[test]
    fn complex_eval_agrees_on_real_axis() {
        let g = TabulatedPgf::new(vec![0.5, 0.25, 0.25]);
        for &x in &[0.0, 0.3, 0.9, 1.0] {
            let zc = g.eval_complex(Complex::from_real(x));
            assert!((zc.re - g.eval(x)).abs() < 1e-14);
            assert!(zc.im.abs() < 1e-14);
        }
    }

    #[test]
    fn pgf_to_pmf_round_trips_tabulated() {
        let pmf = vec![0.1, 0.0, 0.45, 0.25, 0.2];
        let g = TabulatedPgf::new(pmf.clone());
        let got = pgf_to_pmf(&g, 8);
        for (j, &p) in pmf.iter().enumerate() {
            assert!((got[j] - p).abs() < 1e-12, "coef {j}");
        }
        for &p in &got[pmf.len()..] {
            assert!(p.abs() < 1e-12);
        }
    }

    #[test]
    fn pgf_to_pmf_geometric_service() {
        use crate::service::GeometricService;
        let g = GeometricService::new(0.5);
        let got = pgf_to_pmf(&g, 20);
        for (j, &gj) in got.iter().enumerate().take(15).skip(1) {
            let want = 0.5f64.powi(j as i32);
            assert!((gj - want).abs() < 1e-10, "j={j}");
        }
        assert!(got[0].abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn non_normalized_pmf_rejected() {
        TabulatedPgf::new(vec![0.5, 0.4]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_pmf_rejected() {
        TabulatedPgf::new(vec![1.5, -0.5]);
    }
}
