//! Service-time distributions (§III-A/B/D of the paper).
//!
//! Service time is the number of cycles an output port needs to forward
//! one message; it is always at least 1. "Constant service time is usually
//! the appropriate assumption for interconnection networks realized with
//! synchronous logic" (§I), but the analysis is fully general, so we also
//! provide the geometric distribution (§III-B, whose continuous limit is
//! M/M/1) and finite mixtures of constant sizes (§III-D-2, e.g. short read
//! requests mixed with long writes).

use crate::gf::Pgf;
use banyan_numerics::Complex;

/// Constant (deterministic) service of `m >= 1` cycles: `U(z) = z^m`
/// (§III-D-1).
#[derive(Clone, Copy, Debug)]
pub struct ConstantService {
    m: u32,
}

impl ConstantService {
    /// Creates a deterministic service time of `m >= 1` cycles.
    pub fn new(m: u32) -> Self {
        assert!(m >= 1, "service time must be at least one cycle");
        ConstantService { m }
    }

    /// Unit service — every message forwarded in one cycle (§III-A).
    pub fn unit() -> Self {
        ConstantService { m: 1 }
    }

    /// The service time in cycles.
    pub fn cycles(&self) -> u32 {
        self.m
    }
}

impl Pgf for ConstantService {
    fn eval(&self, z: f64) -> f64 {
        z.powi(self.m as i32)
    }

    fn eval_complex(&self, z: Complex) -> Complex {
        z.powi(self.m as i32)
    }

    fn d1(&self) -> f64 {
        self.m as f64
    }

    fn d2(&self) -> f64 {
        let m = self.m as f64;
        m * (m - 1.0)
    }

    fn d3(&self) -> f64 {
        let m = self.m as f64;
        m * (m - 1.0) * (m - 2.0)
    }

    fn d4(&self) -> f64 {
        let m = self.m as f64;
        m * (m - 1.0) * (m - 2.0) * (m - 3.0)
    }
}

/// Geometric service (§III-B): `P(S = j) = μ(1−μ)^{j−1}`, `j >= 1`.
///
/// ```text
/// U(z) = μz / (1 − (1−μ)z),   mean 1/μ.
/// ```
#[derive(Clone, Copy, Debug)]
pub struct GeometricService {
    mu: f64,
}

impl GeometricService {
    /// Creates a geometric service distribution with success probability
    /// `mu ∈ (0, 1]` (mean `1/mu`).
    pub fn new(mu: f64) -> Self {
        assert!(
            mu > 0.0 && mu <= 1.0,
            "μ must be in (0, 1], got {mu}"
        );
        GeometricService { mu }
    }

    /// Success probability per cycle.
    pub fn mu(&self) -> f64 {
        self.mu
    }
}

impl Pgf for GeometricService {
    fn eval(&self, z: f64) -> f64 {
        self.mu * z / (1.0 - (1.0 - self.mu) * z)
    }

    fn eval_complex(&self, z: Complex) -> Complex {
        z * self.mu / (Complex::ONE - z * (1.0 - self.mu))
    }

    fn d1(&self) -> f64 {
        1.0 / self.mu
    }

    fn d2(&self) -> f64 {
        2.0 * (1.0 - self.mu) / (self.mu * self.mu)
    }

    fn d3(&self) -> f64 {
        6.0 * (1.0 - self.mu).powi(2) / self.mu.powi(3)
    }

    fn d4(&self) -> f64 {
        24.0 * (1.0 - self.mu).powi(3) / self.mu.powi(4)
    }

    fn radius_hint(&self) -> f64 {
        if self.mu == 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - self.mu)
        }
    }
}

/// Finite mixture of constant service times (§III-D-2): size `m_i` with
/// probability `g_i`, e.g. "read requests are likely to have different
/// sizes than write requests".
#[derive(Clone, Debug)]
pub struct MixedService {
    sizes: Vec<(u32, f64)>,
}

impl MixedService {
    /// Creates a mixture from `(size, probability)` pairs. Sizes must be
    /// `>= 1`, probabilities nonnegative and summing to 1 within `1e-9`.
    pub fn new(sizes: Vec<(u32, f64)>) -> Self {
        assert!(!sizes.is_empty(), "mixture must have at least one size");
        assert!(
            sizes.iter().all(|&(m, _)| m >= 1),
            "service times must be at least one cycle"
        );
        assert!(
            sizes.iter().all(|&(_, g)| g >= 0.0),
            "mixture weights must be nonnegative"
        );
        let total: f64 = sizes.iter().map(|&(_, g)| g).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "mixture weights must sum to 1, got {total}"
        );
        MixedService { sizes }
    }

    /// The `(size, probability)` pairs.
    pub fn sizes(&self) -> &[(u32, f64)] {
        &self.sizes
    }
}

impl Pgf for MixedService {
    fn eval(&self, z: f64) -> f64 {
        self.sizes
            .iter()
            .map(|&(m, g)| g * z.powi(m as i32))
            .sum()
    }

    fn eval_complex(&self, z: Complex) -> Complex {
        self.sizes
            .iter()
            .map(|&(m, g)| z.powi(m as i32) * g)
            .sum()
    }

    fn d1(&self) -> f64 {
        self.sizes.iter().map(|&(m, g)| m as f64 * g).sum()
    }

    fn d2(&self) -> f64 {
        self.sizes
            .iter()
            .map(|&(m, g)| {
                let m = m as f64;
                m * (m - 1.0) * g
            })
            .sum()
    }

    fn d3(&self) -> f64 {
        self.sizes
            .iter()
            .map(|&(m, g)| {
                let m = m as f64;
                m * (m - 1.0) * (m - 2.0) * g
            })
            .sum()
    }

    fn d4(&self) -> f64 {
        self.sizes
            .iter()
            .map(|&(m, g)| {
                let m = m as f64;
                m * (m - 1.0) * (m - 2.0) * (m - 3.0) * g
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf::numeric_derivatives;

    #[test]
    fn constant_service_moments() {
        let u = ConstantService::new(4);
        assert_eq!(u.d1(), 4.0);
        assert_eq!(u.d2(), 12.0);
        assert_eq!(u.d3(), 24.0);
        assert_eq!(u.variance(), 0.0);
        let (n1, n2, n3) = numeric_derivatives(&u, 1e-3);
        assert!((n1 - 4.0).abs() < 1e-8);
        assert!((n2 - 12.0).abs() < 1e-6);
        assert!((n3 - 24.0).abs() < 1e-3);
    }

    #[test]
    fn unit_service_is_identity_pgf() {
        let u = ConstantService::unit();
        for &z in &[0.0, 0.3, 1.0] {
            assert_eq!(u.eval(z), z);
        }
        assert_eq!(u.d2(), 0.0);
        assert_eq!(u.d3(), 0.0);
    }

    #[test]
    fn geometric_moments_match_numeric() {
        for &mu in &[0.25, 0.5, 0.9, 1.0] {
            let u = GeometricService::new(mu);
            let (n1, n2, n3) = numeric_derivatives(&u, 1e-4);
            assert!((n1 - u.d1()).abs() < 1e-6, "μ={mu}");
            assert!((n2 - u.d2()).abs() < 1e-3, "μ={mu}");
            assert!((n3 - u.d3()).abs() < 0.5, "μ={mu}");
            assert!((u.eval(1.0) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn geometric_mu_one_is_unit_service() {
        let g = GeometricService::new(1.0);
        let u = ConstantService::unit();
        for &z in &[0.0, 0.5, 1.0] {
            assert!((g.eval(z) - u.eval(z)).abs() < 1e-15);
        }
        assert_eq!(g.d1(), 1.0);
        assert_eq!(g.d2(), 0.0);
        assert_eq!(g.radius_hint(), f64::INFINITY);
    }

    #[test]
    fn geometric_variance_closed_form() {
        // Var = (1−μ)/μ².
        let mu = 0.4;
        let g = GeometricService::new(mu);
        assert!((g.variance() - (1.0 - mu) / (mu * mu)).abs() < 1e-12);
    }

    #[test]
    fn geometric_pgf_matches_series() {
        let mu: f64 = 0.3;
        let g = GeometricService::new(mu);
        let z: f64 = 0.8;
        let series: f64 = (1i32..200)
            .map(|j| mu * (1.0 - mu).powi(j - 1) * z.powi(j))
            .sum();
        assert!((g.eval(z) - series).abs() < 1e-12);
    }

    #[test]
    fn mixed_service_moments() {
        // Table IV's workload: sizes 4 and 8.
        let u = MixedService::new(vec![(4, 0.5), (8, 0.5)]);
        assert_eq!(u.d1(), 6.0);
        assert_eq!(u.d2(), 0.5 * 12.0 + 0.5 * 56.0);
        assert_eq!(u.d3(), 0.5 * 24.0 + 0.5 * 336.0);
        let (n1, n2, _) = numeric_derivatives(&u, 1e-3);
        assert!((n1 - u.d1()).abs() < 1e-6);
        assert!((n2 - u.d2()).abs() < 1e-4);
        // Var = E S² − 36 = (0.5·16 + 0.5·64) − 36 = 4.
        assert!((u.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_mixture_equals_constant() {
        let mix = MixedService::new(vec![(5, 1.0)]);
        let cst = ConstantService::new(5);
        for &z in &[0.0, 0.6, 1.0] {
            assert!((mix.eval(z) - cst.eval(z)).abs() < 1e-15);
        }
        assert_eq!(mix.d2(), cst.d2());
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_constant_service_rejected() {
        ConstantService::new(0);
    }

    #[test]
    #[should_panic(expected = "μ must be in")]
    fn zero_mu_rejected() {
        GeometricService::new(0.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mixture_weights_rejected() {
        MixedService::new(vec![(1, 0.5), (2, 0.2)]);
    }
}
