//! Arrival processes at a first-stage output queue (§III of the paper).
//!
//! All types implement [`Pgf`] for the per-cycle *message count* at one
//! output port of a `k`-input, `s`-output switch. The closed-form
//! factorial moments are hand-derived and unit-tested against numerical
//! differentiation of `eval`.

use crate::gf::Pgf;
use banyan_numerics::Complex;

fn check_prob(p: f64, name: &str) {
    assert!(
        (0.0..=1.0).contains(&p),
        "{name} must be a probability in [0,1], got {p}"
    );
}

/// Uniform traffic, single arrivals (§III-A-1).
///
/// Each of the `k` input ports receives a message with probability `p`
/// per cycle; each message goes to any of the `s` outputs with equal
/// probability. The count at one output is `Binomial(k, p/s)`:
///
/// ```text
/// R(z) = (1 − p/s + (p/s)·z)^k,     λ = kp/s.
/// ```
#[derive(Clone, Copy, Debug)]
pub struct UniformBernoulli {
    k: u32,
    s: u32,
    p: f64,
}

impl UniformBernoulli {
    /// Creates the process for a `k × s` switch with input load `p`.
    pub fn new(k: u32, s: u32, p: f64) -> Self {
        assert!(k >= 1 && s >= 1, "switch must have at least one port");
        check_prob(p, "p");
        UniformBernoulli { k, s, p }
    }

    /// Square-switch convenience (`k = s`).
    pub fn square(k: u32, p: f64) -> Self {
        Self::new(k, k, p)
    }

    /// Per-output arrival probability `p/s`.
    pub fn port_prob(&self) -> f64 {
        self.p / self.s as f64
    }

    /// Number of switch inputs.
    pub fn k(&self) -> u32 {
        self.k
    }
}

impl Pgf for UniformBernoulli {
    fn eval(&self, z: f64) -> f64 {
        let a = self.port_prob();
        (1.0 - a + a * z).powi(self.k as i32)
    }

    fn eval_complex(&self, z: Complex) -> Complex {
        let a = self.port_prob();
        (Complex::from_real(1.0 - a) + z * a).powi(self.k as i32)
    }

    fn d1(&self) -> f64 {
        self.k as f64 * self.port_prob()
    }

    fn d2(&self) -> f64 {
        let k = self.k as f64;
        let l = self.d1();
        l * l * (1.0 - 1.0 / k)
    }

    fn d3(&self) -> f64 {
        let k = self.k as f64;
        let l = self.d1();
        l * l * l * (1.0 - 1.0 / k) * (1.0 - 2.0 / k)
    }

    fn d4(&self) -> f64 {
        let k = self.k as f64;
        let l = self.d1();
        l.powi(4) * (1.0 - 1.0 / k) * (1.0 - 2.0 / k) * (1.0 - 3.0 / k)
    }
}

/// Uniform traffic with bulk arrivals of constant batch size `b`
/// (§III-A-2): a message of `b` packets arrives at an input with
/// probability `p` per cycle and all `b` packets join the same output
/// queue at once.
///
/// ```text
/// R(z) = (1 − p/s + (p/s)·z^b)^k,     λ = kpb/s.
/// ```
#[derive(Clone, Copy, Debug)]
pub struct UniformBulk {
    k: u32,
    s: u32,
    p: f64,
    b: u32,
}

impl UniformBulk {
    /// Creates the process for a `k × s` switch, input load `p`, batch
    /// size `b >= 1`.
    pub fn new(k: u32, s: u32, p: f64, b: u32) -> Self {
        assert!(k >= 1 && s >= 1, "switch must have at least one port");
        assert!(b >= 1, "batch size must be at least 1");
        check_prob(p, "p");
        UniformBulk { k, s, p, b }
    }

    fn a(&self) -> f64 {
        self.p / self.s as f64
    }

    /// Batch size.
    pub fn batch(&self) -> u32 {
        self.b
    }
}

impl Pgf for UniformBulk {
    fn eval(&self, z: f64) -> f64 {
        let a = self.a();
        (1.0 - a + a * z.powi(self.b as i32)).powi(self.k as i32)
    }

    fn eval_complex(&self, z: Complex) -> Complex {
        let a = self.a();
        (Complex::from_real(1.0 - a) + z.powi(self.b as i32) * a).powi(self.k as i32)
    }

    fn d1(&self) -> f64 {
        self.k as f64 * self.a() * self.b as f64
    }

    fn d2(&self) -> f64 {
        let k = self.k as f64;
        let b = self.b as f64;
        let l = self.d1();
        // R''(1) = λ²(1−1/k) + λ(b−1)
        l * l * (1.0 - 1.0 / k) + l * (b - 1.0)
    }

    fn d3(&self) -> f64 {
        let k = self.k as f64;
        let b = self.b as f64;
        let l = self.d1();
        // R'''(1) = λ³(1−1/k)(1−2/k) + 3λ²(1−1/k)(b−1) + λ(b−1)(b−2)
        l * l * l * (1.0 - 1.0 / k) * (1.0 - 2.0 / k)
            + 3.0 * l * l * (1.0 - 1.0 / k) * (b - 1.0)
            + l * (b - 1.0) * (b - 2.0)
    }

    fn d4(&self) -> f64 {
        // (φ^k)'''' at 1 with φ = 1 − a + a·z^b:
        // k⁽⁴⁾(φ')⁴ + 6k⁽³⁾(φ')²φ'' + k⁽²⁾(4φ'φ''' + 3φ''²) + k⁽¹⁾φ''''.
        let kf = self.k as f64;
        let b = self.b as f64;
        let a = self.a();
        let p1 = a * b;
        let p2 = a * b * (b - 1.0);
        let p3 = a * b * (b - 1.0) * (b - 2.0);
        let p4 = a * b * (b - 1.0) * (b - 2.0) * (b - 3.0);
        kf * (kf - 1.0) * (kf - 2.0) * (kf - 3.0) * p1.powi(4)
            + 6.0 * kf * (kf - 1.0) * (kf - 2.0) * p1 * p1 * p2
            + kf * (kf - 1.0) * (4.0 * p1 * p3 + 3.0 * p2 * p2)
            + kf * p4
    }
}

/// Nonuniform "favorite output" traffic (§III-A-3), square switch
/// (`k = s`), optional bulk size `b`.
///
/// Each input sends an arriving message to its favorite output with
/// probability `q` and to a uniformly random output (including the
/// favorite) with probability `1 − q`. Every output is the favorite of
/// exactly one input, so the count at an output is the sum of one
/// Bernoulli(`α`) "favored" source and `k − 1` Bernoulli(`β`) background
/// sources, each contributing `b` packets:
///
/// ```text
/// α = p(q + (1−q)/k),  β = p(1−q)/k,
/// R(z) = (1 − α + α z^b) · (1 − β + β z^b)^{k−1},   λ = pb.
/// ```
#[derive(Clone, Copy, Debug)]
pub struct NonuniformFavorite {
    k: u32,
    p: f64,
    q: f64,
    b: u32,
}

impl NonuniformFavorite {
    /// Creates the process for a square `k × k` switch, input load `p`,
    /// hot-spot factor `q`, batch size `b`.
    pub fn new(k: u32, p: f64, q: f64, b: u32) -> Self {
        assert!(k >= 1, "switch must have at least one port");
        assert!(b >= 1, "batch size must be at least 1");
        check_prob(p, "p");
        check_prob(q, "q");
        NonuniformFavorite { k, p, q, b }
    }

    /// Probability that the favored input directs a message here.
    pub fn alpha(&self) -> f64 {
        self.p * (self.q + (1.0 - self.q) / self.k as f64)
    }

    /// Probability that one background input directs a message here.
    pub fn beta(&self) -> f64 {
        self.p * (1.0 - self.q) / self.k as f64
    }

    /// Factorial moments `(ψ', ψ'', ψ''', ψ'''')` at 1 of the background
    /// product `(1 − β + β z^b)^{k−1}`.
    fn background_moments(&self) -> (f64, f64, f64, f64) {
        let r = (self.k - 1) as f64;
        let b = self.b as f64;
        let be = self.beta();
        let p1 = be * b;
        let p2 = be * b * (b - 1.0);
        let p3 = be * b * (b - 1.0) * (b - 2.0);
        let p4 = be * b * (b - 1.0) * (b - 2.0) * (b - 3.0);
        let d1 = r * p1;
        let d2 = r * (r - 1.0) * p1 * p1 + r * p2;
        let d3 = r * (r - 1.0) * (r - 2.0) * p1.powi(3)
            + 3.0 * r * (r - 1.0) * p1 * p2
            + r * p3;
        let d4 = r * (r - 1.0) * (r - 2.0) * (r - 3.0) * p1.powi(4)
            + 6.0 * r * (r - 1.0) * (r - 2.0) * p1 * p1 * p2
            + r * (r - 1.0) * (4.0 * p1 * p3 + 3.0 * p2 * p2)
            + r * p4;
        (d1, d2, d3, d4)
    }
}

impl Pgf for NonuniformFavorite {
    fn eval(&self, z: f64) -> f64 {
        let zb = z.powi(self.b as i32);
        let (a, be) = (self.alpha(), self.beta());
        (1.0 - a + a * zb) * (1.0 - be + be * zb).powi(self.k as i32 - 1)
    }

    fn eval_complex(&self, z: Complex) -> Complex {
        let zb = z.powi(self.b as i32);
        let (a, be) = (self.alpha(), self.beta());
        (Complex::from_real(1.0 - a) + zb * a)
            * (Complex::from_real(1.0 - be) + zb * be).powi(self.k as i32 - 1)
    }

    fn d1(&self) -> f64 {
        // λ = b(α + (k−1)β) = pb.
        self.p * self.b as f64
    }

    fn d2(&self) -> f64 {
        let b = self.b as f64;
        let a1 = self.alpha() * b;
        let a2 = self.alpha() * b * (b - 1.0);
        let (p1, p2, _, _) = self.background_moments();
        a2 + 2.0 * a1 * p1 + p2
    }

    fn d3(&self) -> f64 {
        let b = self.b as f64;
        let a1 = self.alpha() * b;
        let a2 = self.alpha() * b * (b - 1.0);
        let a3 = self.alpha() * b * (b - 1.0) * (b - 2.0);
        let (p1, p2, p3, _) = self.background_moments();
        a3 + 3.0 * a2 * p1 + 3.0 * a1 * p2 + p3
    }

    fn d4(&self) -> f64 {
        let b = self.b as f64;
        let al = self.alpha();
        let a1 = al * b;
        let a2 = al * b * (b - 1.0);
        let a3 = al * b * (b - 1.0) * (b - 2.0);
        let a4 = al * b * (b - 1.0) * (b - 2.0) * (b - 3.0);
        let (p1, p2, p3, p4) = self.background_moments();
        // Leibniz rule for (favored · background)⁗ at 1.
        a4 + 4.0 * a3 * p1 + 6.0 * a2 * p2 + 4.0 * a1 * p3 + p4
    }
}

/// Poisson arrivals with rate `λ` per cycle: `R(z) = e^{λ(z−1)}`.
///
/// Not a switch-traffic model per se, but the continuous-time limit used
/// in §III-C (M/M/1) and §IV-B (M/D/1) sanity checks.
#[derive(Clone, Copy, Debug)]
pub struct PoissonArrivals {
    lambda: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson arrival process with mean `lambda >= 0` per cycle.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "rate must be nonnegative and finite"
        );
        PoissonArrivals { lambda }
    }
}

impl Pgf for PoissonArrivals {
    fn eval(&self, z: f64) -> f64 {
        (self.lambda * (z - 1.0)).exp()
    }

    fn eval_complex(&self, z: Complex) -> Complex {
        ((z - 1.0) * self.lambda).exp()
    }

    fn d1(&self) -> f64 {
        self.lambda
    }

    fn d2(&self) -> f64 {
        self.lambda * self.lambda
    }

    fn d3(&self) -> f64 {
        self.lambda.powi(3)
    }

    fn d4(&self) -> f64 {
        self.lambda.powi(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf::numeric_derivatives;

    fn check_moments<G: Pgf>(g: &G, tol1: f64, tol2: f64, tol3: f64) {
        let (n1, n2, n3) = numeric_derivatives(g, 1e-3);
        assert!((n1 - g.d1()).abs() < tol1, "d1: {n1} vs {}", g.d1());
        assert!((n2 - g.d2()).abs() < tol2, "d2: {n2} vs {}", g.d2());
        assert!((n3 - g.d3()).abs() < tol3, "d3: {n3} vs {}", g.d3());
    }

    #[test]
    fn uniform_bernoulli_moments_match_numeric() {
        for &(k, s, p) in &[(2u32, 2u32, 0.5), (4, 4, 0.9), (8, 8, 0.3), (4, 8, 0.7)] {
            let g = UniformBernoulli::new(k, s, p);
            check_moments(&g, 1e-8, 1e-6, 1e-3);
            assert!((g.eval(1.0) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn uniform_bernoulli_known_lambda() {
        let g = UniformBernoulli::new(4, 8, 0.6);
        assert!((g.d1() - 4.0 * 0.6 / 8.0).abs() < 1e-15);
        let sq = UniformBernoulli::square(2, 0.5);
        assert!((sq.d1() - 0.5).abs() < 1e-15);
        // R''(1) = λ²(1−1/k): k=2, λ=0.5 → 0.125.
        assert!((sq.d2() - 0.125).abs() < 1e-15);
    }

    #[test]
    fn bulk_reduces_to_single_when_b_is_one() {
        let bulk = UniformBulk::new(4, 4, 0.7, 1);
        let single = UniformBernoulli::new(4, 4, 0.7);
        for &z in &[0.0, 0.4, 0.9, 1.0] {
            assert!((bulk.eval(z) - single.eval(z)).abs() < 1e-14);
        }
        assert!((bulk.d1() - single.d1()).abs() < 1e-15);
        assert!((bulk.d2() - single.d2()).abs() < 1e-15);
        assert!((bulk.d3() - single.d3()).abs() < 1e-15);
    }

    #[test]
    fn bulk_moments_match_numeric() {
        for &(k, s, p, b) in &[(2u32, 2u32, 0.2, 2u32), (4, 4, 0.15, 4), (2, 4, 0.3, 3)] {
            let g = UniformBulk::new(k, s, p, b);
            check_moments(&g, 1e-7, 1e-5, 1e-2);
        }
    }

    #[test]
    fn nonuniform_q_zero_equals_uniform() {
        let nu = NonuniformFavorite::new(4, 0.6, 0.0, 1);
        let un = UniformBernoulli::square(4, 0.6);
        for &z in &[0.0, 0.5, 1.0] {
            assert!((nu.eval(z) - un.eval(z)).abs() < 1e-14);
        }
        assert!((nu.d2() - un.d2()).abs() < 1e-14);
        assert!((nu.d3() - un.d3()).abs() < 1e-14);
    }

    #[test]
    fn nonuniform_q_one_is_dedicated_link() {
        // q = 1: only the favored input ever sends here; no contention,
        // counts are Bernoulli(p) (times batch b).
        let nu = NonuniformFavorite::new(4, 0.6, 1.0, 1);
        assert!((nu.d1() - 0.6).abs() < 1e-15);
        // Single Bernoulli source: E X(X−1) = 0.
        assert!(nu.d2().abs() < 1e-15);
        assert!(nu.d3().abs() < 1e-15);
    }

    #[test]
    fn nonuniform_moments_match_numeric() {
        for &(k, p, q, b) in &[
            (2u32, 0.5, 0.1, 1u32),
            (2, 0.5, 0.3, 1),
            (4, 0.8, 0.5, 1),
            (2, 0.2, 0.25, 2),
        ] {
            let g = NonuniformFavorite::new(k, p, q, b);
            check_moments(&g, 1e-7, 1e-5, 1e-2);
            assert!((g.d1() - p * b as f64).abs() < 1e-14, "λ must equal pb");
        }
    }

    #[test]
    fn nonuniform_hand_check_k2() {
        // k=2, p=0.5, q=0.1, b=1: α = 0.275, β = 0.225, R'' = 2αβ.
        let g = NonuniformFavorite::new(2, 0.5, 0.1, 1);
        assert!((g.alpha() - 0.275).abs() < 1e-15);
        assert!((g.beta() - 0.225).abs() < 1e-15);
        assert!((g.d2() - 2.0 * 0.275 * 0.225).abs() < 1e-14);
    }

    #[test]
    fn poisson_moments() {
        let g = PoissonArrivals::new(0.8);
        check_moments(&g, 1e-8, 1e-6, 1e-3);
        assert!((g.eval(1.0) - 1.0).abs() < 1e-15);
        assert!((g.variance() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn binomial_converges_to_poisson() {
        // k → ∞ with kp/s fixed: R(z) → e^{λ(z−1)}.
        let lam = 0.7;
        let pois = PoissonArrivals::new(lam);
        let k = 4096u32;
        let bin = UniformBernoulli::new(k, k, lam);
        for &z in &[0.0, 0.5, 0.95] {
            assert!(
                (bin.eval(z) - pois.eval(z)).abs() < 1e-3,
                "z={z}: {} vs {}",
                bin.eval(z),
                pois.eval(z)
            );
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_p_rejected() {
        UniformBernoulli::new(2, 2, 1.5);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        UniformBulk::new(2, 2, 0.5, 0);
    }
}
