//! Later-stage waiting-time approximations (§IV of the paper).
//!
//! The inputs to stage `i > 1` are the outputs of stage `i−1` queues —
//! not independent — so no exact analysis is known. The paper's method:
//!
//! 1. Observe (by simulation) that `w_i(p)` approaches a limit `w_∞(p)`
//!    geometrically in `i`.
//! 2. Posit `r(p) = w_∞(p)/w_1(p) ≈ 1 + a·p`, fit `a` at `p = 0.5`
//!    (`a = 2/5` for `k = 2`, roughly halving as `k` doubles — we encode
//!    `a(k) = 4/(5k)`, which matches the paper's 2/5, ~0.2, ~0.1 for
//!    `k = 2, 4, 8`).
//! 3. Interpolate stages with a single geometric rate `α = 2/5`
//!    (Eq. 12): `w_i = (1 + (1 − α^{i−1})(r − 1))·w_1`.
//! 4. Same game for the variance with a quadratic-in-`p` multiplier
//!    (Eqs. 13–14), for messages of size `m ≥ 2` by rescaling the cycle
//!    (Eqs. 15–16), for size mixtures by an exact/average-size ratio
//!    correction (§IV-C), and for nonuniform traffic by a linear-in-`q`
//!    multiplier (§IV-D).
//!
//! All interpolation constants live in [`StageConstants`] so they can be
//! re-fitted against simulation exactly the way the paper fitted them
//! (see [`crate::calibrate`]); the defaults are the paper's values where
//! the scan is legible and our refits (documented in `EXPERIMENTS.md`)
//! where it is not.

use crate::models::{eq6_mean_wait, eq7_var_wait, eq8_mean_wait, eq9_var_wait};

/// Interpolation constants for the §IV approximations.
///
/// ```
/// use banyan_core::StageConstants;
///
/// let c = StageConstants::default();          // the paper's values
/// // k = 2, p = 0.5: w₁ = 0.25 and the deep-stage limit is 1.2·w₁.
/// assert_eq!(c.w_stage(1, 0.5, 2), 0.25);
/// assert!((c.w_inf(0.5, 2) - 0.30).abs() < 1e-12);
/// // Stage 3 sits between, approaching at rate α = 2/5 per stage.
/// let w3 = c.w_stage(3, 0.5, 2);
/// assert!(w3 > 0.25 && w3 < 0.30);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageConstants {
    /// Geometric rate at which `w_i` approaches `w_∞` (paper: `α = 2/5`).
    pub alpha: f64,
    /// Mean multiplier coefficient: `r(p, k) = 1 + mean_coeff·p/k`
    /// (paper: `2p/5` at `k = 2`, i.e. `mean_coeff = 4/5`).
    pub mean_coeff: f64,
    /// Variance multiplier for `m = 1` (Eq. 13):
    /// `v_∞ = (1 + (var_p1·p + var_p2·p²)/k)·v_1`.
    /// The printed constants are illegible in the available scan; the
    /// defaults reproduce the recoverable anchor (multiplier 1.375 at
    /// `k = 2, p = 0.5`, Table V's q = 0 column) and our refit.
    pub var_p1: f64,
    /// Quadratic coefficient of the `m = 1` variance multiplier.
    pub var_p2: f64,
    /// Variance multiplier for `m >= 2` (Eq. 16):
    /// `v_∞ = (var_multi_base + (var_multi_p1·ρ + var_multi_p2·ρ²)/k)·m²·v₁(ρ)`.
    ///
    /// The base is the **light-traffic limit** 2/3 (interior stages look
    /// like M/D/1 with the arrival rate thinned by `1 − 1/k`, and
    /// `lim_{ρ→0} Var_{M/D/1} / (m²·v₁-form) = 2/3` independent of `k` —
    /// the paper's §IV-B analysis; it notes 7/10 "works better" for
    /// small `m`). The load terms are fitted to our deep-stage
    /// simulations at ρ = 0.2/0.5/0.8 (multipliers 0.84/1.18/1.79) and
    /// reproduce the paper's printed Table III estimate (7/6 at ρ = 0.5,
    /// k = 2) exactly.
    pub var_multi_base: f64,
    /// Linear-in-`ρ` coefficient of the `m >= 2` variance multiplier.
    pub var_multi_p1: f64,
    /// Quadratic-in-`ρ` coefficient of the `m >= 2` variance multiplier.
    pub var_multi_p2: f64,
    /// Nonuniform mean multiplier slope (§IV-D):
    /// `w_∞(q) = (r(p,k) + nonuni_mean_slope·q)·w₁(q)`. Fitted from our
    /// simulations (the printed value is illegible).
    pub nonuni_mean_slope: f64,
    /// Nonuniform variance multiplier slope, analogously.
    pub nonuni_var_slope: f64,
}

impl Default for StageConstants {
    fn default() -> Self {
        StageConstants {
            alpha: 2.0 / 5.0,
            mean_coeff: 4.0 / 5.0,
            // v_∞/v₁ = 1 + (p/2 + 2p²)/k. Matches the legible fragments
            // of Eq. 13 ("… p … 2p²"), reproduces the paper's Table V
            // anchor (multiplier 1.375 at k = 2, p = 0.5), and fits our
            // simulated deep-stage variances across p = 0.2 … 0.8
            // (ratios 1.11, 1.22, 1.375, 1.57, 1.84) far better than a
            // (p + p²) form at the heavy end.
            var_p1: 0.5,
            var_p2: 2.0,
            var_multi_base: 2.0 / 3.0,
            var_multi_p1: 1.5,
            var_multi_p2: 1.0,
            // Fitted to our Table V simulations (deep-stage mean/variance
            // over the exact first stage falls roughly linearly in q);
            // the paper's printed slopes are illegible.
            nonuni_mean_slope: -0.16,
            nonuni_var_slope: -0.34,
        }
    }
}

impl StageConstants {
    /// The paper's constants (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// The limiting mean ratio `r(p, k) = w_∞/w_1 = 1 + mean_coeff·p/k`
    /// (Eq. 10 generalized across `k` via Table II).
    pub fn ratio_limit(&self, p: f64, k: u32) -> f64 {
        1.0 + self.mean_coeff * p / k as f64
    }

    /// Limiting mean waiting time `w_∞(p, k)` for uniform traffic, unit
    /// service (Eq. 11).
    pub fn w_inf(&self, p: f64, k: u32) -> f64 {
        self.ratio_limit(p, k) * eq6_mean_wait(k, p)
    }

    /// Mean waiting time at stage `i >= 1` (Eq. 12); `i = 1` returns the
    /// exact first-stage value.
    pub fn w_stage(&self, i: u32, p: f64, k: u32) -> f64 {
        assert!(i >= 1, "stages are numbered from 1");
        let r = self.ratio_limit(p, k);
        let frac = 1.0 - self.alpha.powi(i as i32 - 1);
        (1.0 + frac * (r - 1.0)) * eq6_mean_wait(k, p)
    }

    /// Limiting variance `v_∞(p, k)` for uniform traffic, unit service
    /// (Eq. 13).
    pub fn v_inf(&self, p: f64, k: u32) -> f64 {
        let mult = 1.0 + (self.var_p1 * p + self.var_p2 * p * p) / k as f64;
        mult * eq7_var_wait(k, p)
    }

    /// Variance at stage `i >= 1` (Eq. 14).
    pub fn v_stage(&self, i: u32, p: f64, k: u32) -> f64 {
        assert!(i >= 1, "stages are numbered from 1");
        let frac = 1.0 - self.alpha.powi(i as i32 - 1);
        let mult = 1.0 + frac * (self.var_p1 * p + self.var_p2 * p * p) / k as f64;
        mult * eq7_var_wait(k, p)
    }

    /// Limiting mean for constant message size `m >= 2` (Eq. 15): model
    /// the interior stage as a unit-service queue with the cycle scaled
    /// by `m` at fixed intensity `ρ = mp`. Accepts real `m` (for the
    /// §IV-C average-size use).
    ///
    /// Reduces to [`StageConstants::w_inf`] at `m = 1`.
    pub fn w_inf_m(&self, p: f64, k: u32, m: f64) -> f64 {
        let rho = m * p;
        let kf = k as f64;
        self.ratio_limit(rho, k) * m * (1.0 - 1.0 / kf) * rho / (2.0 * (1.0 - rho))
    }

    /// Limiting variance for constant size `m >= 2` (Eq. 16): the
    /// `m = 1` variance formula with `p → ρ`, scaled by `m²`, with the
    /// interior-stage multiplier
    /// `var_multi_base + (var_multi_p1·ρ + var_multi_p2·ρ²)/k`.
    pub fn v_inf_m(&self, p: f64, k: u32, m: f64) -> f64 {
        let rho = m * p;
        let mult = self.var_multi_base
            + (self.var_multi_p1 * rho + self.var_multi_p2 * rho * rho) / k as f64;
        mult * m * m * eq7_var_wait(k, rho)
    }

    /// Mean at stage `i` for constant size `m >= 2`: exact at the first
    /// stage (Eq. 8), `w_∞` afterwards ("for m ≥ 2, this formula is a
    /// reasonable approximation at all stages after the first", §IV-B).
    pub fn w_stage_m(&self, i: u32, p: f64, k: u32, m: f64) -> f64 {
        assert!(i >= 1, "stages are numbered from 1");
        if i == 1 {
            eq8_mean_wait(k, p, m)
        } else {
            self.w_inf_m(p, k, m)
        }
    }

    /// Variance at stage `i` for constant size `m >= 2`, analogously.
    pub fn v_stage_m(&self, i: u32, p: f64, k: u32, m: f64) -> f64 {
        assert!(i >= 1, "stages are numbered from 1");
        if i == 1 {
            eq9_var_wait(k, p, m)
        } else {
            self.v_inf_m(p, k, m)
        }
    }

    /// Limiting mean for a mixture of sizes (§IV-C, Eq. 17): evaluate the
    /// single-size approximation at the average size `m̄` and correct by
    /// the exactly-known first-stage ratio
    /// `w₁(mixture)/w₁(size m̄)`.
    ///
    /// `w1_exact` is the exact first-stage mean for the mixture (from
    /// [`crate::models::mixed_queue`]); `mbar` is the mean size.
    pub fn w_inf_multi(&self, p: f64, k: u32, mbar: f64, w1_exact: f64) -> f64 {
        let base = eq8_mean_wait(k, p, mbar);
        if base == 0.0 {
            return 0.0;
        }
        (w1_exact / base) * self.w_inf_m(p, k, mbar)
    }

    /// Limiting variance for a mixture of sizes, by the same ratio
    /// correction applied to the variance ("an approximate formula for
    /// the variance v_∞ could be obtained similarly", §IV-C).
    pub fn v_inf_multi(&self, p: f64, k: u32, mbar: f64, v1_exact: f64) -> f64 {
        let base = eq9_var_wait(k, p, mbar);
        if base == 0.0 {
            return 0.0;
        }
        (v1_exact / base) * self.v_inf_m(p, k, mbar)
    }

    /// Limiting mean for nonuniform traffic (§IV-D): a linear function of
    /// `q` times the exact first-stage mean. At `q = 0` the factor is
    /// `r(p, k)`, matching the uniform case.
    pub fn w_inf_nonuniform(&self, p: f64, k: u32, q: f64, w1_exact: f64) -> f64 {
        (self.ratio_limit(p, k) + self.nonuni_mean_slope * q) * w1_exact
    }

    /// Limiting variance for nonuniform traffic, analogously (the `q = 0`
    /// factor is the Eq. 13 multiplier).
    pub fn v_inf_nonuniform(&self, p: f64, k: u32, q: f64, v1_exact: f64) -> f64 {
        let at_zero = 1.0 + (self.var_p1 * p + self.var_p2 * p * p) / k as f64;
        (at_zero + self.nonuni_var_slope * q) * v1_exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mixed_queue, uniform_queue};

    const C: StageConstants = StageConstants {
        alpha: 0.4,
        mean_coeff: 0.8,
        var_p1: 1.0,
        var_p2: 1.0,
        var_multi_base: 2.0 / 3.0,
        var_multi_p1: 1.5,
        var_multi_p2: 1.0,
        nonuni_mean_slope: -0.75,
        nonuni_var_slope: -0.9,
    };

    #[test]
    fn paper_anchor_k2_p05() {
        // §IV-A: w₁ = 0.25 at k=2, p=0.5 and w_∞ ≈ 0.3 → r = 1.2.
        let c = StageConstants::default();
        assert!((c.ratio_limit(0.5, 2) - 1.2).abs() < 1e-12);
        assert!((c.w_inf(0.5, 2) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ratio_limit_scales_inversely_with_k() {
        // Table II: a ≈ 0.4, 0.2, 0.1 for k = 2, 4, 8 at p = 0.5…
        let c = StageConstants::default();
        assert!((c.ratio_limit(0.5, 2) - 1.0 - 0.2).abs() < 1e-12);
        assert!((c.ratio_limit(0.5, 4) - 1.0 - 0.1).abs() < 1e-12);
        assert!((c.ratio_limit(0.5, 8) - 1.0 - 0.05).abs() < 1e-12);
    }

    #[test]
    fn stage_sequence_increases_to_limit() {
        let c = StageConstants::default();
        let mut prev = 0.0;
        for i in 1..=20 {
            let w = c.w_stage(i, 0.5, 2);
            assert!(w >= prev);
            prev = w;
        }
        assert!((prev - c.w_inf(0.5, 2)).abs() < 1e-6);
        assert!((c.w_stage(1, 0.5, 2) - 0.25).abs() < 1e-12, "stage 1 exact");
    }

    #[test]
    fn geometric_approach_rate_is_alpha() {
        let c = StageConstants::default();
        let winf = c.w_inf(0.5, 2);
        let gaps: Vec<f64> = (1..6).map(|i| winf - c.w_stage(i, 0.5, 2)).collect();
        for w in gaps.windows(2) {
            assert!((w[1] / w[0] - c.alpha).abs() < 1e-10);
        }
    }

    #[test]
    fn variance_anchor_matches_table_v() {
        // v₁ = 0.25 at k=2, p=0.5; Table V (q = 0) estimates v_∞ = 0.3438
        // → multiplier 1.375 = 1 + (p + p²)/k.
        let c = StageConstants::default();
        assert!((c.v_inf(0.5, 2) - 0.34375).abs() < 1e-10);
    }

    #[test]
    fn table_iii_estimates_reproduced() {
        // Table III ESTIMATE row (k = 2, ρ = 0.5): w = 0.3m and
        // v = (7/6)·m²·0.25 for m = 2, 4, 8, 16.
        let c = StageConstants::default();
        for &m in &[2u32, 4, 8, 16] {
            let p = 0.5 / m as f64;
            let w = c.w_inf_m(p, 2, m as f64);
            assert!((w - 0.3 * m as f64).abs() < 1e-10, "m={m}: w={w}");
            let v = c.v_inf_m(p, 2, m as f64);
            let want = 7.0 / 6.0 * (m as f64).powi(2) * 0.25;
            assert!((v - want).abs() < 1e-9, "m={m}: v={v} want={want}");
        }
    }

    #[test]
    fn w_inf_m_reduces_to_w_inf_at_m1() {
        let c = StageConstants::default();
        for &(p, k) in &[(0.2, 2u32), (0.5, 4), (0.8, 2)] {
            assert!((c.w_inf_m(p, k, 1.0) - c.w_inf(p, k)).abs() < 1e-13);
        }
    }

    #[test]
    fn stage_m_is_exact_at_first_stage() {
        let c = StageConstants::default();
        let q = uniform_queue(2, 0.125, 4).unwrap();
        assert!((c.w_stage_m(1, 0.125, 2, 4.0) - q.mean_wait()).abs() < 1e-12);
        assert!((c.v_stage_m(1, 0.125, 2, 4.0) - q.var_wait()).abs() < 1e-10);
        assert!((c.w_stage_m(5, 0.125, 2, 4.0) - c.w_inf_m(0.125, 2, 4.0)).abs() < 1e-13);
    }

    #[test]
    fn multi_size_ratio_correction_degenerates_for_single_size() {
        // A "mixture" of one size must coincide with the single-size path.
        let c = StageConstants::default();
        let q = mixed_queue(2, 0.125, vec![(4, 1.0)]).unwrap();
        let w = c.w_inf_multi(0.125, 2, 4.0, q.mean_wait());
        assert!((w - c.w_inf_m(0.125, 2, 4.0)).abs() < 1e-10);
        let v = c.v_inf_multi(0.125, 2, 4.0, q.var_wait());
        assert!((v - c.v_inf_m(0.125, 2, 4.0)).abs() < 1e-9);
    }

    #[test]
    fn multi_size_exceeds_average_size_estimate() {
        // §IV-C: approximating by the average size is "a bit low"; the
        // exact/avg ratio is > 1 for genuine mixtures.
        let sizes = vec![(4u32, 0.5), (8u32, 0.5)];
        let q = mixed_queue(2, 0.5 / 6.0, sizes).unwrap();
        let c = StageConstants::default();
        let w_corrected = c.w_inf_multi(0.5 / 6.0, 2, 6.0, q.mean_wait());
        let w_avg = c.w_inf_m(0.5 / 6.0, 2, 6.0);
        assert!(w_corrected > w_avg);
    }

    #[test]
    fn nonuniform_multiplier_at_q0_matches_uniform() {
        let c = StageConstants::default();
        let w1 = eq6_mean_wait(2, 0.5);
        assert!((c.w_inf_nonuniform(0.5, 2, 0.0, w1) - c.w_inf(0.5, 2)).abs() < 1e-13);
        let v1 = eq7_var_wait(2, 0.5);
        assert!((c.v_inf_nonuniform(0.5, 2, 0.0, v1) - c.v_inf(0.5, 2)).abs() < 1e-13);
    }

    #[test]
    fn custom_constants_are_respected() {
        assert!((C.ratio_limit(0.5, 2) - 1.2).abs() < 1e-12);
        let c2 = StageConstants {
            mean_coeff: 1.6,
            ..StageConstants::default()
        };
        assert!((c2.ratio_limit(0.5, 2) - 1.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn stage_zero_panics() {
        StageConstants::default().w_stage(0, 0.5, 2);
    }
}
