//! Continuous-time limits of the discrete queue (§III-C, §IV-B).
//!
//! The paper checks its transform against classical queueing theory by
//! scaling: with `n` cycles per time unit, geometric service with
//! `μ → μ/n` and arrival probability `p → p/n`, the discrete queue
//! converges to **M/M/1**; constant service `m → ∞` at fixed `ρ = mλ`
//! gives **M/D/1**. Both are special cases of the **M/G/1**
//! Pollaczek–Khinchine formulas implemented here, which serve as
//! independent oracles for the limit tests and as handy references for
//! users comparing against continuous-time models.

/// Waiting-time moments of an M/G/1 queue (Poisson arrivals of rate `λ`,
/// i.i.d. service with raw moments `E[S]`, `E[S²]`, `E[S³]`).
///
/// Pollaczek–Khinchine:
///
/// ```text
/// E(w)   = λ·E[S²] / (2(1 − ρ)),                ρ = λ·E[S]
/// Var(w) = E(w)² + λ·E[S³]/(3(1 − ρ)).
/// ```
///
/// # Panics
/// Panics unless `0 < ρ < 1` and the moments are consistent
/// (nonnegative, `E[S²] >= E[S]²`).
pub fn mg1_wait_moments(lambda: f64, es: f64, es2: f64, es3: f64) -> (f64, f64) {
    assert!(lambda > 0.0, "arrival rate must be positive");
    assert!(es > 0.0 && es2 >= es * es && es3 >= 0.0, "inconsistent service moments");
    let rho = lambda * es;
    assert!(rho < 1.0, "M/G/1 requires ρ < 1, got {rho}");
    let mean = lambda * es2 / (2.0 * (1.0 - rho));
    let var = mean * mean + lambda * es3 / (3.0 * (1.0 - rho));
    (mean, var)
}

/// Waiting-time moments of an M/M/1 queue with arrival rate `λ` and
/// service rate `μ` (`E(w) = ρ/(μ(1−ρ))`, `Var(w) = ρ(2−ρ)/(μ²(1−ρ)²)`).
pub fn mm1_wait_moments(lambda: f64, mu: f64) -> (f64, f64) {
    assert!(mu > 0.0, "service rate must be positive");
    let rho = lambda / mu;
    assert!((0.0..1.0).contains(&rho), "M/M/1 requires 0 <= ρ < 1");
    let mean = rho / (mu * (1.0 - rho));
    let var = rho * (2.0 - rho) / (mu * mu * (1.0 - rho) * (1.0 - rho));
    (mean, var)
}

/// Waiting-time moments of an M/D/1 queue with arrival rate `λ` and
/// deterministic service time `d` (M/G/1 with `E[S^k] = d^k`).
pub fn md1_wait_moments(lambda: f64, d: f64) -> (f64, f64) {
    mg1_wait_moments(lambda, d, d * d, d * d * d)
}

/// M/M/1 waiting-time CDF: `P(w <= x) = 1 − ρ·e^{−μ(1−ρ)x}` for `x >= 0`
/// (an atom of size `1 − ρ` at zero).
pub fn mm1_wait_cdf(lambda: f64, mu: f64, x: f64) -> f64 {
    assert!(mu > 0.0);
    let rho = lambda / mu;
    assert!((0.0..1.0).contains(&rho));
    if x < 0.0 {
        0.0
    } else {
        1.0 - rho * (-mu * (1.0 - rho) * x).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::PoissonArrivals;
    use crate::first_stage::FirstStage;
    use crate::service::{ConstantService, GeometricService};

    #[test]
    fn mm1_is_special_case_of_mg1() {
        // Exponential service: E[S^k] = k!/μ^k.
        let (lam, mu) = (0.6, 1.0);
        let (m1, v1) = mm1_wait_moments(lam, mu);
        let (m2, v2) = mg1_wait_moments(lam, 1.0 / mu, 2.0 / (mu * mu), 6.0 / (mu * mu * mu));
        assert!((m1 - m2).abs() < 1e-12);
        assert!((v1 - v2).abs() < 1e-12);
    }

    #[test]
    fn md1_has_half_the_mm1_mean() {
        // Classic fact: deterministic service halves the mean wait of
        // exponential service at equal ρ.
        let (lam, d) = (0.7, 1.0);
        let (md, _) = md1_wait_moments(lam, d);
        let (mm, _) = mm1_wait_moments(lam, 1.0 / d);
        assert!((md - 0.5 * mm).abs() < 1e-12);
    }

    #[test]
    fn discrete_geometric_queue_converges_to_mm1() {
        // §III-C: scale time by n; errors shrink monotonically.
        let rho = 0.6;
        let mut prev = f64::INFINITY;
        for &n in &[4u32, 16, 64, 256] {
            let q = FirstStage::new(
                PoissonArrivals::new(rho / n as f64),
                GeometricService::new(1.0 / n as f64),
            )
            .unwrap();
            let (want_m, want_v) = mm1_wait_moments(rho, 1.0);
            let got_m = q.mean_wait() / n as f64;
            let got_v = q.var_wait() / (n as f64 * n as f64);
            let err = (got_m - want_m).abs() / want_m + (got_v - want_v).abs() / want_v;
            assert!(err < prev, "error should shrink with n: {err} vs {prev}");
            prev = err;
        }
        assert!(prev < 0.02, "final combined error {prev}");
    }

    #[test]
    fn discrete_constant_queue_converges_to_md1() {
        // §IV-B: Poisson arrivals + constant size m → M/D/1 in scaled
        // time.
        let rho = 0.5;
        let mut prev = f64::INFINITY;
        for &m in &[4u32, 16, 64, 256] {
            let q = FirstStage::new(
                PoissonArrivals::new(rho / m as f64),
                ConstantService::new(m),
            )
            .unwrap();
            let (want_m, want_v) = md1_wait_moments(rho, 1.0);
            let got_m = q.mean_wait() / m as f64;
            let got_v = q.var_wait() / (m as f64 * m as f64);
            let err = (got_m - want_m).abs() / want_m + (got_v - want_v).abs() / want_v;
            assert!(err < prev, "error should shrink with m: {err} vs {prev}");
            prev = err;
        }
        assert!(prev < 0.02, "final combined error {prev}");
    }

    #[test]
    fn mm1_cdf_properties() {
        let (lam, mu) = (0.5, 1.0);
        assert!((mm1_wait_cdf(lam, mu, 0.0) - 0.5).abs() < 1e-15); // atom 1−ρ
        assert_eq!(mm1_wait_cdf(lam, mu, -1.0), 0.0);
        assert!(mm1_wait_cdf(lam, mu, 100.0) > 1.0 - 1e-12);
        let mut prev = 0.0;
        for i in 0..100 {
            let c = mm1_wait_cdf(lam, mu, i as f64 * 0.1);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "ρ < 1")]
    fn mg1_rejects_overload() {
        mg1_wait_moments(1.5, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn mg1_rejects_impossible_moments() {
        mg1_wait_moments(0.5, 1.0, 0.5, 1.0);
    }
}
