//! Named first-stage scenarios and the paper's closed forms (§III).
//!
//! These are thin, self-documenting constructors over [`FirstStage`] for
//! the traffic classes the paper works through, plus the printed closed
//! forms (Eqs. 6–8) as standalone functions. The generic machinery and
//! the closed forms must agree to machine precision — that redundancy is
//! the transcription check for a paper whose scan is partly illegible.

use crate::arrivals::{NonuniformFavorite, UniformBernoulli, UniformBulk};
use crate::first_stage::{wait_moments, FirstStage, ModelError};
use crate::service::{ConstantService, GeometricService, MixedService};

/// Uniform traffic, single arrivals, constant message size `m` (§III-A-1
/// and §III-D-1): the workhorse configuration of every table.
pub fn uniform_queue(
    k: u32,
    p: f64,
    m: u32,
) -> Result<FirstStage<UniformBernoulli, ConstantService>, ModelError> {
    FirstStage::new(UniformBernoulli::square(k, p), ConstantService::new(m))
}

/// Uniform traffic on a rectangular `k × s` switch, unit service.
pub fn rectangular_queue(
    k: u32,
    s: u32,
    p: f64,
) -> Result<FirstStage<UniformBernoulli, ConstantService>, ModelError> {
    FirstStage::new(UniformBernoulli::new(k, s, p), ConstantService::unit())
}

/// Bulk arrivals of `b` unit-service packets (§III-A-2).
pub fn bulk_queue(
    k: u32,
    p: f64,
    b: u32,
) -> Result<FirstStage<UniformBulk, ConstantService>, ModelError> {
    FirstStage::new(UniformBulk::new(k, k, p, b), ConstantService::unit())
}

/// Nonuniform favorite-output traffic (§III-A-3).
pub fn nonuniform_queue(
    k: u32,
    p: f64,
    q: f64,
    b: u32,
) -> Result<FirstStage<NonuniformFavorite, ConstantService>, ModelError> {
    FirstStage::new(NonuniformFavorite::new(k, p, q, b), ConstantService::unit())
}

/// Geometric service times (§III-B).
pub fn geometric_queue(
    k: u32,
    p: f64,
    mu: f64,
) -> Result<FirstStage<UniformBernoulli, GeometricService>, ModelError> {
    FirstStage::new(UniformBernoulli::square(k, p), GeometricService::new(mu))
}

/// A mixture of constant message sizes (§III-D-2), e.g. reads and writes.
pub fn mixed_queue(
    k: u32,
    p: f64,
    sizes: Vec<(u32, f64)>,
) -> Result<FirstStage<UniformBernoulli, MixedService>, ModelError> {
    FirstStage::new(UniformBernoulli::square(k, p), MixedService::new(sizes))
}

/// Paper Eq. 6 — mean first-stage waiting, uniform traffic, unit service
/// on a square `k × k` switch (`λ = p`):
///
/// ```text
/// E(w) = (1 − 1/k)·p / (2(1 − p)).
/// ```
pub fn eq6_mean_wait(k: u32, p: f64) -> f64 {
    let ik = 1.0 / k as f64;
    (1.0 - ik) * p / (2.0 * (1.0 - p))
}

/// Paper Eq. 7 — the matching variance:
///
/// ```text
/// Var(w) = (1 − 1/k)·p·[6 − 5p(1 + 1/k) + 2p²(1 + 1/k)] / (12(1 − p)²).
/// ```
pub fn eq7_var_wait(k: u32, p: f64) -> f64 {
    let ik = 1.0 / k as f64;
    (1.0 - ik) * p * (6.0 - 5.0 * p * (1.0 + ik) + 2.0 * p * p * (1.0 + ik))
        / (12.0 * (1.0 - p) * (1.0 - p))
}

/// Paper Eq. 8 — mean waiting with constant size `m` messages, in the
/// compact rearrangement `E(w) = ρ(m − 1/k)/(2(1 − ρ))`, `ρ = mp`.
///
/// Accepts a *real* `m` so §IV-C can evaluate it at an average message
/// size.
pub fn eq8_mean_wait(k: u32, p: f64, m: f64) -> f64 {
    let rho = m * p;
    rho * (m - 1.0 / k as f64) / (2.0 * (1.0 - rho))
}

/// Paper Eq. 9 — the variance for constant size `m`, evaluated through
/// the generic machinery with the moments of a (pseudo-)deterministic
/// size-`m` service: `U'' = m(m−1)`, `U''' = m(m−1)(m−2)`. Accepts real
/// `m` for the §IV-C average-size correction.
pub fn eq9_var_wait(k: u32, p: f64, m: f64) -> f64 {
    let kf = k as f64;
    let lam = p;
    let r2 = lam * lam * (1.0 - 1.0 / kf);
    let r3 = lam * lam * lam * (1.0 - 1.0 / kf) * (1.0 - 2.0 / kf);
    let u2 = m * (m - 1.0);
    let u3 = m * (m - 1.0) * (m - 2.0);
    wait_moments(lam, m, r2, r3, u2, u3).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_eq7_match_generic_machinery() {
        for &(k, p) in &[(2u32, 0.2), (2, 0.5), (2, 0.8), (4, 0.5), (8, 0.5), (16, 0.9)] {
            let q = uniform_queue(k, p, 1).unwrap();
            assert!((q.mean_wait() - eq6_mean_wait(k, p)).abs() < 1e-13);
            assert!((q.var_wait() - eq7_var_wait(k, p)).abs() < 1e-12);
        }
    }

    #[test]
    fn eq8_eq9_match_generic_machinery() {
        for &(k, p, m) in &[(2u32, 0.25, 2u32), (2, 0.125, 4), (2, 0.05, 8), (4, 0.02, 16)] {
            let q = uniform_queue(k, p, m).unwrap();
            assert!((q.mean_wait() - eq8_mean_wait(k, p, m as f64)).abs() < 1e-12);
            assert!((q.var_wait() - eq9_var_wait(k, p, m as f64)).abs() < 1e-10);
        }
    }

    #[test]
    fn eq8_eq9_reduce_to_eq6_eq7_at_m1() {
        for &(k, p) in &[(2u32, 0.5), (4, 0.3), (8, 0.7)] {
            assert!((eq8_mean_wait(k, p, 1.0) - eq6_mean_wait(k, p)).abs() < 1e-14);
            assert!((eq9_var_wait(k, p, 1.0) - eq7_var_wait(k, p)).abs() < 1e-13);
        }
    }

    #[test]
    fn nonuniform_q_one_has_zero_wait() {
        // Paper §III-A-3: "for q = 1, we get E(w) = 0" (b = 1; every
        // output is a private link, single arrivals never queue).
        let q = nonuniform_queue(4, 0.7, 1.0, 1).unwrap();
        assert!(q.mean_wait().abs() < 1e-14);
        assert!(q.var_wait().abs() < 1e-13);
    }

    #[test]
    fn nonuniform_q_zero_reduces_to_uniform() {
        let nu = nonuniform_queue(2, 0.5, 0.0, 1).unwrap();
        assert!((nu.mean_wait() - eq6_mean_wait(2, 0.5)).abs() < 1e-13);
        assert!((nu.var_wait() - eq7_var_wait(2, 0.5)).abs() < 1e-13);
    }

    #[test]
    fn nonuniform_wait_decreases_with_q() {
        let mut prev = f64::INFINITY;
        for &q in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let w = nonuniform_queue(2, 0.5, q, 1).unwrap().mean_wait();
            assert!(w < prev, "q={q}");
            prev = w;
        }
    }

    #[test]
    fn bulk_b1_reduces_to_uniform() {
        let b = bulk_queue(2, 0.5, 1).unwrap();
        assert!((b.mean_wait() - eq6_mean_wait(2, 0.5)).abs() < 1e-13);
        assert!((b.var_wait() - eq7_var_wait(2, 0.5)).abs() < 1e-13);
    }

    #[test]
    fn geometric_mu_one_reduces_to_unit_service() {
        let g = geometric_queue(2, 0.5, 1.0).unwrap();
        assert!((g.mean_wait() - eq6_mean_wait(2, 0.5)).abs() < 1e-13);
        assert!((g.var_wait() - eq7_var_wait(2, 0.5)).abs() < 1e-13);
    }

    #[test]
    fn mixed_queue_mean_matches_section_iii_d2() {
        // §III-D-2 via Eq. 2 with R'' = λ²(1−1/k), U'' = Σ m_i(m_i−1)g_i:
        // E(w) = λ[(1−1/k)m̄ + Σ m_i(m_i−1)g_i] / (2(1−m̄λ)).
        let k = 2u32;
        let p = 0.05;
        let sizes = vec![(4u32, 0.5), (8u32, 0.5)];
        let q = mixed_queue(k, p, sizes.clone()).unwrap();
        let mbar: f64 = sizes.iter().map(|&(m, g)| m as f64 * g).sum();
        let u2: f64 = sizes
            .iter()
            .map(|&(m, g)| m as f64 * (m as f64 - 1.0) * g)
            .sum();
        let want = p * ((1.0 - 0.5) * mbar + u2) / (2.0 * (1.0 - mbar * p));
        assert!((q.mean_wait() - want).abs() < 1e-12);
    }

    #[test]
    fn rectangular_queue_lambda() {
        let q = rectangular_queue(4, 8, 0.6).unwrap();
        assert!((q.lambda() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn eq9_is_nonnegative_and_grows_with_m() {
        let mut prev = 0.0;
        for m in 1..=8 {
            let v = eq9_var_wait(2, 0.05, m as f64);
            assert!(v >= prev, "m={m}");
            prev = v;
        }
    }
}
