//! Total waiting time through an `n`-stage network (§V of the paper).
//!
//! The total waiting time is the sum of the per-stage waits. Its mean is
//! the sum of the stage means (Eq. 12 / §IV-B); its variance is the sum
//! of all covariances, which the paper approximates with a geometric
//! covariance model fitted to Table VI:
//!
//! ```text
//! σ_{i,i}   = v_i,
//! σ_{i,i+j} = a·b^{j−1}·v_i   (j ≥ 1),
//! a = (1 − 2ρ/5)·3ρ/(5k),   b = (1 − 2ρ/5)/k,   ρ = mp,
//! ```
//!
//! so the total variance is `Σ_i v_i·(1 + 2a(1 − b^{n−i})/(1 − b))`.
//! Finally, the *distribution* of the total waiting time is approximated
//! by a gamma with the predicted mean and variance — the smooth curves of
//! Figs. 3–8.

use crate::later_stages::StageConstants;
use crate::models::uniform_queue;
use banyan_stats::Gamma;

/// Prediction model for the total waiting time of a message through an
/// `n`-stage banyan network of `k × k` switches under uniform traffic
/// with constant message size `m` and input load `p`.
#[derive(Clone, Copy, Debug)]
pub struct TotalWaiting {
    k: u32,
    n: u32,
    p: f64,
    m: u32,
    constants: StageConstants,
}

impl TotalWaiting {
    /// Builds the model. Requires a stable load `ρ = mp < 1` and at
    /// least one stage.
    ///
    /// # Panics
    /// Panics on `ρ >= 1`, `n = 0`, or parameters outside their domains.
    pub fn new(k: u32, n: u32, p: f64, m: u32) -> Self {
        Self::with_constants(k, n, p, m, StageConstants::default())
    }

    /// Same, with custom interpolation constants (e.g. re-calibrated).
    pub fn with_constants(k: u32, n: u32, p: f64, m: u32, constants: StageConstants) -> Self {
        assert!(k >= 2, "switch size must be at least 2");
        assert!(n >= 1, "need at least one stage");
        assert!(m >= 1, "message size must be at least 1");
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let rho = m as f64 * p;
        assert!(rho < 1.0, "traffic intensity ρ = {rho} must be below 1");
        TotalWaiting {
            k,
            n,
            p,
            m,
            constants,
        }
    }

    /// Traffic intensity `ρ = mp`.
    pub fn rho(&self) -> f64 {
        self.m as f64 * self.p
    }

    /// Number of stages.
    pub fn stages(&self) -> u32 {
        self.n
    }

    /// Predicted mean waiting time at stage `i ∈ [1, n]`.
    pub fn stage_mean(&self, i: u32) -> f64 {
        if self.m == 1 {
            self.constants.w_stage(i, self.p, self.k)
        } else {
            self.constants.w_stage_m(i, self.p, self.k, self.m as f64)
        }
    }

    /// Predicted waiting-time variance at stage `i ∈ [1, n]`.
    pub fn stage_var(&self, i: u32) -> f64 {
        if self.m == 1 {
            self.constants.v_stage(i, self.p, self.k)
        } else {
            self.constants.v_stage_m(i, self.p, self.k, self.m as f64)
        }
    }

    /// Predicted mean **total waiting time** (sum of stage means).
    pub fn mean_total(&self) -> f64 {
        (1..=self.n).map(|i| self.stage_mean(i)).sum()
    }

    /// Total-waiting variance under the *independence* assumption (sum of
    /// stage variances). §V: "summing the variances should be a good
    /// approximation" because inter-stage correlations are small.
    pub fn var_total_independent(&self) -> f64 {
        (1..=self.n).map(|i| self.stage_var(i)).sum()
    }

    /// The geometric covariance-model parameters `(a, b)` (§V):
    /// `a = (1 − 2ρ/5)·3ρ/(5k)`, `b = (1 − 2ρ/5)/k`.
    pub fn cov_params(&self) -> (f64, f64) {
        covariance_params(self.rho(), self.k)
    }

    /// The model's predicted correlation between the waiting times at two
    /// stages `lag` apart: `a·b^{lag−1}` (compared against Table VI).
    pub fn predicted_correlation(&self, lag: u32) -> f64 {
        assert!(lag >= 1, "lag must be at least 1");
        let (a, b) = self.cov_params();
        a * b.powi(lag as i32 - 1)
    }

    /// Total-waiting variance under the geometric covariance model:
    /// `Σ_i v_i·(1 + 2a(1 − b^{n−i})/(1 − b))`.
    pub fn var_total(&self) -> f64 {
        let (a, b) = self.cov_params();
        (1..=self.n)
            .map(|i| {
                let tail_len = (self.n - i) as i32;
                let factor = 1.0 + 2.0 * a * (1.0 - b.powi(tail_len)) / (1.0 - b);
                self.stage_var(i) * factor
            })
            .sum()
    }

    /// The gamma approximation of the total waiting-time distribution
    /// (§V, Figs. 3–8): moment-matched to [`TotalWaiting::mean_total`]
    /// and [`TotalWaiting::var_total`]. `None` when the load is zero
    /// (degenerate distribution at 0).
    pub fn gamma(&self) -> Option<Gamma> {
        Gamma::from_mean_var(self.mean_total(), self.var_total())
    }

    /// Total network **service** time for a constant-size message:
    /// `n + m − 1` cycles (cut-through pipelining, §V end).
    pub fn total_service(&self) -> u32 {
        self.n + self.m - 1
    }

    /// Predicted mean total *delay* (waiting plus service).
    pub fn mean_total_delay(&self) -> f64 {
        self.mean_total() + self.total_service() as f64
    }

    /// Alternative distributional approximation (§V discusses it before
    /// settling on the gamma): treat the stages as **independent and
    /// identically distributed** like the first stage and convolve the
    /// exact first-stage waiting pmf `n` times.
    ///
    /// Slightly light in the mean (deep stages wait a bit longer than
    /// the first — Eq. 10) and in the variance (it ignores the positive
    /// inter-stage covariance); the `ablation_convolution` experiment
    /// quantifies this against both the gamma model and simulation.
    pub fn waiting_pmf_convolution(&self, len: usize) -> Vec<f64> {
        let q = uniform_queue(self.k, self.p, self.m)
            .expect("constructor already validated stability");
        let stage = q.pmf(len);
        let mut acc = vec![0.0; len];
        acc[0] = 1.0;
        for _ in 0..self.n {
            let mut next = banyan_numerics::fft::convolve(&acc, &stage);
            next.truncate(len);
            acc = next;
        }
        acc
    }

    /// Approximate CDF of the total **delay** (waiting + pipelined
    /// service): the gamma approximation of the waiting time shifted by
    /// the constant service `n + m − 1`. Returns the point mass behavior
    /// at zero load (`P(delay <= x)` is a step at the service time).
    pub fn delay_cdf(&self, x: f64) -> f64 {
        let shift = self.total_service() as f64;
        match self.gamma() {
            Some(g) => g.cdf(x - shift),
            None => {
                if x >= shift {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Approximate `q`-th quantile of the total delay.
    ///
    /// # Panics
    /// Panics unless `q ∈ (0, 1)`.
    pub fn delay_quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "quantile level must be in (0,1)");
        let shift = self.total_service() as f64;
        match self.gamma() {
            Some(g) => shift + g.quantile(q),
            None => shift,
        }
    }

    /// Exact first-stage moments `(w₁, v₁)` for this configuration — the
    /// anchor of all the approximations.
    pub fn first_stage_exact(&self) -> (f64, f64) {
        let q = uniform_queue(self.k, self.p, self.m)
            .expect("constructor already validated stability");
        (q.mean_wait(), q.var_wait())
    }
}

/// The §V geometric covariance-model parameters `(a, b)` for traffic
/// intensity `ρ` through `k × k` switches:
/// `a = (1 − 2ρ/5)·3ρ/(5k)`, `b = (1 − 2ρ/5)/k`.
///
/// Shared by [`TotalWaiting::cov_params`] and the feed-forward flow
/// engine (`banyan-flow`), which applies it per hop with that hop's
/// aggregated link intensity.
pub fn covariance_params(rho: f64, k: u32) -> (f64, f64) {
    let damp = 1.0 - 2.0 * rho / 5.0;
    let a = damp * 3.0 * rho / (5.0 * k as f64);
    let b = damp / k as f64;
    (a, b)
}

/// Total mean waiting time through `n` stages under **hot-spot**
/// (favorite-output) traffic — a §V-style composition the paper did not
/// tabulate: the exact nonuniform first stage (§III-A-3) plus the §IV-D
/// limiting approximation, interpolated with the same geometric rate `α`
/// as the uniform case.
pub fn nonuniform_total_mean(c: &StageConstants, k: u32, n: u32, p: f64, q: f64) -> f64 {
    assert!(n >= 1, "need at least one stage");
    let w1 = crate::models::nonuniform_queue(k, p, q, 1)
        .map(|fs| fs.mean_wait())
        .unwrap_or(0.0);
    let w_inf = c.w_inf_nonuniform(p, k, q, w1);
    (1..=n)
        .map(|i| {
            let frac = 1.0 - c.alpha.powi(i as i32 - 1);
            w1 + frac * (w_inf - w1)
        })
        .sum()
}

/// Total waiting-time **variance** under hot-spot traffic: per-stage §IV-D
/// variances combined with the §V geometric covariance model (`ρ = p`).
pub fn nonuniform_total_var(c: &StageConstants, k: u32, n: u32, p: f64, q: f64) -> f64 {
    assert!(n >= 1, "need at least one stage");
    let (v1, v_inf) = match crate::models::nonuniform_queue(k, p, q, 1) {
        Ok(fs) => {
            let v1 = fs.var_wait();
            (v1, c.v_inf_nonuniform(p, k, q, v1))
        }
        Err(_) => return 0.0,
    };
    let damp = 1.0 - 2.0 * p / 5.0;
    let a = damp * 3.0 * p / (5.0 * k as f64);
    let b = damp / k as f64;
    (1..=n)
        .map(|i| {
            let frac = 1.0 - c.alpha.powi(i as i32 - 1);
            let vi = v1 + frac * (v_inf - v1);
            let tail_len = (n - i) as i32;
            vi * (1.0 + 2.0 * a * (1.0 - b.powi(tail_len)) / (1.0 - b))
        })
        .sum()
}

/// Total mean waiting time through `n` stages for a **mixture of message
/// sizes** (§IV-C composition): exact mixed first stage plus `n − 1`
/// interior stages at the §IV-C corrected limit.
pub fn multi_size_total_mean(
    c: &StageConstants,
    k: u32,
    n: u32,
    p: f64,
    sizes: &[(u32, f64)],
) -> f64 {
    assert!(n >= 1, "need at least one stage");
    let fs = crate::models::mixed_queue(k, p, sizes.to_vec()).expect("stable load");
    let mbar: f64 = sizes.iter().map(|&(m, g)| m as f64 * g).sum();
    let w1 = fs.mean_wait();
    w1 + (n as f64 - 1.0) * c.w_inf_multi(p, k, mbar, w1)
}

/// Total waiting-time **variance** for a mixture of sizes: exact first
/// stage plus `n − 1` interior stages at the §IV-C corrected limiting
/// variance, combined with the §V covariance model at `ρ = m̄p`.
pub fn multi_size_total_var(
    c: &StageConstants,
    k: u32,
    n: u32,
    p: f64,
    sizes: &[(u32, f64)],
) -> f64 {
    assert!(n >= 1, "need at least one stage");
    let fs = crate::models::mixed_queue(k, p, sizes.to_vec()).expect("stable load");
    let mbar: f64 = sizes.iter().map(|&(m, g)| m as f64 * g).sum();
    let v1 = fs.var_wait();
    let v_inf = c.v_inf_multi(p, k, mbar, v1);
    let rho = mbar * p;
    let damp = 1.0 - 2.0 * rho / 5.0;
    let a = damp * 3.0 * rho / (5.0 * k as f64);
    let b = damp / k as f64;
    (1..=n)
        .map(|i| {
            let vi = if i == 1 { v1 } else { v_inf };
            let tail_len = (n - i) as i32;
            vi * (1.0 + 2.0 * a * (1.0 - b.powi(tail_len)) / (1.0 - b))
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_covariance_parameters() {
        // k = 2, p = 0.5, m = 1: a = 0.12, b = 0.4. Table VI's measured
        // adjacent correlations are 0.118–0.124, then 0.044–0.048 ≈ ab,
        // 0.018–0.020 ≈ ab², …
        let t = TotalWaiting::new(2, 8, 0.5, 1);
        let (a, b) = t.cov_params();
        assert!((a - 0.12).abs() < 1e-12);
        assert!((b - 0.4).abs() < 1e-12);
        assert!((t.predicted_correlation(1) - 0.12).abs() < 1e-12);
        assert!((t.predicted_correlation(2) - 0.048).abs() < 1e-12);
        assert!((t.predicted_correlation(3) - 0.0192).abs() < 1e-12);
    }

    #[test]
    fn mean_total_is_sum_of_stage_means() {
        let t = TotalWaiting::new(2, 6, 0.5, 1);
        let sum: f64 = (1..=6).map(|i| t.stage_mean(i)).sum();
        assert!((t.mean_total() - sum).abs() < 1e-13);
    }

    #[test]
    fn single_stage_is_exact_first_stage() {
        for &(p, m) in &[(0.5, 1u32), (0.125, 4)] {
            let t = TotalWaiting::new(2, 1, p, m);
            let (w1, v1) = t.first_stage_exact();
            assert!((t.mean_total() - w1).abs() < 1e-12);
            assert!((t.var_total_independent() - v1).abs() < 1e-10);
            // With one stage there are no cross terms.
            assert!((t.var_total() - v1).abs() < 1e-10);
        }
    }

    #[test]
    fn covariance_model_exceeds_independence() {
        // Positive inter-stage correlation ⇒ the covariance-model total
        // variance is strictly larger than the independent sum (n ≥ 2).
        for &(p, m) in &[(0.2, 1u32), (0.5, 1), (0.8, 1), (0.125, 4)] {
            let t = TotalWaiting::new(2, 9, p, m);
            assert!(t.var_total() > t.var_total_independent());
            // …but only modestly (correlations are small).
            assert!(t.var_total() < 1.6 * t.var_total_independent());
        }
    }

    #[test]
    fn mean_grows_linearly_in_stages_asymptotically() {
        let t12 = TotalWaiting::new(2, 12, 0.5, 1);
        let t9 = TotalWaiting::new(2, 9, 0.5, 1);
        let diff = t12.mean_total() - t9.mean_total();
        let winf = StageConstants::default().w_inf(0.5, 2);
        // Stages 10–12 are within α⁹ ≈ 2.6e-4 of the limit.
        assert!((diff - 3.0 * winf).abs() < 1e-4);
    }

    #[test]
    fn gamma_approx_matches_moments() {
        let t = TotalWaiting::new(2, 12, 0.5, 1);
        let g = t.gamma().unwrap();
        assert!((g.mean() - t.mean_total()).abs() < 1e-10);
        assert!((g.variance() - t.var_total()).abs() < 1e-10);
    }

    #[test]
    fn zero_load_has_no_gamma() {
        let t = TotalWaiting::new(2, 3, 0.0, 1);
        assert_eq!(t.mean_total(), 0.0);
        assert!(t.gamma().is_none());
    }

    #[test]
    fn total_service_is_cut_through() {
        assert_eq!(TotalWaiting::new(2, 12, 0.1, 4).total_service(), 15);
        assert_eq!(TotalWaiting::new(2, 3, 0.1, 1).total_service(), 3);
        let t = TotalWaiting::new(2, 6, 0.2, 4);
        assert!((t.mean_total_delay() - t.mean_total() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn m4_first_stage_uses_exact_formula() {
        let t = TotalWaiting::new(2, 6, 0.125, 4);
        let (w1, v1) = t.first_stage_exact();
        assert!((t.stage_mean(1) - w1).abs() < 1e-12);
        assert!((t.stage_var(1) - v1).abs() < 1e-10);
        // Interior stages use the scaled-cycle limit.
        let c = StageConstants::default();
        assert!((t.stage_mean(3) - c.w_inf_m(0.125, 2, 4.0)).abs() < 1e-12);
    }

    #[test]
    fn paper_configurations_construct() {
        // The six table/figure configurations (VII–XII, Figs. 3–8).
        for &(p, m) in &[
            (0.2, 1u32),
            (0.05, 4),
            (0.5, 1),
            (0.125, 4),
            (0.8, 1),
            (0.2, 4),
        ] {
            for &n in &[3u32, 6, 9, 12] {
                let t = TotalWaiting::new(2, n, p, m);
                assert!(t.mean_total() > 0.0);
                assert!(t.var_total() > 0.0);
                assert!(t.gamma().is_some());
            }
        }
    }

    #[test]
    fn nonuniform_total_reduces_to_uniform_at_q0() {
        let c = StageConstants::default();
        let t = TotalWaiting::new(2, 6, 0.5, 1);
        let nu = nonuniform_total_mean(&c, 2, 6, 0.5, 0.0);
        assert!((nu - t.mean_total()).abs() < 1e-10);
    }

    #[test]
    fn nonuniform_total_decreases_with_locality() {
        let c = StageConstants::default();
        let mut prev = f64::INFINITY;
        for &q in &[0.0, 0.25, 0.5, 0.75] {
            let v = nonuniform_total_mean(&c, 2, 8, 0.5, q);
            assert!(v < prev, "q={q}");
            prev = v;
        }
        // q = 1: dedicated links, no waiting at all.
        assert!(nonuniform_total_mean(&c, 2, 8, 0.5, 1.0).abs() < 1e-10);
    }

    #[test]
    fn nonuniform_total_var_reduces_to_uniform_at_q0() {
        let c = StageConstants::default();
        let t = TotalWaiting::new(2, 6, 0.5, 1);
        let v = nonuniform_total_var(&c, 2, 6, 0.5, 0.0);
        assert!((v - t.var_total()).abs() < 1e-10, "{v} vs {}", t.var_total());
    }

    #[test]
    fn nonuniform_total_var_decreases_with_locality() {
        let c = StageConstants::default();
        let mut prev = f64::INFINITY;
        for &q in &[0.0, 0.25, 0.5, 0.75] {
            let v = nonuniform_total_var(&c, 2, 8, 0.5, q);
            assert!(v < prev && v > 0.0, "q={q}");
            prev = v;
        }
    }

    #[test]
    fn multi_size_total_var_reduces_to_constant_for_single_size() {
        let c = StageConstants::default();
        let t = TotalWaiting::new(2, 6, 0.125, 4);
        let v = multi_size_total_var(&c, 2, 6, 0.125, &[(4, 1.0)]);
        assert!(
            (v - t.var_total()).abs() < 1e-9 * (1.0 + t.var_total()),
            "{v} vs {}",
            t.var_total()
        );
    }

    #[test]
    fn multi_size_total_reduces_to_constant_for_single_size() {
        let c = StageConstants::default();
        let t = TotalWaiting::new(2, 6, 0.125, 4);
        let ms = multi_size_total_mean(&c, 2, 6, 0.125, &[(4, 1.0)]);
        assert!((ms - t.mean_total()).abs() < 1e-9, "{ms} vs {}", t.mean_total());
    }

    #[test]
    fn multi_size_total_grows_with_long_message_share() {
        let c = StageConstants::default();
        let p = 0.05;
        let lo = multi_size_total_mean(&c, 2, 6, p, &[(4, 0.9), (8, 0.1)]);
        let hi = multi_size_total_mean(&c, 2, 6, p, &[(4, 0.1), (8, 0.9)]);
        assert!(hi > lo);
    }

    #[test]
    fn convolution_model_moments_are_n_times_first_stage() {
        let t = TotalWaiting::new(2, 6, 0.5, 1);
        let pmf = t.waiting_pmf_convolution(160);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-8, "mass {total}");
        let (mean, var) = banyan_numerics::series::pmf_mean_var(&pmf);
        let (w1, v1) = t.first_stage_exact();
        assert!((mean - 6.0 * w1).abs() < 1e-6);
        assert!((var - 6.0 * v1).abs() < 1e-5);
        // And therefore slightly below the §IV-aware predictions.
        assert!(mean < t.mean_total());
        assert!(var < t.var_total());
    }

    #[test]
    fn delay_distribution_is_shifted_waiting() {
        let t = TotalWaiting::new(2, 6, 0.5, 1);
        let g = t.gamma().unwrap();
        for &x in &[6.0, 8.0, 12.0, 20.0] {
            assert!((t.delay_cdf(x) - g.cdf(x - 6.0)).abs() < 1e-12);
        }
        assert_eq!(t.delay_cdf(0.0), 0.0);
        let q = t.delay_quantile(0.99);
        assert!((t.delay_cdf(q) - 0.99).abs() < 1e-6);
        assert!(q > t.total_service() as f64);
    }

    #[test]
    fn zero_load_delay_is_deterministic_service() {
        let t = TotalWaiting::new(2, 4, 0.0, 2);
        assert_eq!(t.delay_cdf(4.9), 0.0);
        assert_eq!(t.delay_cdf(5.0), 1.0);
        assert_eq!(t.delay_quantile(0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn saturated_load_panics() {
        TotalWaiting::new(2, 3, 0.25, 4);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        TotalWaiting::new(2, 0, 0.5, 1);
    }
}
