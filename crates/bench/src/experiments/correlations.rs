//! Table VI — correlations of waiting times between stages.
//!
//! `k = 2, p = 0.5, m = 1`. The paper reports the upper triangle of the
//! stage-pair correlation matrix; the §V covariance model predicts
//! `corr(w_i, w_{i+j}) ≈ a·b^{j−1}` with `a = (1 − 2ρ/5)·3ρ/(5k)` and
//! `b = (1 − 2ρ/5)/k` — 0.12 and 0.4 here.

use super::BASE_SEED;
use crate::profile::{stage_profile, Scale};
use crate::table::TextTable;
use banyan_core::total_delay::TotalWaiting;
use banyan_sim::traffic::Workload;

const STAGES: u32 = 8;

/// **Table VI** — cross-stage waiting-time correlation matrix plus the
/// geometric covariance-model prediction.
pub fn table06(scale: &Scale) -> String {
    let stats = stage_profile(
        2,
        STAGES,
        Workload::uniform(0.5, 1),
        None,
        true,
        scale,
        BASE_SEED + 60,
    );
    let corr = stats
        .correlations
        .as_ref()
        .expect("correlations were requested");

    let mut t = TextTable::new(
        "Table VI. Correlations of waiting times between stages (k=2, p=0.5, m=1)",
    );
    let mut header = vec!["".to_string()];
    header.extend((1..=STAGES).map(|j| format!("stage {j}")));
    t.header(header);
    for i in 0..STAGES as usize {
        let mut cells = vec![format!("stage {}", i + 1)];
        for j in 0..STAGES as usize {
            if j < i {
                cells.push(String::new());
            } else {
                cells.push(format!("{:.4}", corr.correlation(i, j)));
            }
        }
        t.row(cells);
    }

    // Model prediction row: correlation by lag.
    let model = TotalWaiting::new(2, STAGES, 0.5, 1);
    let mut pred = vec!["MODEL a*b^(j-1)".to_string(), "1.0000".to_string()];
    pred.extend((1..STAGES).map(|lag| format!("{:.4}", model.predicted_correlation(lag))));
    t.row(pred);

    let mut out = t.render();
    out.push_str(&format!(
        "\ncovariance-model parameters: a = {:.4}, b = {:.4}\n",
        model.cov_params().0,
        model.cov_params().1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table06_quick_shape_and_model_row() {
        let s = table06(&Scale::quick());
        assert!(s.contains("Table VI."));
        assert!(s.contains("MODEL"));
        assert!(s.contains("a = 0.1200"));
        assert!(s.contains("b = 0.4000"));
    }
}
