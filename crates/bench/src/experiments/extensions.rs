//! Extensions beyond the paper's published evaluation, both flagged in
//! its §VI as natural next steps:
//!
//! 1. **Finite buffers** — "Given our formulas for infinite buffer
//!    delays, along with some simulation results for finite buffers, it
//!    is possible that one could develop good approximate formulas for
//!    finite buffer delays." We sweep buffer capacity and show where the
//!    infinite-buffer formulas stop being accurate (and how fast the
//!    network starts rejecting traffic).
//! 2. **Heavy-traffic probe** — "it might be possible to obtain a heavy
//!    traffic analysis. This would provide an exact value for
//!    `lim_{p→1} r(p)`". We estimate `(1 − p)·w_∞(p)` and `r(p)` as
//!    `p → 1` from simulation.

use super::BASE_SEED;
use crate::profile::{stage_profile, Scale};
use crate::table::TextTable;
use banyan_core::models::eq6_mean_wait;
use banyan_core::total_delay::TotalWaiting;
use banyan_sim::network::NetworkConfig;
use banyan_sim::runner::run_network_replicated;
use banyan_sim::traffic::Workload;

/// Finite-buffer sweep: capacity vs waiting time and rejection rate,
/// against the infinite-buffer §V prediction.
pub fn finite_buffers(scale: &Scale) -> String {
    let mut out = String::new();
    let n = 6u32;
    for &p in &[0.5, 0.8] {
        let model = TotalWaiting::new(2, n, p, 1);
        let mut t = TextTable::new(format!(
            "Finite buffers: k=2, n={n}, m=1, p={p}  (infinite-buffer predicted mean total wait = {:.3})",
            model.mean_total()
        ));
        // First-stage Ψ-tail overflow predictor: P(s >= cap) at one port.
        let fs = banyan_core::models::uniform_queue(2, p, 1).expect("stable");
        t.header([
            "capacity",
            "mean total wait",
            "accept rate",
            "rel. err vs infinite pred",
            "P(s>=cap) predictor",
        ]);
        for (i, cap) in [1usize, 2, 4, 8, 16, 32, usize::MAX]
            .iter()
            .enumerate()
        {
            let mut cfg = NetworkConfig::new(2, n, Workload::uniform(p, 1));
            cfg.buffer_capacity = (*cap != usize::MAX).then_some(*cap);
            cfg.measure_cycles = (scale.target_messages / scale.reps as u64 / 32).clamp(300, 200_000);
            cfg.warmup_cycles = (cfg.measure_cycles / 10).max(200);
            cfg.seed = BASE_SEED + 400 + i as u64;
            let stats = run_network_replicated(&cfg, scale.reps, scale.threads);
            let offered = stats.injected_total + stats.rejected_total;
            let accept = stats.injected_total as f64 / offered.max(1) as f64;
            let rel = (stats.total_wait.mean() - model.mean_total()).abs() / model.mean_total();
            let overflow = if *cap == usize::MAX {
                "0".to_string()
            } else {
                format!("{:.4}", fs.backlog_overflow_probability(*cap))
            };
            t.row([
                if *cap == usize::MAX {
                    "inf".to_string()
                } else {
                    cap.to_string()
                },
                format!("{:.3}", stats.total_wait.mean()),
                format!("{accept:.4}"),
                format!("{rel:.3}"),
                overflow,
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Moderate buffers reproduce the infinite-buffer waiting times at\n\
         light-to-moderate load (the paper's §I justification); capacity 1-2\n\
         diverges by blocking and rejection.\n",
    );
    out
}

/// Heavy-traffic probe: `(1 − p)·w_∞(p)` and `r(p) = w_∞/w₁` as `p → 1`.
pub fn heavy_traffic(scale: &Scale) -> String {
    let mut t = TextTable::new(
        "Heavy-traffic probe (k=2, m=1): the paper conjectures lim (1-p)*w_inf exists",
    );
    t.header(["p", "w1 exact", "w_inf sim", "r(p)", "(1-p)*w_inf", "paper r-model 1+2p/5"]);
    for (i, &p) in [0.5f64, 0.7, 0.8, 0.9, 0.95].iter().enumerate() {
        let stats = stage_profile(
            2,
            8,
            Workload::uniform(p, 1),
            None,
            false,
            scale,
            BASE_SEED + 440 + i as u64,
        );
        let ns = stats.stage_waits.len();
        let w_inf = 0.5
            * (stats.stage_waits[ns - 1].mean() + stats.stage_waits[ns - 2].mean());
        let w1 = eq6_mean_wait(2, p);
        t.row([
            format!("{p}"),
            format!("{w1:.4}"),
            format!("{w_inf:.4}"),
            format!("{:.4}", w_inf / w1),
            format!("{:.4}", (1.0 - p) * w_inf),
            format!("{:.4}", 1.0 + 2.0 * p / 5.0),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nNote: at p >= 0.9 the 8-stage profile has not fully converged to the\n\
         spatial steady state and longer warmups are needed; the trend in r(p)\n\
         (slightly concave, as the paper observes) is still visible.\n",
    );
    out
}

/// Quantifies §V's "the distribution of waiting times seems to be about
/// the same for all stages": total-variation distance of each stage's
/// waiting pmf from stage 1 and from stage 8.
pub fn stage_shapes(scale: &Scale) -> String {
    use banyan_sim::network::NetworkConfig;
    use banyan_stats::distance::total_variation;
    let mut t = TextTable::new(
        "Stage-distribution similarity (k=2, m=1): TV distance between per-stage waiting pmfs",
    );
    let mut header = vec!["p".to_string()];
    header.extend((1..=8).map(|i| format!("TV(s{i},s1)")));
    header.push("TV(s8,s7)".to_string());
    t.header(header);
    for (i, &p) in [0.2f64, 0.5, 0.8].iter().enumerate() {
        let mut cfg = NetworkConfig::new(2, 8, Workload::uniform(p, 1));
        cfg.collect_stage_histograms = true;
        let ports = 256u64;
        cfg.measure_cycles = (scale.target_messages / scale.reps as u64)
            .div_ceil((ports as f64 * p) as u64)
            .clamp(300, 2_000_000);
        cfg.warmup_cycles = (cfg.measure_cycles / 10).max(200);
        cfg.seed = BASE_SEED + 460 + i as u64;
        let stats = run_network_replicated(&cfg, scale.reps, scale.threads);
        let hists = stats.stage_hists.as_ref().expect("histograms requested");
        let mut cells = vec![format!("{p}")];
        for h in hists.iter() {
            let tv = total_variation(h, |v| hists[0].pmf_at(v));
            cells.push(format!("{tv:.4}"));
        }
        let tv87 = total_variation(&hists[7], |v| hists[6].pmf_at(v));
        cells.push(format!("{tv87:.4}"));
        t.row(cells);
    }
    let mut out = t.render();
    out.push_str(
        "\nDeep stages differ from stage 1 only through the ~r(p) mean shift;\n\
         adjacent deep stages are nearly identical — the premise behind using\n\
         one limiting distribution for all interior stages.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_shapes_quick_runs() {
        let s = stage_shapes(&Scale::quick());
        assert!(s.contains("TV(s8,s7)"));
        assert!(s.contains("0.8"));
    }

    #[test]
    fn finite_buffers_quick_runs() {
        let s = finite_buffers(&Scale::quick());
        assert!(s.contains("capacity"));
        assert!(s.contains("inf"));
    }

    #[test]
    fn heavy_traffic_quick_runs() {
        let s = heavy_traffic(&Scale::quick());
        assert!(s.contains("(1-p)*w_inf"));
        assert!(s.contains("0.95"));
    }
}
