//! Tables VII–XII and Figures 3–8: total waiting time through the
//! network.
//!
//! For each of the six `(p, m)` configurations and `n ∈ {3, 6, 9, 12}`
//! stages:
//!
//! * the **tables** compare simulated mean/variance of the total waiting
//!   time against the §V predictions (stage-sum mean, geometric
//!   covariance-model variance),
//! * the **figures** overlay the simulated histogram with the gamma
//!   distribution fitted to the *predicted* mean and variance, and we
//!   additionally quantify the visual match with a KS distance,
//!   total-variation distance, and tail-probability errors.

use super::{BASE_SEED, TOTAL_CONFIGS, TOTAL_STAGE_COUNTS};
use crate::profile::{total_profile, Scale};
use crate::table::TextTable;
use banyan_core::total_delay::TotalWaiting;
use banyan_obs::DistSketch;
use banyan_sim::network::NetworkStats;
use banyan_stats::distance::{ks_distance, tail_relative_error, total_variation};
use banyan_stats::Gamma;
use std::fmt::Write as _;

/// Runs one total-waiting configuration.
fn run_config(p: f64, m: u32, n: u32, seed: u64, scale: &Scale) -> NetworkStats {
    total_profile(2, n, p, m, scale, seed)
}

/// All 6 × 4 total-waiting runs, memoized so the table, the figures, and
/// the tail-quality summary share one set of simulations (they are by
/// far the most expensive part of the reproduction).
pub struct TotalRuns {
    /// `runs[config][stage_count_index]`, ordered as
    /// [`TOTAL_CONFIGS`] × [`TOTAL_STAGE_COUNTS`].
    pub runs: Vec<Vec<NetworkStats>>,
}

impl TotalRuns {
    /// Executes (or re-executes) every configuration at the given scale.
    pub fn collect(scale: &Scale) -> Self {
        let runs = TOTAL_CONFIGS
            .iter()
            .enumerate()
            .map(|(ci, &(_, _, p, m))| {
                TOTAL_STAGE_COUNTS
                    .iter()
                    .enumerate()
                    .map(|(ni, &n)| {
                        run_config(p, m, n, BASE_SEED + 100 + (ci * 8 + ni) as u64, scale)
                    })
                    .collect()
            })
            .collect();
        TotalRuns { runs }
    }
}

/// **Tables VII–XII** — predicted vs simulated total waiting time.
pub fn table07_12_from(runs: &TotalRuns) -> String {
    let mut out = String::new();
    for (ci, &(label, _, p, m)) in TOTAL_CONFIGS.iter().enumerate() {
        let mut t = TextTable::new(format!(
            "Table {label}. Comparison of predictions to simulations (k=2, p={p}, m={m})"
        ));
        t.header([
            "stages",
            "sim mean",
            "sim var",
            "pred mean",
            "pred var",
            "pred var (indep)",
        ]);
        for (ni, &n) in TOTAL_STAGE_COUNTS.iter().enumerate() {
            let stats = &runs.runs[ci][ni];
            let model = TotalWaiting::new(2, n, p, m);
            t.num_row(
                format!("{n}"),
                &[
                    stats.total_wait.mean(),
                    stats.total_wait.variance(),
                    model.mean_total(),
                    model.var_total(),
                    model.var_total_independent(),
                ],
                3,
            );
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// **Tables VII–XII**, running fresh simulations.
pub fn table07_12(scale: &Scale) -> String {
    table07_12_from(&TotalRuns::collect(scale))
}

/// Renders one figure panel: simulated total-wait pmf vs the gamma
/// fitted to the *predicted* moments (exactly the paper's overlay).
fn figure_panel(label: &str, p: f64, m: u32, n: u32, stats: &NetworkStats) -> String {
    let model = TotalWaiting::new(2, n, p, m);
    let gamma = model.gamma();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure panel: k=2 p={p} m={m} {n} stages  ({label}; {} messages)",
        stats.total_hist.total()
    );
    match &gamma {
        Some(g) => {
            let _ = writeln!(
                out,
                "gamma fit from prediction: shape={:.4} scale={:.4} (mean {:.3}, var {:.3})",
                g.shape(),
                g.scale(),
                g.mean(),
                g.variance()
            );
        }
        None => {
            let _ = writeln!(out, "gamma fit unavailable (degenerate prediction)");
        }
    }
    // Plot up to the empirical 99.9% quantile (the paper's tails).
    let upper = stats.total_hist.quantile(0.999).unwrap_or(0);
    let sim: Vec<f64> = (0..=upper).map(|v| stats.total_hist.pmf_at(v)).collect();
    let model_bins: Vec<f64> = (0..=upper)
        .map(|v| gamma.as_ref().map_or(0.0, |g| g.bin_prob(v)))
        .collect();
    out.push_str(&crate::plot::histogram_overlay(&sim, &model_bins, 48, 1e-9));
    if let Some(g) = &gamma {
        let ks = ks_distance(&stats.total_hist, |x| g.cdf(x));
        let tv = total_variation(&stats.total_hist, |v| g.bin_prob(v));
        let t90 = tail_relative_error(&stats.total_hist, |x| g.sf(x), 0.90);
        let t99 = tail_relative_error(&stats.total_hist, |x| g.sf(x), 0.99);
        let _ = writeln!(
            out,
            "fit quality: KS={ks:.4}  TV={tv:.4}  tail-rel-err@90%={}  @99%={}",
            t90.map_or("n/a".into(), |e| format!("{e:.3}")),
            t99.map_or("n/a".into(), |e| format!("{e:.3}")),
        );
    }
    out
}

/// **Figures 3–8** — total-waiting-time distributions, simulation vs the
/// gamma approximation, for all six configurations and four depths.
pub fn figures_from(runs: &TotalRuns) -> String {
    let mut out = String::new();
    for (ci, &(label, fig, p, m)) in TOTAL_CONFIGS.iter().enumerate() {
        let _ = writeln!(out, "=== Figure {fig} (configuration of Table {label}) ===");
        for (ni, &n) in TOTAL_STAGE_COUNTS.iter().enumerate() {
            out.push_str(&figure_panel(label, p, m, n, &runs.runs[ci][ni]));
            out.push('\n');
        }
    }
    out
}

/// **Figures 3–8**, running fresh simulations.
pub fn figures(scale: &Scale) -> String {
    figures_from(&TotalRuns::collect(scale))
}

/// Relative error of the model tail probability at the sketch's
/// empirical `q`-quantile — the sketch-backed counterpart of
/// [`banyan_stats::distance::tail_relative_error`]. The sketch's CCDF
/// is an exact count ratio over the lossless pmf, so
/// `P_emp(X > x_q) = ccdf_at(x_q + 1)` has no cancellation error —
/// unlike the histogram's `1 − cdf_at(x_q)`, which can be a few ULPs
/// off. The two agree to ~1e-12 relative on the same data (pinned by a
/// test below).
pub fn sketch_tail_error(
    sk: &DistSketch,
    model_sf: impl Fn(f64) -> f64,
    q: f64,
) -> Option<f64> {
    if sk.count() == 0 {
        return None;
    }
    let xq = sk.quantile(q);
    let emp_tail = sk.ccdf_at(xq + 1);
    if emp_tail <= 0.0 {
        return None;
    }
    let model_tail = model_sf(xq as f64 + 1.0);
    Some((model_tail - emp_tail).abs() / emp_tail)
}

/// Summary of gamma-approximation quality across every panel (the
/// quantified version of the paper's "incredibly good match … especially
/// at the tails"). Tail probabilities and the KS statistic are read from
/// a [`DistSketch`] built over the run's total-wait pmf — the same
/// distribution object the simulator telemetry exports — rather than
/// from ad-hoc histogram scans.
pub fn tail_quality_from(runs: &TotalRuns) -> String {
    let mut t = TextTable::new("Gamma-approximation quality across all figure panels");
    t.header([
        "config", "stages", "KS", "TV", "tail@90%", "tail@99%",
    ]);
    for (ci, &(label, _, p, m)) in TOTAL_CONFIGS.iter().enumerate() {
        for (ni, &n) in TOTAL_STAGE_COUNTS.iter().enumerate() {
            let stats = &runs.runs[ci][ni];
            let model = TotalWaiting::new(2, n, p, m);
            let Some(g) = model.gamma() else { continue };
            let sk = DistSketch::from_dense_counts(stats.total_hist.counts());
            let ks = banyan_obs::tail::ks_distance(&sk, |x| g.cdf(x));
            let tv = total_variation(&stats.total_hist, |v| g.bin_prob(v));
            let fmt = |o: Option<f64>| o.map_or("n/a".to_string(), |e| format!("{e:.3}"));
            t.row([
                format!("{label} (p={p}, m={m})"),
                format!("{n}"),
                format!("{ks:.4}"),
                format!("{tv:.4}"),
                fmt(sketch_tail_error(&sk, |x| g.sf(x), 0.90)),
                fmt(sketch_tail_error(&sk, |x| g.sf(x), 0.99)),
            ]);
        }
    }
    t.render()
}

/// Tail-quality summary, running fresh simulations.
pub fn tail_quality(scale: &Scale) -> String {
    tail_quality_from(&TotalRuns::collect(scale))
}

/// Machine-readable CSV of every figure panel's series:
/// `figure,table,p,m,stages,t,sim_pmf,gamma_pmf`. Suitable for direct
/// plotting (gnuplot/matplotlib) of Figs. 3–8.
pub fn figures_csv_from(runs: &TotalRuns) -> String {
    let mut out = String::from("figure,table,p,m,stages,t,sim_pmf,gamma_pmf\n");
    for (ci, &(label, fig, p, m)) in TOTAL_CONFIGS.iter().enumerate() {
        for (ni, &n) in TOTAL_STAGE_COUNTS.iter().enumerate() {
            let stats = &runs.runs[ci][ni];
            let model = TotalWaiting::new(2, n, p, m);
            let gamma = model.gamma();
            let upper = stats.total_hist.quantile(0.999).unwrap_or(0);
            for v in 0..=upper {
                let sim = stats.total_hist.pmf_at(v);
                let gp = gamma.as_ref().map_or(0.0, |g| g.bin_prob(v));
                let _ = writeln!(out, "{fig},{label},{p},{m},{n},{v},{sim:.6e},{gp:.6e}");
            }
        }
    }
    out
}

/// Moment-matched gamma fitted directly to *simulated* moments — used by
/// the ablation that asks how much prediction error (vs pure
/// distributional-shape error) contributes to the figure mismatch.
pub fn gamma_from_sim(stats: &NetworkStats) -> Option<Gamma> {
    Gamma::from_mean_var(stats.total_wait.mean(), stats.total_wait.variance())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table07_12_quick_contains_all_labels() {
        let s = table07_12(&Scale::quick());
        for &(label, _, _, _) in &TOTAL_CONFIGS {
            assert!(s.contains(&format!("Table {label}.")), "{label}");
        }
        assert!(s.contains("pred var (indep)"));
    }

    #[test]
    fn figures_csv_has_all_panels() {
        let runs = TotalRuns::collect(&Scale::quick());
        let csv = figures_csv_from(&runs);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "figure,table,p,m,stages,t,sim_pmf,gamma_pmf"
        );
        // 6 figures × 4 depths, each with at least a t=0 row.
        for &(label, fig, p, m) in &TOTAL_CONFIGS {
            for &n in &TOTAL_STAGE_COUNTS {
                let prefix = format!("{fig},{label},{p},{m},{n},0,");
                assert!(
                    csv.lines().any(|l| l.starts_with(&prefix)),
                    "missing panel row: {prefix}"
                );
            }
        }
        // All data rows parse into 8 comma-separated fields.
        for l in csv.lines().skip(1) {
            assert_eq!(l.split(',').count(), 8, "bad row: {l}");
        }
    }

    #[test]
    fn figure_panel_quick_renders_series() {
        let stats = run_config(0.5, 1, 3, 1, &Scale::quick());
        let s = figure_panel("IX", 0.5, 1, 3, &stats);
        assert!(s.contains("gamma fit from prediction"));
        assert!(s.contains("KS="));
        assert!(s.lines().count() > 5);
    }

    #[test]
    fn sketch_helpers_agree_with_histogram_helpers() {
        // The sketch-backed tail/KS readings must equal the histogram
        // versions bit-for-bit on the same data — the tail_quality table
        // rework changes the data source, not the numbers.
        let stats = run_config(0.5, 1, 3, 2, &Scale::quick());
        let model = TotalWaiting::new(2, 3, 0.5, 1);
        let g = model.gamma().unwrap();
        let sk = DistSketch::from_dense_counts(stats.total_hist.counts());
        assert_eq!(sk.count(), stats.total_hist.total());
        let ks_hist = ks_distance(&stats.total_hist, |x| g.cdf(x));
        let ks_sk = banyan_obs::tail::ks_distance(&sk, |x| g.cdf(x));
        assert_eq!(ks_sk.to_bits(), ks_hist.to_bits());
        // Tail errors agree to rounding: the sketch CCDF is an exact
        // count ratio, the histogram's `1 − cdf` may differ by a few
        // ULPs of cancellation.
        for q in [0.90, 0.99] {
            let a = tail_relative_error(&stats.total_hist, |x| g.sf(x), q).unwrap();
            let b = sketch_tail_error(&sk, |x| g.sf(x), q).unwrap();
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "q={q}: {a} vs {b}");
        }
    }

    #[test]
    fn total_wait_ks_vs_prediction_pinned_at_half_load() {
        // Tier-1 drift gate at the calibration point k = 2, p = 0.5,
        // m = 1 (3 stages, quick scale, fixed seed): the KS distance
        // between the simulated total-wait sketch and the gamma fitted
        // to the §V *predicted* moments must stay under a pinned
        // tolerance. The run is deterministic, so any regression in the
        // simulator or the prediction moves this number.
        let stats = run_config(0.5, 1, 3, BASE_SEED + 100 + 16, &Scale::quick());
        let model = TotalWaiting::new(2, 3, 0.5, 1);
        let g = model.gamma().unwrap();
        let sk = DistSketch::from_dense_counts(stats.total_hist.counts());
        let ks = banyan_obs::tail::ks_distance(&sk, |x| g.cdf(x));
        assert!(ks < 0.05, "KS drift vs prediction: {ks}");
        // And the simulated mean sits near the analytic stage-sum mean.
        let rel = (sk.mean() - model.mean_total()).abs() / model.mean_total();
        assert!(rel < 0.05, "mean drift: {rel}");
    }
}
