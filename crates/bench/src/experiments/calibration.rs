//! Re-fitting the §IV interpolation constants from our own simulations —
//! the paper's methodology, reproduced end to end.
//!
//! The paper fitted `a` (the `r(p) = 1 + a·p` slope), the geometric
//! approach rate `α`, the variance multipliers, and the nonuniform-`q`
//! slopes against simulation at `p = 0.5`. Parts of the printed constants
//! are illegible in the available scan; this experiment recovers them all
//! and reports the fits next to the defaults used in `StageConstants`.

use super::BASE_SEED;
use crate::profile::{stage_profile, Scale};
use crate::table::TextTable;
use banyan_core::calibrate::{
    fit_alpha, fit_mean_coeff, fit_slope_with_intercept, fit_var_coeffs, MeanRatioPoint,
    VarRatioPoint,
};
use banyan_core::later_stages::StageConstants;
use banyan_core::models::{nonuniform_queue, uniform_queue};
use banyan_sim::network::NetworkStats;
use banyan_sim::traffic::Workload;

const STAGES: u32 = 8;

/// The simulated deep-stage limit: average of the last two stages (they
/// agree to within noise once the spatial steady state is reached).
fn deep_mean(stats: &NetworkStats) -> f64 {
    let n = stats.stage_waits.len();
    0.5 * (stats.stage_waits[n - 1].mean() + stats.stage_waits[n - 2].mean())
}

fn deep_var(stats: &NetworkStats) -> f64 {
    let n = stats.stage_waits.len();
    0.5 * (stats.stage_waits[n - 1].variance() + stats.stage_waits[n - 2].variance())
}

/// Runs the full calibration suite and reports fitted constants.
pub fn calibration(scale: &Scale) -> String {
    // Uniform m = 1 grid over (p, k).
    let grid: [(f64, u32, Option<u32>); 5] = [
        (0.2, 2, None),
        (0.5, 2, None),
        (0.8, 2, None),
        (0.5, 4, Some(4)),
        (0.5, 8, Some(3)),
    ];
    let mut mean_pts = Vec::new();
    let mut var_pts = Vec::new();
    let mut alpha_profile: Option<NetworkStats> = None;
    for (i, &(p, k, width)) in grid.iter().enumerate() {
        let stats = stage_profile(
            k,
            STAGES,
            Workload::uniform(p, 1),
            width,
            false,
            scale,
            BASE_SEED + 200 + i as u64,
        );
        let q = uniform_queue(k, p, 1).expect("stable");
        mean_pts.push(MeanRatioPoint {
            p,
            k,
            w1: q.mean_wait(),
            w_inf: deep_mean(&stats),
        });
        var_pts.push(VarRatioPoint {
            p,
            k,
            v1: q.var_wait(),
            v_inf: deep_var(&stats),
        });
        if (p, k) == (0.5, 2) {
            alpha_profile = Some(stats);
        }
    }

    let mean_coeff = fit_mean_coeff(&mean_pts);
    let var_coeffs = fit_var_coeffs(&var_pts);
    let alpha = alpha_profile.as_ref().and_then(|s| {
        let means: Vec<f64> = s.stage_waits.iter().map(|w| w.mean()).collect();
        fit_alpha(&means[..6], deep_mean(s))
    });

    // Nonuniform slopes at p = 0.5, k = 2.
    let defaults = StageConstants::default();
    let r0 = defaults.ratio_limit(0.5, 2);
    let v0 = 1.0 + (defaults.var_p1 * 0.5 + defaults.var_p2 * 0.25) / 2.0;
    let mut mean_q_pts = Vec::new();
    let mut var_q_pts = Vec::new();
    for (i, &qf) in [0.2f64, 0.4, 0.6, 0.8].iter().enumerate() {
        let stats = stage_profile(
            2,
            STAGES,
            Workload::hotspot(0.5, qf),
            None,
            false,
            scale,
            BASE_SEED + 220 + i as u64,
        );
        let q = nonuniform_queue(2, 0.5, qf, 1).expect("stable");
        mean_q_pts.push((qf, deep_mean(&stats) / q.mean_wait()));
        var_q_pts.push((qf, deep_var(&stats) / q.var_wait()));
    }
    let nonuni_mean_slope = fit_slope_with_intercept(&mean_q_pts, r0);
    let nonuni_var_slope = fit_slope_with_intercept(&var_q_pts, v0);

    let mut t = TextTable::new("Calibration of the §IV interpolation constants (fit vs shipped defaults)");
    t.header(["constant", "fitted", "default", "paper (where legible)"]);
    let fmt = |o: Option<f64>| o.map_or("n/a".to_string(), |v| format!("{v:.4}"));
    t.row([
        "mean_coeff (r = 1 + c*p/k)".to_string(),
        fmt(mean_coeff),
        format!("{:.4}", defaults.mean_coeff),
        "0.8 (a=2/5 at k=2)".to_string(),
    ]);
    t.row([
        "var_p1".to_string(),
        fmt(var_coeffs.map(|c| c.0)),
        format!("{:.4}", defaults.var_p1),
        "illegible".to_string(),
    ]);
    t.row([
        "var_p2".to_string(),
        fmt(var_coeffs.map(|c| c.1)),
        format!("{:.4}", defaults.var_p2),
        "illegible".to_string(),
    ]);
    t.row([
        "alpha (stage approach)".to_string(),
        fmt(alpha),
        format!("{:.4}", defaults.alpha),
        "0.4 (=2/5)".to_string(),
    ]);
    t.row([
        "nonuni_mean_slope".to_string(),
        fmt(nonuni_mean_slope),
        format!("{:.4}", defaults.nonuni_mean_slope),
        "illegible".to_string(),
    ]);
    t.row([
        "nonuni_var_slope".to_string(),
        fmt(nonuni_var_slope),
        format!("{:.4}", defaults.nonuni_var_slope),
        "illegible".to_string(),
    ]);
    let mut out = t.render();
    out.push_str("\nmean-ratio points (p, k, w1 exact, w_inf sim, ratio):\n");
    for pt in &mean_pts {
        out.push_str(&format!(
            "  p={:<5} k={}  w1={:.4}  w_inf={:.4}  ratio={:.4}\n",
            pt.p,
            pt.k,
            pt.w1,
            pt.w_inf,
            pt.w_inf / pt.w1
        ));
    }
    out.push_str("variance-ratio points (p, k, v1 exact, v_inf sim, ratio):\n");
    for pt in &var_pts {
        out.push_str(&format!(
            "  p={:<5} k={}  v1={:.4}  v_inf={:.4}  ratio={:.4}\n",
            pt.p,
            pt.k,
            pt.v1,
            pt.v_inf,
            pt.v_inf / pt.v1
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_quick_produces_fits() {
        let s = calibration(&Scale::quick());
        assert!(s.contains("mean_coeff"));
        assert!(s.contains("alpha"));
        assert!(s.contains("ratio="));
    }
}
