//! Tables I–V: per-stage waiting-time means and variances.
//!
//! Table layout follows the paper: one column pair `(w, v)` per parameter
//! value, rows for simulated stages 1…8, then ANALYSIS (the exact
//! first-stage formulas of §II–III) and ESTIMATE (the §IV limiting
//! approximations).

use super::BASE_SEED;
use crate::profile::{stage_profile, Scale};
use crate::table::TextTable;
use banyan_core::later_stages::StageConstants;
use banyan_core::models::{mixed_queue, nonuniform_queue, uniform_queue};
use banyan_sim::network::NetworkStats;
use banyan_sim::traffic::{ServiceDist, Workload};

const STAGES: u32 = 8;

/// Builds one paper-style stage table from per-configuration runs.
///
/// One column group: `(label, sim stats, analysis (w1, v1),
/// estimate (w_inf, v_inf))`.
type StageColumn = (String, NetworkStats, (f64, f64), (f64, f64));

fn render_stage_table(title: &str, columns: &[StageColumn], digits: usize) -> String {
    let mut t = TextTable::new(title);
    let mut header = vec!["".to_string()];
    for (label, _, _, _) in columns {
        header.push(format!("w {label}"));
        header.push(format!("v {label}"));
    }
    t.header(header);
    for stage in 0..STAGES as usize {
        let mut vals = Vec::with_capacity(columns.len() * 2);
        for (_, stats, _, _) in columns {
            vals.push(stats.stage_waits[stage].mean());
            vals.push(stats.stage_waits[stage].variance());
        }
        t.num_row(format!("stage {}", stage + 1), &vals, digits);
    }
    let mut analysis = Vec::new();
    let mut estimate = Vec::new();
    for (_, _, (w1, v1), (wi, vi)) in columns {
        analysis.extend([*w1, *v1]);
        estimate.extend([*wi, *vi]);
    }
    t.num_row("ANALYSIS", &analysis, digits);
    t.num_row("ESTIMATE", &estimate, digits);
    t.render()
}

/// **Table I** — waiting times and variances, `p` varying
/// (`k = 2, m = 1, q = 0`).
pub fn table01(scale: &Scale) -> String {
    let consts = StageConstants::default();
    let columns: Vec<_> = [0.2, 0.35, 0.5, 0.65, 0.8]
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let stats = stage_profile(
                2,
                STAGES,
                Workload::uniform(p, 1),
                None,
                false,
                scale,
                BASE_SEED + i as u64,
            );
            let q = uniform_queue(2, p, 1).expect("stable");
            let analysis = (q.mean_wait(), q.var_wait());
            let estimate = (consts.w_inf(p, 2), consts.v_inf(p, 2));
            (format!("p={p}"), stats, analysis, estimate)
        })
        .collect();
    render_stage_table(
        "Table I. Waiting times and variances: p varying (k=2, m=1, q=0)",
        &columns,
        4,
    )
}

/// **Table II** — waiting times and variances, `k` varying
/// (`p = 0.5, m = 1, q = 0`). `k = 4, 8` use the random-digit cylinder
/// (statistically identical under uniform traffic; a full 8-stage banyan
/// would need `k^8` ports).
pub fn table02(scale: &Scale) -> String {
    let consts = StageConstants::default();
    let p = 0.5;
    let configs: [(u32, Option<u32>); 3] = [(2, None), (4, Some(4)), (8, Some(3))];
    let columns: Vec<_> = configs
        .iter()
        .enumerate()
        .map(|(i, &(k, width))| {
            let stats = stage_profile(
                k,
                STAGES,
                Workload::uniform(p, 1),
                width,
                false,
                scale,
                BASE_SEED + 10 + i as u64,
            );
            let q = uniform_queue(k, p, 1).expect("stable");
            let analysis = (q.mean_wait(), q.var_wait());
            let estimate = (consts.w_inf(p, k), consts.v_inf(p, k));
            (format!("k={k}"), stats, analysis, estimate)
        })
        .collect();
    render_stage_table(
        "Table II. Waiting times and variances: k varying (p=0.5, m=1, q=0)",
        &columns,
        4,
    )
}

/// **Table III** — waiting times and variances, `p` and `m` varying with
/// `ρ = mp = 0.5` (`k = 2, q = 0`).
pub fn table03(scale: &Scale) -> String {
    let consts = StageConstants::default();
    let columns: Vec<_> = [2u32, 4, 8, 16]
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let p = 0.5 / m as f64;
            let stats = stage_profile(
                2,
                STAGES,
                Workload::uniform(p, m),
                None,
                false,
                scale,
                BASE_SEED + 20 + i as u64,
            );
            let q = uniform_queue(2, p, m).expect("stable");
            let analysis = (q.mean_wait(), q.var_wait());
            let estimate = (
                consts.w_inf_m(p, 2, m as f64),
                consts.v_inf_m(p, 2, m as f64),
            );
            (format!("m={m}"), stats, analysis, estimate)
        })
        .collect();
    render_stage_table(
        "Table III. Waiting times and variances: p and m varying with rho=0.5 (k=2, q=0)",
        &columns,
        3,
    )
}

/// **Table IV** — size mixtures `{4, 8}` with varying mixing
/// probabilities, `ρ = 0.5` (`k = 2, q = 0`).
pub fn table04(scale: &Scale) -> String {
    let consts = StageConstants::default();
    let columns: Vec<_> = [1.0f64, 0.75, 0.5, 0.25, 0.0]
        .iter()
        .enumerate()
        .map(|(i, &g4)| {
            let sizes = vec![(4u32, g4), (8u32, 1.0 - g4)];
            let mbar: f64 = sizes.iter().map(|&(m, g)| m as f64 * g).sum();
            let p = 0.5 / mbar;
            let stats = stage_profile(
                2,
                STAGES,
                Workload {
                    p,
                    q: 0.0,
                    service: ServiceDist::Mixed(sizes.clone()),
                },
                None,
                false,
                scale,
                BASE_SEED + 30 + i as u64,
            );
            let q = mixed_queue(2, p, sizes).expect("stable");
            let analysis = (q.mean_wait(), q.var_wait());
            let estimate = (
                consts.w_inf_multi(p, 2, mbar, q.mean_wait()),
                consts.v_inf_multi(p, 2, mbar, q.var_wait()),
            );
            (format!("g4={g4}"), stats, analysis, estimate)
        })
        .collect();
    render_stage_table(
        "Table IV. Waiting times and variances: sizes {4,8}, mixing probability varying with rho=0.5 (k=2, q=0)",
        &columns,
        3,
    )
}

/// **Table V** — nonuniform (favorite-output) traffic, `q` varying
/// (`p = 0.5, k = 2, m = 1`).
pub fn table05(scale: &Scale) -> String {
    let consts = StageConstants::default();
    let p = 0.5;
    let columns: Vec<_> = [0.0f64, 0.25, 0.5, 0.75]
        .iter()
        .enumerate()
        .map(|(i, &qf)| {
            let stats = stage_profile(
                2,
                STAGES,
                Workload::hotspot(p, qf),
                None,
                false,
                scale,
                BASE_SEED + 40 + i as u64,
            );
            let q = nonuniform_queue(2, p, qf, 1).expect("stable");
            let analysis = (q.mean_wait(), q.var_wait());
            let estimate = (
                consts.w_inf_nonuniform(p, 2, qf, q.mean_wait()),
                consts.v_inf_nonuniform(p, 2, qf, q.var_wait()),
            );
            (format!("q={qf}"), stats, analysis, estimate)
        })
        .collect();
    render_stage_table(
        "Table V. Waiting times and variances: q varying (p=0.5, k=2, m=1)",
        &columns,
        4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table01_quick_has_expected_shape() {
        let s = table01(&Scale::quick());
        assert!(s.contains("Table I."));
        assert!(s.contains("stage 8"));
        assert!(s.contains("ANALYSIS"));
        assert!(s.contains("ESTIMATE"));
        // 5 p-values → 11 header cells; sanity: p=0.5 column exists.
        assert!(s.contains("w p=0.5"));
    }

    #[test]
    fn table03_quick_runs() {
        let s = table03(&Scale::quick());
        assert!(s.contains("m=16"));
        assert!(s.contains("ESTIMATE"));
    }

    #[test]
    fn table05_quick_runs() {
        let s = table05(&Scale::quick());
        assert!(s.contains("q=0.75"));
    }
}
