//! Ablations of the §V design choices.
//!
//! 1. **Covariance model** — how much does the total-waiting variance
//!    prediction gain from the geometric covariance model over (a) plain
//!    independence and (b) adjacent-stage-only covariance? (§V argues
//!    correlations are small but not negligible.)
//! 2. **Single stage-approach rate** — the paper uses one `α = 2/5` for
//!    all `p` and `k` ("what is perhaps surprising is that a single value
//!    of α works well"). We fit `α` per configuration and report the
//!    spread.

use super::BASE_SEED;
use crate::profile::{stage_profile, total_profile, Scale};
use crate::table::TextTable;
use banyan_core::calibrate::fit_alpha;
use banyan_core::total_delay::TotalWaiting;
use banyan_sim::traffic::Workload;

/// Covariance-model ablation over the Table VII/IX/XI configurations.
pub fn ablation_covariance(scale: &Scale) -> String {
    let mut t = TextTable::new(
        "Ablation: total-waiting variance prediction vs simulation (k=2, n=12)",
    );
    t.header([
        "config",
        "sim var",
        "independent",
        "adjacent-only",
        "full geometric",
    ]);
    for (i, &(p, m)) in [(0.2, 1u32), (0.5, 1), (0.8, 1), (0.125, 4)].iter().enumerate() {
        let n = 12;
        let stats = total_profile(2, n, p, m, scale, BASE_SEED + 300 + i as u64);
        let model = TotalWaiting::new(2, n, p, m);
        // Adjacent-only: keep only the lag-1 covariance term,
        // Σ v_i (1 + 2a·[i < n]).
        let (a, _) = model.cov_params();
        let adjacent: f64 = (1..=n)
            .map(|s| {
                let factor = if s < n { 1.0 + 2.0 * a } else { 1.0 };
                model.stage_var(s) * factor
            })
            .sum();
        t.num_row(
            format!("p={p}, m={m}"),
            &[
                stats.total_wait.variance(),
                model.var_total_independent(),
                adjacent,
                model.var_total(),
            ],
            3,
        );
    }
    t.render()
}

/// Distributional-model ablation: the §V gamma (moment-matched to the
/// §IV predictions) against the naive i.i.d. n-fold convolution of the
/// exact first-stage pmf, both graded against the simulated histogram.
pub fn ablation_convolution(scale: &Scale) -> String {
    use banyan_stats::distance::{ks_distance, total_variation};
    let mut t = TextTable::new(
        "Ablation: total-waiting distribution models vs simulation (k=2, KS / TV distances)",
    );
    t.header([
        "config",
        "KS gamma",
        "KS conv",
        "TV gamma",
        "TV conv",
    ]);
    for (i, &(p, m, n)) in [(0.2, 1u32, 6u32), (0.5, 1, 6), (0.5, 1, 12), (0.8, 1, 9)]
        .iter()
        .enumerate()
    {
        let stats = total_profile(2, n, p, m, scale, BASE_SEED + 340 + i as u64);
        let model = TotalWaiting::new(2, n, p, m);
        let g = model.gamma().expect("positive load");
        let len = (stats.total_hist.max_value().unwrap_or(32) as usize + 32).next_power_of_two();
        let conv = model.waiting_pmf_convolution(len);
        let conv_cdf: Vec<f64> = conv
            .iter()
            .scan(0.0, |acc, &x| {
                *acc += x;
                Some(*acc)
            })
            .collect();
        let ks_g = ks_distance(&stats.total_hist, |x| g.cdf(x));
        // The convolution model is discrete: evaluate its CDF at the bin.
        let ks_c = ks_distance(&stats.total_hist, |x| {
            let idx = x.floor().max(0.0) as usize;
            conv_cdf.get(idx).copied().unwrap_or(1.0)
        });
        let tv_g = total_variation(&stats.total_hist, |v| g.bin_prob(v));
        let tv_c = total_variation(&stats.total_hist, |v| {
            conv.get(v as usize).copied().unwrap_or(0.0)
        });
        t.num_row(
            format!("p={p}, m={m}, n={n}"),
            &[ks_g, ks_c, tv_g, tv_c],
            4,
        );
    }
    let mut out = t.render();
    out.push_str(
        "\nThe i.i.d. convolution ignores both the stage-to-stage growth of the\n\
         mean (Eq. 10) and the positive covariances (§V), so the gamma fitted\n\
         to the corrected moments wins — the paper's design choice.\n",
    );
    out
}

/// Switch-discipline ablation: output-queued (the paper's model) vs
/// input-queued FIFO with HOL blocking, on the same wiring and load.
/// Shows why Ultracomputer/RP3-class designs buffer at outputs — and how
/// far the paper's formulas are from describing the cheaper fabric.
pub fn ablation_discipline(scale: &Scale) -> String {
    use banyan_sim::input_queued::{run_input_queued, InputQueuedConfig};
    use banyan_sim::network::NetworkConfig;
    use banyan_sim::runner::run_network_replicated;
    let n = 6u32;
    let mut t = TextTable::new(format!(
        "Ablation: output-queued (paper model) vs input-queued FIFO (k=2, n={n}, m=1)"
    ));
    t.header([
        "p",
        "OQ mean total wait",
        "IQ mean total wait",
        "IQ/OQ",
        "prediction (OQ)",
    ]);
    for (i, &p) in [0.2f64, 0.35, 0.5, 0.6].iter().enumerate() {
        let ports = 64u64;
        let cycles = (scale.target_messages / scale.reps as u64)
            .div_ceil((ports as f64 * p) as u64)
            .clamp(300, 500_000);
        let mut oq_cfg = NetworkConfig::new(2, n, Workload::uniform(p, 1));
        oq_cfg.measure_cycles = cycles;
        oq_cfg.warmup_cycles = (cycles / 10).max(200);
        oq_cfg.seed = BASE_SEED + 360 + i as u64;
        let oq = run_network_replicated(&oq_cfg, scale.reps, scale.threads);
        let iq_cfg = InputQueuedConfig {
            warmup_cycles: (cycles / 10).max(200),
            measure_cycles: cycles,
            seed: BASE_SEED + 370 + i as u64,
            ..InputQueuedConfig::new(2, n, Workload::uniform(p, 1))
        };
        let iq = run_input_queued(iq_cfg);
        let model = TotalWaiting::new(2, n, p, 1);
        t.row([
            format!("{p}"),
            format!("{:.3}", oq.total_wait.mean()),
            format!("{:.3}", iq.total_wait.mean()),
            format!("{:.2}", iq.total_wait.mean() / oq.total_wait.mean()),
            format!("{:.3}", model.mean_total()),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nHOL blocking makes the input-queued fabric diverge well before the\n\
         output-queued one; the paper's formulas describe only the latter.\n",
    );
    out
}

/// Stage-approach-rate ablation: fitted `α` per configuration.
pub fn ablation_stage_rate(scale: &Scale) -> String {
    let mut t = TextTable::new(
        "Ablation: fitted geometric stage-approach rate alpha (paper uses a single 0.4)",
    );
    t.header(["config", "fitted alpha"]);
    let grid: [(f64, u32, Option<u32>); 5] = [
        (0.2, 2, None),
        (0.5, 2, None),
        (0.8, 2, None),
        (0.5, 4, Some(4)),
        (0.5, 8, Some(3)),
    ];
    for (i, &(p, k, width)) in grid.iter().enumerate() {
        let stats = stage_profile(
            k,
            8,
            Workload::uniform(p, 1),
            width,
            false,
            scale,
            BASE_SEED + 320 + i as u64,
        );
        let means: Vec<f64> = stats.stage_waits.iter().map(|w| w.mean()).collect();
        let n = means.len();
        let w_inf = 0.5 * (means[n - 1] + means[n - 2]);
        let fitted = fit_alpha(&means[..6], w_inf);
        t.row([
            format!("p={p}, k={k}"),
            fitted.map_or("n/a".to_string(), |a| format!("{a:.3}")),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolution_ablation_quick() {
        let s = ablation_convolution(&Scale::quick());
        assert!(s.contains("KS gamma"));
        assert!(s.contains("n=12"));
    }

    #[test]
    fn discipline_ablation_quick() {
        let s = ablation_discipline(&Scale::quick());
        assert!(s.contains("IQ/OQ"));
        assert!(s.contains("0.6"));
    }

    #[test]
    fn covariance_ablation_quick() {
        let s = ablation_covariance(&Scale::quick());
        assert!(s.contains("full geometric"));
        assert!(s.contains("p=0.5, m=1"));
    }

    #[test]
    fn stage_rate_ablation_quick() {
        let s = ablation_stage_rate(&Scale::quick());
        assert!(s.contains("fitted alpha"));
        assert!(s.contains("p=0.8, k=2"));
    }
}
