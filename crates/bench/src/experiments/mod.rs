//! The paper's evaluation, regenerated.
//!
//! One public function per table/figure group; each returns the rendered
//! text (the binaries in `src/bin/` print it and `repro_all` collects
//! everything into `results/`). All functions accept a
//! [`crate::profile::Scale`] so the identical code paths run at smoke
//! scale in tests and at full scale for `EXPERIMENTS.md`.
//!
//! | Paper artifact | Function |
//! |----------------|----------|
//! | Table I   (p varying, k=2, m=1)            | [`stage_tables::table01`] |
//! | Table II  (k varying, p=0.5, m=1)          | [`stage_tables::table02`] |
//! | Table III (m varying, ρ=0.5, k=2)          | [`stage_tables::table03`] |
//! | Table IV  (size mixtures {4,8}, ρ=0.5)     | [`stage_tables::table04`] |
//! | Table V   (q varying, p=0.5, k=2, m=1)     | [`stage_tables::table05`] |
//! | Table VI  (cross-stage correlations)       | [`correlations::table06`] |
//! | Tables VII–XII (total waiting, 6 configs)  | [`totals::table07_12`] |
//! | Figs. 3–8 (total-wait histograms vs gamma) | [`totals::figures`] |
//! | §IV constant fitting                       | [`calibration::calibration`] |
//! | Covariance-model ablation                  | [`ablations::ablation_covariance`] |
//! | Stage-rate ablation                        | [`ablations::ablation_stage_rate`] |

pub mod ablations;
pub mod calibration;
pub mod correlations;
pub mod extensions;
pub mod stage_tables;
pub mod totals;

/// The six total-delay configurations of Tables VII–XII / Figs. 3–8
/// (`k = 2` throughout): `(table label, figure number, p, m)`.
pub const TOTAL_CONFIGS: [(&str, u32, f64, u32); 6] = [
    ("VII", 3, 0.2, 1),
    ("VIII", 4, 0.05, 4),
    ("IX", 5, 0.5, 1),
    ("X", 6, 0.125, 4),
    ("XI", 7, 0.8, 1),
    ("XII", 8, 0.2, 4),
];

/// Stage counts used by the total-delay experiments.
pub const TOTAL_STAGE_COUNTS: [u32; 4] = [3, 6, 9, 12];

/// Base RNG seed for all shipped experiments (deterministic outputs).
pub const BASE_SEED: u64 = 0x1986_0317;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_stable_loads() {
        for &(_, _, p, m) in &TOTAL_CONFIGS {
            assert!(m as f64 * p < 1.0);
        }
    }

    #[test]
    fn figure_numbers_are_3_through_8() {
        let figs: Vec<u32> = TOTAL_CONFIGS.iter().map(|c| c.1).collect();
        assert_eq!(figs, vec![3, 4, 5, 6, 7, 8]);
    }
}
