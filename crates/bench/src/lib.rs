//! # banyan-bench
//!
//! The evaluation harness: regenerates **every table and figure** of
//! Kruskal–Snir–Weiss and the ablations described in `DESIGN.md`.
//!
//! Run individual experiments with the thin binaries:
//!
//! ```text
//! cargo run -p banyan-bench --release --bin table01      # Table I
//! cargo run -p banyan-bench --release --bin table07_12   # Tables VII–XII
//! cargo run -p banyan-bench --release --bin figures      # Figs. 3–8 series
//! cargo run -p banyan-bench --release --bin repro_all    # everything → results/
//! ```
//!
//! Every binary accepts `--quick` for a fast smoke run. Performance
//! microbenchmarks live in `benches/` on the in-repo harness
//! ([`micro`]); they are also exposed as binaries so
//! `cargo run -p banyan-bench --release --bin bench_analysis` (or
//! `bench_simulator`, `bench_numerics`) works without `cargo bench`,
//! each writing `results/BENCH_<suite>.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod manifest;
pub mod micro;
pub mod plot;
pub mod profile;
pub mod suites;
pub mod table;

use profile::Scale;

/// Parses the common CLI convention of the repro binaries: `--quick`
/// selects the smoke scale, anything else (or nothing) the full scale.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_default_is_full() {
        // In the test harness argv there is no --quick; this pins the
        // default branch.
        let s = super::scale_from_args();
        assert!(s.target_messages >= super::profile::Scale::quick().target_messages);
    }
}
