//! The three microbenchmark suites, shared between the `cargo bench`
//! targets in `benches/` and the `bench_*` binaries (so
//! `cargo run -p banyan-bench --release --bin bench_analysis` works
//! without the bench harness).

use crate::micro::{black_box, Suite};

/// Analytical layer: closed-form moments, full pmf inversion, gamma
/// fitting, and the total-delay model. These quantify the paper's
/// motivating claim that formulas are orders of magnitude cheaper than
/// simulation.
pub fn analysis() -> std::path::PathBuf {
    use banyan_core::models::{mixed_queue, uniform_queue};
    use banyan_core::total_delay::TotalWaiting;
    use banyan_stats::Gamma;

    let mut s = Suite::new("analysis");

    s.bench("first_stage_mean_var_uniform", || {
        let q = uniform_queue(black_box(2), black_box(0.5), black_box(1)).unwrap();
        (q.mean_wait(), q.var_wait())
    });
    s.bench("first_stage_mean_var_mixed", || {
        let q = mixed_queue(2, 0.05, vec![(4, 0.5), (8, 0.5)]).unwrap();
        (q.mean_wait(), q.var_wait())
    });

    let q = uniform_queue(2, 0.5, 1).unwrap();
    s.bench("waiting_pmf_64_terms", || q.pmf(black_box(64)));
    let q8 = uniform_queue(2, 0.8, 1).unwrap();
    s.bench("waiting_pmf_256_terms_heavy_load", || {
        q8.pmf(black_box(256))
    });

    s.bench("tail_decay_rate", || q.tail_decay_rate());

    s.bench("total_delay_mean_var_12_stages", || {
        let t = TotalWaiting::new(2, 12, black_box(0.5), 1);
        (t.mean_total(), t.var_total())
    });

    let g = Gamma::from_mean_var(3.59, 3.74).unwrap();
    s.bench("gamma_cdf", || g.cdf(black_box(4.2)));
    s.bench("gamma_quantile_999", || g.quantile(black_box(0.999)));

    s.finish()
}

/// Simulation substrate: cycles/second of the network simulator at the
/// paper's configurations and of the single-queue Lindley simulator.
pub fn simulator() -> std::path::PathBuf {
    use banyan_sim::network::{run_network, NetworkConfig};
    use banyan_sim::queue::{run_queue, ArrivalDist, QueueConfig};
    use banyan_sim::traffic::{ServiceDist, Workload};

    let mut s = Suite::new("simulator");

    for &(k, n, p, m, label) in &[
        (2u32, 6u32, 0.5, 1u32, "network_k2_n6_p05_m1"),
        (2, 10, 0.5, 1, "network_k2_n10_p05_m1"),
        (2, 6, 0.125, 4, "network_k2_n6_p0125_m4"),
    ] {
        let cycles = 3_000u64;
        let mk = move || NetworkConfig {
            warmup_cycles: 100,
            measure_cycles: cycles,
            ..NetworkConfig::new(k, n, Workload::uniform(p, m))
        };
        // The run is deterministic, so one probe run yields the exact
        // delivered-message count every timed iteration will repeat —
        // giving both cycles/sec and delivered-messages/sec.
        let delivered = run_network(mk()).delivered;
        s.bench_throughput2(label, cycles, delivered, move || {
            run_network(mk()).delivered
        });
    }

    // Replicated Table-I family (k = 2, 8 stages = 256 ports): the
    // replication runner's scalar engine vs the lane-sweep engine the
    // Auto policy picks, across the load sweep ρ = 0.2..0.8. One thread
    // and reps = lane width, so both engines schedule the identical
    // work as one worker chunk. Suite-scale cycle counts keep a
    // full-effort run tractable; EXPERIMENTS.md records the
    // experiment-scale family numbers.
    {
        use banyan_obs::Telemetry;
        use banyan_sim::{run_network_replicated_with_engine, ReplicationEngine};
        let reps = 16u32;
        let measure = 500u64;
        for &(p, tag) in &[
            (0.2, "p020"),
            (0.35, "p035"),
            (0.5, "p050"),
            (0.65, "p065"),
            (0.8, "p080"),
        ] {
            let mk = move || NetworkConfig {
                warmup_cycles: 100,
                measure_cycles: measure,
                ..NetworkConfig::new(2, 8, Workload::uniform(p, 1))
            };
            // Engines are bit-identical, so one probe run gives the
            // delivered count both timed rows repeat.
            let delivered = run_network_replicated_with_engine(
                &mk(),
                reps,
                1,
                &Telemetry::off(),
                ReplicationEngine::Scalar,
            )
            .delivered_total;
            for (engine, ename) in [
                (ReplicationEngine::Scalar, "scalar"),
                (ReplicationEngine::Auto, "lanes"),
            ] {
                let cfg = mk();
                s.bench_throughput2(
                    &format!("table01_rep_{ename}_{tag}"),
                    measure * reps as u64,
                    delivered,
                    move || {
                        run_network_replicated_with_engine(&cfg, reps, 1, &Telemetry::off(), engine)
                            .delivered
                    },
                );
            }
        }
    }

    let cycles = 200_000u64;
    s.bench_throughput("lindley_uniform_p05", cycles, || {
        let cfg = QueueConfig {
            warmup_cycles: 1_000,
            measure_cycles: cycles,
            ..QueueConfig::new(
                ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
                ServiceDist::Constant(1),
            )
        };
        run_queue(&cfg).wait.mean()
    });

    s.finish()
}

/// Numerical substrate: the FFT and special functions that the pmf
/// inversion and gamma approximation rely on.
pub fn numerics() -> std::path::PathBuf {
    use banyan_numerics::special::{ln_gamma, reg_gamma_lower};
    use banyan_numerics::{fft, ifft, Complex};

    let mut s = Suite::new("numerics");

    for &n in &[1024usize, 16_384] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        s.bench(&format!("fft_roundtrip_{n}"), || {
            let mut d = data.clone();
            fft(&mut d);
            ifft(&mut d);
            d[0]
        });
    }

    s.bench("ln_gamma", || ln_gamma(black_box(7.31)));
    s.bench("reg_gamma_lower", || {
        reg_gamma_lower(black_box(5.5), black_box(4.0))
    });

    s.finish()
}
