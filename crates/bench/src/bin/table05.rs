//! Regenerates Table 5 of the paper. `--quick` for a smoke run.
//! Writes `results/table05.manifest.json` alongside the stdout table.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "table05",
        banyan_bench::experiments::stage_tables::table05,
    );
}
