//! Quantifies the gamma-approximation quality of every figure panel
//! (KS/TV distances and tail errors). `--quick` for a smoke run.
fn main() {
    let scale = banyan_bench::scale_from_args();
    print!("{}", banyan_bench::experiments::totals::tail_quality(&scale));
}
