//! Quantifies the gamma-approximation quality of every figure panel
//! (KS/TV distances and tail errors). `--quick` for a smoke run. Writes
//! `results/tail_quality.manifest.json` alongside the stdout summary.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "tail_quality",
        banyan_bench::experiments::totals::tail_quality,
    );
}
