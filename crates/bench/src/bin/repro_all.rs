//! Runs every experiment and writes the outputs under `results/`.
//! `--quick` for a smoke run. Optional args select a subset, e.g.
//! `repro_all stage totals` (groups: stage, totals, calibration,
//! ablations, extensions). Writes `results/repro_all.manifest.json`
//! recording every artifact, per-group wall times, and the telemetry
//! snapshot of all simulations run.
use banyan_bench::manifest::RunManifest;
use std::fs;
use std::time::Instant;

fn want(selected: &[String], group: &str) -> bool {
    selected.is_empty() || selected.iter().any(|s| s == group)
}

fn emit(run: &mut RunManifest, name: &str, t0: Instant, out: &str) {
    let path = format!("results/{name}.txt");
    fs::write(&path, out).expect("write result");
    run.artifact(&path);
    eprintln!("wrote {path} ({:.1}s)", t0.elapsed().as_secs_f64());
    println!("{out}");
}

fn main() {
    let scale = banyan_bench::scale_from_args();
    let selected: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--quick" && a != "--progress")
        .collect();
    const GROUPS: [&str; 5] = ["stage", "totals", "calibration", "ablations", "extensions"];
    if let Some(bad) = selected.iter().find(|s| !GROUPS.contains(&s.as_str())) {
        eprintln!("unknown group '{bad}'; valid groups: {}", GROUPS.join(", "));
        std::process::exit(2);
    }
    fs::create_dir_all("results").expect("create results dir");
    let mut run = RunManifest::start("repro_all", &scale);
    run.config("groups", if selected.is_empty() { "all".to_string() } else { selected.join(",") });

    use banyan_bench::experiments::{ablations, calibration, correlations, extensions, stage_tables, totals};

    if want(&selected, "stage") {
        type Job = (&'static str, fn(&banyan_bench::profile::Scale) -> String);
        let jobs: [Job; 6] = [
            ("table01", stage_tables::table01),
            ("table02", stage_tables::table02),
            ("table03", stage_tables::table03),
            ("table04", stage_tables::table04),
            ("table05", stage_tables::table05),
            ("table06", correlations::table06),
        ];
        for (name, job) in jobs {
            let t0 = Instant::now();
            let out = job(&scale);
            emit(&mut run, name, t0, &out);
        }
        run.phase("stage");
    }

    if want(&selected, "totals") {
        // One set of simulations feeds the table, the figures, and the
        // tail-quality summary.
        let t0 = Instant::now();
        let runs = totals::TotalRuns::collect(&scale);
        emit(&mut run, "table07_12", t0, &totals::table07_12_from(&runs));
        emit(&mut run, "figures", t0, &totals::figures_from(&runs));
        let csv = totals::figures_csv_from(&runs);
        fs::write("results/figures.csv", &csv).expect("write csv");
        run.artifact("results/figures.csv");
        eprintln!("wrote results/figures.csv");
        emit(&mut run, "tail_quality", t0, &totals::tail_quality_from(&runs));
        run.phase("totals");
    }

    if want(&selected, "calibration") {
        let t0 = Instant::now();
        let out = calibration::calibration(&scale);
        emit(&mut run, "calibration", t0, &out);
        run.phase("calibration");
    }

    if want(&selected, "ablations") {
        type Job = (&'static str, fn(&banyan_bench::profile::Scale) -> String);
        let jobs: [Job; 4] = [
            ("ablation_covariance", ablations::ablation_covariance),
            ("ablation_stage_rate", ablations::ablation_stage_rate),
            ("ablation_convolution", ablations::ablation_convolution),
            ("ablation_discipline", ablations::ablation_discipline),
        ];
        for (name, job) in jobs {
            let t0 = Instant::now();
            let out = job(&scale);
            emit(&mut run, name, t0, &out);
        }
        run.phase("ablations");
    }

    if want(&selected, "extensions") {
        type Job = (&'static str, fn(&banyan_bench::profile::Scale) -> String);
        let jobs: [Job; 3] = [
            ("finite_buffers", extensions::finite_buffers),
            ("heavy_traffic", extensions::heavy_traffic),
            ("stage_shapes", extensions::stage_shapes),
        ];
        for (name, job) in jobs {
            let t0 = Instant::now();
            let out = job(&scale);
            emit(&mut run, name, t0, &out);
        }
        run.phase("extensions");
    }

    run.finish();
}
