//! Runs every experiment and writes the outputs under `results/`.
//! `--quick` for a smoke run. Optional args select a subset, e.g.
//! `repro_all stage totals` (groups: stage, totals, calibration,
//! ablations, extensions).
use std::fs;
use std::time::Instant;

fn want(selected: &[String], group: &str) -> bool {
    selected.is_empty() || selected.iter().any(|s| s == group)
}

fn emit(name: &str, t0: Instant, out: &str) {
    let path = format!("results/{name}.txt");
    fs::write(&path, out).expect("write result");
    eprintln!("wrote {path} ({:.1}s)", t0.elapsed().as_secs_f64());
    println!("{out}");
}

fn main() {
    let scale = banyan_bench::scale_from_args();
    let selected: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--quick")
        .collect();
    const GROUPS: [&str; 5] = ["stage", "totals", "calibration", "ablations", "extensions"];
    if let Some(bad) = selected.iter().find(|s| !GROUPS.contains(&s.as_str())) {
        eprintln!("unknown group '{bad}'; valid groups: {}", GROUPS.join(", "));
        std::process::exit(2);
    }
    fs::create_dir_all("results").expect("create results dir");

    use banyan_bench::experiments::{ablations, calibration, correlations, extensions, stage_tables, totals};

    if want(&selected, "stage") {
        type Job = (&'static str, fn(&banyan_bench::profile::Scale) -> String);
        let jobs: [Job; 6] = [
            ("table01", stage_tables::table01),
            ("table02", stage_tables::table02),
            ("table03", stage_tables::table03),
            ("table04", stage_tables::table04),
            ("table05", stage_tables::table05),
            ("table06", correlations::table06),
        ];
        for (name, job) in jobs {
            let t0 = Instant::now();
            emit(name, t0, &job(&scale));
        }
    }

    if want(&selected, "totals") {
        // One set of simulations feeds the table, the figures, and the
        // tail-quality summary.
        let t0 = Instant::now();
        let runs = totals::TotalRuns::collect(&scale);
        emit("table07_12", t0, &totals::table07_12_from(&runs));
        emit("figures", t0, &totals::figures_from(&runs));
        let csv = totals::figures_csv_from(&runs);
        fs::write("results/figures.csv", &csv).expect("write csv");
        eprintln!("wrote results/figures.csv");
        emit("tail_quality", t0, &totals::tail_quality_from(&runs));
    }

    if want(&selected, "calibration") {
        let t0 = Instant::now();
        emit("calibration", t0, &calibration::calibration(&scale));
    }

    if want(&selected, "ablations") {
        let t0 = Instant::now();
        emit("ablation_covariance", t0, &ablations::ablation_covariance(&scale));
        let t0 = Instant::now();
        emit("ablation_stage_rate", t0, &ablations::ablation_stage_rate(&scale));
        let t0 = Instant::now();
        emit("ablation_convolution", t0, &ablations::ablation_convolution(&scale));
        let t0 = Instant::now();
        emit("ablation_discipline", t0, &ablations::ablation_discipline(&scale));
    }

    if want(&selected, "extensions") {
        let t0 = Instant::now();
        emit("finite_buffers", t0, &extensions::finite_buffers(&scale));
        let t0 = Instant::now();
        emit("heavy_traffic", t0, &extensions::heavy_traffic(&scale));
        let t0 = Instant::now();
        emit("stage_shapes", t0, &extensions::stage_shapes(&scale));
    }
}
