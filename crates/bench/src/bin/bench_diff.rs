//! Compares fresh `BENCH_*.json` medians against the committed
//! baselines in `results/` — the "did this PR slow anything down"
//! gate. Every row present in both files gets a `fresh / baseline`
//! ratio of its `median_ns`; a ratio above the regression threshold
//! fails the run (exit 1). Rows present on only one side are reported
//! but never fail (benches come and go); files without a `benchmarks`
//! array (the serve/flow row formats track wall-clock, not per-iter
//! medians) are skipped with a note.
//!
//! Usage: `bench_diff [--baseline-dir DIR] [--threshold X] FILE...`
//! where each FILE is a freshly generated bench result whose baseline
//! shares its file name under `--baseline-dir` (default `results`).
//! The threshold default of 1.25 leaves room for machine-to-machine
//! noise; CI pinning identical hardware can tighten it.

use banyan_obs::json::JsonValue;
use std::path::{Path, PathBuf};

/// Default allowed `fresh / baseline` median ratio.
const DEFAULT_THRESHOLD: f64 = 1.25;

struct Opts {
    baseline_dir: PathBuf,
    threshold: f64,
    files: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        baseline_dir: PathBuf::from("results"),
        threshold: DEFAULT_THRESHOLD,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline-dir" => {
                let dir = it.next().ok_or("--baseline-dir needs a directory")?;
                opts.baseline_dir = PathBuf::from(dir);
            }
            "--threshold" => {
                let t = it.next().ok_or("--threshold needs a ratio")?;
                opts.threshold = t
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 1.0)
                    .ok_or_else(|| format!("--threshold must be a ratio >= 1.0, got '{t}'"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.files.is_empty() {
        return Err("no fresh bench files given".into());
    }
    Ok(opts)
}

/// Extracts `(name, median_ns)` per row of a `benchmarks` array;
/// `None` when the file uses a different result format.
fn medians(doc: &JsonValue) -> Option<Vec<(String, f64)>> {
    let rows = doc.get("benchmarks")?.as_array()?;
    let mut out = Vec::new();
    for r in rows {
        let name = r.get("name")?.as_str()?.to_string();
        let m = r.get("median_ns")?.as_f64().filter(|m| *m > 0.0)?;
        out.push((name, m));
    }
    Some(out)
}

/// The comparison of one fresh file against its baseline.
struct FileDiff {
    /// Human-readable per-row lines, ready to print.
    lines: Vec<String>,
    /// Rows whose ratio exceeded the threshold.
    regressions: Vec<String>,
}

/// Compares two parsed bench documents row by row.
fn diff_docs(fresh: &JsonValue, baseline: &JsonValue, threshold: f64) -> Result<FileDiff, String> {
    let fresh_rows = medians(fresh).ok_or("fresh file has no benchmarks array")?;
    let base_rows = medians(baseline).ok_or("baseline file has no benchmarks array")?;
    let mut diff = FileDiff {
        lines: Vec::new(),
        regressions: Vec::new(),
    };
    for (name, f) in &fresh_rows {
        let Some((_, b)) = base_rows.iter().find(|(n, _)| n == name) else {
            diff.lines.push(format!("  {name:<40} (new row, no baseline)"));
            continue;
        };
        let ratio = f / b;
        let flag = if ratio > threshold {
            diff.regressions
                .push(format!("{name} {ratio:.3}x > {threshold:.2}x"));
            "  REGRESSION"
        } else {
            ""
        };
        diff.lines.push(format!(
            "  {name:<40} {b:>14.1} -> {f:>14.1} ns  {ratio:>6.3}x{flag}"
        ));
    }
    for (name, _) in &base_rows {
        if !fresh_rows.iter().any(|(n, _)| n == name) {
            diff.lines
                .push(format!("  {name:<40} (baseline row missing from fresh run)"));
        }
    }
    Ok(diff)
}

fn load(path: &Path) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    JsonValue::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

fn run(opts: &Opts) -> Result<usize, String> {
    let mut total_regressions = 0usize;
    for fresh_path in &opts.files {
        let file_name = fresh_path
            .file_name()
            .ok_or_else(|| format!("{}: not a file path", fresh_path.display()))?;
        let base_path = opts.baseline_dir.join(file_name);
        if !base_path.exists() {
            println!(
                "{}: skipped (no baseline at {})",
                fresh_path.display(),
                base_path.display()
            );
            continue;
        }
        let fresh = load(fresh_path)?;
        if medians(&fresh).is_none() {
            println!(
                "{}: skipped (no benchmarks array — not a median_ns suite)",
                fresh_path.display()
            );
            continue;
        }
        let baseline = load(&base_path)?;
        let diff = diff_docs(&fresh, &baseline, opts.threshold)
            .map_err(|e| format!("{}: {e}", fresh_path.display()))?;
        println!("{} vs {}:", fresh_path.display(), base_path.display());
        for line in &diff.lines {
            println!("{line}");
        }
        for r in &diff.regressions {
            eprintln!("{}: REGRESSION {r}", fresh_path.display());
        }
        total_regressions += diff.regressions.len();
    }
    Ok(total_regressions)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: bench_diff [--baseline-dir DIR] [--threshold X] FILE..."
            );
            std::process::exit(2);
        }
    };
    match run(&opts) {
        Ok(0) => {}
        Ok(n) => {
            eprintln!("{n} regression(s) above {:.2}x", opts.threshold);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, f64)]) -> JsonValue {
        let rows_json: Vec<String> = rows
            .iter()
            .map(|(n, m)| format!("{{\"name\": \"{n}\", \"median_ns\": {m}}}"))
            .collect();
        let text = format!(
            "{{\"suite\": \"t\", \"benchmarks\": [{}]}}",
            rows_json.join(", ")
        );
        JsonValue::parse(&text).unwrap()
    }

    #[test]
    fn clean_diff_has_no_regressions() {
        let base = doc(&[("a", 100.0), ("b", 2000.0)]);
        let fresh = doc(&[("a", 110.0), ("b", 1900.0)]);
        let d = diff_docs(&fresh, &base, 1.25).unwrap();
        assert!(d.regressions.is_empty());
        assert_eq!(d.lines.len(), 2);
        assert!(d.lines[0].contains("1.100x"));
    }

    #[test]
    fn regression_above_threshold_is_flagged() {
        let base = doc(&[("a", 100.0)]);
        let fresh = doc(&[("a", 140.0)]);
        let d = diff_docs(&fresh, &base, 1.25).unwrap();
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].contains("1.400x"));
        // A looser gate passes the same rows.
        assert!(diff_docs(&fresh, &base, 1.5).unwrap().regressions.is_empty());
    }

    #[test]
    fn asymmetric_rows_are_reported_not_failed() {
        let base = doc(&[("gone", 50.0), ("kept", 100.0)]);
        let fresh = doc(&[("kept", 100.0), ("new", 10.0)]);
        let d = diff_docs(&fresh, &base, 1.25).unwrap();
        assert!(d.regressions.is_empty());
        assert!(d.lines.iter().any(|l| l.contains("new row")));
        assert!(d.lines.iter().any(|l| l.contains("missing from fresh")));
    }

    #[test]
    fn non_median_formats_are_rejected_by_diff() {
        let rows = JsonValue::parse("{\"rows\": [{\"name\": \"x\", \"wall_secs\": 1.0}]}").unwrap();
        let base = doc(&[("a", 1.0)]);
        assert!(diff_docs(&rows, &base, 1.25).is_err());
        assert!(medians(&rows).is_none());
    }

    #[test]
    fn end_to_end_over_temp_files() {
        let dir = std::env::temp_dir().join(format!("bench_diff_test_{}", std::process::id()));
        let base_dir = dir.join("baseline");
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::write(
            base_dir.join("BENCH_x.json"),
            "{\"benchmarks\": [{\"name\": \"a\", \"median_ns\": 100.0}]}",
        )
        .unwrap();
        let fresh = dir.join("BENCH_x.json");
        std::fs::write(&fresh, "{\"benchmarks\": [{\"name\": \"a\", \"median_ns\": 90.0}]}")
            .unwrap();
        let opts = Opts {
            baseline_dir: base_dir,
            threshold: 1.25,
            files: vec![fresh],
        };
        assert_eq!(run(&opts).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arg_parsing_validates() {
        let ok = parse_args(&[
            "--baseline-dir".into(),
            "b".into(),
            "--threshold".into(),
            "1.5".into(),
            "f.json".into(),
        ])
        .unwrap();
        assert_eq!(ok.baseline_dir, PathBuf::from("b"));
        assert!((ok.threshold - 1.5).abs() < 1e-12);
        assert_eq!(ok.files.len(), 1);
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["--threshold".into(), "0.5".into(), "f".into()]).is_err());
        assert!(parse_args(&["--bogus".into()]).is_err());
    }
}
