//! Regenerates Table 3 of the paper. `--quick` for a smoke run.
//! Writes `results/table03.manifest.json` alongside the stdout table.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "table03",
        banyan_bench::experiments::stage_tables::table03,
    );
}
