//! Regenerates Tables VII-XII (total waiting time, prediction vs simulation).
//! `--quick` for a smoke run. Writes `results/table07_12.manifest.json`
//! alongside the stdout tables.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "table07_12",
        banyan_bench::experiments::totals::table07_12,
    );
}
