//! Regenerates Tables VII-XII (total waiting time, prediction vs simulation).
//! `--quick` for a smoke run.
fn main() {
    let scale = banyan_bench::scale_from_args();
    print!("{}", banyan_bench::experiments::totals::table07_12(&scale));
}
