//! Telemetry overhead guard: the contract check that a disabled
//! `Telemetry` keeps the network simulator on its uninstrumented hot
//! path, and that enabled telemetry stays within a bounded envelope.
//!
//! Three variants of the `network_k2_n10_p05_m1` microbench config
//! (`--quick`: n = 6) run in interleaved samples so slow drift hits all
//! of them equally:
//!
//! * `plain` — `run_network` (no telemetry anywhere in sight),
//! * `off`   — `run_instrumented(&Telemetry::off())`,
//! * `on`    — `run_instrumented` with metrics + occupancy sampling.
//!
//! Asserts the off/plain median ratio is within the hot-path budget
//! (2% at full scale), the on/plain ratio within the enabled envelope,
//! and that all three produce bit-identical statistics.
//!
//! A second section guards the replicated lane engine the same way:
//! scalar-engine and lane-engine runs of the same replicated config
//! (interleaved, telemetry off) must merge to bit-identical statistics
//! with the lane engine no slower than scalar beyond the off budget,
//! and enabling telemetry on the lane engine must stay within the
//! enabled envelope while changing nothing. Writes
//! `results/BENCH_overhead_guard.json`.

use banyan_obs::json::JsonObject;
use banyan_obs::{Telemetry, TelemetryConfig};
use banyan_sim::network::{run_network, NetworkConfig, NetworkSim, NetworkStats};
use banyan_sim::traffic::Workload;
use banyan_sim::{run_network_replicated_with_engine, ReplicationEngine};
use std::time::Instant;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn assert_bit_identical(label: &str, a: &NetworkStats, b: &NetworkStats) {
    assert_eq!(a.delivered, b.delivered, "{label}: delivered");
    assert_eq!(
        a.injected_total, b.injected_total,
        "{label}: injected_total"
    );
    assert_eq!(a.in_flight_at_end, b.in_flight_at_end, "{label}: in_flight");
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(
        a.total_wait.mean().to_bits(),
        b.total_wait.mean().to_bits(),
        "{label}: total mean"
    );
    assert_eq!(
        a.total_wait.variance().to_bits(),
        b.total_wait.variance().to_bits(),
        "{label}: total variance"
    );
    for (i, (x, y)) in a.stage_waits.iter().zip(&b.stage_waits).enumerate() {
        assert_eq!(
            x.mean().to_bits(),
            y.mean().to_bits(),
            "{label}: stage {i} mean"
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Full scale matches the bench_simulator `network_k2_n10_p05_m1`
    // config so the guard speaks to the recorded baseline medians; quick
    // shrinks the network and sample count, and relaxes the thresholds
    // (short runs are noisier), to smoke-test the same code path.
    let (stages, samples, off_budget, on_budget) = if quick {
        (6u32, 5usize, 1.10, 1.60)
    } else {
        (10, 11, 1.02, 1.35)
    };
    let mk = || NetworkConfig {
        warmup_cycles: 100,
        measure_cycles: 3_000,
        ..NetworkConfig::new(2, stages, Workload::uniform(0.5, 1))
    };

    // Correctness first: telemetry must never perturb the statistics.
    let plain_stats = run_network(mk());
    let off_stats = NetworkSim::new(mk()).run_instrumented(&Telemetry::off());
    let tel_on = Telemetry::new(TelemetryConfig::on());
    let on_stats = NetworkSim::new(mk()).run_instrumented(&tel_on);
    assert_bit_identical("off vs plain", &off_stats, &plain_stats);
    assert_bit_identical("on vs plain", &on_stats, &plain_stats);
    eprintln!(
        "bit-identity: ok ({} messages delivered)",
        plain_stats.delivered
    );

    // The enabled path must also have captured exact per-stage wait
    // sketches that agree with the (bit-identical) online accumulators.
    for (i, st) in on_stats.stage_waits.iter().enumerate() {
        let name = format!("net.wait.stage{:02}", i + 1);
        let sk = tel_on
            .sketches()
            .get(&name)
            .unwrap_or_else(|| panic!("missing sketch {name}"));
        assert_eq!(sk.count(), st.count(), "{name}: count vs stage accumulator");
        assert!(
            (sk.mean() - st.mean()).abs() <= 1e-9 * st.mean().abs().max(1.0),
            "{name}: sketch mean {} vs stage mean {}",
            sk.mean(),
            st.mean()
        );
        assert!(
            (sk.variance() - st.variance()).abs() <= 1e-9 * st.variance().abs().max(1.0),
            "{name}: sketch variance {} vs stage variance {}",
            sk.variance(),
            st.variance()
        );
    }
    let total_sk = tel_on
        .sketches()
        .get("net.wait.total")
        .expect("total sketch");
    assert_eq!(
        total_sk.count(),
        on_stats.delivered,
        "total sketch vs delivered"
    );
    eprintln!(
        "sketches: ok ({} stage pmfs + total, {} messages each)",
        on_stats.stage_waits.len(),
        total_sk.count()
    );

    // One untimed warmup pass per variant, then interleaved samples.
    let mut t_plain = Vec::with_capacity(samples);
    let mut t_off = Vec::with_capacity(samples);
    let mut t_on = Vec::with_capacity(samples);
    let off = Telemetry::off();
    for pass in 0..=samples {
        let t0 = Instant::now();
        let a = run_network(mk());
        let d_plain = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let b = NetworkSim::new(mk()).run_instrumented(&off);
        let d_off = t0.elapsed().as_secs_f64();
        let on = Telemetry::new(TelemetryConfig::on());
        let t0 = Instant::now();
        let c = NetworkSim::new(mk()).run_instrumented(&on);
        let d_on = t0.elapsed().as_secs_f64();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.delivered, c.delivered);
        if pass > 0 {
            t_plain.push(d_plain);
            t_off.push(d_off);
            t_on.push(d_on);
        }
    }
    let m_plain = median(&mut t_plain);
    let m_off = median(&mut t_off);
    let m_on = median(&mut t_on);
    let off_ratio = m_off / m_plain;
    let on_ratio = m_on / m_plain;
    eprintln!(
        "plain {:.3} ms | off {:.3} ms ({:.3}x) | on {:.3} ms ({:.3}x)",
        m_plain * 1e3,
        m_off * 1e3,
        off_ratio,
        m_on * 1e3,
        on_ratio
    );

    // Replicated lane engine: same purity contract, one level up. The
    // scalar and lane engines must merge to bit-identical statistics,
    // the lane engine must never be slower than scalar beyond the off
    // budget (it exists to be faster), and telemetry on the lane engine
    // must stay a pure observer within the enabled envelope.
    let (lane_reps, lane_samples) = if quick { (4u32, 3usize) } else { (8, 5) };
    let lane_mk = || NetworkConfig {
        warmup_cycles: 100,
        measure_cycles: 3_000,
        ..NetworkConfig::new(2, 6, Workload::uniform(0.5, 1))
    };
    let lane_engine = ReplicationEngine::Lanes(lane_reps as usize);
    let scalar_stats = run_network_replicated_with_engine(
        &lane_mk(),
        lane_reps,
        1,
        &Telemetry::off(),
        ReplicationEngine::Scalar,
    );
    let lane_stats = run_network_replicated_with_engine(
        &lane_mk(),
        lane_reps,
        1,
        &Telemetry::off(),
        lane_engine,
    );
    let lane_tel_on = Telemetry::new(TelemetryConfig::on());
    let lane_on_stats =
        run_network_replicated_with_engine(&lane_mk(), lane_reps, 1, &lane_tel_on, lane_engine);
    assert_bit_identical("lanes vs scalar", &lane_stats, &scalar_stats);
    assert_bit_identical("lanes-on vs lanes-off", &lane_on_stats, &lane_stats);
    eprintln!(
        "lane engine bit-identity: ok ({lane_reps} replications, {} messages delivered)",
        lane_stats.delivered
    );

    let mut t_scalar = Vec::with_capacity(lane_samples);
    let mut t_lanes = Vec::with_capacity(lane_samples);
    let mut t_lanes_on = Vec::with_capacity(lane_samples);
    for pass in 0..=lane_samples {
        let t0 = Instant::now();
        let a = run_network_replicated_with_engine(
            &lane_mk(),
            lane_reps,
            1,
            &off,
            ReplicationEngine::Scalar,
        );
        let d_scalar = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let b = run_network_replicated_with_engine(&lane_mk(), lane_reps, 1, &off, lane_engine);
        let d_lanes = t0.elapsed().as_secs_f64();
        let on = Telemetry::new(TelemetryConfig::on());
        let t0 = Instant::now();
        let c = run_network_replicated_with_engine(&lane_mk(), lane_reps, 1, &on, lane_engine);
        let d_lanes_on = t0.elapsed().as_secs_f64();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.delivered, c.delivered);
        if pass > 0 {
            t_scalar.push(d_scalar);
            t_lanes.push(d_lanes);
            t_lanes_on.push(d_lanes_on);
        }
    }
    let m_scalar = median(&mut t_scalar);
    let m_lanes = median(&mut t_lanes);
    let m_lanes_on = median(&mut t_lanes_on);
    let lanes_ratio = m_lanes / m_scalar;
    let lanes_on_ratio = m_lanes_on / m_lanes;
    eprintln!(
        "replicated: scalar {:.3} ms | lanes {:.3} ms ({:.3}x) | lanes+tel {:.3} ms ({:.3}x)",
        m_scalar * 1e3,
        m_lanes * 1e3,
        lanes_ratio,
        m_lanes_on * 1e3,
        lanes_on_ratio
    );

    let mut o = JsonObject::new();
    o.field_str("suite", "overhead_guard")
        .field_str(
            "config",
            if quick {
                "network_k2_n6_p05_m1"
            } else {
                "network_k2_n10_p05_m1"
            },
        )
        .field_u64("samples", samples as u64)
        .field_f64("plain_median_ns", m_plain * 1e9)
        .field_f64("off_median_ns", m_off * 1e9)
        .field_f64("on_median_ns", m_on * 1e9)
        .field_f64("off_over_plain", off_ratio)
        .field_f64("on_over_plain", on_ratio)
        .field_f64("off_budget", off_budget)
        .field_f64("on_budget", on_budget)
        .field_u64("lane_reps", lane_reps as u64)
        .field_f64("scalar_engine_median_ns", m_scalar * 1e9)
        .field_f64("lane_engine_median_ns", m_lanes * 1e9)
        .field_f64("lane_engine_on_median_ns", m_lanes_on * 1e9)
        .field_f64("lanes_over_scalar", lanes_ratio)
        .field_f64("lanes_on_over_lanes_off", lanes_on_ratio);
    let json = format!("{}\n", o.finish_pretty(2));
    let cwd = std::env::current_dir().expect("current dir");
    let root = cwd
        .ancestors()
        .find(|d| d.join("Cargo.lock").is_file())
        .unwrap_or(&cwd)
        .to_path_buf();
    let results = root.join("results");
    std::fs::create_dir_all(&results).expect("create results/");
    let path = results.join("BENCH_overhead_guard.json");
    std::fs::write(&path, json).expect("write overhead guard json");
    eprintln!("wrote {}", path.display());

    assert!(
        off_ratio <= off_budget,
        "telemetry-off overhead {off_ratio:.4}x exceeds budget {off_budget}x: \
         the disabled path has leaked onto the hot loop"
    );
    assert!(
        on_ratio <= on_budget,
        "telemetry-on overhead {on_ratio:.4}x exceeds envelope {on_budget}x"
    );
    assert!(
        lanes_ratio <= off_budget,
        "lane engine {lanes_ratio:.4}x vs scalar exceeds budget {off_budget}x: \
         the lane-batched engine has become slower than running the lanes one by one"
    );
    assert!(
        lanes_on_ratio <= on_budget,
        "lane-engine telemetry overhead {lanes_on_ratio:.4}x exceeds envelope {on_budget}x"
    );
    println!(
        "overhead guard: off {off_ratio:.4}x (budget {off_budget}x), \
         on {on_ratio:.4}x (budget {on_budget}x), \
         lanes {lanes_ratio:.4}x (budget {off_budget}x) -- ok"
    );
}
