//! Telemetry overhead guard: the contract check that a disabled
//! `Telemetry` keeps the network simulator on its uninstrumented hot
//! path, and that enabled telemetry stays within a bounded envelope.
//!
//! Three variants of the `network_k2_n10_p05_m1` microbench config
//! (`--quick`: n = 6) run in interleaved samples so slow drift hits all
//! of them equally:
//!
//! * `plain` — `run_network` (no telemetry anywhere in sight),
//! * `off`   — `run_instrumented(&Telemetry::off())`,
//! * `on`    — `run_instrumented` with metrics + occupancy sampling.
//!
//! Asserts the off/plain median ratio is within the hot-path budget
//! (2% at full scale), the on/plain ratio within the enabled envelope,
//! and that all three produce bit-identical statistics.
//!
//! A second section guards the replicated lane engine the same way:
//! scalar-engine and lane-engine runs of the same replicated config
//! (interleaved, telemetry off) must merge to bit-identical statistics
//! with the lane engine no slower than scalar beyond the off budget,
//! and enabling telemetry on the lane engine must stay within the
//! enabled envelope while changing nothing.
//!
//! A third section guards the message tracer: the replicated runner
//! with tracing disabled (`tracer = None` — the `TRACE = false`
//! monomorphization) must stay within the hot-path budget of a plain
//! per-replication `run_network` loop, a tracer at a realistic
//! sampling rate must stay within the enabled envelope, and a
//! rate-1.0 tracer must capture exactly one record per delivered
//! message while changing no statistic.
//!
//! A fourth section guards the serve operations plane: interleaved
//! keep-alive request batches against two in-process daemons — ops off
//! (no rolling windows, no access log) vs fully instrumented — must
//! stay within the serve budget (2% at full scale) with byte-identical
//! `/query` bodies. Writes `results/BENCH_overhead_guard.json`.

use banyan_obs::json::JsonObject;
use banyan_obs::{Telemetry, TelemetryConfig};
use banyan_repro::serve::http::Client;
use banyan_repro::serve::{ServeConfig, ServerHandle};
use banyan_sim::network::{run_network, NetworkConfig, NetworkSim, NetworkStats};
use banyan_sim::traffic::Workload;
use banyan_sim::{run_network_replicated_with_engine, ReplicationEngine};
use std::time::Instant;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn assert_bit_identical(label: &str, a: &NetworkStats, b: &NetworkStats) {
    assert_eq!(a.delivered, b.delivered, "{label}: delivered");
    assert_eq!(
        a.injected_total, b.injected_total,
        "{label}: injected_total"
    );
    assert_eq!(a.in_flight_at_end, b.in_flight_at_end, "{label}: in_flight");
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(
        a.total_wait.mean().to_bits(),
        b.total_wait.mean().to_bits(),
        "{label}: total mean"
    );
    assert_eq!(
        a.total_wait.variance().to_bits(),
        b.total_wait.variance().to_bits(),
        "{label}: total variance"
    );
    for (i, (x, y)) in a.stage_waits.iter().zip(&b.stage_waits).enumerate() {
        assert_eq!(
            x.mean().to_bits(),
            y.mean().to_bits(),
            "{label}: stage {i} mean"
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Full scale matches the bench_simulator `network_k2_n10_p05_m1`
    // config so the guard speaks to the recorded baseline medians; quick
    // shrinks the network and sample count, and relaxes the thresholds
    // (short runs are noisier), to smoke-test the same code path.
    // 17 samples (was 11): on a single-core box the harness and kernel
    // steal whole scheduling quanta, and an 11-sample median of ~0.8 s
    // passes let a 2–3 % swing through — over budget for a gate whose
    // off-vs-plain legs run the very same monomorphized loop. Widening
    // the median (not the budgets) absorbs it.
    let (stages, samples, off_budget, on_budget) = if quick {
        (6u32, 5usize, 1.10, 1.60)
    } else {
        (10, 17, 1.02, 1.35)
    };
    let mk = || NetworkConfig {
        warmup_cycles: 100,
        measure_cycles: 3_000,
        ..NetworkConfig::new(2, stages, Workload::uniform(0.5, 1))
    };

    // Correctness first: telemetry must never perturb the statistics.
    let plain_stats = run_network(mk());
    let off_stats = NetworkSim::new(mk()).run_instrumented(&Telemetry::off());
    let tel_on = Telemetry::new(TelemetryConfig::on());
    let on_stats = NetworkSim::new(mk()).run_instrumented(&tel_on);
    assert_bit_identical("off vs plain", &off_stats, &plain_stats);
    assert_bit_identical("on vs plain", &on_stats, &plain_stats);
    eprintln!(
        "bit-identity: ok ({} messages delivered)",
        plain_stats.delivered
    );

    // The enabled path must also have captured exact per-stage wait
    // sketches that agree with the (bit-identical) online accumulators.
    for (i, st) in on_stats.stage_waits.iter().enumerate() {
        let name = format!("net.wait.stage{:02}", i + 1);
        let sk = tel_on
            .sketches()
            .get(&name)
            .unwrap_or_else(|| panic!("missing sketch {name}"));
        assert_eq!(sk.count(), st.count(), "{name}: count vs stage accumulator");
        assert!(
            (sk.mean() - st.mean()).abs() <= 1e-9 * st.mean().abs().max(1.0),
            "{name}: sketch mean {} vs stage mean {}",
            sk.mean(),
            st.mean()
        );
        assert!(
            (sk.variance() - st.variance()).abs() <= 1e-9 * st.variance().abs().max(1.0),
            "{name}: sketch variance {} vs stage variance {}",
            sk.variance(),
            st.variance()
        );
    }
    let total_sk = tel_on
        .sketches()
        .get("net.wait.total")
        .expect("total sketch");
    assert_eq!(
        total_sk.count(),
        on_stats.delivered,
        "total sketch vs delivered"
    );
    eprintln!(
        "sketches: ok ({} stage pmfs + total, {} messages each)",
        on_stats.stage_waits.len(),
        total_sk.count()
    );

    // One untimed warmup pass per variant, then interleaved samples.
    let mut t_plain = Vec::with_capacity(samples);
    let mut t_off = Vec::with_capacity(samples);
    let mut t_on = Vec::with_capacity(samples);
    let off = Telemetry::off();
    for pass in 0..=samples {
        let t0 = Instant::now();
        let a = run_network(mk());
        let d_plain = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let b = NetworkSim::new(mk()).run_instrumented(&off);
        let d_off = t0.elapsed().as_secs_f64();
        let on = Telemetry::new(TelemetryConfig::on());
        let t0 = Instant::now();
        let c = NetworkSim::new(mk()).run_instrumented(&on);
        let d_on = t0.elapsed().as_secs_f64();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.delivered, c.delivered);
        if pass > 0 {
            t_plain.push(d_plain);
            t_off.push(d_off);
            t_on.push(d_on);
        }
    }
    let m_plain = median(&mut t_plain);
    let m_off = median(&mut t_off);
    let m_on = median(&mut t_on);
    let off_ratio = m_off / m_plain;
    let on_ratio = m_on / m_plain;
    eprintln!(
        "plain {:.3} ms | off {:.3} ms ({:.3}x) | on {:.3} ms ({:.3}x)",
        m_plain * 1e3,
        m_off * 1e3,
        off_ratio,
        m_on * 1e3,
        on_ratio
    );

    // Replicated lane engine: same purity contract, one level up. The
    // scalar and lane engines must merge to bit-identical statistics,
    // the lane engine must never be slower than scalar beyond the off
    // budget (it exists to be faster), and telemetry on the lane engine
    // must stay a pure observer within the enabled envelope.
    // 15 samples: the ~1.29x typical telemetry-on ratio sits ~5% under
    // its 1.35x envelope, and a 9-sample median still let a single-core
    // scheduling spike land it at 1.352x; widening the median keeps the
    // gate honest without loosening the envelope.
    let (lane_reps, lane_samples) = if quick { (4u32, 3usize) } else { (8, 15) };
    let lane_mk = || NetworkConfig {
        warmup_cycles: 100,
        measure_cycles: 3_000,
        ..NetworkConfig::new(2, 6, Workload::uniform(0.5, 1))
    };
    let lane_engine = ReplicationEngine::Lanes(lane_reps as usize);
    let scalar_stats = run_network_replicated_with_engine(
        &lane_mk(),
        lane_reps,
        1,
        &Telemetry::off(),
        ReplicationEngine::Scalar,
    );
    let lane_stats = run_network_replicated_with_engine(
        &lane_mk(),
        lane_reps,
        1,
        &Telemetry::off(),
        lane_engine,
    );
    let lane_tel_on = Telemetry::new(TelemetryConfig::on());
    let lane_on_stats =
        run_network_replicated_with_engine(&lane_mk(), lane_reps, 1, &lane_tel_on, lane_engine);
    assert_bit_identical("lanes vs scalar", &lane_stats, &scalar_stats);
    assert_bit_identical("lanes-on vs lanes-off", &lane_on_stats, &lane_stats);
    eprintln!(
        "lane engine bit-identity: ok ({lane_reps} replications, {} messages delivered)",
        lane_stats.delivered
    );

    let mut t_scalar = Vec::with_capacity(lane_samples);
    let mut t_lanes = Vec::with_capacity(lane_samples);
    let mut t_lanes_on = Vec::with_capacity(lane_samples);
    for pass in 0..=lane_samples {
        let t0 = Instant::now();
        let a = run_network_replicated_with_engine(
            &lane_mk(),
            lane_reps,
            1,
            &off,
            ReplicationEngine::Scalar,
        );
        let d_scalar = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let b = run_network_replicated_with_engine(&lane_mk(), lane_reps, 1, &off, lane_engine);
        let d_lanes = t0.elapsed().as_secs_f64();
        let on = Telemetry::new(TelemetryConfig::on());
        let t0 = Instant::now();
        let c = run_network_replicated_with_engine(&lane_mk(), lane_reps, 1, &on, lane_engine);
        let d_lanes_on = t0.elapsed().as_secs_f64();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.delivered, c.delivered);
        if pass > 0 {
            t_scalar.push(d_scalar);
            t_lanes.push(d_lanes);
            t_lanes_on.push(d_lanes_on);
        }
    }
    let m_scalar = median(&mut t_scalar);
    let m_lanes = median(&mut t_lanes);
    let m_lanes_on = median(&mut t_lanes_on);
    let lanes_ratio = m_lanes / m_scalar;
    let lanes_on_ratio = m_lanes_on / m_lanes;
    eprintln!(
        "replicated: scalar {:.3} ms | lanes {:.3} ms ({:.3}x) | lanes+tel {:.3} ms ({:.3}x)",
        m_scalar * 1e3,
        m_lanes * 1e3,
        lanes_ratio,
        m_lanes_on * 1e3,
        lanes_on_ratio
    );

    // Message tracer: with `tracer = None` the runner compiles to the
    // existing hot loop (`TRACE = false`), so a traced-capable run with
    // tracing disabled must cost no more than a plain per-replication
    // `run_network` loop. A tracer at the default 1% sampling rate adds
    // one hash per tracked injection plus a record per sampled message,
    // and must stay within the enabled envelope.
    use banyan_obs::msgtrace::MsgTracer;
    use banyan_sim::run_network_replicated_traced;
    // 15 samples for the same reason as the sections above: the 1.02x
    // disabled-path gate needs a median wide enough to shrug off
    // single-core scheduling spikes.
    let (trace_reps, trace_samples) = if quick { (2u32, 3usize) } else { (4, 15) };
    let trace_mk = lane_mk;
    // Correctness: a full-rate tracer observes everything and perturbs
    // nothing — statistics bit-identical, one record per delivery, and
    // every record's stage waits sum to its total.
    let untraced = run_network_replicated_traced(
        &trace_mk(),
        trace_reps,
        1,
        &Telemetry::off(),
        ReplicationEngine::Scalar,
        None,
    );
    let full_tracer = MsgTracer::new(1.0);
    let traced = run_network_replicated_traced(
        &trace_mk(),
        trace_reps,
        1,
        &Telemetry::off(),
        ReplicationEngine::Scalar,
        Some(&full_tracer),
    );
    assert_bit_identical("traced vs untraced", &traced, &untraced);
    let records = full_tracer.finish();
    assert_eq!(
        records.len() as u64,
        traced.delivered,
        "rate-1.0 tracer: one record per delivered message"
    );
    for r in &records {
        assert_eq!(
            r.waits.iter().map(|&w| u64::from(w)).sum::<u64>(),
            r.total_wait(),
            "record stage waits must sum to the total"
        );
    }
    eprintln!(
        "msgtrace bit-identity: ok ({} records over {trace_reps} replications)",
        records.len()
    );

    let mut t_trace_plain = Vec::with_capacity(trace_samples);
    let mut t_trace_off = Vec::with_capacity(trace_samples);
    let mut t_trace_on = Vec::with_capacity(trace_samples);
    for pass in 0..=trace_samples {
        let t0 = Instant::now();
        let mut plain_delivered = 0u64;
        for j in 0..trace_reps {
            let mut c = trace_mk();
            c.seed = c.seed.wrapping_add(u64::from(j));
            plain_delivered += run_network(c).delivered;
        }
        let d_plain = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let a = run_network_replicated_traced(
            &trace_mk(),
            trace_reps,
            1,
            &off,
            ReplicationEngine::Scalar,
            None,
        );
        let d_off = t0.elapsed().as_secs_f64();
        let tracer = MsgTracer::new(0.01);
        let t0 = Instant::now();
        let b = run_network_replicated_traced(
            &trace_mk(),
            trace_reps,
            1,
            &off,
            ReplicationEngine::Scalar,
            Some(&tracer),
        );
        let d_on = t0.elapsed().as_secs_f64();
        assert_eq!(a.delivered, plain_delivered);
        assert_eq!(a.delivered, b.delivered);
        if pass > 0 {
            t_trace_plain.push(d_plain);
            t_trace_off.push(d_off);
            t_trace_on.push(d_on);
        }
    }
    let m_trace_plain = median(&mut t_trace_plain);
    let m_trace_off = median(&mut t_trace_off);
    let m_trace_on = median(&mut t_trace_on);
    let trace_off_ratio = m_trace_off / m_trace_plain;
    let trace_on_ratio = m_trace_on / m_trace_plain;
    eprintln!(
        "msgtrace: plain {:.3} ms | untraced {:.3} ms ({:.3}x) | traced@1% {:.3} ms ({:.3}x)",
        m_trace_plain * 1e3,
        m_trace_off * 1e3,
        trace_off_ratio,
        m_trace_on * 1e3,
        trace_on_ratio
    );

    // Operations plane on the serve path: two in-process daemons answer
    // the same cached analytic query over keep-alive connections — one
    // with the plane off (no rolling windows, no access log), one fully
    // instrumented (rolling + per-request access log). The `/query`
    // bodies must be byte-identical (the plane observes, never
    // rewrites) and the instrumented side must stay within the serve
    // budget. A loopback request is ~22 µs of syscalls and thread
    // wakeups whose cost depends on which cores the kernel parks the
    // worker and client on, so a single keep-alive connection biases an
    // entire run by more than the plane's real cost. Every pass
    // therefore opens FRESH connections to both daemons (resampling
    // placement), alternates which side runs first (cancelling slow
    // drift), and the verdict is the median of per-pass paired ratios.
    // 600 passes: the per-pass ratio's spread is dominated by the two
    // daemons' placement draws (σ ≈ 5%), so the median's standard
    // error is ~1.25σ/√passes ≈ 0.26% — comfortable against the
    // ~0.7% gap between the plane's real cost and the budget.
    let (serve_batches, serve_reqs, serve_budget) =
        if quick { (4usize, 150usize, 1.25) } else { (600, 100, 1.02) };
    let base_cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        drift_poll_ms: 0,
        ..ServeConfig::default()
    };
    let log_path = std::env::temp_dir().join(format!(
        "overhead_guard_access_{}.jsonl",
        std::process::id()
    ));
    let hot = r#"{"k": 2, "stages": 6, "p": 0.5, "mode": "analytic"}"#;
    let spawn_daemon = |instrumented: bool| {
        if instrumented {
            ServerHandle::spawn(ServeConfig {
                rolling: true,
                access_log: Some(log_path.display().to_string()),
                access_log_sample_ms: 0,
                ..base_cfg.clone()
            })
            .expect("spawn ops-on daemon")
        } else {
            ServerHandle::spawn(ServeConfig {
                rolling: false,
                ..base_cfg.clone()
            })
            .expect("spawn ops-off daemon")
        }
    };
    let run_batch = |daemon: &ServerHandle| -> f64 {
        let mut c = Client::connect(&daemon.addr().to_string()).expect("connect batch client");
        // Warm the fresh connection: the first requests pay TCP setup,
        // the answer-cache fill, and a cold worker wakeup that the
        // timed window should not.
        for _ in 0..8 {
            let resp = c.request("POST", "/query", Some(hot)).expect("warm batch");
            assert_eq!(resp.status, 200, "{}", resp.body);
        }
        let t0 = Instant::now();
        for _ in 0..serve_reqs {
            let resp = c.request("POST", "/query", Some(hot)).expect("batch query");
            assert_eq!(resp.status, 200);
        }
        t0.elapsed().as_secs_f64()
    };
    let mut t_serve_off = Vec::with_capacity(serve_batches);
    let mut t_serve_on = Vec::with_capacity(serve_batches);
    let mut body_checked = false;
    for pass in 0..serve_batches {
        // Fresh daemons each pass: worker threads live for the whole
        // daemon, so a single pair of daemons carries one core-placement
        // draw across every batch and can bias the entire run by more
        // than the plane's real cost.
        let off_daemon = spawn_daemon(false);
        let on_daemon = spawn_daemon(true);
        if !body_checked {
            body_checked = true;
            let mut off_client =
                Client::connect(&off_daemon.addr().to_string()).expect("connect off");
            let mut on_client = Client::connect(&on_daemon.addr().to_string()).expect("connect on");
            let body_off = off_client
                .request("POST", "/query", Some(hot))
                .expect("warm off daemon");
            let body_on = on_client
                .request("POST", "/query", Some(hot))
                .expect("warm on daemon");
            assert_eq!(body_off.status, 200, "{}", body_off.body);
            assert_eq!(
                body_off.body, body_on.body,
                "ops plane changed a /query body"
            );
        }
        let (d_off_serve, d_on_serve) = if pass % 2 == 0 {
            let off = run_batch(&off_daemon);
            (off, run_batch(&on_daemon))
        } else {
            let on = run_batch(&on_daemon);
            (run_batch(&off_daemon), on)
        };
        t_serve_off.push(d_off_serve);
        t_serve_on.push(d_on_serve);
        off_daemon.shutdown().expect("ops-off daemon shutdown");
        on_daemon.shutdown().expect("ops-on daemon shutdown");
    }
    // Paired estimator: each pass compares adjacent batches, so
    // frequency scaling and background load cancel in the per-pass
    // ratio, and the per-pass daemons and connections turn core-
    // placement luck into zero-mean noise the median over all passes
    // suppresses.
    let mut pass_ratios: Vec<f64> = t_serve_on
        .iter()
        .zip(&t_serve_off)
        .map(|(on, off)| on / off)
        .collect();
    if std::env::var("GUARD_DEBUG").is_ok() {
        let mut sorted = pass_ratios.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        eprintln!(
            "serve pass ratios: {:?}",
            sorted.iter().map(|r| (r * 1000.0).round() / 1000.0).collect::<Vec<_>>()
        );
    }
    let serve_ratio = median(&mut pass_ratios);
    let m_serve_off = median(&mut t_serve_off);
    let m_serve_on = median(&mut t_serve_on);
    let access_lines = std::fs::read_to_string(&log_path).expect("read access log");
    assert!(
        access_lines
            .lines()
            .next()
            .is_some_and(|l| l.contains("banyan-serve/access/v1")),
        "instrumented daemon wrote no access-log lines"
    );
    let _ = std::fs::remove_file(&log_path);
    eprintln!(
        "serve: ops-off {:.3} ms | ops-on {:.3} ms (paired {:.3}x) per {serve_reqs}-request batch",
        m_serve_off * 1e3,
        m_serve_on * 1e3,
        serve_ratio
    );

    let mut o = JsonObject::new();
    o.field_str("suite", "overhead_guard")
        .field_str(
            "config",
            if quick {
                "network_k2_n6_p05_m1"
            } else {
                "network_k2_n10_p05_m1"
            },
        )
        .field_u64("samples", samples as u64)
        .field_f64("plain_median_ns", m_plain * 1e9)
        .field_f64("off_median_ns", m_off * 1e9)
        .field_f64("on_median_ns", m_on * 1e9)
        .field_f64("off_over_plain", off_ratio)
        .field_f64("on_over_plain", on_ratio)
        .field_f64("off_budget", off_budget)
        .field_f64("on_budget", on_budget)
        .field_u64("lane_reps", lane_reps as u64)
        .field_f64("scalar_engine_median_ns", m_scalar * 1e9)
        .field_f64("lane_engine_median_ns", m_lanes * 1e9)
        .field_f64("lane_engine_on_median_ns", m_lanes_on * 1e9)
        .field_f64("lanes_over_scalar", lanes_ratio)
        .field_f64("lanes_on_over_lanes_off", lanes_on_ratio)
        .field_u64("msgtrace_reps", u64::from(trace_reps))
        .field_f64("msgtrace_plain_median_ns", m_trace_plain * 1e9)
        .field_f64("msgtrace_off_median_ns", m_trace_off * 1e9)
        .field_f64("msgtrace_on_median_ns", m_trace_on * 1e9)
        .field_f64("msgtrace_off_over_plain", trace_off_ratio)
        .field_f64("msgtrace_on_over_plain", trace_on_ratio)
        .field_u64("serve_batch_requests", serve_reqs as u64)
        .field_f64("serve_off_median_ns", m_serve_off * 1e9)
        .field_f64("serve_on_median_ns", m_serve_on * 1e9)
        .field_f64("serve_on_over_off", serve_ratio)
        .field_f64("serve_budget", serve_budget);
    let json = format!("{}\n", o.finish_pretty(2));
    let cwd = std::env::current_dir().expect("current dir");
    let root = cwd
        .ancestors()
        .find(|d| d.join("Cargo.lock").is_file())
        .unwrap_or(&cwd)
        .to_path_buf();
    let results = root.join("results");
    std::fs::create_dir_all(&results).expect("create results/");
    let path = results.join("BENCH_overhead_guard.json");
    std::fs::write(&path, json).expect("write overhead guard json");
    eprintln!("wrote {}", path.display());

    assert!(
        off_ratio <= off_budget,
        "telemetry-off overhead {off_ratio:.4}x exceeds budget {off_budget}x: \
         the disabled path has leaked onto the hot loop"
    );
    assert!(
        on_ratio <= on_budget,
        "telemetry-on overhead {on_ratio:.4}x exceeds envelope {on_budget}x"
    );
    assert!(
        lanes_ratio <= off_budget,
        "lane engine {lanes_ratio:.4}x vs scalar exceeds budget {off_budget}x: \
         the lane-batched engine has become slower than running the lanes one by one"
    );
    assert!(
        lanes_on_ratio <= on_budget,
        "lane-engine telemetry overhead {lanes_on_ratio:.4}x exceeds envelope {on_budget}x"
    );
    assert!(
        trace_off_ratio <= off_budget,
        "msgtrace-disabled overhead {trace_off_ratio:.4}x exceeds budget {off_budget}x: \
         the TRACE = false path has leaked tracing work onto the hot loop"
    );
    assert!(
        trace_on_ratio <= on_budget,
        "msgtrace sampling overhead {trace_on_ratio:.4}x exceeds envelope {on_budget}x"
    );
    assert!(
        serve_ratio <= serve_budget,
        "serve ops-plane overhead {serve_ratio:.4}x exceeds budget {serve_budget}x: \
         the rolling/access-log path has leaked real work onto the request path"
    );
    println!(
        "overhead guard: off {off_ratio:.4}x (budget {off_budget}x), \
         on {on_ratio:.4}x (budget {on_budget}x), \
         lanes {lanes_ratio:.4}x (budget {off_budget}x), \
         msgtrace {trace_off_ratio:.4}x (budget {off_budget}x), \
         serve {serve_ratio:.4}x (budget {serve_budget}x) -- ok"
    );
}
