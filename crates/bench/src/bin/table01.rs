//! Regenerates Table 1 of the paper. `--quick` for a smoke run.
//! Writes `results/table01.manifest.json` alongside the stdout table.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "table01",
        banyan_bench::experiments::stage_tables::table01,
    );
}
