//! Regenerates Table 1 of the paper. `--quick` for a smoke run.
fn main() {
    let scale = banyan_bench::scale_from_args();
    print!(
        "{}",
        banyan_bench::experiments::stage_tables::table01(&scale)
    );
}
