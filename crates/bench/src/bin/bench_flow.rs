//! Benchmark + validation harness for the feed-forward flow engine
//! (`crates/flow`).
//!
//! Times `FlowAnalysis` end to end — graph construction, stream
//! decomposition, and every flow's mean/variance/p99 delay quantile —
//! over a spread of built-in topologies, and records
//! `results/BENCH_flow.json` (schema `banyan-bench/flow/v1`). A
//! validation block re-runs the acceptance gate: the 2×2 mesh's
//! analytic per-flow waiting distributions against an event simulation,
//! reporting the worst per-flow KS distance. Engine telemetry (spans,
//! drift gauges) lands in `results/bench_flow.manifest.json`.
//!
//! `--quick` shrinks the repeat counts and simulation budget for smoke
//! runs.

use banyan_obs::json::JsonObject;
use banyan_obs::tail::{table_cdf, DriftReport};
use banyan_obs::{Manifest, Telemetry, TelemetryConfig};
use banyan_repro::flow::{butterfly, fat_tree, mesh, omega, FlowAnalysis, FlowGraph};
use banyan_repro::flow::{simulate_network, FlowSimConfig};
use std::time::Instant;

/// One timed topology: how long a full analysis takes and how it
/// scales per flow.
struct Row {
    name: String,
    nodes: usize,
    links: usize,
    flows: usize,
    wall_secs: f64,
    max_mean_wait: f64,
}

impl Row {
    fn flows_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.flows as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("name", &self.name)
            .field_u64("nodes", self.nodes as u64)
            .field_u64("links", self.links as u64)
            .field_u64("flows", self.flows as u64)
            .field_f64("wall_secs", self.wall_secs)
            .field_f64("flows_per_sec", self.flows_per_sec())
            .field_f64("max_mean_wait", self.max_mean_wait);
        o.finish()
    }
}

/// Analyzes `graph` `repeats` times (quantiles included, the full
/// query surface) and reports the best wall time — the usual
/// min-of-N benchmarking convention to suppress scheduler noise.
fn run_case(name: &str, graph: &FlowGraph, repeats: u32, tel: &Telemetry) -> Row {
    let mut best = f64::INFINITY;
    let mut max_mean_wait = 0.0f64;
    for _ in 0..repeats {
        let _span = tel.span("bench/flow/analyze");
        let t0 = Instant::now();
        let an = FlowAnalysis::new(graph).expect("bench topology must be stable");
        for f in 0..graph.flows().len() {
            max_mean_wait = max_mean_wait.max(an.mean_wait(f));
            std::hint::black_box(an.var_wait(f));
            std::hint::black_box(an.delay_quantile(f, 0.99));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let row = Row {
        name: name.to_string(),
        nodes: graph.nodes().len(),
        links: graph.links().len(),
        flows: graph.flows().len(),
        wall_secs: best,
        max_mean_wait,
    };
    eprintln!(
        "{name}: {} flows over {} links in {:.2}ms = {:.0} flows/sec, max E(w) {:.4}",
        row.flows,
        row.links,
        best * 1e3,
        row.flows_per_sec(),
        max_mean_wait,
    );
    row
}

/// The nearest ancestor holding a `Cargo.lock` (same convention as
/// `bench_serve`), so results land in the workspace `results/`.
fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().expect("current dir");
    cwd.ancestors()
        .find(|d| d.join("Cargo.lock").is_file())
        .unwrap_or(&cwd)
        .to_path_buf()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (repeats, sim_cycles, sim_reps) = if quick { (3, 4_000, 2) } else { (10, 20_000, 4) };
    let tel = Telemetry::new(TelemetryConfig::on());
    eprintln!("bench_flow (quick={quick})");

    let cases: Vec<(&str, FlowGraph)> = vec![
        ("mesh_2x2", mesh(2, 2, 0.5, 1)),
        ("mesh_4x4", mesh(4, 4, 0.12, 1)),
        ("mesh_8x8", mesh(8, 8, 0.025, 1)),
        ("omega_k2_n6", omega(2, 6, 0.5, 1)),
        ("omega_k2_n9", omega(2, 9, 0.5, 1)),
        ("butterfly_k2_n6_extra2", butterfly(2, 6, 2, 0.5, 1)),
        ("fat_tree_8x4x4", fat_tree(8, 4, 4, 0.3, 1)),
    ];

    let started = Instant::now();
    let mut phases: Vec<(String, f64)> = Vec::new();
    let mut rows = Vec::new();
    for (name, graph) in &cases {
        let t0 = Instant::now();
        rows.push(run_case(name, graph, repeats, &tel));
        phases.push(((*name).to_string(), t0.elapsed().as_secs_f64()));
    }

    // Validation: the acceptance-gate mesh, analytic vs event sim.
    // Worst per-flow KS distance must stay inside the pinned 0.05 gate
    // (tests/flow.rs enforces it; here it is recorded as data).
    let t0 = Instant::now();
    let graph = mesh(2, 2, 0.5, 1);
    let an = FlowAnalysis::new(&graph).expect("2x2 mesh is stable at p=0.5");
    let report = simulate_network(
        &graph,
        &FlowSimConfig {
            warmup_cycles: (sim_cycles / 10).max(500),
            measure_cycles: sim_cycles,
            reps: sim_reps,
            seed: 1,
        },
    );
    let mut max_ks = 0.0f64;
    let mut sim_messages = 0u64;
    for (f, sk) in report.flows.iter().enumerate() {
        sim_messages += sk.count();
        if sk.count() == 0 {
            continue;
        }
        let table = an.wait_cdf_table(f).expect("cdf table");
        let name = format!("flow.wait.{f:03}");
        let drift = DriftReport::against(&name, sk, |x| table_cdf(&table, x), an.mean_wait(f), None);
        tel.registry()
            .gauge(&format!("net.drift.ks_ppm.{name}"))
            .set(drift.ks_ppm());
        max_ks = max_ks.max(drift.ks);
    }
    phases.push(("validation".to_string(), t0.elapsed().as_secs_f64()));
    eprintln!(
        "validation: mesh_2x2 analytic vs sim, {} messages, max KS {:.4}",
        sim_messages, max_ks
    );

    // results/BENCH_flow.json
    let mut o = JsonObject::new();
    o.field_str("schema", "banyan-bench/flow/v1")
        .field_str("suite", "flow")
        .field_str("mode", if quick { "quick" } else { "full" })
        .field_u64("repeats", u64::from(repeats));
    let row_json: Vec<String> = rows.iter().map(Row::to_json).collect();
    o.field_raw("rows", &format!("[{}]", row_json.join(", ")));
    let mut v = JsonObject::new();
    v.field_str("topo", "mesh:rows=2,cols=2")
        .field_f64("p", 0.5)
        .field_u64("cycles", sim_cycles)
        .field_u64("reps", u64::from(sim_reps))
        .field_u64("sim_messages", sim_messages)
        .field_f64("max_ks", max_ks);
    o.field_raw("validation", &v.finish());
    let mut json = o.finish_pretty(2);
    json.push('\n');
    let results = workspace_root().join("results");
    std::fs::create_dir_all(&results).expect("create results/");
    let bench_path = results.join("BENCH_flow.json");
    std::fs::write(&bench_path, json).expect("write BENCH_flow.json");
    eprintln!("wrote {}", bench_path.display());

    // The engine's manifest: span quantiles for the analysis loop and
    // the validation drift gauges.
    let mut m = Manifest::new("bench_flow");
    m.config("quick", quick)
        .config("repeats", repeats)
        .config("sim_cycles", sim_cycles)
        .config("sim_reps", sim_reps)
        .seed("sim", 1u64)
        .artifact("results/BENCH_flow.json");
    for (label, secs) in &phases {
        m.phase(label, *secs);
    }
    m.phase("total", started.elapsed().as_secs_f64());
    let manifest_path = results.join("bench_flow.manifest.json");
    let written = m
        .write(&manifest_path, Some(&tel))
        .expect("write bench_flow manifest");
    eprintln!("wrote {}", written.display());
}
