//! Regenerates Table VI (cross-stage correlations). `--quick` for a smoke run.
//! Writes `results/table06.manifest.json` alongside the stdout table.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "table06",
        banyan_bench::experiments::correlations::table06,
    );
}
