//! Regenerates Table VI (cross-stage correlations). `--quick` for a smoke run.
fn main() {
    let scale = banyan_bench::scale_from_args();
    print!(
        "{}",
        banyan_bench::experiments::correlations::table06(&scale)
    );
}
