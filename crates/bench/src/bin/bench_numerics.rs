//! Microbenchmarks of the numerical substrate; accepts `--quick`.
//! Writes `results/BENCH_numerics.json`.

fn main() {
    banyan_bench::suites::numerics();
}
