//! Microbenchmarks of the numerical substrate; accepts `--quick`.
//! Writes `results/BENCH_numerics.json` and
//! `results/bench_numerics.manifest.json`.

fn main() {
    let scale = banyan_bench::scale_from_args();
    let mut run = banyan_bench::manifest::RunManifest::start("bench_numerics", &scale);
    let path = banyan_bench::suites::numerics();
    run.phase("suite").artifact(path.display());
    run.finish();
}
