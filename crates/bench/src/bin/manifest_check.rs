//! Structural validator for the JSON artifacts a run leaves behind:
//! run manifests (`*.manifest.json`, schema v1 or v2), distribution
//! dumps (`--dist-out`, schema `banyan-obs/dist/v1`), drift reports
//! (`banyan report --json`, schema `banyan-obs/report/v1`),
//! `bench_serve` results (schema `banyan-bench/serve/v1`), `bench_flow`
//! results (schema `banyan-bench/flow/v1`), trace-event files
//! (`--trace-out`, chrome://tracing format), structured access logs
//! (`--access-log` JSONL, schema `banyan-serve/access/v1` per line),
//! and sampled message traces (`--msg-trace` JSONL, schema
//! `banyan-obs/msgtrace/v1`: monotone per-stage cycle chains, stage
//! counts matching the header, and the sum-of-stage-waits identity).
//!
//! Usage: `manifest_check FILE...` — each file is sniffed by its
//! `schema` key (or by a top-level `traceEvents` array) and checked for
//! schema version, required keys, finite numbers, and internal
//! consistency (pmf counts summing to the sketch count, the
//! injected = delivered + in-flight conservation ledger, …). Exits
//! nonzero on the first file that fails; `scripts/verify.sh` runs it
//! over `results/` and the smoke artifacts.

use banyan_obs::json::JsonValue;

/// Walks a parsed document and fails on any non-finite number. The
/// writer serializes NaN/inf as `null`, so a non-finite value can only
/// enter via an overflowing literal (e.g. `1e999`) — always a bug.
fn check_finite(v: &JsonValue, path: &str) -> Result<(), String> {
    match v {
        JsonValue::Num(n) if !n.is_finite() => Err(format!("{path}: non-finite number")),
        JsonValue::Arr(items) => items
            .iter()
            .enumerate()
            .try_for_each(|(i, item)| check_finite(item, &format!("{path}[{i}]"))),
        JsonValue::Obj(members) => members
            .iter()
            .try_for_each(|(k, item)| check_finite(item, &format!("{path}.{k}"))),
        _ => Ok(()),
    }
}

fn require<'a>(doc: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    doc.get(key)
        .ok_or_else(|| format!("missing required key \"{key}\""))
}

/// One distribution sketch object: parallel `values`/`counts` arrays
/// whose counts sum to `count`, with finite moments.
fn check_sketch(name: &str, sk: &JsonValue) -> Result<(), String> {
    let ctx = |msg: String| format!("sketch \"{name}\": {msg}");
    let count = require(sk, "count")?
        .as_u64()
        .ok_or_else(|| ctx("count is not a nonnegative integer".into()))?;
    for key in ["mean", "variance"] {
        require(sk, key)?
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| ctx(format!("{key} is not a finite number")))?;
    }
    let values = require(sk, "values")?
        .as_array()
        .ok_or_else(|| ctx("values is not an array".into()))?;
    let counts = require(sk, "counts")?
        .as_array()
        .ok_or_else(|| ctx("counts is not an array".into()))?;
    if values.len() != counts.len() {
        return Err(ctx(format!(
            "values/counts length mismatch: {} vs {}",
            values.len(),
            counts.len()
        )));
    }
    let mut sum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        let c = c
            .as_u64()
            .ok_or_else(|| ctx(format!("counts[{i}] is not a nonnegative integer")))?;
        if c == 0 {
            return Err(ctx(format!(
                "counts[{i}] is zero (sparse pmf must omit it)"
            )));
        }
        sum += c;
    }
    if sum != count {
        return Err(ctx(format!("pmf counts sum to {sum}, count says {count}")));
    }
    Ok(())
}

/// Checks every sketch under a `distributions` object.
fn check_distributions(doc: &JsonValue) -> Result<usize, String> {
    let dists = require(doc, "distributions")?
        .as_object()
        .ok_or("distributions is not an object")?;
    for (name, sk) in dists {
        check_sketch(name, sk)?;
    }
    Ok(dists.len())
}

/// A run manifest, v1 or v2. All v1 keys are required in both; v2 adds
/// `span_quantiles` and `distributions`.
fn check_manifest(doc: &JsonValue, schema: &str) -> Result<String, String> {
    let v2 = match schema {
        "banyan-obs/manifest/v1" => false,
        "banyan-obs/manifest/v2" => true,
        other => return Err(format!("unknown manifest schema \"{other}\"")),
    };
    for key in [
        "name",
        "created_unix",
        "host_parallelism",
        "config",
        "seeds",
        "phases",
        "artifacts",
        "spans",
        "metrics",
        "runs",
    ] {
        require(doc, key)?;
    }
    require(doc, "name")?
        .as_str()
        .ok_or("name is not a string")?;
    require(doc, "created_unix")?
        .as_u64()
        .ok_or("created_unix is not an integer")?;
    let n_dists = if v2 {
        require(doc, "span_quantiles")?
            .as_object()
            .ok_or("span_quantiles is not an object")?;
        check_distributions(doc)?
    } else {
        0
    };
    // Conservation ledger: whenever the network counters are present,
    // injected = delivered + in-flight must balance exactly.
    if let Some(metrics) = doc.get("metrics") {
        let counter = |name: &str| {
            metrics
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(JsonValue::as_u64)
        };
        if let (Some(injected), Some(delivered), Some(in_flight)) = (
            counter("net.injected_total"),
            counter("net.delivered_total"),
            counter("net.in_flight_at_end"),
        ) {
            if injected != delivered + in_flight {
                return Err(format!(
                    "conservation ledger broken: injected {injected} != \
                     delivered {delivered} + in-flight {in_flight}"
                ));
            }
        }
        // Serve ledgers: every request is answered exactly once
        // (responses = parsed requests + parse errors), and every
        // validated query either hit or missed the cache. Absent
        // counters read as 0 — the registry only materializes counters
        // that were incremented.
        if let Some(responses) = counter("serve.http.responses_total") {
            let requests = counter("serve.http.requests_total").unwrap_or(0);
            let parse_errors = counter("serve.http.parse_errors_total").unwrap_or(0);
            if responses != requests + parse_errors {
                return Err(format!(
                    "serve response ledger broken: responses {responses} != \
                     requests {requests} + parse errors {parse_errors}"
                ));
            }
        }
        let query_validated = counter("serve.query.validated_total");
        let flow_validated = counter("serve.flow.validated_total");
        if query_validated.is_some() || flow_validated.is_some() {
            // The answer cache is shared between /query and /v1/flow,
            // so hit + miss traffic balances against the *sum* of the
            // two validated counters.
            let validated = query_validated.unwrap_or(0) + flow_validated.unwrap_or(0);
            let hits = counter("serve.cache.hits").unwrap_or(0);
            let misses = counter("serve.cache.misses").unwrap_or(0);
            if validated != hits + misses {
                return Err(format!(
                    "serve cache ledger broken: validated {validated} != \
                     hits {hits} + misses {misses}"
                ));
            }
        }
        // Lane-engine provenance: `net.lane_runs` counts replications
        // that went through the lane-batched engine, so it can never
        // exceed the total replication count.
        if let Some(lane_runs) = counter("net.lane_runs") {
            let runs = counter("net.runs").ok_or(format!(
                "net.lane_runs {lane_runs} present without net.runs"
            ))?;
            if lane_runs > runs {
                return Err(format!(
                    "lane ledger broken: net.lane_runs {lane_runs} > net.runs {runs}"
                ));
            }
        }
        // Operations-plane gauges. The drift flag is boolean, and
        // every published rolling window must carry its full gauge set
        // with isotonic quantiles bounded by the windowed max (the
        // rolling estimators repair crossings before publishing, so a
        // violation here means the publisher mixed up windows).
        let gauge = |name: &str| {
            metrics
                .get("gauges")
                .and_then(|g| g.get(name))
                .and_then(|g| g.get("value"))
                .and_then(JsonValue::as_u64)
        };
        if let Some(flag) = gauge("serve.drift.degraded") {
            if flag > 1 {
                return Err(format!("serve.drift.degraded {flag} is not a 0/1 flag"));
            }
        }
        if let Some(gauges) = metrics.get("gauges").and_then(JsonValue::as_object) {
            for (name, _) in gauges {
                let Some(prefix) = name
                    .strip_suffix(".count")
                    .filter(|p| p.starts_with("serve.rolling."))
                else {
                    continue;
                };
                let field = |suffix: &str| {
                    gauge(&format!("{prefix}.{suffix}")).ok_or_else(|| {
                        format!("rolling window \"{prefix}\" missing gauge .{suffix}")
                    })
                };
                let (p50, p90, p99, p999, max) = (
                    field("p50_us")?,
                    field("p90_us")?,
                    field("p99_us")?,
                    field("p999_us")?,
                    field("max_us")?,
                );
                if !(p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= max) {
                    return Err(format!(
                        "rolling window \"{prefix}\" quantiles not monotone: \
                         p50 {p50} p90 {p90} p99 {p99} p999 {p999} max {max}"
                    ));
                }
            }
        }
    }
    Ok(format!(
        "manifest {} ({n_dists} distributions)",
        if v2 { "v2" } else { "v1" }
    ))
}

/// The `drift` array shared by `--dist-out` dumps and `banyan report
/// --json`: named KS reports with bounded statistics and finite means.
fn check_drift_array(doc: &JsonValue) -> Result<usize, String> {
    let drift = require(doc, "drift")?
        .as_array()
        .ok_or("drift is not an array")?;
    for (i, r) in drift.iter().enumerate() {
        let ctx = |msg: &str| format!("drift[{i}]: {msg}");
        require(r, "name")?
            .as_str()
            .ok_or_else(|| ctx("name is not a string"))?;
        require(r, "count")?
            .as_u64()
            .ok_or_else(|| ctx("count is not an integer"))?;
        let ks = require(r, "ks")?
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| ctx("ks is not a finite number"))?;
        if !(0.0..=1.0).contains(&ks) {
            return Err(ctx(&format!("ks {ks} outside [0, 1]")));
        }
        for key in ["observed_mean", "analytic_mean"] {
            require(r, key)?
                .as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| ctx(&format!("{key} is not a finite number")))?;
        }
    }
    Ok(drift.len())
}

/// A `--dist-out` dump: per-stage sketches plus drift reports.
fn check_dist(doc: &JsonValue) -> Result<String, String> {
    let n = check_distributions(doc)?;
    if n == 0 {
        return Err("distributions object is empty".into());
    }
    let drift = check_drift_array(doc)?;
    Ok(format!("dist v1 ({n} distributions, {drift} drift reports)"))
}

/// A `banyan report --json` drift table: the run's identifying knobs
/// plus a nonempty drift array.
fn check_report(doc: &JsonValue) -> Result<String, String> {
    for key in ["k", "stages", "cycles", "seed", "reps", "delivered"] {
        require(doc, key)?
            .as_u64()
            .ok_or_else(|| format!("{key} is not a nonnegative integer"))?;
    }
    require(doc, "p")?
        .as_f64()
        .filter(|x| x.is_finite())
        .ok_or("p is not a finite number")?;
    let drift = check_drift_array(doc)?;
    if drift == 0 {
        return Err("drift array is empty".into());
    }
    Ok(format!("report v1 ({drift} drift reports)"))
}

/// A sampled per-message lifecycle trace (`--msg-trace` JSONL). The
/// library parser enforces the format's contracts — monotone cycle
/// chains `enter[j] ≤ start[j] < enter[j+1]`, per-record stage counts
/// matching the header, `total = Σ wait[j]`, ascending `(rep, ord)` —
/// so validation is exactly a parse.
fn check_msgtrace(text: &str) -> Result<String, String> {
    let parsed = banyan_obs::msgtrace::parse_trace(text)?;
    let stages = parsed
        .stages
        .map_or("variable".to_string(), |s| s.to_string());
    Ok(format!(
        "msgtrace v1 ({} records, stages {stages}, rate {})",
        parsed.records.len(),
        parsed.rate
    ))
}

/// A `bench_serve` result file: per-phase rows with measured
/// throughput, latency quantiles, and cache hit rates.
fn check_serve_bench(doc: &JsonValue) -> Result<String, String> {
    require(doc, "server")?
        .as_object()
        .ok_or("server is not an object")?;
    let rows = require(doc, "rows")?
        .as_array()
        .ok_or("rows is not an array")?;
    if rows.is_empty() {
        return Err("rows is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let name = require(row, "name")?
            .as_str()
            .ok_or_else(|| format!("rows[{i}].name is not a string"))?
            .to_string();
        let ctx = |msg: String| format!("row \"{name}\": {msg}");
        let num = |key: &str| -> Result<f64, String> {
            require(row, key)
                .map_err(&ctx)?
                .as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| ctx(format!("{key} is not a finite number")))
        };
        let requests = require(row, "requests")
            .map_err(&ctx)?
            .as_u64()
            .ok_or_else(|| ctx("requests is not an integer".into()))?;
        if requests == 0 {
            return Err(ctx("requests is zero".into()));
        }
        if require(row, "errors").map_err(&ctx)?.as_u64() != Some(0) {
            return Err(ctx("errors is nonzero (or not an integer)".into()));
        }
        if num("qps")? <= 0.0 {
            return Err(ctx("qps is not positive".into()));
        }
        let (p50, p90, p99) = (num("p50_us")?, num("p90_us")?, num("p99_us")?);
        if !(0.0 < p50 && p50 <= p90 && p90 <= p99) {
            return Err(ctx(format!(
                "latency quantiles not monotone: p50 {p50} p90 {p90} p99 {p99}"
            )));
        }
        let hit_rate = num("hit_rate")?;
        if !(0.0..=1.0).contains(&hit_rate) {
            return Err(ctx(format!("hit_rate {hit_rate} outside [0, 1]")));
        }
        let hits = require(row, "cache_hits")
            .map_err(&ctx)?
            .as_u64()
            .ok_or_else(|| ctx("cache_hits is not an integer".into()))?;
        let misses = require(row, "cache_misses")
            .map_err(&ctx)?
            .as_u64()
            .ok_or_else(|| ctx("cache_misses is not an integer".into()))?;
        if hits + misses > requests {
            return Err(ctx(format!(
                "cache traffic {} exceeds requests {requests}",
                hits + misses
            )));
        }
    }
    Ok(format!("serve bench v1 ({} rows)", rows.len()))
}

/// A `bench_flow` result file: per-topology analysis timings plus a
/// flow-vs-simulation validation block with a bounded KS statistic.
fn check_flow_bench(doc: &JsonValue) -> Result<String, String> {
    let rows = require(doc, "rows")?
        .as_array()
        .ok_or("rows is not an array")?;
    if rows.is_empty() {
        return Err("rows is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let name = require(row, "name")?
            .as_str()
            .ok_or_else(|| format!("rows[{i}].name is not a string"))?
            .to_string();
        let ctx = |msg: String| format!("row \"{name}\": {msg}");
        let num = |key: &str| -> Result<f64, String> {
            require(row, key)
                .map_err(&ctx)?
                .as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| ctx(format!("{key} is not a finite number")))
        };
        for key in ["nodes", "links", "flows"] {
            let v = require(row, key)
                .map_err(&ctx)?
                .as_u64()
                .ok_or_else(|| ctx(format!("{key} is not an integer")))?;
            if v == 0 {
                return Err(ctx(format!("{key} is zero")));
            }
        }
        if num("wall_secs")? < 0.0 {
            return Err(ctx("wall_secs is negative".into()));
        }
        if num("flows_per_sec")? <= 0.0 {
            return Err(ctx("flows_per_sec is not positive".into()));
        }
        if num("max_mean_wait")? < 0.0 {
            return Err(ctx("max_mean_wait is negative".into()));
        }
    }
    let validation = require(doc, "validation")?;
    let max_ks = require(validation, "max_ks")?
        .as_f64()
        .filter(|x| x.is_finite())
        .ok_or("validation.max_ks is not a finite number")?;
    if !(0.0..=1.0).contains(&max_ks) {
        return Err(format!("validation.max_ks {max_ks} outside [0, 1]"));
    }
    let messages = require(validation, "sim_messages")?
        .as_u64()
        .ok_or("validation.sim_messages is not an integer")?;
    if messages == 0 {
        return Err("validation.sim_messages is zero".into());
    }
    Ok(format!(
        "flow bench v1 ({} rows, validation max_ks {max_ks})",
        rows.len()
    ))
}

/// A chrome://tracing file: `traceEvents`, each with `ph`/`name`/
/// `pid`/`tid`, and `ts`/`dur` on complete (`X`) events.
fn check_trace(doc: &JsonValue) -> Result<String, String> {
    let events = require(doc, "traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut complete = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let ph = require(e, "ph")?
            .as_str()
            .ok_or_else(|| ctx("ph is not a string"))?;
        require(e, "name")?
            .as_str()
            .ok_or_else(|| ctx("name is not a string"))?;
        require(e, "pid")?
            .as_u64()
            .ok_or_else(|| ctx("pid is not an integer"))?;
        match ph {
            "X" => {
                require(e, "tid")?
                    .as_u64()
                    .ok_or_else(|| ctx("tid is not an integer"))?;
                require(e, "ts")?
                    .as_u64()
                    .ok_or_else(|| ctx("ts is not an integer"))?;
                require(e, "dur")?
                    .as_u64()
                    .ok_or_else(|| ctx("dur is not an integer"))?;
                complete += 1;
            }
            // Metadata: process_name carries no tid, thread_name does.
            "M" => {}
            other => return Err(ctx(&format!("unexpected event phase \"{other}\""))),
        }
    }
    Ok(format!(
        "trace ({} events, {complete} complete)",
        events.len()
    ))
}

/// Route labels `banyan serve` emits, mirrored from `src/serve/ops.rs`
/// — an access-log line naming anything else is malformed.
const ACCESS_ROUTES: [&str; 9] = [
    "query", "flow", "batch", "metrics", "statusz", "healthz", "readyz", "shutdown", "other",
];

/// A structured access log: JSONL, one `banyan-serve/access/v1` object
/// per line with the full field set — string fields string-typed,
/// counters nonnegative integers, status a plausible HTTP code, and
/// the route drawn from the daemon's route label set.
fn check_access_log(text: &str) -> Result<String, String> {
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let ctx = |msg: String| format!("line {}: {msg}", i + 1);
        let doc = JsonValue::parse(line).map_err(|e| ctx(format!("invalid JSON: {e}")))?;
        check_finite(&doc, "$").map_err(&ctx)?;
        if require(&doc, "schema").map_err(&ctx)?.as_str() != Some("banyan-serve/access/v1")
        {
            return Err(ctx("schema is not \"banyan-serve/access/v1\"".into()));
        }
        let route = require(&doc, "route")
            .map_err(&ctx)?
            .as_str()
            .ok_or_else(|| ctx("route is not a string".into()))?;
        if !ACCESS_ROUTES.contains(&route) {
            return Err(ctx(format!("unknown route \"{route}\"")));
        }
        for key in ["method", "path", "cache", "source"] {
            require(&doc, key)
                .map_err(&ctx)?
                .as_str()
                .ok_or_else(|| ctx(format!("{key} is not a string")))?;
        }
        for key in ["ts_ms", "bytes", "us", "ks_ppm"] {
            require(&doc, key)
                .map_err(&ctx)?
                .as_u64()
                .ok_or_else(|| ctx(format!("{key} is not a nonnegative integer")))?;
        }
        let status = require(&doc, "status")
            .map_err(&ctx)?
            .as_u64()
            .ok_or_else(|| ctx("status is not an integer".into()))?;
        if !(100..=599).contains(&status) {
            return Err(ctx(format!("status {status} is not an HTTP status code")));
        }
        lines += 1;
    }
    if lines == 0 {
        return Err("access log has no lines".into());
    }
    Ok(format!("access log v1 ({lines} lines)"))
}

/// Dispatches one file by its schema (or trace shape).
fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    // Access logs are JSONL — many documents, one per line — so they
    // are sniffed by their first line before the whole-file parse.
    if text
        .lines()
        .next()
        .is_some_and(|l| l.contains("\"banyan-serve/access/v1\""))
    {
        return check_access_log(&text);
    }
    // Message traces are JSONL too: sniff the header line's schema.
    if text
        .lines()
        .next()
        .is_some_and(|l| l.contains("\"banyan-obs/msgtrace/v1\""))
    {
        return check_msgtrace(&text);
    }
    let doc = JsonValue::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    check_finite(&doc, "$")?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s.starts_with("banyan-obs/manifest/") => check_manifest(&doc, s),
        Some("banyan-obs/dist/v1") => check_dist(&doc),
        Some("banyan-obs/report/v1") => check_report(&doc),
        Some("banyan-bench/serve/v1") => check_serve_bench(&doc),
        Some("banyan-bench/flow/v1") => check_flow_bench(&doc),
        Some(other) => Err(format!("unknown schema \"{other}\"")),
        None if doc.get("traceEvents").is_some() => check_trace(&doc),
        None => Err("no schema key and no traceEvents array".into()),
    }
}

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: manifest_check FILE...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &files {
        match check_file(path) {
            Ok(summary) => println!("{path}: ok — {summary}"),
            Err(msg) => {
                eprintln!("{path}: FAIL — {msg}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
