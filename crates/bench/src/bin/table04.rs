//! Regenerates Table 4 of the paper. `--quick` for a smoke run.
//! Writes `results/table04.manifest.json` alongside the stdout table.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "table04",
        banyan_bench::experiments::stage_tables::table04,
    );
}
