//! Self-driving load client for the `banyan serve` capacity daemon.
//!
//! Spawns the daemon in-process on an ephemeral port, drives it over
//! real TCP connections with the same hand-rolled HTTP client the
//! integration tests use, and records `results/BENCH_serve.json`
//! (schema `banyan-bench/serve/v1`): queries/sec, p50/p90/p99 service
//! latency, and cache hit rate per phase. The daemon's own telemetry
//! (request counters, cache gauges, per-request span quantiles) lands
//! in `results/bench_serve.manifest.json`.
//!
//! Phases:
//! 1. `analytic_hot_1conn` — one keep-alive connection re-asking one
//!    configuration: the pure cache-hit hot path.
//! 2. `analytic_hot_8conn` — eight connections on the same hot
//!    configuration: contention on the cache and worker pool.
//! 3. `config_sweep` — cycling a 64-configuration grid: miss+hit mix
//!    with closed-form evaluation on every miss.
//! 4. `auto_drift_gated` — `mode=auto`: each new configuration pays a
//!    probe simulation for the KS drift gate, repeats hit the cache.
//! 5. `simulate_slow_path` — `mode=simulate`: replicated-simulation
//!    answers (the expensive fallback, small cycle budget).
//!
//! `--quick` shrinks request counts for smoke runs.

use banyan_obs::json::JsonObject;
use banyan_obs::Manifest;
use banyan_repro::serve::http::Client;
use banyan_repro::serve::{ServeConfig, ServerHandle, ServerState};
use std::sync::Arc;
use std::time::Instant;

/// One measured phase.
struct Row {
    name: &'static str,
    clients: usize,
    requests: u64,
    errors: u64,
    wall_secs: f64,
    latencies_ns: Vec<u64>,
    cache_hits: u64,
    cache_misses: u64,
}

impl Row {
    fn qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.requests as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    fn latency_us(&self, q: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let mut xs = self.latencies_ns.clone();
        xs.sort_unstable();
        let idx = ((xs.len() - 1) as f64 * q).round() as usize;
        xs[idx] as f64 / 1_000.0
    }

    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("name", self.name)
            .field_u64("clients", self.clients as u64)
            .field_u64("requests", self.requests)
            .field_u64("errors", self.errors)
            .field_f64("wall_secs", self.wall_secs)
            .field_f64("qps", self.qps())
            .field_f64("p50_us", self.latency_us(0.50))
            .field_f64("p90_us", self.latency_us(0.90))
            .field_f64("p99_us", self.latency_us(0.99))
            .field_u64("cache_hits", self.cache_hits)
            .field_u64("cache_misses", self.cache_misses)
            .field_f64("hit_rate", self.hit_rate());
        o.finish()
    }
}

fn counter(state: &ServerState, name: &str) -> u64 {
    state.telemetry().registry().counter_value(name).unwrap_or(0)
}

/// Drives `clients` keep-alive connections for `requests_per_client`
/// POST /query requests each, timing every request.
fn run_phase(
    addr: &str,
    state: &ServerState,
    name: &'static str,
    clients: usize,
    requests_per_client: usize,
    body_for: &(dyn Fn(usize, usize) -> String + Sync),
) -> Row {
    let hits0 = counter(state, "serve.cache.hits");
    let misses0 = counter(state, "serve.cache.misses");
    let started = Instant::now();
    let outcomes: Vec<(Vec<u64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect to daemon");
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    let mut errors = 0u64;
                    for r in 0..requests_per_client {
                        let body = body_for(c, r);
                        let t0 = Instant::now();
                        match client.request("POST", "/query", Some(&body)) {
                            Ok(resp) if resp.status == 200 => {
                                latencies.push(t0.elapsed().as_nanos() as u64);
                            }
                            _ => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let mut latencies_ns = Vec::new();
    let mut errors = 0;
    for (lat, err) in outcomes {
        latencies_ns.extend(lat);
        errors += err;
    }
    let row = Row {
        name,
        clients,
        requests: (clients * requests_per_client) as u64,
        errors,
        wall_secs,
        latencies_ns,
        cache_hits: counter(state, "serve.cache.hits") - hits0,
        cache_misses: counter(state, "serve.cache.misses") - misses0,
    };
    eprintln!(
        "{name}: {} req over {:.2}s = {:.0} qps, p50 {:.0}us p99 {:.0}us, hit rate {:.3}, {} errors",
        row.requests,
        row.wall_secs,
        row.qps(),
        row.latency_us(0.50),
        row.latency_us(0.99),
        row.hit_rate(),
        row.errors,
    );
    row
}

/// The nearest ancestor holding a `Cargo.lock` (same convention as the
/// micro-bench harness), so results land in the workspace `results/`.
fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().expect("current dir");
    cwd.ancestors()
        .find(|d| d.join("Cargo.lock").is_file())
        .unwrap_or(&cwd)
        .to_path_buf()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (hot_requests, sweep_rounds, auto_repeats) = if quick { (300, 2, 3) } else { (4_000, 6, 5) };

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        probe_cycles: 500,
        probe_reps: 2,
        sim_cycles: if quick { 1_000 } else { 4_000 },
        sim_reps: 2,
        // No background drift re-probes: phase timings stay pure load.
        drift_poll_ms: 0,
        ..ServeConfig::default()
    };
    let handle = ServerHandle::spawn(cfg.clone()).expect("spawn daemon");
    let addr = handle.addr().to_string();
    let state: Arc<ServerState> = Arc::clone(handle.state());
    eprintln!("bench_serve driving daemon at {addr} (quick={quick})");

    // Sanity: the daemon answers over the wire before any timing runs.
    let mut probe = Client::connect(&addr).expect("connect");
    let resp = probe.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200, "healthz failed: {}", resp.body);
    let resp = probe.request("GET", "/metrics", None).expect("metrics");
    assert_eq!(resp.status, 200, "metrics failed: {}", resp.body);
    drop(probe);

    let hot = r#"{"k": 2, "stages": 6, "p": 0.5, "m": 1, "mode": "analytic"}"#.to_string();
    let started = Instant::now();
    let mut phases: Vec<(String, f64)> = Vec::new();
    let mut rows = Vec::new();

    let t0 = Instant::now();
    rows.push(run_phase(&addr, &state, "analytic_hot_1conn", 1, hot_requests, &|_, _| {
        hot.clone()
    }));
    phases.push(("analytic_hot_1conn".to_string(), t0.elapsed().as_secs_f64()));

    // Rolling-window agreement: right after the single-connection hot
    // phase (before other phases pollute the windows), the daemon's own
    // 10s-window quantiles for the query route must track the
    // client-measured latencies. The server timer excludes the loopback
    // round trip and channel queueing, so the band is directional — the
    // server quantile sits at or below the client's, never far above.
    let t0 = Instant::now();
    let mut probe = Client::connect(&addr).expect("connect");
    let resp = probe.request("GET", "/statusz", None).expect("statusz");
    assert_eq!(resp.status, 200, "statusz failed: {}", resp.body);
    let doc = banyan_obs::json::JsonValue::parse(&resp.body).expect("statusz parses");
    let win = doc
        .get("routes")
        .and_then(|r| r.get("query"))
        .and_then(|q| q.get("10s"))
        .expect("statusz carries a 10s rolling window for /query");
    let get_f64 = |key: &str| {
        win.get(key)
            .and_then(banyan_obs::json::JsonValue::as_f64)
            .unwrap_or_else(|| panic!("statusz 10s window missing {key}"))
    };
    let srv_p50 = get_f64("p50_us");
    let srv_p99 = get_f64("p99_us");
    let cli_p50 = rows[0].latency_us(0.50);
    let cli_p99 = rows[0].latency_us(0.99);
    assert!(get_f64("qps") > 0.0, "10s window saw no traffic");
    assert!(
        srv_p50 > 0.0 && srv_p50 <= cli_p50 * 2.0 + 200.0,
        "server p50 {srv_p50:.0}us disagrees with client p50 {cli_p50:.0}us"
    );
    assert!(
        srv_p99 <= cli_p99 * 3.0 + 1_000.0,
        "server p99 {srv_p99:.0}us disagrees with client p99 {cli_p99:.0}us"
    );
    eprintln!(
        "statusz agreement: server p50 {srv_p50:.0}us / p99 {srv_p99:.0}us vs \
         client p50 {cli_p50:.0}us / p99 {cli_p99:.0}us"
    );
    drop(probe);
    phases.push(("statusz_scrape".to_string(), t0.elapsed().as_secs_f64()));

    let t0 = Instant::now();
    rows.push(run_phase(
        &addr,
        &state,
        "analytic_hot_8conn",
        8,
        hot_requests / 4,
        &|_, _| hot.clone(),
    ));
    phases.push(("analytic_hot_8conn".to_string(), t0.elapsed().as_secs_f64()));

    // 64 distinct stable configurations: p grid x k in {2,4} x n in {3,6}.
    let sweep_body = |c: usize, r: usize| {
        let i = (c * 977 + r) % 64;
        let p = 0.05 + 0.045 * (i % 16) as f64;
        let k = if (i / 16).is_multiple_of(2) { 2 } else { 4 };
        let stages = if i / 32 == 0 { 3 } else { 6 };
        format!(r#"{{"k": {k}, "stages": {stages}, "p": {p}, "mode": "analytic"}}"#)
    };
    let t0 = Instant::now();
    rows.push(run_phase(
        &addr,
        &state,
        "config_sweep",
        4,
        64 * sweep_rounds / 4,
        &sweep_body,
    ));
    phases.push(("config_sweep".to_string(), t0.elapsed().as_secs_f64()));

    // Auto mode: 4 configurations, each probed once for drift then
    // cached; repeats measure the gated hot path.
    let auto_body = |c: usize, r: usize| {
        let i = (c + r) % 4;
        let p = 0.2 + 0.15 * i as f64;
        format!(r#"{{"k": 2, "stages": 6, "p": {p}, "mode": "auto"}}"#)
    };
    let t0 = Instant::now();
    rows.push(run_phase(&addr, &state, "auto_drift_gated", 2, 2 * auto_repeats, &auto_body));
    phases.push(("auto_drift_gated".to_string(), t0.elapsed().as_secs_f64()));

    // Forced simulation: the expensive slow path, two configurations.
    let sim_body = |c: usize, r: usize| {
        let p = if (c + r).is_multiple_of(2) { 0.3 } else { 0.6 };
        format!(r#"{{"k": 2, "stages": 4, "p": {p}, "mode": "simulate"}}"#)
    };
    let t0 = Instant::now();
    rows.push(run_phase(&addr, &state, "simulate_slow_path", 2, 4, &sim_body));
    phases.push(("simulate_slow_path".to_string(), t0.elapsed().as_secs_f64()));

    let total_errors: u64 = rows.iter().map(|r| r.errors).sum();
    assert_eq!(total_errors, 0, "load client saw {total_errors} errors");

    // results/BENCH_serve.json
    let mut o = JsonObject::new();
    o.field_str("schema", "banyan-bench/serve/v1")
        .field_str("suite", "serve")
        .field_str("mode", if quick { "quick" } else { "full" });
    let mut server = JsonObject::new();
    server
        .field_u64("workers", cfg.workers as u64)
        .field_u64("cache_cap", cfg.cache_cap as u64)
        .field_f64("drift_threshold", cfg.drift_threshold)
        .field_u64("probe_cycles", cfg.probe_cycles)
        .field_u64("sim_cycles", cfg.sim_cycles);
    o.field_raw("server", &server.finish());
    let mut statusz = JsonObject::new();
    statusz
        .field_f64("rolling_10s_p50_us", srv_p50)
        .field_f64("rolling_10s_p99_us", srv_p99)
        .field_f64("client_p50_us", cli_p50)
        .field_f64("client_p99_us", cli_p99);
    o.field_raw("statusz_agreement", &statusz.finish());
    let row_json: Vec<String> = rows.iter().map(Row::to_json).collect();
    o.field_raw("rows", &format!("[{}]", row_json.join(", ")));
    let mut json = o.finish_pretty(2);
    json.push('\n');
    let results = workspace_root().join("results");
    std::fs::create_dir_all(&results).expect("create results/");
    let bench_path = results.join("BENCH_serve.json");
    std::fs::write(&bench_path, json).expect("write BENCH_serve.json");
    eprintln!("wrote {}", bench_path.display());

    handle.shutdown().expect("clean daemon shutdown");

    // The daemon's manifest: serve.* counters, cache gauges, and the
    // per-request span quantiles (p50/p99 service latency as the server
    // itself measured it).
    let mut m = Manifest::new("bench_serve");
    m.config("addr", &addr)
        .config("quick", quick)
        .config("workers", cfg.workers)
        .config("cache_cap", cfg.cache_cap)
        .config("drift_threshold", cfg.drift_threshold)
        .config("probe_cycles", cfg.probe_cycles)
        .config("sim_cycles", cfg.sim_cycles)
        .seed("base", cfg.seed)
        .artifact("results/BENCH_serve.json");
    for (label, secs) in &phases {
        m.phase(label, *secs);
    }
    m.phase("total", started.elapsed().as_secs_f64());
    let manifest_path = results.join("bench_serve.manifest.json");
    let written = m
        .write(&manifest_path, Some(state.telemetry()))
        .expect("write bench_serve manifest");
    eprintln!("wrote {}", written.display());
}
