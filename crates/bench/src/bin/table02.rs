//! Regenerates Table 2 of the paper. `--quick` for a smoke run.
//! Writes `results/table02.manifest.json` alongside the stdout table.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "table02",
        banyan_bench::experiments::stage_tables::table02,
    );
}
