//! Microbenchmarks of the analytical layer; accepts `--quick`.
//! Writes `results/BENCH_analysis.json` and
//! `results/bench_analysis.manifest.json`.

fn main() {
    let scale = banyan_bench::scale_from_args();
    let mut run = banyan_bench::manifest::RunManifest::start("bench_analysis", &scale);
    let path = banyan_bench::suites::analysis();
    run.phase("suite").artifact(path.display());
    run.finish();
}
