//! Microbenchmarks of the analytical layer; accepts `--quick`.
//! Writes `results/BENCH_analysis.json`.

fn main() {
    banyan_bench::suites::analysis();
}
