//! Heavy-traffic probe (paper §VI open question). `--quick` for a smoke
//! run.
fn main() {
    let scale = banyan_bench::scale_from_args();
    print!(
        "{}",
        banyan_bench::experiments::extensions::heavy_traffic(&scale)
    );
}
