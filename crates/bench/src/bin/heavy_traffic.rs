//! Heavy-traffic probe (paper §VI open question). `--quick` for a smoke
//! run. Writes `results/heavy_traffic.manifest.json` alongside the stdout
//! probe.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "heavy_traffic",
        banyan_bench::experiments::extensions::heavy_traffic,
    );
}
