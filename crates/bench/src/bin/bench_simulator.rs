//! Microbenchmarks of the simulators; accepts `--quick`.
//! Writes `results/BENCH_simulator.json`.

fn main() {
    banyan_bench::suites::simulator();
}
