//! Microbenchmarks of the simulators; accepts `--quick`.
//! Writes `results/BENCH_simulator.json` and
//! `results/bench_simulator.manifest.json`.
//!
//! The timed closures call the *plain* entry points (`run_network`,
//! `run_queue`), so these medians measure the telemetry-off hot path —
//! the baseline the `overhead_guard` binary checks against.

fn main() {
    let scale = banyan_bench::scale_from_args();
    let mut run = banyan_bench::manifest::RunManifest::start("bench_simulator", &scale);
    let path = banyan_bench::suites::simulator();
    run.phase("suite").artifact(path.display());
    run.finish();
}
