//! Finite-buffer extension sweep (paper §VI future work). `--quick` for a
//! smoke run. Writes `results/finite_buffers.manifest.json` alongside the
//! stdout sweep.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "finite_buffers",
        banyan_bench::experiments::extensions::finite_buffers,
    );
}
