//! Finite-buffer extension sweep (paper §VI future work). `--quick` for a
//! smoke run.
fn main() {
    let scale = banyan_bench::scale_from_args();
    print!(
        "{}",
        banyan_bench::experiments::extensions::finite_buffers(&scale)
    );
}
