//! Regenerates the series behind Figures 3-8 (total-waiting histograms vs
//! the gamma approximation). `--quick` for a smoke run.
fn main() {
    let scale = banyan_bench::scale_from_args();
    print!("{}", banyan_bench::experiments::totals::figures(&scale));
}
