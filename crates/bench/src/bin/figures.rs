//! Regenerates the series behind Figures 3-8 (total-waiting histograms vs
//! the gamma approximation). `--quick` for a smoke run. Writes
//! `results/figures.manifest.json` alongside the stdout series.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "figures",
        banyan_bench::experiments::totals::figures,
    );
}
