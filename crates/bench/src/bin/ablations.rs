//! Runs the covariance-model and stage-rate ablations. `--quick` for a
//! smoke run. Writes `results/ablations.manifest.json` with one phase per
//! ablation.
use banyan_bench::experiments::ablations;
use banyan_bench::manifest::RunManifest;

fn main() {
    let scale = banyan_bench::scale_from_args();
    let mut run = RunManifest::start("ablations", &scale);
    type Job = (&'static str, fn(&banyan_bench::profile::Scale) -> String);
    let jobs: [Job; 4] = [
        ("covariance", ablations::ablation_covariance),
        ("stage_rate", ablations::ablation_stage_rate),
        ("convolution", ablations::ablation_convolution),
        ("discipline", ablations::ablation_discipline),
    ];
    for (i, (name, job)) in jobs.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{}", job(&scale));
        run.phase(name);
    }
    run.finish();
}
