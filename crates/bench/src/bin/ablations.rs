//! Runs the covariance-model and stage-rate ablations. `--quick` for a
//! smoke run.
fn main() {
    let scale = banyan_bench::scale_from_args();
    print!(
        "{}",
        banyan_bench::experiments::ablations::ablation_covariance(&scale)
    );
    println!();
    print!(
        "{}",
        banyan_bench::experiments::ablations::ablation_stage_rate(&scale)
    );
    println!();
    print!(
        "{}",
        banyan_bench::experiments::ablations::ablation_convolution(&scale)
    );
    println!();
    print!(
        "{}",
        banyan_bench::experiments::ablations::ablation_discipline(&scale)
    );
}
