//! Re-fits the paper's interpolation constants from simulation.
//! `--quick` for a smoke run. Writes `results/calibration.manifest.json`
//! alongside the stdout report.
fn main() {
    banyan_bench::manifest::emit_with_manifest(
        "calibration",
        banyan_bench::experiments::calibration::calibration,
    );
}
