//! Re-fits the paper's interpolation constants from simulation.
//! `--quick` for a smoke run.
fn main() {
    let scale = banyan_bench::scale_from_args();
    print!(
        "{}",
        banyan_bench::experiments::calibration::calibration(&scale)
    );
}
