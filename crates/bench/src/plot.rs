//! ASCII rendering of the paper's figures.
//!
//! Figs. 3–8 are histograms of the simulated total waiting time with the
//! gamma approximation drawn through them. [`histogram_overlay`] renders
//! the same picture in a terminal: one row per waiting-time value, a bar
//! of `#` for the simulated probability, and a `*` marking the gamma
//! model's value for that bin (overlapping the bar end when they agree —
//! which is the point).

use std::fmt::Write as _;

/// Renders a simulated pmf with a model overlay.
///
/// * `sim` — simulated bin probabilities, index = waiting time;
/// * `model` — model probability for each bin (same indexing);
/// * `width` — maximum bar width in characters (>= 10).
///
/// Rows are printed up to the last index where either series exceeds
/// `cutoff` (so empty tails don't flood the terminal).
pub fn histogram_overlay(sim: &[f64], model: &[f64], width: usize, cutoff: f64) -> String {
    assert!(width >= 10, "plot width must be at least 10 characters");
    let rows = sim.len().max(model.len());
    let last = (0..rows)
        .rev()
        .find(|&t| {
            sim.get(t).copied().unwrap_or(0.0) > cutoff
                || model.get(t).copied().unwrap_or(0.0) > cutoff
        })
        .unwrap_or(0);
    let peak = sim
        .iter()
        .take(last + 1)
        .chain(model.iter().take(last + 1))
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5}  {:>9}  {:>9}  |{}| (# sim, * gamma)",
        "t",
        "sim",
        "gamma",
        "-".repeat(width)
    );
    for t in 0..=last {
        let s = sim.get(t).copied().unwrap_or(0.0);
        let m = model.get(t).copied().unwrap_or(0.0);
        let sbar = ((s / peak) * width as f64).round() as usize;
        let mpos = ((m / peak) * width as f64).round() as usize;
        let mut bar: Vec<char> = vec![' '; width + 1];
        for c in bar.iter_mut().take(sbar.min(width)) {
            *c = '#';
        }
        bar[mpos.min(width)] = '*';
        let bar: String = bar.into_iter().collect();
        let _ = writeln!(out, "{t:>5}  {s:>9.5}  {m:>9.5}  |{bar}|");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_up_to_cutoff() {
        let sim = [0.5, 0.3, 0.15, 0.04, 0.005, 0.0001, 0.0];
        let model = [0.48, 0.32, 0.14, 0.05, 0.006, 0.0002];
        let s = histogram_overlay(&sim, &model, 40, 1e-3);
        // Rows 0..=4 shown (values above cutoff), 5.. suppressed.
        assert_eq!(s.lines().count(), 1 + 5);
        assert!(s.contains('#'));
        assert!(s.contains('*'));
    }

    #[test]
    fn peak_bar_reaches_full_width() {
        let sim = [1.0, 0.5];
        let model = [0.0, 0.0];
        let s = histogram_overlay(&sim, &model, 20, 1e-6);
        let first_row = s.lines().nth(1).unwrap();
        assert!(first_row.matches('#').count() >= 19, "{first_row}");
    }

    #[test]
    fn marker_lands_proportionally() {
        let sim = [1.0];
        let model = [0.5];
        let s = histogram_overlay(&sim, &model, 20, 1e-6);
        let row = s.lines().nth(1).unwrap();
        let bar = row.split('|').nth(1).unwrap();
        let star = bar.find('*').unwrap();
        assert!((9..=11).contains(&star), "star at {star} in {bar:?}");
    }

    #[test]
    fn handles_all_zero_input() {
        let s = histogram_overlay(&[0.0, 0.0], &[0.0], 12, 1e-9);
        assert!(s.lines().count() >= 1);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn tiny_width_panics() {
        histogram_overlay(&[0.1], &[0.1], 3, 1e-9);
    }
}
