//! Minimal in-repo microbenchmark harness.
//!
//! Replaces the external `criterion` dependency with the subset this
//! project actually uses: per-benchmark calibration, a warmup phase,
//! repeated timed samples, and robust summary statistics (median and
//! median absolute deviation, which ignore scheduler outliers that
//! would skew a mean). Results print as a table and are written as
//! machine-readable JSON under `results/BENCH_<suite>.json`.
//!
//! Usage mirrors the old criterion benches:
//!
//! ```no_run
//! use banyan_bench::micro::{black_box, Suite};
//!
//! let mut suite = Suite::new("example");
//! suite.bench("add", || black_box(2u64) + black_box(3u64));
//! suite.finish();
//! ```
//!
//! Every bench target accepts `--quick` (fewer, shorter samples) so the
//! suites can run as smoke tests, and `--save-baseline`-style comparison
//! is left to external tooling reading the JSON.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Target wall-clock time for a single timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// One benchmark's summary statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// Iterations executed per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples taken.
    pub samples: u32,
    /// Median ns/iter across samples.
    pub median_ns: f64,
    /// Median absolute deviation of ns/iter (robust spread).
    pub mad_ns: f64,
    /// Fastest observed sample, ns/iter.
    pub min_ns: f64,
    /// Arithmetic mean ns/iter across samples.
    pub mean_ns: f64,
    /// Optional throughput denominator: elements processed per iteration.
    pub elements_per_iter: Option<u64>,
    /// Second optional throughput denominator: messages delivered per
    /// iteration (simulator benches report both cycles/sec and
    /// delivered-messages/sec).
    pub messages_per_iter: Option<u64>,
}

impl Record {
    /// Elements per second implied by the median time, if a throughput
    /// denominator was declared.
    pub fn throughput_per_sec(&self) -> Option<f64> {
        self.elements_per_iter
            .map(|e| e as f64 / (self.median_ns * 1e-9))
    }

    /// Delivered messages per second implied by the median time, if a
    /// message count was declared.
    pub fn messages_per_sec(&self) -> Option<f64> {
        self.messages_per_iter
            .map(|m| m as f64 / (self.median_ns * 1e-9))
    }
}

/// Measurement effort: how many samples to take and how long to warm up.
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Timed samples per benchmark.
    pub samples: u32,
    /// Warmup duration before the first timed sample.
    pub warmup: Duration,
}

impl Effort {
    /// Full effort: stable numbers for committed baselines.
    pub fn full() -> Self {
        Effort {
            samples: 30,
            warmup: Duration::from_millis(300),
        }
    }

    /// Smoke-test effort (`--quick`): just enough to prove the bench runs.
    pub fn quick() -> Self {
        Effort {
            samples: 5,
            warmup: Duration::from_millis(20),
        }
    }

    /// Selects effort from process arguments (`--quick` ⇒ quick).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Effort::quick()
        } else {
            Effort::full()
        }
    }
}

/// A named collection of benchmarks that reports once at the end.
pub struct Suite {
    name: String,
    effort: Effort,
    records: Vec<Record>,
}

impl Suite {
    /// Creates a suite, reading effort from the process arguments.
    pub fn new(name: &str) -> Self {
        Suite::with_effort(name, Effort::from_args())
    }

    /// Creates a suite with explicit effort (used by tests).
    pub fn with_effort(name: &str, effort: Effort) -> Self {
        Suite {
            name: name.to_string(),
            effort,
            records: Vec::new(),
        }
    }

    /// Times `f`, keeping its return value alive via [`black_box`].
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        self.run(name, None, None, f);
    }

    /// Times `f` and reports throughput as `elements` per iteration
    /// (e.g. simulated cycles), alongside ns/iter.
    pub fn bench_throughput<T>(&mut self, name: &str, elements: u64, f: impl FnMut() -> T) {
        self.run(name, Some(elements), None, f);
    }

    /// Times `f` and reports two throughput rates: `elements` (e.g.
    /// simulated cycles) and `messages` (e.g. delivered messages) per
    /// iteration — the simulator's cycles/sec and messages/sec.
    pub fn bench_throughput2<T>(
        &mut self,
        name: &str,
        elements: u64,
        messages: u64,
        f: impl FnMut() -> T,
    ) {
        self.run(name, Some(elements), Some(messages), f);
    }

    fn run<T>(
        &mut self,
        name: &str,
        elements: Option<u64>,
        messages: Option<u64>,
        mut f: impl FnMut() -> T,
    ) {
        let iters = calibrate(&mut f);

        let warmup_start = Instant::now();
        while warmup_start.elapsed() < self.effort.warmup {
            black_box(f());
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.effort.samples as usize);
        for _ in 0..self.effort.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }

        let med = median(&mut per_iter_ns.clone());
        let mut deviations: Vec<f64> = per_iter_ns.iter().map(|x| (x - med).abs()).collect();
        let mad = median(&mut deviations);
        let min = per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

        let record = Record {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: self.effort.samples,
            median_ns: med,
            mad_ns: mad,
            min_ns: min,
            mean_ns: mean,
            elements_per_iter: elements,
            messages_per_iter: messages,
        };
        report_line(&record);
        self.records.push(record);
    }

    /// Access to the collected records (used by tests).
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Renders the suite as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"unit\": \"ns_per_iter\",\n");
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 == self.records.len() { "" } else { "," };
            let throughput = match r.throughput_per_sec() {
                Some(t) => format!("{t:.1}"),
                None => "null".to_string(),
            };
            let elements = match r.elements_per_iter {
                Some(e) => e.to_string(),
                None => "null".to_string(),
            };
            let messages = match r.messages_per_iter {
                Some(m) => m.to_string(),
                None => "null".to_string(),
            };
            let msg_rate = match r.messages_per_sec() {
                Some(t) => format!("{t:.1}"),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters_per_sample\": {}, \"samples\": {}, \
                 \"median_ns\": {:.3}, \"mad_ns\": {:.3}, \"min_ns\": {:.3}, \
                 \"mean_ns\": {:.3}, \"elements_per_iter\": {}, \
                 \"elements_per_sec\": {}, \"messages_per_iter\": {}, \
                 \"messages_per_sec\": {}}}{}\n",
                escape(&r.name),
                r.iters_per_sample,
                r.samples,
                r.median_ns,
                r.mad_ns,
                r.min_ns,
                r.mean_ns,
                elements,
                throughput,
                messages,
                msg_rate,
                sep,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `results/BENCH_<suite>.json` (under the workspace root,
    /// wherever the target was invoked from) and returns its path.
    pub fn finish(self) -> std::path::PathBuf {
        let results = workspace_root().join("results");
        std::fs::create_dir_all(&results).expect("create results/");
        let path = results.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json()).expect("write bench json");
        eprintln!("wrote {}", path.display());
        path
    }
}

/// The nearest ancestor of the current directory holding a `Cargo.lock`
/// (`cargo bench` sets the working directory to the *package* root, so
/// a bare relative path would scatter output across crates). Falls back
/// to the current directory outside any workspace.
fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().expect("current dir");
    cwd.ancestors()
        .find(|d| d.join("Cargo.lock").is_file())
        .unwrap_or(&cwd)
        .to_path_buf()
}

/// Picks an iteration count so one timed sample lasts ≈ [`SAMPLE_TARGET`]:
/// long enough that `Instant` granularity is negligible, short enough
/// that a suite finishes in seconds.
fn calibrate<T>(f: &mut impl FnMut() -> T) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= SAMPLE_TARGET / 2 {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            let want = (SAMPLE_TARGET.as_secs_f64() / per_iter).ceil() as u64;
            return want.max(1);
        }
        // Double until the probe is long enough to trust.
        iters = iters.saturating_mul(2);
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn report_line(r: &Record) {
    let spread = if r.median_ns > 0.0 {
        100.0 * r.mad_ns / r.median_ns
    } else {
        0.0
    };
    match (r.throughput_per_sec(), r.messages_per_sec()) {
        (Some(t), Some(m)) => eprintln!(
            "{:<40} {:>12.1} ns/iter (±{:.1}%)  {:>14.0} elem/s  {:>12.0} msg/s",
            r.name, r.median_ns, spread, t, m
        ),
        (Some(t), None) => eprintln!(
            "{:<40} {:>12.1} ns/iter (±{:.1}%)  {:>14.0} elem/s",
            r.name, r.median_ns, spread, t
        ),
        _ => eprintln!(
            "{:<40} {:>12.1} ns/iter (±{:.1}%)",
            r.name, r.median_ns, spread
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Effort {
        Effort {
            samples: 3,
            warmup: Duration::from_millis(1),
        }
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn bench_produces_positive_timings() {
        let mut s = Suite::with_effort("unit", tiny());
        s.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        let r = &s.records()[0];
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn json_shape_is_parseable_enough() {
        let mut s = Suite::with_effort("unit", tiny());
        s.bench_throughput("t", 1000, || black_box(1u64) + 1);
        let json = s.to_json();
        assert!(json.contains("\"suite\": \"unit\""));
        assert!(json.contains("\"name\": \"t\""));
        assert!(json.contains("\"elements_per_iter\": 1000"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn dual_throughput_recorded_and_serialized() {
        let mut s = Suite::with_effort("unit", tiny());
        s.bench_throughput2("sim", 3_000, 1_234, || black_box(1u64) + 1);
        let r = &s.records()[0];
        assert_eq!(r.elements_per_iter, Some(3_000));
        assert_eq!(r.messages_per_iter, Some(1_234));
        let cyc = r.throughput_per_sec().unwrap();
        let msg = r.messages_per_sec().unwrap();
        assert!((cyc / msg - 3_000.0 / 1_234.0).abs() < 1e-9);
        let json = s.to_json();
        assert!(json.contains("\"messages_per_iter\": 1234"));
        assert!(json.contains("\"messages_per_sec\": "));
        // Plain benches serialize nulls for the message fields.
        let mut s2 = Suite::with_effort("unit2", tiny());
        s2.bench("plain", || black_box(1u64));
        assert!(s2.to_json().contains("\"messages_per_iter\": null"));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
