//! Plain-text table rendering for the reproduction harness.
//!
//! The paper's tables interleave simulation rows (stage 1…8), an ANALYSIS
//! row (exact first-stage formulas) and an ESTIMATE row (the §IV/§V
//! approximations); we render the same shape as aligned monospace text so
//! the output can be diffed against the paper by eye and pasted into
//! `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        TextTable {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Sets the header row.
    pub fn header<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row of preformatted cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a row: a label followed by numeric cells formatted with
    /// `digits` decimal places.
    pub fn num_row(&mut self, label: impl Into<String>, values: &[f64], digits: usize) -> &mut Self {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.digits$}")));
        self.rows.push(cells);
        self
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.resize(i + 1, 0);
                }
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let w = widths.get(i).copied().unwrap_or(c.len());
                    if i == 0 {
                        format!("{c:<w$}")
                    } else {
                        format!("{c:>w$}")
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        if !self.header.is_empty() {
            let h = fmt_row(&self.header, &widths);
            let rule = "-".repeat(h.len());
            let _ = writeln!(out, "{h}");
            let _ = writeln!(out, "{rule}");
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a `(mean, variance)` pair the way the paper's tables pair
/// columns.
pub fn pair(mean: f64, var: f64, digits: usize) -> (String, String) {
    (format!("{mean:.digits$}"), format!("{var:.digits$}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo");
        t.header(["stage", "w", "v"]);
        t.row(["1st", "0.25", "0.25"]);
        t.row(["ANALYSIS (long label)", "0.2", "0.3"]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have equal length (alignment).
        assert_eq!(lines[2].len(), lines[1].len().max(lines[3].len()).max(lines[4].len()));
    }

    #[test]
    fn num_row_formats_digits() {
        let mut t = TextTable::new("");
        t.num_row("r", &[0.123456, 2.0], 3);
        let s = t.render();
        assert!(s.contains("0.123"));
        assert!(s.contains("2.000"));
    }

    #[test]
    fn pair_helper() {
        let (m, v) = pair(0.25, 0.3333333, 4);
        assert_eq!(m, "0.2500");
        assert_eq!(v, "0.3333");
    }

    #[test]
    fn empty_title_omitted() {
        let mut t = TextTable::new("");
        t.row(["a"]);
        assert_eq!(t.render(), "a\n");
    }
}
