//! Shared simulation drivers for the table/figure experiments.
//!
//! Every experiment needs the same two shapes of run:
//!
//! * a **stage profile** — per-stage waiting means/variances (and
//!   optionally the cross-stage correlation matrix) of a deep network,
//! * a **total profile** — the total-waiting-time histogram of an
//!   `n`-stage banyan.
//!
//! Cycle counts are derived from a target number of measured messages so
//! light and heavy loads get comparable statistical accuracy, and a
//! [`Scale`] knob lets tests run the same code paths in milliseconds.

use banyan_sim::network::{NetworkConfig, NetworkStats};
use banyan_sim::runner::run_network_replicated_instrumented;
use banyan_sim::traffic::Workload;

/// Simulation effort level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale {
    /// Target number of measured messages per configuration.
    pub target_messages: u64,
    /// Independent replications (merged).
    pub reps: u32,
    /// Worker threads for replications.
    pub threads: usize,
}

impl Scale {
    /// Full quality: what the shipped tables in `EXPERIMENTS.md` use.
    /// Thread count adapts to the host (replications merge exactly, so
    /// parallelism never changes the statistics, only the wall clock).
    pub fn full() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4);
        Scale {
            target_messages: 2_000_000,
            reps: 2,
            threads,
        }
    }

    /// Fast smoke scale for tests (~30k messages).
    pub fn quick() -> Self {
        Scale {
            target_messages: 30_000,
            reps: 1,
            threads: 1,
        }
    }

    /// Cycles needed per replication for `ports` inputs at load `p`.
    fn measure_cycles(&self, ports: u64, p: f64) -> u64 {
        let per_cycle = (ports as f64 * p).max(1e-9);
        let need = self.target_messages as f64 / self.reps as f64 / per_cycle;
        let floor = if self.target_messages <= 100_000 { 300 } else { 2_000 };
        (need.ceil() as u64).clamp(floor, 4_000_000)
    }

    /// Warmup cycles to pair with a measure length.
    fn warmup_cycles(&self, measure: u64) -> u64 {
        let floor = if self.target_messages <= 100_000 { 200 } else { 2_000 };
        (measure / 10).max(floor)
    }
}

/// Runs a deep uniform-traffic network and returns merged statistics.
///
/// * `width_log_k` — `Some(w)`: cylinder (random-digit) mode with `k^w`
///   wires per stage (needed for `k = 4, 8` at 8 stages); `None`: full
///   banyan.
pub fn stage_profile(
    k: u32,
    stages: u32,
    workload: Workload,
    width_log_k: Option<u32>,
    collect_correlations: bool,
    scale: &Scale,
    seed: u64,
) -> NetworkStats {
    let mut cfg = NetworkConfig::new(k, stages, workload);
    if let Some(w) = width_log_k {
        cfg = cfg.with_random_digit_width(w);
    }
    let ports = (k as u64).pow(width_log_k.unwrap_or(stages));
    cfg.measure_cycles = scale.measure_cycles(ports, cfg.workload.p);
    cfg.warmup_cycles = scale.warmup_cycles(cfg.measure_cycles);
    cfg.collect_correlations = collect_correlations;
    cfg.seed = seed;
    run_network_replicated_instrumented(&cfg, scale.reps, scale.threads, crate::manifest::telemetry())
}

/// Runs an `n`-stage banyan under uniform constant-size traffic and
/// returns the merged statistics (total-waiting histogram included).
pub fn total_profile(k: u32, n: u32, p: f64, m: u32, scale: &Scale, seed: u64) -> NetworkStats {
    let mut cfg = NetworkConfig::new(k, n, Workload::uniform(p, m));
    let ports = (k as u64).pow(n);
    cfg.measure_cycles = scale.measure_cycles(ports, p);
    cfg.warmup_cycles = scale.warmup_cycles(cfg.measure_cycles);
    cfg.seed = seed;
    run_network_replicated_instrumented(&cfg, scale.reps, scale.threads, crate::manifest::telemetry())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_cycles_scales_with_ports_and_load() {
        let s = Scale {
            target_messages: 1_000_000,
            reps: 2,
            threads: 1,
        };
        // 1e6 / 2 reps / 500 per-cycle = 1000 → clamped up to the 2000 floor.
        assert_eq!(s.measure_cycles(1000, 0.5), 2_000);
        assert_eq!(s.measure_cycles(10, 0.5), 100_000);
        // Clamped above.
        assert_eq!(s.measure_cycles(1, 1e-6), 4_000_000);
    }

    #[test]
    fn quick_stage_profile_runs_and_matches_eq6_roughly() {
        let stats = stage_profile(
            2,
            4,
            Workload::uniform(0.5, 1),
            None,
            false,
            &Scale::quick(),
            7,
        );
        assert!(stats.delivered > 20_000);
        assert!((stats.stage_waits[0].mean() - 0.25).abs() < 0.05);
    }

    #[test]
    fn quick_total_profile_collects_histogram() {
        let stats = total_profile(2, 3, 0.5, 1, &Scale::quick(), 11);
        assert_eq!(stats.total_hist.total(), stats.delivered);
        assert!(stats.total_wait.mean() > 0.0);
    }
}
