//! Run manifests for the table/figure/bench binaries.
//!
//! Every `banyan-bench` binary records *provenance* next to its results:
//! which configuration ran, with which seeds (via the telemetry run
//! log), how long each phase took, what the metrics registry observed,
//! on how many hardware threads, and at which git revision. The
//! manifest lands in `results/<name>.manifest.json` so a published
//! table is always traceable to the run that produced it.
//!
//! The experiment drivers in [`crate::profile`] report into one
//! process-global [`Telemetry`] sink ([`telemetry`]); [`RunManifest`]
//! snapshots that sink when the binary finishes.

use crate::profile::Scale;
use banyan_obs::{Manifest, Telemetry, TelemetryConfig};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

static TELEMETRY: OnceLock<Telemetry> = OnceLock::new();

/// The process-global telemetry sink the experiment drivers report
/// into. Metrics are always collected (the cost is bounded and the
/// manifests need the counters); the stderr heartbeat turns on when the
/// binary was invoked with `--progress`.
pub fn telemetry() -> &'static Telemetry {
    TELEMETRY.get_or_init(|| {
        let mut cfg = TelemetryConfig::on();
        if std::env::args().any(|a| a == "--progress") {
            cfg = cfg.with_progress();
        }
        Telemetry::new(cfg)
    })
}

/// Builder every bench binary wraps its `main` in: stamps the scale and
/// argv at start, records phase wall times as the run progresses, and
/// writes `results/<name>.manifest.json` (with the full telemetry
/// snapshot) at the end.
pub struct RunManifest {
    manifest: Manifest,
    started: Instant,
    phase_started: Instant,
    path: PathBuf,
}

impl RunManifest {
    /// Starts the manifest for binary `name` running at `scale`.
    pub fn start(name: &str, scale: &Scale) -> Self {
        telemetry(); // initialize the sink before any experiment runs
        let mut manifest = Manifest::new(name);
        let argv: Vec<String> = std::env::args().skip(1).collect();
        manifest
            .config("argv", argv.join(" "))
            .config("target_messages", scale.target_messages)
            .reps(scale.reps)
            .threads(scale.threads);
        let now = Instant::now();
        RunManifest {
            manifest,
            started: now,
            phase_started: now,
            path: results_dir().join(format!("{name}.manifest.json")),
        }
    }

    /// Records a configuration key.
    pub fn config(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.manifest.config(key, value);
        self
    }

    /// Records a named seed.
    pub fn seed(&mut self, label: &str, value: u64) -> &mut Self {
        self.manifest.seed(label, value);
        self
    }

    /// Records an output artifact produced by the run.
    pub fn artifact(&mut self, path: impl std::fmt::Display) -> &mut Self {
        self.manifest.artifact(path);
        self
    }

    /// Closes the current phase, recording the wall time since the
    /// previous [`RunManifest::phase`] call (or since start).
    pub fn phase(&mut self, label: &str) -> &mut Self {
        self.manifest
            .phase(label, self.phase_started.elapsed().as_secs_f64());
        self.phase_started = Instant::now();
        self
    }

    /// Records the total wall time, emits a final heartbeat line when
    /// `--progress` is on, and writes the manifest. Returns its path.
    pub fn finish(mut self) -> PathBuf {
        self.manifest
            .phase("total", self.started.elapsed().as_secs_f64());
        let tel = telemetry();
        tel.heartbeat_final();
        let written = self
            .manifest
            .write(&self.path, Some(tel))
            .expect("write run manifest");
        eprintln!("wrote {}", written.display());
        written
    }
}

/// Convenience for the thin table/figure binaries: runs `job` at the
/// argv-selected scale, prints its output to stdout, and writes
/// `results/<name>.manifest.json` with one phase named after the binary.
pub fn emit_with_manifest(name: &str, job: impl FnOnce(&Scale) -> String) {
    let scale = crate::scale_from_args();
    let mut run = RunManifest::start(name, &scale);
    let out = job(&scale);
    run.phase(name);
    print!("{out}");
    run.finish();
}

/// `results/` under the workspace root (the nearest ancestor holding a
/// `Cargo.lock`), created on demand — same convention as
/// [`crate::micro::Suite::finish`].
fn results_dir() -> PathBuf {
    let cwd = std::env::current_dir().expect("current dir");
    let root = cwd
        .ancestors()
        .find(|d| d.join("Cargo.lock").is_file())
        .unwrap_or(&cwd)
        .to_path_buf();
    let results = root.join("results");
    std::fs::create_dir_all(&results).expect("create results/");
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_telemetry_collects_metrics() {
        let tel = telemetry();
        assert!(tel.metrics_enabled());
        // Same instance on every call.
        assert!(std::ptr::eq(tel, telemetry()));
    }

    #[test]
    fn run_manifest_records_phases_and_writes() {
        let scale = Scale::quick();
        let dir = std::env::temp_dir().join(format!("banyan_manifest_test_{}", std::process::id()));
        let mut run = RunManifest::start("unit-test", &scale);
        // Redirect away from results/ — unit tests must not touch the
        // recorded artifacts.
        run.path = dir.join("m.json");
        run.config("k", 2).seed("base", 42).phase("setup").artifact("x.txt");
        let path = run.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\": \"unit-test\""));
        assert!(text.contains("\"setup\""));
        assert!(text.contains("\"total\""));
        assert!(text.contains("\"base\": 42"));
        assert!(text.contains("\"target_messages\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
