//! `cargo bench -p banyan-bench --bench analysis` — see
//! [`banyan_bench::suites::analysis`].

fn main() {
    banyan_bench::suites::analysis();
}
