//! Microbenchmarks of the analytical layer: closed-form moments, full pmf
//! inversion, gamma fitting, and the total-delay model. These quantify
//! the paper's motivating claim that formulas are orders of magnitude
//! cheaper than simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use banyan_core::models::{mixed_queue, uniform_queue};
use banyan_core::total_delay::TotalWaiting;
use banyan_stats::Gamma;

fn bench_first_stage_moments(c: &mut Criterion) {
    c.bench_function("first_stage_mean_var_uniform", |b| {
        b.iter(|| {
            let q = uniform_queue(black_box(2), black_box(0.5), black_box(1)).unwrap();
            black_box((q.mean_wait(), q.var_wait()))
        })
    });
    c.bench_function("first_stage_mean_var_mixed", |b| {
        b.iter(|| {
            let q = mixed_queue(2, 0.05, vec![(4, 0.5), (8, 0.5)]).unwrap();
            black_box((q.mean_wait(), q.var_wait()))
        })
    });
}

fn bench_pmf_inversion(c: &mut Criterion) {
    let q = uniform_queue(2, 0.5, 1).unwrap();
    c.bench_function("waiting_pmf_64_terms", |b| {
        b.iter(|| black_box(q.pmf(black_box(64))))
    });
    let q8 = uniform_queue(2, 0.8, 1).unwrap();
    c.bench_function("waiting_pmf_256_terms_heavy_load", |b| {
        b.iter(|| black_box(q8.pmf(black_box(256))))
    });
}

fn bench_tail_rate(c: &mut Criterion) {
    let q = uniform_queue(2, 0.5, 1).unwrap();
    c.bench_function("tail_decay_rate", |b| {
        b.iter(|| black_box(q.tail_decay_rate()))
    });
}

fn bench_total_delay_model(c: &mut Criterion) {
    c.bench_function("total_delay_mean_var_12_stages", |b| {
        b.iter(|| {
            let t = TotalWaiting::new(2, 12, black_box(0.5), 1);
            black_box((t.mean_total(), t.var_total()))
        })
    });
}

fn bench_gamma(c: &mut Criterion) {
    let g = Gamma::from_mean_var(3.59, 3.74).unwrap();
    c.bench_function("gamma_cdf", |b| b.iter(|| black_box(g.cdf(black_box(4.2)))));
    c.bench_function("gamma_quantile_999", |b| {
        b.iter(|| black_box(g.quantile(black_box(0.999))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_first_stage_moments, bench_pmf_inversion, bench_tail_rate, bench_total_delay_model, bench_gamma
}
criterion_main!(benches);
