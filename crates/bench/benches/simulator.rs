//! Microbenchmarks of the simulation substrate: cycles/second of the
//! network simulator at the paper's configurations and of the
//! single-queue Lindley simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use banyan_sim::network::{run_network, NetworkConfig};
use banyan_sim::queue::{run_queue, ArrivalDist, QueueConfig};
use banyan_sim::traffic::{ServiceDist, Workload};

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_sim");
    for &(k, n, p, m, label) in &[
        (2u32, 6u32, 0.5, 1u32, "k2_n6_p05_m1"),
        (2, 10, 0.5, 1, "k2_n10_p05_m1"),
        (2, 6, 0.125, 4, "k2_n6_p0125_m4"),
    ] {
        let cycles = 3_000u64;
        g.throughput(Throughput::Elements(cycles));
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = NetworkConfig {
                    warmup_cycles: 100,
                    measure_cycles: cycles,
                    ..NetworkConfig::new(k, n, Workload::uniform(p, m))
                };
                black_box(run_network(cfg).delivered)
            })
        });
    }
    g.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_sim");
    let cycles = 200_000u64;
    g.throughput(Throughput::Elements(cycles));
    g.bench_function("lindley_uniform_p05", |b| {
        b.iter(|| {
            let cfg = QueueConfig {
                warmup_cycles: 1_000,
                measure_cycles: cycles,
                ..QueueConfig::new(
                    ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
                    ServiceDist::Constant(1),
                )
            };
            black_box(run_queue(&cfg).wait.mean())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_network, bench_queue
}
criterion_main!(benches);
