//! `cargo bench -p banyan-bench --bench simulator` — see
//! [`banyan_bench::suites::simulator`].

fn main() {
    banyan_bench::suites::simulator();
}
