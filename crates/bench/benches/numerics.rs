//! Microbenchmarks of the numerical substrate (FFT and special
//! functions) that the pmf inversion and gamma approximation rely on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use banyan_numerics::special::{ln_gamma, reg_gamma_lower};
use banyan_numerics::{fft, ifft, Complex};

fn bench_fft(c: &mut Criterion) {
    for &n in &[1024usize, 16_384] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        c.bench_function(&format!("fft_roundtrip_{n}"), |b| {
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d);
                ifft(&mut d);
                black_box(d[0])
            })
        });
    }
}

fn bench_special(c: &mut Criterion) {
    c.bench_function("ln_gamma", |b| {
        b.iter(|| black_box(ln_gamma(black_box(7.31))))
    });
    c.bench_function("reg_gamma_lower", |b| {
        b.iter(|| black_box(reg_gamma_lower(black_box(5.5), black_box(4.0))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_fft, bench_special
}
criterion_main!(benches);
