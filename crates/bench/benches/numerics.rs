//! `cargo bench -p banyan-bench --bench numerics` — see
//! [`banyan_bench::suites::numerics`].

fn main() {
    banyan_bench::suites::numerics();
}
