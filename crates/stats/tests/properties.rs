//! Randomized property tests for the statistics substrate, driven by
//! the seeded in-repo harness (`banyan_prng::check`).

use banyan_prng::check::check;
use banyan_stats::ci::normal_quantile;
use banyan_stats::{CoMoment, Gamma, IntHistogram, OnlineStats};

const CASES: u32 = 256;

fn stats_of(xs: &[f64]) -> OnlineStats {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.push(x);
    }
    s
}

#[test]
fn merge_equals_concatenation() {
    check(CASES, |g| {
        let xs = g.vec_with(0..100, |g| g.f64(-1e3..1e3));
        let ys = g.vec_with(0..100, |g| g.f64(-1e3..1e3));
        let mut merged = stats_of(&xs);
        merged.merge(&stats_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let whole = stats_of(&all);
        assert_eq!(merged.count(), whole.count());
        if !all.is_empty() {
            assert!((merged.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
            assert!((merged.variance() - whole.variance()).abs() < 1e-7 * (1.0 + whole.variance()));
            assert_eq!(merged.min(), whole.min());
            assert_eq!(merged.max(), whole.max());
        }
    });
}

#[test]
fn variance_is_translation_invariant() {
    check(CASES, |g| {
        let xs = g.vec_with(2..100, |g| g.f64(-100.0..100.0));
        let shift = g.f64(-1e4..1e4);
        let v0 = stats_of(&xs).variance();
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v1 = stats_of(&shifted).variance();
        assert!((v0 - v1).abs() < 1e-6 * (1.0 + v0));
    });
}

#[test]
fn correlation_bounded() {
    check(CASES, |g| {
        let pts = g.vec_with(2..200, |g| (g.f64(-50.0..50.0), g.f64(-50.0..50.0)));
        let mut c = CoMoment::new();
        for &(x, y) in &pts {
            c.push(x, y);
        }
        let r = c.correlation();
        assert!((-1.0..=1.0).contains(&r));
    });
}

#[test]
fn correlation_scale_invariant() {
    check(CASES, |g| {
        let pts = g.vec_with(3..100, |g| (g.f64(-50.0..50.0), g.f64(-50.0..50.0)));
        let a = g.f64(0.1..10.0);
        let b = g.f64(-100.0..100.0);
        let mut c1 = CoMoment::new();
        let mut c2 = CoMoment::new();
        for &(x, y) in &pts {
            c1.push(x, y);
            c2.push(a * x + b, y);
        }
        assert!((c1.correlation() - c2.correlation()).abs() < 1e-7);
    });
}

#[test]
fn histogram_pmf_is_distribution() {
    check(CASES, |g| {
        let values = g.vec_with(1..500, |g| g.u64(0..200));
        let mut h = IntHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let pmf = h.pmf();
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pmf.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(h.total(), values.len() as u64);
    });
}

#[test]
fn histogram_quantiles_monotone() {
    check(CASES, |g| {
        let values = g.vec_with(1..300, |g| g.u64(0..100));
        let mut h = IntHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0;
        for i in 1..=10 {
            let q = h.quantile(i as f64 / 10.0).unwrap();
            assert!(q >= prev);
            prev = q;
        }
        assert_eq!(h.quantile(1.0), h.max_value());
    });
}

#[test]
fn histogram_mean_between_min_and_max() {
    check(CASES, |g| {
        let values = g.vec_with(1..200, |g| g.u64(0..1000));
        let mut h = IntHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().unwrap() as f64;
        let hi = *values.iter().max().unwrap() as f64;
        assert!(h.mean() >= lo - 1e-9 && h.mean() <= hi + 1e-9);
    });
}

#[test]
fn gamma_cdf_quantile_round_trip() {
    check(CASES, |g| {
        // Shapes below ~0.05 put low quantiles beneath f64 range; the
        // distributions in this project (total waiting times) have
        // shape >= O(1).
        let shape = g.f64(0.1..50.0);
        let scale = g.f64(0.05..20.0);
        let q = g.f64(0.01..0.99);
        let gamma = Gamma::new(shape, scale);
        let x = gamma.quantile(q);
        assert!((gamma.cdf(x) - q).abs() < 1e-7);
    });
}

#[test]
fn gamma_moment_fit_round_trips() {
    check(CASES, |g| {
        let mean = g.f64(0.1..100.0);
        let var = g.f64(0.01..500.0);
        let gamma = Gamma::from_mean_var(mean, var).unwrap();
        assert!((gamma.mean() - mean).abs() < 1e-9 * mean);
        assert!((gamma.variance() - var).abs() < 1e-9 * var);
    });
}

#[test]
fn gamma_bin_probs_nonnegative_and_bounded() {
    check(CASES, |g| {
        let shape = g.f64(0.2..20.0);
        let scale = g.f64(0.1..10.0);
        let v = g.u64(0..500);
        let gamma = Gamma::new(shape, scale);
        let p = gamma.bin_prob(v);
        assert!((0.0..=1.0).contains(&p));
    });
}

#[test]
fn third_moment_merge_equals_concatenation() {
    check(CASES, |g| {
        let xs = g.vec_with(3..80, |g| g.f64(-100.0..100.0));
        let ys = g.vec_with(3..80, |g| g.f64(-100.0..100.0));
        let mut merged = stats_of(&xs);
        merged.merge(&stats_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let whole = stats_of(&all);
        let scale = 1.0 + whole.third_central_moment().abs();
        assert!(
            (merged.third_central_moment() - whole.third_central_moment()).abs() < 1e-7 * scale
        );
    });
}

#[test]
fn skewness_sign_flips_under_negation() {
    check(CASES, |g| {
        let xs = g.vec_with(5..100, |g| g.f64(-50.0..50.0));
        let s = stats_of(&xs);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        let sn = stats_of(&neg);
        assert!((s.skewness() + sn.skewness()).abs() < 1e-8);
    });
}

#[test]
fn sectioned_mean_agrees_with_overall() {
    check(CASES, |g| {
        use banyan_stats::Sectioned;
        let xs = g.vec_with(40..400, |g| g.f64(0.0..10.0));
        let mut sec = Sectioned::new(10);
        let mut all = OnlineStats::new();
        for &x in &xs {
            sec.push(x);
            all.push(x);
        }
        if let Some((est, _)) = sec.mean_ci(0.95) {
            // Section means average the first 10·B observations only.
            let covered = (xs.len() / 10) * 10;
            let partial: f64 = xs[..covered].iter().sum::<f64>() / covered as f64;
            assert!((est - partial).abs() < 1e-9 * (1.0 + partial.abs()));
        }
    });
}

#[test]
fn normal_quantile_is_odd() {
    check(CASES, |g| {
        let p = g.f64(0.001..0.499);
        let a = normal_quantile(p);
        let b = normal_quantile(1.0 - p);
        assert!((a + b).abs() < 1e-8);
        assert!(a < 0.0);
    });
}
