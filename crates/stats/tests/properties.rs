//! Property-based tests (proptest) for the statistics substrate.

use banyan_stats::ci::normal_quantile;
use banyan_stats::{CoMoment, Gamma, IntHistogram, OnlineStats};
use proptest::prelude::*;

fn stats_of(xs: &[f64]) -> OnlineStats {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.push(x);
    }
    s
}

proptest! {
    #[test]
    fn merge_equals_concatenation(
        xs in prop::collection::vec(-1e3f64..1e3, 0..100),
        ys in prop::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut merged = stats_of(&xs);
        merged.merge(&stats_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let whole = stats_of(&all);
        prop_assert_eq!(merged.count(), whole.count());
        if !all.is_empty() {
            prop_assert!((merged.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
            prop_assert!((merged.variance() - whole.variance()).abs() < 1e-7 * (1.0 + whole.variance()));
            prop_assert_eq!(merged.min(), whole.min());
            prop_assert_eq!(merged.max(), whole.max());
        }
    }

    #[test]
    fn variance_is_translation_invariant(
        xs in prop::collection::vec(-100.0f64..100.0, 2..100),
        shift in -1e4f64..1e4,
    ) {
        let v0 = stats_of(&xs).variance();
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v1 = stats_of(&shifted).variance();
        prop_assert!((v0 - v1).abs() < 1e-6 * (1.0 + v0));
    }

    #[test]
    fn correlation_bounded(
        pts in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..200),
    ) {
        let mut c = CoMoment::new();
        for &(x, y) in &pts {
            c.push(x, y);
        }
        let r = c.correlation();
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn correlation_scale_invariant(
        pts in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 3..100),
        a in 0.1f64..10.0,
        b in -100.0f64..100.0,
    ) {
        let mut c1 = CoMoment::new();
        let mut c2 = CoMoment::new();
        for &(x, y) in &pts {
            c1.push(x, y);
            c2.push(a * x + b, y);
        }
        prop_assert!((c1.correlation() - c2.correlation()).abs() < 1e-7);
    }

    #[test]
    fn histogram_pmf_is_distribution(values in prop::collection::vec(0u64..200, 1..500)) {
        let mut h = IntHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let pmf = h.pmf();
        let total: f64 = pmf.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(pmf.iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    #[test]
    fn histogram_quantiles_monotone(values in prop::collection::vec(0u64..100, 1..300)) {
        let mut h = IntHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0;
        for i in 1..=10 {
            let q = h.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(q >= prev);
            prev = q;
        }
        prop_assert_eq!(h.quantile(1.0), h.max_value());
    }

    #[test]
    fn histogram_mean_between_min_and_max(values in prop::collection::vec(0u64..1000, 1..200)) {
        let mut h = IntHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().unwrap() as f64;
        let hi = *values.iter().max().unwrap() as f64;
        prop_assert!(h.mean() >= lo - 1e-9 && h.mean() <= hi + 1e-9);
    }

    #[test]
    fn gamma_cdf_quantile_round_trip(shape in 0.1f64..50.0, scale in 0.05f64..20.0, q in 0.01f64..0.99) {
        // Shapes below ~0.05 put low quantiles beneath f64 range; the
        // distributions in this project (total waiting times) have
        // shape >= O(1).
        let g = Gamma::new(shape, scale);
        let x = g.quantile(q);
        prop_assert!((g.cdf(x) - q).abs() < 1e-7);
    }

    #[test]
    fn gamma_moment_fit_round_trips(mean in 0.1f64..100.0, var in 0.01f64..500.0) {
        let g = Gamma::from_mean_var(mean, var).unwrap();
        prop_assert!((g.mean() - mean).abs() < 1e-9 * mean);
        prop_assert!((g.variance() - var).abs() < 1e-9 * var);
    }

    #[test]
    fn gamma_bin_probs_nonnegative_and_bounded(shape in 0.2f64..20.0, scale in 0.1f64..10.0, v in 0u64..500) {
        let g = Gamma::new(shape, scale);
        let p = g.bin_prob(v);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn third_moment_merge_equals_concatenation(
        xs in prop::collection::vec(-100.0f64..100.0, 3..80),
        ys in prop::collection::vec(-100.0f64..100.0, 3..80),
    ) {
        let mut merged = stats_of(&xs);
        merged.merge(&stats_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let whole = stats_of(&all);
        let scale = 1.0 + whole.third_central_moment().abs();
        prop_assert!(
            (merged.third_central_moment() - whole.third_central_moment()).abs() < 1e-7 * scale
        );
    }

    #[test]
    fn skewness_sign_flips_under_negation(
        xs in prop::collection::vec(-50.0f64..50.0, 5..100),
    ) {
        let s = stats_of(&xs);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        let sn = stats_of(&neg);
        prop_assert!((s.skewness() + sn.skewness()).abs() < 1e-8);
    }

    #[test]
    fn sectioned_mean_agrees_with_overall(
        xs in prop::collection::vec(0.0f64..10.0, 40..400),
    ) {
        use banyan_stats::Sectioned;
        let mut sec = Sectioned::new(10);
        let mut all = banyan_stats::OnlineStats::new();
        for &x in &xs {
            sec.push(x);
            all.push(x);
        }
        if let Some((est, _)) = sec.mean_ci(0.95) {
            // Section means average the first 10·B observations only.
            let covered = (xs.len() / 10) * 10;
            let partial: f64 = xs[..covered].iter().sum::<f64>() / covered as f64;
            prop_assert!((est - partial).abs() < 1e-9 * (1.0 + partial.abs()));
        }
    }

    #[test]
    fn normal_quantile_is_odd(p in 0.001f64..0.499) {
        let a = normal_quantile(p);
        let b = normal_quantile(1.0 - p);
        prop_assert!((a + b).abs() < 1e-8);
        prop_assert!(a < 0.0);
    }
}
