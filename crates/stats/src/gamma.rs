//! The gamma distribution, fitted by moment matching.
//!
//! Paper §V: "we expect a gamma distribution with the proper expected value
//! and variance to be a good approximation [of the total waiting time] for
//! even small networks." The smooth curves in Figs. 3–8 are exactly this
//! distribution; [`Gamma::from_mean_var`] performs the fit and the methods
//! here evaluate the density, CDF, tail, quantiles, and per-integer-bin
//! probabilities used to overlay the simulated histograms.

use banyan_numerics::roots::brent;
use banyan_numerics::special::{ln_gamma, reg_gamma_lower, reg_gamma_upper};

/// A gamma distribution with shape `α > 0` and scale `θ > 0`
/// (mean `αθ`, variance `αθ²`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution from shape and scale.
    ///
    /// # Panics
    /// Panics unless both parameters are positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && shape.is_finite(),
            "shape must be positive and finite, got {shape}"
        );
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive and finite, got {scale}"
        );
        Gamma { shape, scale }
    }

    /// Moment-matching fit: the gamma with the given mean and variance
    /// (`shape = mean²/var`, `scale = var/mean`).
    ///
    /// Returns `None` when `mean <= 0` or `var <= 0` (a degenerate or
    /// empty waiting-time distribution, e.g. zero load).
    pub fn from_mean_var(mean: f64, var: f64) -> Option<Self> {
        if !(mean > 0.0 && var > 0.0 && mean.is_finite() && var.is_finite()) {
            return None;
        }
        Some(Gamma::new(mean * mean / var, var / mean))
    }

    /// Shape parameter `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Mean `αθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Variance `αθ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Probability density at `x` (0 for `x < 0`).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Limit at the origin: finite only for α >= 1.
            return if self.shape > 1.0 {
                0.0
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                f64::INFINITY
            };
        }
        let a = self.shape;
        let t = x / self.scale;
        ((a - 1.0) * t.ln() - t - ln_gamma(a)).exp() / self.scale
    }

    /// Cumulative distribution `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_gamma_lower(self.shape, x / self.scale)
        }
    }

    /// Survival function `P(X > x)`, computed directly for tail precision.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            reg_gamma_upper(self.shape, x / self.scale)
        }
    }

    /// Probability mass the continuous approximation assigns to the
    /// integer value `v`: the mass of the centered bin `[v−½, v+½)`
    /// (clamped at 0). This is the standard continuity correction for
    /// comparing a continuous model against integer-cycle waiting times,
    /// and is what the figure overlays use.
    pub fn bin_prob(&self, v: u64) -> f64 {
        let mid = v as f64;
        self.cdf(mid + 0.5) - self.cdf(mid - 0.5)
    }

    /// Quantile function: the `q`-th quantile, `q ∈ (0, 1)`.
    ///
    /// Solved by bracketing + Brent on the CDF; accurate to ~1e-10 in
    /// probability for shapes `α ≳ 0.05`. (For extreme shapes far below
    /// that, low quantiles underflow `f64`; total-waiting-time fits in
    /// this project always have `α` of order 1 or more.)
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            q > 0.0 && q < 1.0,
            "quantile level must be in (0,1), got {q}"
        );
        // Bracket: expand upper bound geometrically from the mean.
        let mut hi = self.mean().max(self.scale);
        for _ in 0..200 {
            if self.cdf(hi) >= q {
                break;
            }
            hi *= 2.0;
        }
        brent(|x| self.cdf(x) - q, 0.0, hi, 1e-12 * hi.max(1.0))
            .expect("gamma quantile bracketing failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_numerics::quadrature::integrate;

    #[test]
    fn moment_fit_round_trips() {
        let g = Gamma::from_mean_var(7.5, 3.2).unwrap();
        assert!((g.mean() - 7.5).abs() < 1e-12);
        assert!((g.variance() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn degenerate_fit_rejected() {
        assert!(Gamma::from_mean_var(0.0, 1.0).is_none());
        assert!(Gamma::from_mean_var(1.0, 0.0).is_none());
        assert!(Gamma::from_mean_var(-1.0, 1.0).is_none());
        assert!(Gamma::from_mean_var(f64::NAN, 1.0).is_none());
    }

    #[test]
    fn exponential_special_case() {
        // shape 1, scale 2 is Exp(rate 1/2).
        let g = Gamma::new(1.0, 2.0);
        assert!((g.pdf(0.0) - 0.5).abs() < 1e-15);
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!((g.cdf(x) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-12);
            assert!((g.sf(x) - (-x / 2.0f64).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let g = Gamma::new(3.3, 1.7);
        for &x in &[0.5, 2.0, 6.0, 15.0] {
            let v = integrate(&|t| g.pdf(t), 0.0, x, 1e-12);
            assert!((v - g.cdf(x)).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn cdf_plus_sf_is_one() {
        let g = Gamma::new(2.2, 0.9);
        for &x in &[0.0, 0.01, 1.0, 5.0, 30.0] {
            assert!((g.cdf(x) + g.sf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bin_probs_sum_to_one() {
        let g = Gamma::new(4.0, 2.5);
        let s: f64 = (0..200).map(|v| g.bin_prob(v)).sum();
        assert!((s - 1.0).abs() < 1e-10);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gamma::new(5.5, 1.3);
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let x = g.quantile(q);
            assert!((g.cdf(x) - q).abs() < 1e-9, "q={q}");
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let g = Gamma::new(0.7, 3.0);
        let mut prev = 0.0;
        for i in 1..100 {
            let x = g.quantile(i as f64 / 100.0);
            assert!(x >= prev);
            prev = x;
        }
    }

    #[test]
    fn median_of_shape1_is_ln2_scaled() {
        let g = Gamma::new(1.0, 4.0);
        assert!((g.quantile(0.5) - 4.0 * std::f64::consts::LN_2).abs() < 1e-8);
    }

    #[test]
    fn pdf_at_origin_by_shape() {
        assert_eq!(Gamma::new(2.0, 1.0).pdf(0.0), 0.0);
        assert_eq!(Gamma::new(1.0, 1.0).pdf(0.0), 1.0);
        assert_eq!(Gamma::new(0.5, 1.0).pdf(0.0), f64::INFINITY);
        assert_eq!(Gamma::new(2.0, 1.0).pdf(-1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn invalid_shape_panics() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_out_of_range_panics() {
        Gamma::new(1.0, 1.0).quantile(1.0);
    }
}
