//! Distances between an empirical integer histogram and a model
//! distribution.
//!
//! The paper judges the gamma approximation of Figs. 3–8 by eye ("an
//! incredibly good match … especially at the tails"). We quantify that
//! claim: Kolmogorov–Smirnov distance against the continuous gamma CDF,
//! total-variation distance against binned probabilities, and relative
//! tail-probability error.

use crate::histogram::IntHistogram;

/// Continuity-corrected Kolmogorov–Smirnov statistic between integer data
/// and a continuous model:
/// `max_v max(|F_emp(v) − F(v + ½)|, |F_emp(v⁻) − F(v − ½)|)`
/// over the values `v` with observed mass.
///
/// A message that waited `v` whole cycles corresponds, in the continuous
/// approximation, to mass spread over `[v, v+1)`; evaluating the model at
/// the bin midpoint removes the half-cycle discretization offset that
/// would otherwise dominate the statistic. Because the empirical CDF is a
/// step function, the supremum at each jump has two candidates — just
/// after the jump and just before it. The pre-jump side is what catches a
/// model CDF that climbs across a gap in the data's support; an earlier
/// one-sided version missed those deviations entirely. Zero-mass values
/// need no candidates of their own: `F_emp` is constant across a gap and
/// the model CDF monotone, so any gap-interior deviation is bounded by
/// the candidates at the gap's endpoints. This is the quantity we report
/// when grading the gamma approximation of Figs. 3–8.
///
/// Kept structurally identical to `banyan_obs::tail::ks_distance`
/// (running integer counts, one division per candidate) so the two
/// return bit-equal results on matching data.
pub fn ks_distance<F: Fn(f64) -> f64>(hist: &IntHistogram, model_cdf: F) -> f64 {
    let total = hist.total();
    if total == 0 {
        return 0.0;
    }
    let mut acc = 0u64;
    let mut worst = 0.0f64;
    for (v, &c) in hist.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        let before = acc as f64 / total as f64; // F_emp(v⁻)
        acc += c;
        let after = acc as f64 / total as f64; // F_emp(v)
        worst = worst.max((model_cdf(v as f64 - 0.5) - before).abs());
        worst = worst.max((model_cdf(v as f64 + 0.5) - after).abs());
    }
    worst
}

/// Total-variation distance `½ Σ_v |p_emp(v) − p_model(v)|`, where the
/// model bin probability comes from `bin_prob(v)`; the model's mass beyond
/// the histogram's support is added as unmatched mass.
pub fn total_variation<F: Fn(u64) -> f64>(hist: &IntHistogram, model_bin_prob: F) -> f64 {
    let total = hist.total();
    if total == 0 {
        return 0.0;
    }
    let last = hist.max_value().unwrap();
    let mut sum = 0.0;
    let mut model_mass = 0.0;
    for v in 0..=last {
        let pe = hist.count(v) as f64 / total as f64;
        let pm = model_bin_prob(v);
        model_mass += pm;
        sum += (pe - pm).abs();
    }
    // Model mass beyond the observed support is pure discrepancy.
    sum += (1.0 - model_mass).max(0.0);
    0.5 * sum
}

/// Relative error of the model tail probability at the empirical `q`-th
/// quantile: `|P_model(X > x_q) − P_emp(X > x_q)| / P_emp(X > x_q)`.
///
/// Returns `None` if the histogram is empty or the empirical tail at that
/// point has no mass.
pub fn tail_relative_error<F: Fn(f64) -> f64>(
    hist: &IntHistogram,
    model_sf: F,
    q: f64,
) -> Option<f64> {
    let xq = hist.quantile(q)?;
    let emp_tail = 1.0 - hist.cdf_at(xq);
    if emp_tail <= 0.0 {
        return None;
    }
    let model_tail = model_sf(xq as f64 + 1.0);
    Some((model_tail - emp_tail).abs() / emp_tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::Gamma;

    fn geometric_hist(r: f64, n: u64) -> IntHistogram {
        // Deterministic "perfect sample": counts proportional to the pmf.
        let mut h = IntHistogram::new();
        let mut remaining = n;
        let mut v = 0u64;
        while remaining > 0 && v < 200 {
            let c = ((1.0 - r) * r.powi(v as i32) * n as f64).round() as u64;
            let c = c.min(remaining);
            if c > 0 {
                h.record_n(v, c);
            }
            remaining -= c;
            v += 1;
        }
        if remaining > 0 {
            h.record_n(v, remaining);
        }
        h
    }

    #[test]
    fn ks_zero_for_matching_step_model() {
        let mut h = IntHistogram::new();
        h.record_n(0, 50);
        h.record_n(1, 50);
        // Model: continuous CDF that matches the empirical one at bin edges.
        let model = |x: f64| {
            if x < 0.0 {
                0.0
            } else if x < 1.0 {
                0.5
            } else {
                1.0
            }
        };
        assert!(ks_distance(&h, model) < 1e-12);
    }

    #[test]
    fn ks_detects_shift() {
        let mut h = IntHistogram::new();
        h.record_n(0, 100);
        // Model mass entirely above 5 → KS = 1.
        let model = |x: f64| if x < 5.0 { 0.0 } else { 1.0 };
        assert!((ks_distance(&h, model) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_catches_pre_jump_deviation_across_support_gap() {
        // 10% of the mass at 0, the rest at 10, model CDF climbing
        // linearly across the gap: the post-jump candidates are 0.05
        // and 0 (what the old one-sided statistic reported), but just
        // before the v=10 jump the model has climbed to 0.95 while the
        // empirical CDF is still 0.1.
        let mut h = IntHistogram::new();
        h.record_n(0, 1);
        h.record_n(10, 9);
        let model = |x: f64| (x / 10.0).clamp(0.0, 1.0);
        let ks = ks_distance(&h, model);
        assert!((ks - 0.85).abs() < 1e-12, "ks = {ks}");
    }

    #[test]
    fn ks_empty_hist_is_zero() {
        let h = IntHistogram::new();
        assert_eq!(ks_distance(&h, |_| 0.5), 0.0);
    }

    #[test]
    fn tv_zero_for_identical_distributions() {
        let h = geometric_hist(0.5, 1 << 20);
        let total = h.total() as f64;
        let tv = total_variation(&h, |v| h.count(v) as f64 / total);
        assert!(tv < 1e-12);
    }

    #[test]
    fn tv_one_for_disjoint_support() {
        let mut h = IntHistogram::new();
        h.record_n(0, 10);
        let tv = total_variation(&h, |v| if v == 5 { 1.0 } else { 0.0 });
        assert!((tv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_fit_to_gamma_like_histogram_is_close() {
        // Build a histogram from binned Gamma(4, 2) probabilities, then
        // check the moment-matched gamma has a small KS distance.
        let g = Gamma::new(4.0, 2.0);
        let mut h = IntHistogram::new();
        let n = 1u64 << 24;
        for v in 0..200 {
            // Centered bins [v−½, v+½): integer v carries the continuous
            // mass nearest to it.
            let c = (g.bin_prob(v) * n as f64).round() as u64;
            if c > 0 {
                h.record_n(v, c);
            }
        }
        // Centered binning is mean-unbiased and inflates the variance by
        // 1/12 (Sheppard); undo it before fitting.
        let fit = Gamma::from_mean_var(h.mean(), h.variance() - 1.0 / 12.0).unwrap();
        assert!((fit.mean() - 8.0).abs() < 0.05);
        assert!((fit.variance() - 16.0).abs() < 0.2);
        let ks = ks_distance(&h, |x| fit.cdf(x));
        assert!(ks < 0.01, "ks = {ks}");
        let tv = total_variation(&h, |v| fit.bin_prob(v));
        assert!(tv < 0.02, "tv = {tv}");
    }

    #[test]
    fn tail_relative_error_of_exact_model_is_small() {
        let h = geometric_hist(0.6, 1 << 22);
        // Geometric(1-r) survival: P(X > x) = r^{floor(x)+1} for integer
        // edges; pass the continuous interpolation used by the helper.
        let r: f64 = 0.6;
        let err = tail_relative_error(&h, |x| r.powf(x), 0.9).unwrap();
        assert!(err < 0.05, "err = {err}");
    }

    #[test]
    fn tail_relative_error_none_when_no_tail() {
        let mut h = IntHistogram::new();
        h.record_n(3, 10);
        assert!(tail_relative_error(&h, |_| 0.5, 0.5).is_none());
        let empty = IntHistogram::new();
        assert!(tail_relative_error(&empty, |_| 0.5, 0.5).is_none());
    }
}
