//! Streaming correlation matrix over a fixed set of jointly observed
//! series.
//!
//! Table VI of the paper is the matrix of correlations between a message's
//! waiting times at stages 1..8 of a `k = 2`, `p = 0.5`, `m = 1` network.
//! Each message that traverses all stages contributes one joint
//! observation vector.

use crate::online::{CoMoment, OnlineStats};

/// Streaming estimator of the full pairwise correlation/covariance matrix
/// of a `d`-dimensional observation vector.
#[derive(Clone, Debug)]
pub struct CorrelationMatrix {
    dim: usize,
    marginals: Vec<OnlineStats>,
    /// Upper-triangle (i < j) pair accumulators, row-major.
    pairs: Vec<CoMoment>,
}

impl CorrelationMatrix {
    /// Creates an estimator for `dim`-dimensional observations.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        CorrelationMatrix {
            dim,
            marginals: vec![OnlineStats::new(); dim],
            pairs: vec![CoMoment::new(); dim * (dim - 1) / 2],
        }
    }

    /// Dimension of the observation vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of observation vectors seen.
    pub fn count(&self) -> u64 {
        self.marginals[0].count()
    }

    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.dim);
        // Offset of row i within the packed upper triangle.
        i * self.dim - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Adds one joint observation. `obs.len()` must equal `dim`.
    pub fn push(&mut self, obs: &[f64]) {
        assert_eq!(obs.len(), self.dim, "observation dimension mismatch");
        for (s, &x) in self.marginals.iter_mut().zip(obs) {
            s.push(x);
        }
        for i in 0..self.dim {
            for j in (i + 1)..self.dim {
                let idx = self.pair_index(i, j);
                self.pairs[idx].push(obs[i], obs[j]);
            }
        }
    }

    /// Marginal statistics of coordinate `i`.
    pub fn marginal(&self, i: usize) -> &OnlineStats {
        &self.marginals[i]
    }

    /// Pearson correlation between coordinates `i` and `j` (1.0 on the
    /// diagonal).
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.pairs[self.pair_index(i, j)].correlation()
    }

    /// Covariance between coordinates `i` and `j` (variance on the
    /// diagonal).
    pub fn covariance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.marginals[i].variance();
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.pairs[self.pair_index(i, j)].covariance()
    }

    /// The full correlation matrix, row-major.
    pub fn correlation_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.dim)
            .map(|i| (0..self.dim).map(|j| self.correlation(i, j)).collect())
            .collect()
    }

    /// Variance of the coordinate sum, `Σ_i Σ_j cov(i, j)` — this is the
    /// quantity §V approximates with the geometric covariance model.
    pub fn sum_variance(&self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.dim {
            total += self.marginals[i].variance();
            for j in (i + 1)..self.dim {
                total += 2.0 * self.pairs[self.pair_index(i, j)].covariance();
            }
        }
        total
    }

    /// Merges another estimator (same dimension) into this one.
    pub fn merge(&mut self, other: &CorrelationMatrix) {
        assert_eq!(self.dim, other.dim, "dimension mismatch in merge");
        for (a, b) in self.marginals.iter_mut().zip(&other.marginals) {
            a.merge(b);
        }
        for (a, b) in self.pairs.iter_mut().zip(&other.pairs) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_is_one() {
        let mut m = CorrelationMatrix::new(3);
        m.push(&[1.0, 2.0, 3.0]);
        m.push(&[2.0, 1.0, 5.0]);
        for i in 0..3 {
            assert_eq!(m.correlation(i, i), 1.0);
        }
    }

    #[test]
    fn symmetric_access() {
        let mut m = CorrelationMatrix::new(3);
        for i in 0..50 {
            let x = i as f64;
            m.push(&[x, 2.0 * x + (i % 3) as f64, -x]);
        }
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.correlation(i, j), m.correlation(j, i));
                assert_eq!(m.covariance(i, j), m.covariance(j, i));
            }
        }
    }

    #[test]
    fn perfect_and_anti_correlation() {
        let mut m = CorrelationMatrix::new(3);
        for i in 0..100 {
            let x = (i as f64 * 0.77).sin();
            m.push(&[x, 2.0 * x + 1.0, -x]);
        }
        assert!((m.correlation(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.correlation(0, 2) + 1.0).abs() < 1e-12);
        assert!((m.correlation(1, 2) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_variance_matches_direct_computation() {
        let mut m = CorrelationMatrix::new(3);
        let mut sums = OnlineStats::new();
        for i in 0..500 {
            let a = ((i * 13) % 7) as f64;
            let b = ((i * 5) % 11) as f64;
            let c = ((i * 3) % 5) as f64 + 0.5 * a;
            m.push(&[a, b, c]);
            sums.push(a + b + c);
        }
        assert!((m.sum_variance() - sums.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_concatenation() {
        let obs: Vec<[f64; 2]> = (0..300)
            .map(|i| [((i * 17) % 29) as f64, ((i * 11) % 31) as f64])
            .collect();
        let mut a = CorrelationMatrix::new(2);
        let mut b = CorrelationMatrix::new(2);
        for (i, o) in obs.iter().enumerate() {
            if i < 120 {
                a.push(o);
            } else {
                b.push(o);
            }
        }
        a.merge(&b);
        let mut whole = CorrelationMatrix::new(2);
        for o in &obs {
            whole.push(o);
        }
        assert_eq!(a.count(), whole.count());
        assert!((a.correlation(0, 1) - whole.correlation(0, 1)).abs() < 1e-12);
        assert!((a.covariance(0, 1) - whole.covariance(0, 1)).abs() < 1e-9);
    }

    #[test]
    fn correlation_matrix_shape() {
        let mut m = CorrelationMatrix::new(4);
        for i in 0..20 {
            m.push(&[i as f64, (i * i) as f64, (i % 3) as f64, 1.5]);
        }
        let mat = m.correlation_matrix();
        assert_eq!(mat.len(), 4);
        assert!(mat.iter().all(|row| row.len() == 4));
        assert!((0..4).all(|i| mat[i][i] == 1.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_wrong_dimension_panics() {
        let mut m = CorrelationMatrix::new(2);
        m.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        CorrelationMatrix::new(0);
    }
}
