//! Sectioning (replication) estimates with error bars for *derived*
//! statistics.
//!
//! The tables report simulated variances, and a variance estimate has
//! sampling error too. The classic sectioning method: split the stream
//! into `B` contiguous sections, compute the statistic per section, and
//! use the spread of the section values as the error bar — valid for any
//! statistic, and robust to the autocorrelation of queueing output (each
//! section is long compared to the correlation time).

use crate::ci::normal_quantile;
use crate::online::OnlineStats;

/// Streams observations into `B` equal sections and reports the mean and
/// variance *per section*, with confidence intervals across sections.
#[derive(Clone, Debug)]
pub struct Sectioned {
    section_len: u64,
    current: OnlineStats,
    /// Per-section means.
    section_means: Vec<f64>,
    /// Per-section (population) variances.
    section_vars: Vec<f64>,
}

impl Sectioned {
    /// Creates an accumulator with the given section length (> 1).
    pub fn new(section_len: u64) -> Self {
        assert!(section_len > 1, "sections need at least two observations");
        Sectioned {
            section_len,
            current: OnlineStats::new(),
            section_means: Vec::new(),
            section_vars: Vec::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.section_len {
            self.section_means.push(self.current.mean());
            self.section_vars.push(self.current.variance());
            self.current = OnlineStats::new();
        }
    }

    /// Number of completed sections.
    pub fn sections(&self) -> usize {
        self.section_means.len()
    }

    fn ci_of(values: &[f64], level: f64) -> Option<(f64, f64)> {
        if values.len() < 2 {
            return None;
        }
        let mut s = OnlineStats::new();
        for &v in values {
            s.push(v);
        }
        let z = normal_quantile(0.5 + level / 2.0);
        let h = z * s.std_err();
        Some((s.mean(), h))
    }

    /// `(estimate, half-width)` of the mean at the given confidence
    /// level; `None` with fewer than two sections.
    pub fn mean_ci(&self, level: f64) -> Option<(f64, f64)> {
        Self::ci_of(&self.section_means, level)
    }

    /// `(estimate, half-width)` of the **variance** at the given
    /// confidence level — the error bar the tables' `v` columns need.
    pub fn var_ci(&self, level: f64) -> Option<(f64, f64)> {
        Self::ci_of(&self.section_vars, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_stream(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn sections_fill_and_count() {
        let mut s = Sectioned::new(10);
        for i in 0..95 {
            s.push(i as f64);
        }
        assert_eq!(s.sections(), 9); // the 96th..100th never arrive
    }

    #[test]
    fn mean_ci_covers_uniform_mean() {
        let mut s = Sectioned::new(1_000);
        for x in lcg_stream(50_000, 42) {
            s.push(x);
        }
        let (est, h) = s.mean_ci(0.99).unwrap();
        assert!((est - 0.5).abs() < h, "mean {est} ± {h}");
        assert!(h < 0.01);
    }

    #[test]
    fn var_ci_covers_uniform_variance() {
        // Var of U(0,1) = 1/12 ≈ 0.08333.
        let mut s = Sectioned::new(1_000);
        for x in lcg_stream(100_000, 7) {
            s.push(x);
        }
        let (est, h) = s.var_ci(0.99).unwrap();
        assert!((est - 1.0 / 12.0).abs() < h + 1e-4, "var {est} ± {h}");
        assert!(h < 0.005);
    }

    #[test]
    fn too_few_sections_gives_none() {
        let mut s = Sectioned::new(100);
        for i in 0..150 {
            s.push(i as f64);
        }
        assert_eq!(s.sections(), 1);
        assert!(s.mean_ci(0.95).is_none());
        assert!(s.var_ci(0.95).is_none());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn section_len_one_panics() {
        Sectioned::new(1);
    }
}
