//! # banyan-stats
//!
//! Statistics substrate for the Kruskal–Snir–Weiss reproduction. The
//! paper's "extensive simulations" need to be reduced to exactly the
//! quantities the tables and figures report:
//!
//! * per-stage waiting-time **means and variances** (Tables I–V) —
//!   [`online::OnlineStats`], streaming Welford accumulators that never
//!   store samples,
//! * **cross-stage correlations** (Table VI) — [`online::CoMoment`] and
//!   [`correlation::CorrelationMatrix`],
//! * **histograms** of total waiting time (Figs. 3–8) —
//!   [`histogram::IntHistogram`],
//! * the **gamma approximation** of the total waiting time (§V) —
//!   [`gamma::Gamma`], fitted by moment matching,
//! * confidence intervals and distribution distances to quantify
//!   simulation/prediction agreement — [`ci`], [`distance`].
//!
//! Everything is streaming and mergeable so simulations can run sharded
//! across threads and be combined.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod correlation;
pub mod distance;
pub mod gamma;
pub mod histogram;
pub mod online;
pub mod sections;

pub use correlation::CorrelationMatrix;
pub use gamma::Gamma;
pub use histogram::IntHistogram;
pub use online::{CoMoment, OnlineStats};
pub use sections::Sectioned;
