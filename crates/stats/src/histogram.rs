//! Integer-valued histograms.
//!
//! Waiting times in a clocked network are integers (cycles), so the
//! empirical distributions the paper plots (Figs. 3–8) are histograms over
//! `0, 1, 2, …`. [`IntHistogram`] grows on demand, converts to a pmf,
//! reports moments/percentiles, and merges across simulation shards.

use banyan_numerics::series::{kahan_sum, pmf_mean_var};

/// A dynamically growing histogram over nonnegative integer values.
///
/// Equality is exact bin-by-bin equality — two histograms built from the
/// same multiset of observations compare equal regardless of recording
/// order, which is what the engine-equivalence tests (lane vs scalar
/// simulator) assert on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl IntHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.total += n;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(value as usize).copied().unwrap_or(0)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max_value(&self) -> Option<u64> {
        self.counts.iter().rposition(|&c| c > 0).map(|i| i as u64)
    }

    /// Raw counts, index = value. May have trailing zeros.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Empirical probability `P(X = value)`.
    pub fn pmf_at(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// The empirical pmf as a dense vector (empty when no observations).
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        let t = self.total as f64;
        let last = self.max_value().unwrap() as usize;
        self.counts[..=last].iter().map(|&c| c as f64 / t).collect()
    }

    /// Empirical CDF `P(X <= value)`.
    pub fn cdf_at(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto = (value as usize + 1).min(self.counts.len());
        let c: u64 = self.counts[..upto].iter().sum();
        c as f64 / self.total as f64
    }

    /// Empirical complementary CDF `P(X >= value)` (exact: a count
    /// ratio, not `1 − cdf_at(value − 1)` with its cancellation error).
    /// Returns 0.0 when the histogram is empty.
    pub fn ccdf_at(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let from = (value as usize).min(self.counts.len());
        let c: u64 = self.counts[from..].iter().sum();
        c as f64 / self.total as f64
    }

    /// Empirical mean.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let terms: Vec<f64> = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .collect();
        kahan_sum(&terms) / self.total as f64
    }

    /// Empirical (population) variance.
    pub fn variance(&self) -> f64 {
        let pmf = self.pmf();
        if pmf.is_empty() {
            return 0.0;
        }
        pmf_mean_var(&pmf).1
    }

    /// Smallest value `v` with `P(X <= v) >= q`, for `q ∈ (0, 1]`.
    ///
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(v as u64);
            }
        }
        self.max_value()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &IntHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[u64]) -> IntHistogram {
        let mut h = IntHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn empty_histogram() {
        let h = IntHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.variance(), 0.0);
        assert!(h.pmf().is_empty());
        assert_eq!(h.max_value(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.cdf_at(10), 0.0);
    }

    #[test]
    fn counts_and_pmf() {
        let h = hist(&[0, 1, 1, 3]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.pmf(), vec![0.25, 0.5, 0.0, 0.25]);
        assert_eq!(h.pmf_at(1), 0.5);
        assert_eq!(h.max_value(), Some(3));
    }

    #[test]
    fn moments_match_hand_computation() {
        let h = hist(&[0, 1, 1, 2]);
        assert!((h.mean() - 1.0).abs() < 1e-15);
        // E X² = (0 + 1 + 1 + 4)/4 = 1.5; var = 0.5
        assert!((h.variance() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let h = hist(&[2, 5, 5, 9]);
        let mut prev = 0.0;
        for v in 0..12 {
            let c = h.cdf_at(v);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(h.cdf_at(9), 1.0);
        assert_eq!(h.cdf_at(100), 1.0);
    }

    #[test]
    fn ccdf_complements_cdf() {
        let h = hist(&[2, 5, 5, 9]);
        assert_eq!(h.ccdf_at(0), 1.0);
        assert_eq!(h.ccdf_at(2), 1.0);
        assert_eq!(h.ccdf_at(3), 0.75);
        assert_eq!(h.ccdf_at(6), 0.25);
        assert_eq!(h.ccdf_at(10), 0.0);
        for v in 0..12u64 {
            let complement = if v == 0 { 1.0 } else { 1.0 - h.cdf_at(v - 1) };
            assert!((h.ccdf_at(v) - complement).abs() < 1e-15, "v={v}");
        }
        assert_eq!(IntHistogram::new().ccdf_at(0), 0.0);
    }

    #[test]
    fn quantiles() {
        let h = hist(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(h.quantile(0.1), Some(1));
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(1.0), Some(10));
        // q=0 clamps to the first observation.
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = IntHistogram::new();
        a.record_n(4, 7);
        let b = hist(&[4, 4, 4, 4, 4, 4, 4]);
        assert_eq!(a.counts()[..5], b.counts()[..5]);
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn merge_equals_union() {
        let mut a = hist(&[0, 1, 5]);
        let b = hist(&[1, 2, 2, 8]);
        a.merge(&b);
        let whole = hist(&[0, 1, 5, 1, 2, 2, 8]);
        assert_eq!(a.total(), whole.total());
        assert_eq!(a.pmf(), whole.pmf());
    }

    #[test]
    fn pmf_sums_to_one() {
        let h = hist(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]);
        let s: f64 = h.pmf().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_out_of_range_panics() {
        hist(&[1]).quantile(1.5);
    }
}
