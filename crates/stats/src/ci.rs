//! Confidence intervals for steady-state simulation output.
//!
//! Waiting times of successive messages are autocorrelated, so the naive
//! `s/√n` standard error understates the uncertainty. The standard remedy —
//! and what we use when reporting sim-vs-analysis agreement in
//! `EXPERIMENTS.md` — is the **method of batch means**: split the run into
//! `B` contiguous batches, average each batch, and treat the batch averages
//! as (nearly) independent.

use crate::online::OnlineStats;

/// Batch-means accumulator: feeds observations into fixed-size batches and
/// keeps streaming statistics of the batch averages.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batches: OnlineStats,
    overall: OnlineStats,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size (> 0).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batches: OnlineStats::new(),
            overall: OnlineStats::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.overall.push(x);
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Number of completed batches.
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// Overall (per-observation) statistics.
    pub fn overall(&self) -> &OnlineStats {
        &self.overall
    }

    /// Point estimate: mean of completed batch means (falls back to the
    /// overall mean if no batch completed).
    pub fn mean(&self) -> f64 {
        if self.batches.count() > 0 {
            self.batches.mean()
        } else {
            self.overall.mean()
        }
    }

    /// Half-width of an approximate `level` confidence interval for the
    /// steady-state mean, from the batch means. Requires >= 2 completed
    /// batches; returns `None` otherwise.
    ///
    /// `level` is e.g. `0.95`; the normal critical value is used (batch
    /// counts in this project are >= 30, where Student-t and normal agree
    /// to the digits we report).
    pub fn half_width(&self, level: f64) -> Option<f64> {
        if self.batches.count() < 2 {
            return None;
        }
        let z = normal_quantile(0.5 + level / 2.0);
        Some(z * self.batches.std_err())
    }

    /// The confidence interval `(lo, hi)` at `level`, if computable.
    pub fn interval(&self, level: f64) -> Option<(f64, f64)> {
        let h = self.half_width(level)?;
        Some((self.mean() - h, self.mean() + h))
    }
}

/// Standard-normal quantile (inverse CDF) via the Acklam rational
/// approximation (~1e-9 absolute accuracy), refined with one Halley step
/// against `erf`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement using Φ(x) = (1 + erf(x/√2))/2.
    let e = 0.5 * (1.0 + banyan_numerics::special::erf(x / std::f64::consts::SQRT_2)) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-12);
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
        assert!((normal_quantile(0.841_344_746_068_542_9) - 1.0).abs() < 1e-7);
        assert!((normal_quantile(0.025) + 1.959_963_984_540_054).abs() < 1e-8);
        assert!((normal_quantile(0.999) - 3.090_232_306_167_813).abs() < 1e-7);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn normal_quantile_rejects_bounds() {
        normal_quantile(0.0);
    }

    #[test]
    fn batch_means_basic() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.push((i % 10) as f64);
        }
        assert_eq!(bm.batch_count(), 10);
        // Every batch mean is exactly 4.5 → zero variance CI.
        assert!((bm.mean() - 4.5).abs() < 1e-12);
        let (lo, hi) = bm.interval(0.95).unwrap();
        assert!((lo - 4.5).abs() < 1e-9 && (hi - 4.5).abs() < 1e-9);
    }

    #[test]
    fn interval_covers_true_mean_for_iid_data() {
        // Deterministic LCG noise, mean 0.5.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut bm = BatchMeans::new(100);
        for _ in 0..100_000 {
            bm.push(next());
        }
        let (lo, hi) = bm.interval(0.99).unwrap();
        assert!(lo < 0.5 && 0.5 < hi, "({lo}, {hi})");
        assert!(hi - lo < 0.01, "CI too wide: {}", hi - lo);
    }

    #[test]
    fn incomplete_batch_not_counted() {
        let mut bm = BatchMeans::new(10);
        for i in 0..15 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batch_count(), 1);
        assert_eq!(bm.overall().count(), 15);
        assert!(bm.half_width(0.95).is_none());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        BatchMeans::new(0);
    }
}
