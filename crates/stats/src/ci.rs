//! Confidence intervals for steady-state simulation output.
//!
//! Waiting times of successive messages are autocorrelated, so the naive
//! `s/√n` standard error understates the uncertainty. The standard remedy —
//! and what we use when reporting sim-vs-analysis agreement in
//! `EXPERIMENTS.md` — is the **method of batch means**: split the run into
//! `B` contiguous batches, average each batch, and treat the batch averages
//! as (nearly) independent.

use crate::online::OnlineStats;

/// Batch-means accumulator: feeds observations into fixed-size batches and
/// keeps streaming statistics of the batch averages.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batches: OnlineStats,
    overall: OnlineStats,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size (> 0).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batches: OnlineStats::new(),
            overall: OnlineStats::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.overall.push(x);
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Number of completed batches.
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// Overall (per-observation) statistics.
    pub fn overall(&self) -> &OnlineStats {
        &self.overall
    }

    /// Point estimate: mean of completed batch means (falls back to the
    /// overall mean if no batch completed).
    pub fn mean(&self) -> f64 {
        if self.batches.count() > 0 {
            self.batches.mean()
        } else {
            self.overall.mean()
        }
    }

    /// Half-width of an approximate `level` confidence interval for the
    /// steady-state mean, from the batch means. Requires >= 2 completed
    /// batches; returns `None` otherwise.
    ///
    /// `level` is e.g. `0.95`. The critical value is the **Student-t**
    /// quantile with `batches − 1` degrees of freedom — with few batches
    /// the batch-mean variance is itself noisy, and the normal value
    /// would give a silently too-narrow interval (for 3 batches at 95%
    /// the correct multiplier is 4.30, not 1.96). For large batch counts
    /// the t quantile converges to the normal one.
    pub fn half_width(&self, level: f64) -> Option<f64> {
        if self.batches.count() < 2 {
            return None;
        }
        let df = (self.batches.count() - 1) as f64;
        let t = student_t_quantile(0.5 + level / 2.0, df);
        Some(t * self.batches.std_err())
    }

    /// The confidence interval `(lo, hi)` at `level`, if computable.
    pub fn interval(&self, level: f64) -> Option<(f64, f64)> {
        let h = self.half_width(level)?;
        Some((self.mean() - h, self.mean() + h))
    }
}

/// Standard-normal quantile (inverse CDF) via the Acklam rational
/// approximation (~1e-9 absolute accuracy), refined with one Halley step
/// against `erf`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement using Φ(x) = (1 + erf(x/√2))/2 — except in
    // the extreme tails: `(x²/2).exp()` overflows to `inf` once
    // `x² / 2 > ln(f64::MAX) ≈ 709` (|x| ≳ 37.6, p ≲ 1e-308), turning
    // the result into NaN via inf·0. Out there `erf` is saturated at
    // ±1 anyway, so the refinement has no signal to work with — return
    // the Acklam estimate (~1e-9 absolute) directly.
    if x.abs() > 37.5 {
        return x;
    }
    let e = 0.5 * (1.0 + banyan_numerics::special::erf(x / std::f64::consts::SQRT_2)) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Student-t quantile (inverse CDF) with `df > 0` degrees of freedom.
///
/// Uses the exact CDF identity `F(t) = 1 − ½ I_x(df/2, ½)` with
/// `x = df/(df + t²)` for `t ≥ 0` (regularized incomplete beta from
/// `banyan_numerics`), inverted by safeguarded Newton iteration started
/// from the normal quantile. Converges to [`normal_quantile`] as
/// `df → ∞`.
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    if p == 0.5 {
        return 0.0;
    }
    // Symmetry: solve the upper half only.
    if p < 0.5 {
        return -student_t_quantile(1.0 - p, df);
    }
    // Beyond ~1e6 the t and normal quantiles agree to full f64
    // precision in the probability range callers can express.
    if df > 1e7 {
        return normal_quantile(p);
    }
    let cdf = |t: f64| 1.0 - 0.5 * banyan_numerics::reg_beta(df / 2.0, 0.5, df / (df + t * t));
    let ln_norm = banyan_numerics::ln_gamma((df + 1.0) / 2.0)
        - banyan_numerics::ln_gamma(df / 2.0)
        - 0.5 * (df * std::f64::consts::PI).ln();
    let pdf = |t: f64| (ln_norm - 0.5 * (df + 1.0) * (1.0 + t * t / df).ln()).exp();
    // Bracket [lo, hi] with cdf(lo) < p <= cdf(hi); the t quantile is
    // never below the normal one for p > 0.5.
    let mut lo = normal_quantile(p).max(0.0);
    let mut hi = (lo + 1.0) * 2.0;
    while cdf(hi) < p {
        lo = hi;
        hi *= 2.0;
        assert!(hi.is_finite(), "t-quantile bracket diverged (p={p}, df={df})");
    }
    let mut t = lo;
    for _ in 0..100 {
        let err = cdf(t) - p;
        if err >= 0.0 {
            hi = t;
        } else {
            lo = t;
        }
        let d = pdf(t);
        let mut next = if d > 0.0 { t - err / d } else { 0.5 * (lo + hi) };
        // Newton safeguard: fall back to bisection when the step leaves
        // the bracket (heavy tails make the CDF very flat for small df).
        if !(next > lo && next < hi) {
            next = 0.5 * (lo + hi);
        }
        if (next - t).abs() <= 1e-12 * t.abs().max(1.0) {
            return next;
        }
        t = next;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-12);
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
        assert!((normal_quantile(0.841_344_746_068_542_9) - 1.0).abs() < 1e-7);
        assert!((normal_quantile(0.025) + 1.959_963_984_540_054).abs() < 1e-8);
        assert!((normal_quantile(0.999) - 3.090_232_306_167_813).abs() < 1e-7);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn normal_quantile_rejects_bounds() {
        normal_quantile(0.0);
    }

    #[test]
    fn normal_quantile_extreme_tails_stay_finite() {
        // Regression: the Halley step's (x²/2).exp() used to overflow to
        // inf for p ≲ 1e-308 and poison the result with NaN.
        for &p in &[1e-300, 1e-305, f64::MIN_POSITIVE, 1e-308, 5e-310, 1e-312] {
            let lo = normal_quantile(p);
            assert!(lo.is_finite(), "p={p}: {lo}");
            assert!(lo < -35.0, "p={p}: {lo}");
        }
        // The upper tail saturates near 1 − ε/2 (f64 can't express
        // probabilities closer to 1); it must stay finite there too.
        let hi = normal_quantile(1.0 - f64::EPSILON / 2.0);
        assert!(hi.is_finite());
        assert!(hi > 8.0, "{hi}");
    }

    #[test]
    fn normal_quantile_monotone_into_the_tail() {
        // Monotonicity across the refinement cutoff (|x| ≈ 37.5 sits
        // between 1e-300 and 1e-310) and deep into the subnormals.
        let ps = [
            0.25,
            1e-3,
            1e-9,
            1e-30,
            1e-100,
            1e-200,
            1e-290,
            1e-300,
            1e-305,
            f64::MIN_POSITIVE,
            1e-308,
            1e-310,
            1e-315,
        ];
        let mut prev = f64::INFINITY;
        for &p in &ps {
            let x = normal_quantile(p);
            assert!(x.is_finite(), "p={p}");
            assert!(x < prev, "p={p}: {x} !< {prev}");
            prev = x;
        }
    }

    #[test]
    fn student_t_matches_published_table() {
        // Two-sided 95% critical values (p = 0.975) from standard
        // t-tables.
        for &(df, want) in &[
            (2.0, 4.302_653),
            (5.0, 2.570_582),
            (10.0, 2.228_139),
            (29.0, 2.045_230),
        ] {
            let got = student_t_quantile(0.975, df);
            assert!((got - want).abs() < 5e-6, "df={df}: {got} vs {want}");
        }
        // One-sided 95% (p = 0.95) spot checks.
        for &(df, want) in &[(1.0, 6.313_752), (4.0, 2.131_847), (29.0, 1.699_127)] {
            let got = student_t_quantile(0.95, df);
            assert!((got - want).abs() < 5e-6, "df={df}: {got} vs {want}");
        }
    }

    #[test]
    fn student_t_symmetry_and_median() {
        assert_eq!(student_t_quantile(0.5, 7.0), 0.0);
        for &p in &[0.6, 0.9, 0.99, 0.999] {
            for &df in &[1.0, 3.0, 12.0] {
                let hi = student_t_quantile(p, df);
                let lo = student_t_quantile(1.0 - p, df);
                assert!((hi + lo).abs() < 1e-9, "p={p} df={df}");
            }
        }
    }

    #[test]
    fn student_t_converges_to_normal() {
        for &p in &[0.9, 0.975, 0.995] {
            let z = normal_quantile(p);
            let mut prev = student_t_quantile(p, 2.0);
            for &df in &[5.0, 30.0, 300.0, 30_000.0] {
                let t = student_t_quantile(p, df);
                assert!(t > z - 1e-9, "t below normal at df={df}");
                assert!(t < prev + 1e-9, "not decreasing toward normal at df={df}");
                prev = t;
            }
            assert!((student_t_quantile(p, 1e6) - z).abs() < 1e-5, "p={p}");
            assert!((student_t_quantile(p, 1e8) - z).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn student_t_round_trips_through_cdf() {
        // cdf(quantile(p)) == p to high accuracy.
        for &df in &[1.0, 2.0, 7.0, 50.0] {
            for &p in &[0.55, 0.8, 0.95, 0.999] {
                let t = student_t_quantile(p, df);
                let back =
                    1.0 - 0.5 * banyan_numerics::reg_beta(df / 2.0, 0.5, df / (df + t * t));
                assert!((back - p).abs() < 1e-10, "df={df} p={p}: {back}");
            }
        }
    }

    #[test]
    fn batch_means_basic() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.push((i % 10) as f64);
        }
        assert_eq!(bm.batch_count(), 10);
        // Every batch mean is exactly 4.5 → zero variance CI.
        assert!((bm.mean() - 4.5).abs() < 1e-12);
        let (lo, hi) = bm.interval(0.95).unwrap();
        assert!((lo - 4.5).abs() < 1e-9 && (hi - 4.5).abs() < 1e-9);
    }

    #[test]
    fn interval_covers_true_mean_for_iid_data() {
        // Deterministic LCG noise, mean 0.5.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut bm = BatchMeans::new(100);
        for _ in 0..100_000 {
            bm.push(next());
        }
        let (lo, hi) = bm.interval(0.99).unwrap();
        assert!(lo < 0.5 && 0.5 < hi, "({lo}, {hi})");
        assert!(hi - lo < 0.01, "CI too wide: {}", hi - lo);
    }

    #[test]
    fn half_width_uses_t_not_normal_for_few_batches() {
        // Three batches (df = 2): the 95% multiplier must be 4.30, not
        // 1.96 — the old normal-based interval was 2.2× too narrow.
        let mut bm = BatchMeans::new(2);
        for x in [1.0, 3.0, 2.0, 6.0, 3.0, 9.0] {
            bm.push(x);
        }
        assert_eq!(bm.batch_count(), 3);
        let hw = bm.half_width(0.95).unwrap();
        let se = {
            let mut batches = OnlineStats::new();
            for b in [2.0, 4.0, 6.0] {
                batches.push(b);
            }
            batches.std_err()
        };
        assert!((hw - 4.302_653 * se).abs() < 1e-4 * se, "hw={hw}, se={se}");
        assert!(hw > 1.96 * se * 2.0, "interval no wider than normal");
    }

    #[test]
    fn half_width_approaches_normal_for_many_batches() {
        let mut bm = BatchMeans::new(10);
        for i in 0..10_000 {
            bm.push((i % 7) as f64);
        }
        let df = (bm.batch_count() - 1) as f64;
        let hw = bm.half_width(0.95).unwrap();
        let z_hw = normal_quantile(0.975) * {
            // Reconstruct the batch std_err via the t relation.
            hw / student_t_quantile(0.975, df)
        };
        assert!((hw - z_hw) / z_hw < 0.005, "t and normal should nearly agree at df={df}");
    }

    #[test]
    fn incomplete_batch_not_counted() {
        let mut bm = BatchMeans::new(10);
        for i in 0..15 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batch_count(), 1);
        assert_eq!(bm.overall().count(), 15);
        assert!(bm.half_width(0.95).is_none());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        BatchMeans::new(0);
    }
}
