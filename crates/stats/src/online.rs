//! Streaming first/second-moment accumulators (Welford) and pairwise
//! co-moments.
//!
//! Simulations in this project run for up to hundreds of millions of
//! message–stage events, so nothing may store samples. All accumulators
//! here are O(1) space, numerically stable (no catastrophic cancellation),
//! and **mergeable** via the parallel Chan–Golub–LeVeque update so sharded
//! simulation replicas combine exactly.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation (Welford / Pébay update, third order).
    #[inline]
    pub fn push(&mut self, x: f64) {
        let n0 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term = delta * delta_n * n0;
        self.mean += delta_n;
        self.m3 += term * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance `M2/n` (the paper's tables report long-run
    /// variances; for the sample sizes involved the `n` vs `n−1` choice is
    /// far below simulation noise). 0 when fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance `M2/(n−1)`.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard deviation (population).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Third central moment `E[(X − μ)³]` (0 with fewer than 3
    /// observations).
    pub fn third_central_moment(&self) -> f64 {
        if self.n < 3 {
            0.0
        } else {
            self.m3 / self.n as f64
        }
    }

    /// Skewness `μ₃/σ³` (0 when degenerate).
    pub fn skewness(&self) -> f64 {
        let sd = self.std_dev();
        if sd == 0.0 {
            0.0
        } else {
            self.third_central_moment() / (sd * sd * sd)
        }
    }

    /// Standard error of the mean, `s/√n` (uses the unbiased variance).
    pub fn std_err(&self) -> f64 {
        if self.n < 2 {
            f64::INFINITY
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        // Pébay's parallel combine, third order.
        self.m3 += other.m3
            + delta.powi(3) * n1 * n2 * (n1 - n2) / (n * n)
            + 3.0 * delta * (n1 * other.m2 - n2 * self.m2) / n;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Streaming covariance accumulator for a pair of jointly observed series.
///
/// Table VI of the paper reports the correlation of a message's waiting
/// times at pairs of stages; each message contributes one `(w_i, w_j)`
/// observation per pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoMoment {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
}

impl CoMoment {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one joint observation `(x, y)`.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / n;
        self.mean_y += dy / n;
        // Uses the pre-update dx and post-update y-mean: the standard
        // stable pairwise update.
        self.cxy += dx * (y - self.mean_y);
        self.m2x += dx * (x - self.mean_x);
        self.m2y += dy * (y - self.mean_y);
    }

    /// Number of joint observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Population covariance.
    pub fn covariance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.cxy / self.n as f64
        }
    }

    /// Pearson correlation coefficient in `[-1, 1]` (0 when degenerate).
    pub fn correlation(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let denom = (self.m2x * self.m2y).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (self.cxy / denom).clamp(-1.0, 1.0)
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CoMoment) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.cxy += other.cxy + dx * dy * n1 * n2 / n;
        self.m2x += other.m2x + dx * dx * n1 * n2 / n;
        self.m2y += other.m2y + dy * dy * n1 * n2 / n;
        self.mean_x += dx * n2 / n;
        self.mean_y += dy * n2 / n;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(xs: &[f64]) -> OnlineStats {
        let mut s = OnlineStats::new();
        s.extend(xs.iter().copied());
        s
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
        assert_eq!(s.std_err(), f64::INFINITY);
    }

    #[test]
    fn known_small_sample() {
        let s = batch(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-15);
        assert!((s.variance() - 4.0).abs() < 1e-15);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-14);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.std_dev() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..503).map(|i| ((i * 37) % 101) as f64 * 0.17 - 3.0).collect();
        for split in [0usize, 1, 250, 502, 503] {
            let mut a = batch(&xs[..split]);
            let b = batch(&xs[split..]);
            a.merge(&b);
            let whole = batch(&xs);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-12);
            assert!((a.variance() - whole.variance()).abs() < 1e-12);
            assert!(
                (a.third_central_moment() - whole.third_central_moment()).abs() < 1e-9,
                "m3 merge at split {split}"
            );
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
        }
    }

    #[test]
    fn third_moment_matches_direct_computation() {
        let xs = [1.0, 2.0, 2.0, 3.0, 7.0, 9.0];
        let s = batch(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mu3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / xs.len() as f64;
        assert!((s.third_central_moment() - mu3).abs() < 1e-12);
        let sd = s.std_dev();
        assert!((s.skewness() - mu3 / (sd * sd * sd)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_data_has_zero_skewness() {
        let s = batch(&[-3.0, -1.0, 0.0, 1.0, 3.0]);
        assert!(s.third_central_moment().abs() < 1e-12);
        assert_eq!(batch(&[5.0, 5.0, 5.0]).skewness(), 0.0);
    }

    #[test]
    fn exponential_like_data_is_right_skewed() {
        // Deterministic "exponential quantile" sample: skewness ≈ 2.
        let n = 10_000;
        let xs: Vec<f64> = (0..n)
            .map(|i| -(1.0 - (i as f64 + 0.5) / n as f64).ln())
            .collect();
        let s = batch(&xs);
        assert!((s.skewness() - 2.0).abs() < 0.1, "{}", s.skewness());
    }

    #[test]
    fn welford_is_shift_stable() {
        // Same data shifted by 1e9: naive sum-of-squares would lose all
        // precision; Welford keeps the variance intact.
        let base = [0.1, 0.2, 0.3, 0.4, 0.5];
        let shifted: Vec<f64> = base.iter().map(|x| x + 1e9).collect();
        let v0 = batch(&base).variance();
        let v1 = batch(&shifted).variance();
        assert!((v0 - v1).abs() < 1e-7, "{v0} vs {v1}");
    }

    #[test]
    fn comoment_perfect_linear_dependence() {
        let mut c = CoMoment::new();
        for i in 0..100 {
            let x = i as f64;
            c.push(x, 3.0 * x - 7.0);
        }
        assert!((c.correlation() - 1.0).abs() < 1e-12);
        let mut d = CoMoment::new();
        for i in 0..100 {
            let x = i as f64;
            d.push(x, -0.5 * x + 2.0);
        }
        assert!((d.correlation() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn comoment_independent_alternation_is_uncorrelated() {
        let mut c = CoMoment::new();
        // x cycles with period 2, y with period 4 in quadrature: sample
        // covariance is exactly 0 over full periods.
        for i in 0..400 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            let y = match i % 4 {
                0 => 1.0,
                1 => 1.0,
                2 => -1.0,
                _ => -1.0,
            };
            c.push(x, y);
        }
        assert!(c.correlation().abs() < 1e-12);
    }

    #[test]
    fn comoment_known_covariance() {
        let mut c = CoMoment::new();
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 1.0, 4.0, 3.0];
        for (&x, &y) in xs.iter().zip(&ys) {
            c.push(x, y);
        }
        // means 2.5, 2.5; cov = ((-1.5)(-0.5)+(-0.5)(-1.5)+(0.5)(1.5)+(1.5)(0.5))/4 = 0.75
        assert!((c.covariance() - 0.75).abs() < 1e-14);
        assert_eq!(c.count(), 4);
    }

    #[test]
    fn comoment_merge_equals_concatenation() {
        let pts: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let x = ((i * 13) % 17) as f64;
                let y = ((i * 7) % 23) as f64 + 0.3 * x;
                (x, y)
            })
            .collect();
        for split in [0usize, 1, 100, 199, 200] {
            let mut a = CoMoment::new();
            for &(x, y) in &pts[..split] {
                a.push(x, y);
            }
            let mut b = CoMoment::new();
            for &(x, y) in &pts[split..] {
                b.push(x, y);
            }
            a.merge(&b);
            let mut whole = CoMoment::new();
            for &(x, y) in &pts {
                whole.push(x, y);
            }
            assert!((a.covariance() - whole.covariance()).abs() < 1e-10);
            assert!((a.correlation() - whole.correlation()).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_correlation_is_zero() {
        let mut c = CoMoment::new();
        for _ in 0..10 {
            c.push(1.0, 2.0);
        }
        assert_eq!(c.correlation(), 0.0);
    }
}
