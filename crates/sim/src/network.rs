//! Clocked simulation of the full multistage banyan network.
//!
//! Implements exactly the model the paper analyzes (§I–II):
//!
//! * output-queued `k × k` switches with **infinite FIFO buffers**,
//! * one service start per output port per cycle; a size-`m` message
//!   occupies the port for `m` consecutive cycles,
//! * arriving messages never interfere with departing ones; a queue can
//!   accept any number of messages in one cycle,
//! * **cut-through** forwarding: a message's head packet reaches the next
//!   stage one cycle after its service starts, so the network service
//!   time of an unobstructed message is `n + m − 1` cycles,
//! * waiting time at a stage = cycles between the head packet's arrival
//!   at the queue and the start of service (0 if served immediately);
//!   service itself is *not* included — a message can have total waiting
//!   time zero.
//!
//! The measurement protocol is warmup → measure → drain: statistics come
//! only from messages injected during the measure window, and injection
//! continues (untracked) during the drain so late tracked messages still
//! experience steady-state congestion.
//!
//! # Hot-path layout
//!
//! The inner loop is allocation-free in steady state (see DESIGN.md,
//! "Hot-path architecture"):
//!
//! * messages live in a **slab** with a freelist and move between ports
//!   as `u32` ids threaded through an intrusive `next` link — no struct
//!   is copied per hop and no per-port deque exists,
//! * per-stage **active bitsets** mark non-empty queues: serving a stage
//!   scans set bits from least to most significant, which is the
//!   required ascending-wire order with no sorting and no per-cycle
//!   buffer shuffling at all,
//! * routing is a **precomputed table lookup**: the omega shuffle
//!   collapses to a per-wire switch base ([`OmegaTopology::switch_bases`])
//!   and the butterfly to a stage × wire × digit table
//!   ([`ButterflyTopology::routing_table`]); destination digits are
//!   extracted once at injection, so no per-hop shuffle or `pow`
//!   arithmetic remains.

use crate::butterfly::ButterflyTopology;
use crate::topology::OmegaTopology;
use crate::traffic::Workload;
use banyan_obs::msgtrace::RepTrace;
use banyan_obs::registry::POW2_BOUNDS;
use banyan_obs::{Gauge, Histogram, Telemetry};
use banyan_prng::rngs::SmallRng;
use banyan_prng::{Rng, SeedableRng};
use banyan_stats::{CorrelationMatrix, IntHistogram, OnlineStats};
use std::sync::Arc;

/// Hard cap on stages (fixed-size per-message wait record).
pub const MAX_STAGES: usize = 16;

/// Sentinel id: empty queue head/tail, end of a FIFO chain.
pub(crate) const NIL: u32 = u32::MAX;

/// Largest butterfly routing table we materialize (entries). Beyond this
/// the simulator falls back to per-hop digit arithmetic — same wires,
/// same dynamics, just not table-driven. (`stages × ports × k` exceeds
/// this only for configurations whose queue array alone dwarfs the
/// table, so the cap is a safety valve, not a tuning knob.)
const MAX_ROUTE_TABLE_ENTRIES: u64 = 1 << 27;

/// How messages choose switch outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Routing {
    /// Real banyan destination-tag routing on a full `k^n`-port omega
    /// network. Required for nonuniform (hot-spot) traffic.
    Banyan,
    /// Destination-tag routing on a `k^n`-port butterfly (indirect
    /// `k`-cube) — a different wiring of the same banyan family;
    /// statistically identical under uniform traffic (verified in
    /// tests).
    Butterfly,
    /// Fixed-width "cylinder": every stage has `k^width_log_k` wires and
    /// each message picks an independent uniform routing digit per stage.
    ///
    /// Under **uniform** traffic this is statistically identical to the
    /// full banyan (a uniform destination's digits are i.i.d. uniform),
    /// but the width no longer grows as `k^n` — this is how the `k = 8`,
    /// 8-stage configuration of Table II stays simulable (a full banyan
    /// would need 16.7M ports). The equivalence is verified in tests.
    RandomDigit {
        /// Stage width as a power of `k` (wires per stage =
        /// `k^width_log_k`).
        width_log_k: u32,
    },
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Switch arity `k` (a banyan network has `k^stages` ports).
    pub k: u32,
    /// Number of stages `n`.
    pub stages: u32,
    /// Routing/width mode.
    pub routing: Routing,
    /// Output-buffer capacity in messages (`None` = infinite, the
    /// paper's idealization). With finite buffers the model is
    /// store-and-forward blocking: a server does not start forwarding
    /// while the downstream queue is full, and an injection into a full
    /// first-stage queue is rejected (counted, not retried). This is the
    /// §VI "finite buffer delays" extension.
    pub buffer_capacity: Option<usize>,
    /// Offered traffic.
    pub workload: Workload,
    /// Cycles simulated before measurement starts.
    pub warmup_cycles: u64,
    /// Cycles during which injected messages are tracked.
    pub measure_cycles: u64,
    /// Collect the full cross-stage correlation matrix (Table VI). Off by
    /// default: it costs `O(n²)` updates per delivered message.
    pub collect_correlations: bool,
    /// Collect a full waiting-time histogram per stage (used to check
    /// §V's "the distribution of waiting times seems to be about the
    /// same for all stages"). Off by default.
    pub collect_stage_histograms: bool,
    /// RNG seed (simulations are fully deterministic given the seed).
    pub seed: u64,
}

impl NetworkConfig {
    /// A reasonable default protocol for the given topology and workload.
    pub fn new(k: u32, stages: u32, workload: Workload) -> Self {
        NetworkConfig {
            k,
            stages,
            routing: Routing::Banyan,
            buffer_capacity: None,
            workload,
            warmup_cycles: 2_000,
            measure_cycles: 20_000,
            collect_correlations: false,
            collect_stage_histograms: false,
            seed: 0x0BAD_5EED,
        }
    }

    /// Switches to cylinder (random-digit) mode with `k^width_log_k`
    /// wires per stage. Only valid for uniform traffic (`q = 0`).
    pub fn with_random_digit_width(mut self, width_log_k: u32) -> Self {
        self.routing = Routing::RandomDigit { width_log_k };
        self
    }
}

/// Aggregated simulation output (all statistics refer to *tracked*
/// messages — those injected inside the measure window — except the
/// `*_total` counters and `in_flight_at_end`).
#[derive(Clone, Debug)]
pub struct NetworkStats {
    /// Per-stage waiting-time statistics, index 0 = stage 1.
    pub stage_waits: Vec<OnlineStats>,
    /// Total (summed over stages) waiting time per message.
    pub total_wait: OnlineStats,
    /// Histogram of total waiting times (the Figs. 3–8 raw data).
    pub total_hist: IntHistogram,
    /// Cross-stage waiting-time correlations (Table VI), if collected.
    pub correlations: Option<CorrelationMatrix>,
    /// Per-stage waiting-time histograms, if collected.
    pub stage_hists: Option<Vec<IntHistogram>>,
    /// Tracked messages injected.
    pub injected: u64,
    /// Tracked messages delivered (equal to `injected` after a full run).
    pub delivered: u64,
    /// All messages injected, tracked or not.
    pub injected_total: u64,
    /// All messages delivered, tracked or not. Together with
    /// `in_flight_at_end` this closes the conservation ledger:
    /// `injected_total == delivered_total + in_flight_at_end`.
    pub delivered_total: u64,
    /// Injection attempts rejected because the first-stage buffer was
    /// full (always 0 with infinite buffers), tracked or not. Rejected
    /// attempts are *not* counted in `injected_total`.
    pub rejected_total: u64,
    /// Messages (necessarily untracked — the drain runs until every
    /// tracked message is delivered) still queued when the run ended.
    pub in_flight_at_end: u64,
    /// Cycles actually simulated (including warmup and drain).
    pub cycles: u64,
}

impl NetworkStats {
    pub(crate) fn new(
        stages: u32,
        collect_correlations: bool,
        collect_stage_histograms: bool,
    ) -> Self {
        NetworkStats {
            stage_waits: vec![OnlineStats::new(); stages as usize],
            total_wait: OnlineStats::new(),
            total_hist: IntHistogram::new(),
            correlations: collect_correlations.then(|| CorrelationMatrix::new(stages as usize)),
            stage_hists: collect_stage_histograms
                .then(|| vec![IntHistogram::new(); stages as usize]),
            injected: 0,
            delivered: 0,
            injected_total: 0,
            delivered_total: 0,
            rejected_total: 0,
            in_flight_at_end: 0,
            cycles: 0,
        }
    }

    /// Merges statistics from an independent replication.
    pub fn merge(&mut self, other: &NetworkStats) {
        assert_eq!(
            self.stage_waits.len(),
            other.stage_waits.len(),
            "stage count mismatch"
        );
        for (a, b) in self.stage_waits.iter_mut().zip(&other.stage_waits) {
            a.merge(b);
        }
        self.total_wait.merge(&other.total_wait);
        self.total_hist.merge(&other.total_hist);
        match (&mut self.correlations, &other.correlations) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("correlation collection mismatch in merge"),
        }
        match (&mut self.stage_hists, &other.stage_hists) {
            (Some(a), Some(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge(y);
                }
            }
            (None, None) => {}
            _ => panic!("stage-histogram collection mismatch in merge"),
        }
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.injected_total += other.injected_total;
        self.delivered_total += other.delivered_total;
        self.rejected_total += other.rejected_total;
        self.in_flight_at_end += other.in_flight_at_end;
        self.cycles += other.cycles;
    }
}

/// One slab entry. Messages never move: ports enqueue their ids and the
/// `next` link threads each port's FIFO through the slab.
#[derive(Clone, Debug)]
struct Slot {
    /// Cycle at which the head packet arrived at the current queue.
    entered: u64,
    /// Next message id in the same port FIFO (`NIL` at the tail).
    next: u32,
    size: u32,
    tracked: bool,
    /// Base-`k` destination digits, MSB first: `digits[i]` is consumed
    /// when leaving toward stage `i + 1`'s queue. Unused (stale) in
    /// random-digit mode, which draws a fresh digit per hop.
    digits: [u32; MAX_STAGES],
    waits: [u32; MAX_STAGES],
}

/// One output port: an intrusive FIFO of slab ids plus the server state.
#[derive(Clone, Copy, Debug)]
struct PortQueue {
    head: u32,
    tail: u32,
    len: u32,
    /// Earliest cycle at which the server may start a new service.
    busy_until: u64,
}

impl Default for PortQueue {
    fn default() -> Self {
        PortQueue {
            head: NIL,
            tail: NIL,
            len: 0,
            busy_until: 0,
        }
    }
}

#[inline]
fn fifo_push_back(queues: &mut [PortQueue], slab: &mut [Slot], qidx: usize, id: u32) {
    slab[id as usize].next = NIL;
    let q = &mut queues[qidx];
    if q.tail == NIL {
        q.head = id;
    } else {
        slab[q.tail as usize].next = id;
    }
    q.tail = id;
    q.len += 1;
}

/// Unlinks the head (caller guarantees the queue is non-empty).
#[inline]
fn fifo_pop_front(queues: &mut [PortQueue], slab: &[Slot], qidx: usize) -> u32 {
    let q = &mut queues[qidx];
    let id = q.head;
    debug_assert_ne!(id, NIL, "pop from empty port queue");
    q.head = slab[id as usize].next;
    if q.head == NIL {
        q.tail = NIL;
    }
    q.len -= 1;
    id
}

/// Precomputed next-wire routing. All variants produce bit-identical
/// wires to the direct topology arithmetic they replace.
pub(crate) enum Router {
    /// Omega wiring (banyan and random-digit modes): the shuffle is
    /// stage-independent, so the whole table collapses to a per-wire
    /// switch base — `next = base[wire] + digit`.
    OmegaBase(Vec<u32>),
    /// Butterfly wiring: full `stage × wire × digit` lookup table.
    ButterflyTable(Vec<u32>),
    /// Butterfly wiring too large to tabulate: per-hop digit arithmetic.
    ButterflyArith(ButterflyTopology),
}

impl Router {
    /// Output wire for a message on `wire` entering stage `s0 + 1`
    /// (0-indexed stage), heading for destination digit `digit`.
    #[inline]
    pub(crate) fn next(
        &self,
        s0: usize,
        ports: usize,
        k: usize,
        wire: usize,
        digit: usize,
    ) -> usize {
        match self {
            Router::OmegaBase(base) => base[wire] as usize + digit,
            Router::ButterflyTable(table) => table[(s0 * ports + wire) * k + digit] as usize,
            Router::ButterflyArith(b) => {
                b.next_wire_for_digit(s0 as u32 + 1, wire as u64, digit as u32) as usize
            }
        }
    }
}

/// Validates `cfg` and builds its topology. Shared between the scalar
/// simulator and the lane-batched engine (`crate::lanes`) so both reject
/// exactly the same configurations and agree on the port count.
///
/// # Panics
/// Panics on invalid workload parameters, `stages > MAX_STAGES`, a zero
/// buffer capacity, or hot-spot traffic in random-digit mode.
pub(crate) fn validate_and_build_topology(cfg: &NetworkConfig) -> OmegaTopology {
    cfg.workload.validate();
    assert!(
        (cfg.stages as usize) <= MAX_STAGES,
        "at most {MAX_STAGES} stages supported"
    );
    if let Some(cap) = cfg.buffer_capacity {
        assert!(cap >= 1, "buffer capacity must be at least 1 message");
    }
    match cfg.routing {
        Routing::Banyan | Routing::Butterfly => OmegaTopology::new(cfg.k, cfg.stages),
        Routing::RandomDigit { width_log_k } => {
            assert!(
                cfg.workload.q == 0.0,
                "random-digit routing is only equivalent for uniform traffic"
            );
            OmegaTopology::new(cfg.k, width_log_k)
        }
    }
}

/// Builds the precomputed router for `cfg` (caller has already validated
/// the configuration via [`validate_and_build_topology`]).
pub(crate) fn build_router(cfg: &NetworkConfig) -> Router {
    match cfg.routing {
        Routing::Banyan | Routing::RandomDigit { .. } => {
            Router::OmegaBase(validate_and_build_topology(cfg).switch_bases())
        }
        Routing::Butterfly => {
            let b = ButterflyTopology::new(cfg.k, cfg.stages);
            let entries = cfg.stages as u64 * b.ports() * cfg.k as u64;
            if entries <= MAX_ROUTE_TABLE_ENTRIES {
                Router::ButterflyTable(b.routing_table())
            } else {
                Router::ButterflyArith(b)
            }
        }
    }
}

/// The simulator itself. Construct with [`NetworkSim::new`], run to
/// completion with [`NetworkSim::run`].
pub struct NetworkSim {
    topo: OmegaTopology,
    cfg: NetworkConfig,
    ports: usize,
    k: usize,
    /// `queues[(stage-1) * ports + wire]`.
    queues: Vec<PortQueue>,
    /// Message slab; `free` holds ids available for reuse.
    slab: Vec<Slot>,
    free: Vec<u32>,
    router: Router,
    /// Per-stage bitset of wires whose queue is non-empty — the serve()
    /// work list. Stage `s` (0-based) owns words
    /// `active[s * active_words .. (s + 1) * active_words]`; wire `w`
    /// maps to bit `w % 64` of word `w / 64`. Iterating set bits low to
    /// high visits wires in ascending order with no sorting, which is
    /// exactly the order the determinism contract requires.
    active: Vec<u64>,
    /// Words per stage in `active`: `ports.div_ceil(64)`.
    active_words: usize,
    rng: SmallRng,
    now: u64,
    tracked_in_flight: u64,
    stats: NetworkStats,
    /// Message-trace capture (see [`banyan_obs::msgtrace`]); `None`
    /// outside [`NetworkSim::run_traced`]. The hot loop never checks
    /// this at runtime — tracing is a const-generic instantiation.
    trace: Option<TraceState>,
}

/// Per-replication message-trace state: the recording surface plus an
/// open-record map keyed by slab id (slab ids are recycled, so the map
/// is a dense vector with a [`NIL`] sentinel). Shared with the lane
/// engine, which keeps one per lane.
pub(crate) struct TraceState {
    pub(crate) rt: RepTrace,
    pub(crate) open: Vec<u32>,
}

impl TraceState {
    pub(crate) fn new(rt: RepTrace) -> Self {
        TraceState {
            rt,
            open: Vec::new(),
        }
    }

    /// Maps slab id `id` to open record `idx`.
    pub(crate) fn set_open(&mut self, id: u32, idx: u32) {
        let id = id as usize;
        if self.open.len() <= id {
            self.open.resize(id + 1, NIL);
        }
        self.open[id] = idx;
    }

    /// The open record for slab id `id`, if any.
    pub(crate) fn open_rec(&self, id: u32) -> Option<u32> {
        self.open
            .get(id as usize)
            .copied()
            .filter(|&idx| idx != NIL)
    }
}

impl NetworkSim {
    /// Builds a simulator for the given configuration.
    ///
    /// # Panics
    /// Panics on invalid workload parameters or `stages > MAX_STAGES`.
    pub fn new(cfg: NetworkConfig) -> Self {
        let topo = validate_and_build_topology(&cfg);
        let router = build_router(&cfg);
        let ports = topo.ports() as usize;
        let total_queues = ports * cfg.stages as usize;
        NetworkSim {
            topo,
            rng: SmallRng::seed_from_u64(cfg.seed),
            ports,
            k: cfg.k as usize,
            queues: vec![PortQueue::default(); total_queues],
            slab: Vec::new(),
            free: Vec::new(),
            router,
            active: vec![0u64; ports.div_ceil(64) * cfg.stages as usize],
            active_words: ports.div_ceil(64),
            now: 0,
            tracked_in_flight: 0,
            stats: NetworkStats::new(
                cfg.stages,
                cfg.collect_correlations,
                cfg.collect_stage_histograms,
            ),
            trace: None,
            cfg,
        }
    }

    /// The network topology.
    pub fn topology(&self) -> &OmegaTopology {
        &self.topo
    }

    /// Allocates a slab slot (reusing the freelist) and returns its id.
    #[inline]
    fn alloc_slot(
        &mut self,
        entered: u64,
        size: u32,
        tracked: bool,
        digits: [u32; MAX_STAGES],
    ) -> u32 {
        let slot = Slot {
            entered,
            next: NIL,
            size,
            tracked,
            digits,
            waits: [0; MAX_STAGES],
        };
        match self.free.pop() {
            Some(id) => {
                self.slab[id as usize] = slot;
                id
            }
            None => {
                debug_assert!(self.slab.len() < NIL as usize, "slab id overflow");
                self.slab.push(slot);
                (self.slab.len() - 1) as u32
            }
        }
    }

    /// Extracts the base-`k` destination digits, MSB first.
    #[inline]
    fn dest_digits(&self, dest: u64) -> [u32; MAX_STAGES] {
        let mut digits = [0u32; MAX_STAGES];
        let k = self.cfg.k as u64;
        let mut rem = dest;
        for d in digits[..self.cfg.stages as usize].iter_mut().rev() {
            *d = (rem % k) as u32;
            rem /= k;
        }
        digits
    }

    /// Injects this cycle's fresh arrivals into the first-stage queues.
    fn inject<const TRACE: bool>(&mut self, tracked_window: bool) {
        let ports = self.ports;
        let random_digit = matches!(self.cfg.routing, Routing::RandomDigit { .. });
        for input in 0..ports {
            if let Some((dest, size)) =
                self.cfg
                    .workload
                    .sample_arrival(&mut self.rng, input as u64, ports as u64)
            {
                // Routing happens before the capacity check, and in
                // random-digit mode draws from the RNG — both facts are
                // part of the determinism contract.
                let (digits, digit0) = if random_digit {
                    (
                        [0u32; MAX_STAGES],
                        self.rng.gen_range(0..self.cfg.k as u64) as usize,
                    )
                } else {
                    let digits = self.dest_digits(dest);
                    let d0 = digits[0] as usize;
                    (digits, d0)
                };
                let wire = self.router.next(0, ports, self.k, input, digit0);
                if let Some(cap) = self.cfg.buffer_capacity {
                    if self.queues[wire].len as usize >= cap {
                        self.stats.rejected_total += 1;
                        continue;
                    }
                }
                self.stats.injected_total += 1;
                if tracked_window {
                    self.stats.injected += 1;
                    self.tracked_in_flight += 1;
                }
                let id = self.alloc_slot(self.now, size, tracked_window, digits);
                if TRACE && tracked_window {
                    // Tracked-injection ordinal: the just-incremented
                    // count, identical in all three engines.
                    let ord = self.stats.injected - 1;
                    let tr = self.trace.as_mut().expect("trace state");
                    if tr.rt.sampled(ord) {
                        let idx = tr.rt.begin(ord, self.now);
                        if random_digit {
                            // Later digits are drawn per hop in serve().
                            tr.rt.push_digit(idx, digit0 as u8);
                        } else {
                            tr.rt.set_digits_from_dest(
                                idx,
                                dest,
                                u64::from(self.cfg.k),
                                self.cfg.stages as usize,
                            );
                        }
                        tr.set_open(id, idx as u32);
                    }
                }
                fifo_push_back(&mut self.queues, &mut self.slab, wire, id);
                self.active[wire / 64] |= 1u64 << (wire % 64);
            }
        }
    }

    /// Starts at most one service at every eligible output port.
    ///
    /// Processing stages in increasing order is safe: a message forwarded
    /// from stage `i` this cycle is stamped `entered = now + 1` and is
    /// therefore ineligible at stage `i + 1` until the next cycle.
    ///
    /// Only queues in the stage's **active bitset** (non-empty fifo) are
    /// visited, so a lightly loaded network costs O(messages + words)
    /// per cycle instead of O(ports × stages). Scanning each word's set
    /// bits from least to most significant visits wires in **ascending
    /// order for free**: same-cycle arrivals at a downstream queue must
    /// enqueue in ascending-wire order so the dynamics are bit-identical
    /// to a full ascending scan. (The tie-break is not cosmetic — a
    /// sticky arbitrary order measurably *decorrelates* consecutive-stage
    /// waits and would shift Table VI.) Forwards only ever set bits in
    /// the *next* stage's words and a wire's own bit is cleared only
    /// after its local word copy already consumed it, so iterating a
    /// snapshot of each word is race-free.
    fn serve<const TRACE: bool>(&mut self) {
        let stages = self.cfg.stages as usize;
        let ports = self.ports;
        let k = self.k;
        let now = self.now;
        let cap = self.cfg.buffer_capacity;
        let random_digit = matches!(self.cfg.routing, Routing::RandomDigit { .. });
        let words = self.active_words;
        for stage in 1..=stages {
            let base = (stage - 1) * words;
            for wi in 0..words {
                let mut word = self.active[base + wi];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    let wire = wi * 64 + bit;
                    let qidx = (stage - 1) * ports + wire;
                    let head = self.queues[qidx].head;
                    if head == NIL {
                        // A set bit always marks a non-empty queue; keep
                        // the clear as a cheap defensive prune anyway.
                        self.active[base + wi] &= !(1u64 << bit);
                        continue;
                    }
                    if self.queues[qidx].busy_until > now || self.slab[head as usize].entered > now
                    {
                        continue;
                    }
                    let hid = head as usize;
                    if stage < stages {
                        let digit = if random_digit {
                            self.rng.gen_range(0..self.cfg.k as u64) as usize
                        } else {
                            self.slab[hid].digits[stage] as usize
                        };
                        let next = self.router.next(stage, ports, k, wire, digit);
                        let nidx = stage * ports + next;
                        if let Some(cap) = cap {
                            // Store-and-forward blocking: the head stays
                            // queued (no pop ever happened) until the
                            // downstream buffer has room.
                            if self.queues[nidx].len as usize >= cap {
                                continue;
                            }
                        }
                        fifo_pop_front(&mut self.queues, &self.slab, qidx);
                        if TRACE && random_digit {
                            // Random-digit routes are discovered hop by
                            // hop; record the digit once its forward
                            // commits (a capacity-blocked head redraws
                            // next cycle, so draw time is too early).
                            let tr = self.trace.as_mut().expect("trace state");
                            if let Some(idx) = tr.open_rec(head) {
                                tr.rt.push_digit(idx as usize, digit as u8);
                            }
                        }
                        self.queues[qidx].busy_until = now + self.slab[hid].size as u64;
                        self.slab[hid].waits[stage - 1] = (now - self.slab[hid].entered) as u32;
                        self.slab[hid].entered = now + 1;
                        fifo_push_back(&mut self.queues, &mut self.slab, nidx, head);
                        self.active[stage * words + next / 64] |= 1u64 << (next % 64);
                    } else {
                        fifo_pop_front(&mut self.queues, &self.slab, qidx);
                        self.queues[qidx].busy_until = now + self.slab[hid].size as u64;
                        self.slab[hid].waits[stage - 1] = (now - self.slab[hid].entered) as u32;
                        self.deliver::<TRACE>(head);
                    }
                    if self.queues[qidx].head == NIL {
                        self.active[base + wi] &= !(1u64 << bit);
                    }
                }
            }
        }
    }

    /// Records statistics for a message whose final-stage service just
    /// started (all per-stage waits are known at that point) and returns
    /// its slab slot to the freelist.
    fn deliver<const TRACE: bool>(&mut self, id: u32) {
        self.stats.delivered_total += 1;
        self.free.push(id);
        let msg = &self.slab[id as usize];
        if !msg.tracked {
            return;
        }
        self.tracked_in_flight -= 1;
        self.stats.delivered += 1;
        let n = self.cfg.stages as usize;
        if TRACE {
            let tr = self.trace.as_mut().expect("trace state");
            if let Some(idx) = tr.open_rec(id) {
                tr.open[id as usize] = NIL;
                tr.rt.set_waits(idx as usize, &msg.waits[..n]);
            }
        }
        let mut total = 0u64;
        for (i, &w) in msg.waits[..n].iter().enumerate() {
            self.stats.stage_waits[i].push(w as f64);
            total += w as u64;
        }
        self.stats.total_wait.push(total as f64);
        self.stats.total_hist.record(total);
        if let Some(corr) = &mut self.stats.correlations {
            let mut obs = [0.0f64; MAX_STAGES];
            for (o, &w) in obs.iter_mut().zip(&msg.waits[..n]) {
                *o = w as f64;
            }
            corr.push(&obs[..n]);
        }
        if let Some(hists) = &mut self.stats.stage_hists {
            for (h, &w) in hists.iter_mut().zip(&msg.waits[..n]) {
                h.record(w as u64);
            }
        }
    }

    /// Advances one cycle.
    fn step<const TRACE: bool>(&mut self, tracked_window: bool) {
        self.inject::<TRACE>(tracked_window);
        self.serve::<TRACE>();
        self.now += 1;
    }

    /// Number of messages currently queued anywhere in the network.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(|q| q.len as usize).sum()
    }

    /// Runs the full warmup → measure → drain protocol and returns the
    /// statistics. The drain keeps injecting untracked background traffic
    /// so tracked stragglers finish under steady-state conditions; it is
    /// bounded by a generous safety factor and panics if tracked messages
    /// are still stuck after it (which would indicate an unstable load).
    pub fn run(self) -> NetworkStats {
        self.run_instrumented(&Telemetry::off())
    }

    /// Like [`NetworkSim::run`], but reporting into `tel`: phase spans
    /// (`net/warmup`, `net/measure`, `net/drain`), per-stage
    /// buffer-occupancy gauges sampled every
    /// [`banyan_obs::TelemetryConfig::sample_every`] cycles, the slab
    /// high-water mark, and the end-of-run conservation-ledger counters
    /// (`net.injected_total` = `net.delivered_total` +
    /// `net.in_flight_at_end`).
    ///
    /// Telemetry is strictly observational: it reads counters and queue
    /// lengths but never touches the RNG or the dynamics, so the
    /// returned statistics are **bit-identical** for any
    /// `TelemetryConfig`. With telemetry off this dispatches to the
    /// exact uninstrumented loop (one branch per run, nothing per
    /// cycle) — the `overhead_guard` bench in `banyan-bench` enforces
    /// that contract.
    pub fn run_instrumented(self, tel: &Telemetry) -> NetworkStats {
        if tel.active() {
            self.drive::<true, false>(tel).0
        } else {
            self.drive::<false, false>(tel).0
        }
    }

    /// Like [`NetworkSim::run_instrumented`], but additionally capturing
    /// sampled per-message lifecycle records into `rt` (see
    /// [`banyan_obs::msgtrace`]). Tracing is strictly observational: it
    /// never touches the RNG or the dynamics, so the returned statistics
    /// are bit-identical to an untraced run.
    pub fn run_traced(mut self, tel: &Telemetry, rt: RepTrace) -> (NetworkStats, RepTrace) {
        self.trace = Some(TraceState::new(rt));
        let (stats, trace) = if tel.active() {
            self.drive::<true, true>(tel)
        } else {
            self.drive::<false, true>(tel)
        };
        (stats, trace.expect("trace state").rt)
    }

    /// The run protocol, monomorphized over "is any telemetry active"
    /// and "is message tracing on": the `OBS = false, TRACE = false`
    /// instantiation compiles to the original telemetry-free loops.
    fn drive<const OBS: bool, const TRACE: bool>(
        mut self,
        tel: &Telemetry,
    ) -> (NetworkStats, Option<TraceState>) {
        // With metrics on, per-stage waiting-time pmfs are captured for
        // the distribution sketches. Flipping the existing `stage_hists`
        // option *before* the run reuses deliver()'s existing branch —
        // the OBS = false instantiation compiles to the same None check
        // it always had, and the dynamics (RNG, queues) are untouched,
        // so statistics stay bit-identical.
        if OBS && tel.metrics_enabled() && self.stats.stage_hists.is_none() {
            self.stats.stage_hists = Some(vec![IntHistogram::new(); self.cfg.stages as usize]);
        }
        let mut obs = if OBS {
            Some(ObsState::new(tel, self.cfg.stages as usize))
        } else {
            None
        };
        {
            let _span = tel.span("net/warmup");
            for _ in 0..self.cfg.warmup_cycles {
                self.step::<TRACE>(false);
                if OBS {
                    obs.as_mut().expect("telemetry state").tick(&self);
                }
            }
        }
        {
            let _span = tel.span("net/measure");
            for _ in 0..self.cfg.measure_cycles {
                self.step::<TRACE>(true);
                if OBS {
                    obs.as_mut().expect("telemetry state").tick(&self);
                }
            }
        }
        // Drain: generous bound — waiting times at ρ < 1 are short
        // compared to this.
        let max_drain = 200 * self.cfg.stages as u64 + self.cfg.measure_cycles + 100_000;
        let mut drained = 0u64;
        {
            let _span = tel.span("net/drain");
            while self.tracked_in_flight > 0 {
                self.step::<TRACE>(false);
                drained += 1;
                assert!(
                    drained <= max_drain,
                    "drain did not complete: {} tracked messages stuck (load too close to 1?)",
                    self.tracked_in_flight
                );
                if OBS {
                    obs.as_mut().expect("telemetry state").tick(&self);
                }
            }
        }
        self.stats.cycles = self.now;
        self.stats.in_flight_at_end = self.in_flight() as u64;
        if OBS {
            obs.as_mut().expect("telemetry state").flush_final(&self);
        }
        let trace = self.trace.take();
        (self.stats, trace)
    }
}

/// How often (in cycles) an instrumented run pushes progress deltas and
/// lets the heartbeat check its wall-clock interval. Coarse on purpose:
/// the per-cycle cost of *enabled* telemetry is two counter decrements.
pub(crate) const HEARTBEAT_CHECK_CYCLES: u64 = 2_048;

/// Per-run telemetry state for the instrumented drive loop: metric
/// handles resolved once at run start plus countdowns for the two
/// sampled activities (occupancy sampling, heartbeat checks).
struct ObsState<'t> {
    tel: &'t Telemetry,
    metrics: bool,
    sample_every: u64,
    until_sample: u64,
    until_heartbeat: u64,
    last_cycles: u64,
    last_injected: u64,
    last_delivered: u64,
    last_rejected: u64,
    /// Per-stage total-queued-messages gauges (empty when metrics off).
    stage_occupancy: Vec<Arc<Gauge>>,
    /// Distribution of per-queue occupancy across all sampled queues.
    /// **Worker-local** (owned, not a registry handle): samples land in
    /// unshared memory and are folded into the shared registry's
    /// `net.queue_occupancy` once, at flush, via [`Histogram::merge`] —
    /// concurrent replications never contend on registry atomics from
    /// the sampling path.
    occupancy_hist: Option<Histogram>,
}

impl<'t> ObsState<'t> {
    fn new(tel: &'t Telemetry, stages: usize) -> Self {
        let metrics = tel.metrics_enabled();
        let stage_occupancy = if metrics {
            (0..stages)
                .map(|s| {
                    tel.registry()
                        .gauge(&format!("net.occupancy.stage{:02}", s + 1))
                })
                .collect()
        } else {
            Vec::new()
        };
        let occupancy_hist = metrics.then(|| Histogram::new(POW2_BOUNDS));
        let sample_every = tel.config().sample_every.max(1);
        ObsState {
            tel,
            metrics,
            sample_every,
            until_sample: sample_every,
            until_heartbeat: HEARTBEAT_CHECK_CYCLES,
            last_cycles: 0,
            last_injected: 0,
            last_delivered: 0,
            last_rejected: 0,
            stage_occupancy,
            occupancy_hist,
        }
    }

    /// Per-cycle bookkeeping of an instrumented run (never called on the
    /// disabled path): two countdowns, everything else amortized.
    #[inline]
    fn tick(&mut self, sim: &NetworkSim) {
        if self.metrics {
            self.until_sample -= 1;
            if self.until_sample == 0 {
                self.until_sample = self.sample_every;
                self.sample_occupancy(sim);
            }
        }
        self.until_heartbeat -= 1;
        if self.until_heartbeat == 0 {
            self.until_heartbeat = HEARTBEAT_CHECK_CYCLES;
            self.push_progress(sim);
            self.tel.heartbeat_tick();
        }
    }

    /// Samples every queue's occupancy into the per-stage gauges (with
    /// high-water marks) and the global occupancy histogram.
    #[cold]
    fn sample_occupancy(&self, sim: &NetworkSim) {
        let hist = self.occupancy_hist.as_ref().expect("metrics enabled");
        for (s, gauge) in self.stage_occupancy.iter().enumerate() {
            let mut total = 0u64;
            for q in &sim.queues[s * sim.ports..(s + 1) * sim.ports] {
                total += u64::from(q.len);
                hist.record(u64::from(q.len));
            }
            gauge.set(total);
        }
    }

    /// Pushes counter deltas since the last push into the shared
    /// progress ledger.
    fn push_progress(&mut self, sim: &NetworkSim) {
        self.tel.progress().add_cycles(sim.now - self.last_cycles);
        self.tel.progress().add_messages(
            sim.stats.injected_total - self.last_injected,
            sim.stats.delivered_total - self.last_delivered,
            sim.stats.rejected_total - self.last_rejected,
        );
        self.last_cycles = sim.now;
        self.last_injected = sim.stats.injected_total;
        self.last_delivered = sim.stats.delivered_total;
        self.last_rejected = sim.stats.rejected_total;
    }

    /// End-of-run flush: final progress delta plus the conservation
    /// ledger, tracked-message counters, the slab high-water mark, the
    /// worker-local occupancy histogram, and the per-stage / total
    /// waiting-time distribution sketches.
    fn flush_final(&mut self, sim: &NetworkSim) {
        self.push_progress(sim);
        if !self.metrics {
            return;
        }
        let reg = self.tel.registry();
        let st = &sim.stats;
        reg.counter("net.injected_total").add(st.injected_total);
        reg.counter("net.delivered_total").add(st.delivered_total);
        reg.counter("net.rejected_total").add(st.rejected_total);
        reg.counter("net.in_flight_at_end").add(st.in_flight_at_end);
        reg.counter("net.cycles").add(st.cycles);
        reg.counter("net.tracked_injected").add(st.injected);
        reg.counter("net.tracked_delivered").add(st.delivered);
        // The slab never shrinks, so its length is the peak number of
        // messages simultaneously in flight over the whole run.
        reg.gauge("net.slab_high_water").set(sim.slab.len() as u64);
        reg.counter("net.runs").inc();
        if let Some(local) = &self.occupancy_hist {
            reg.histogram("net.queue_occupancy", POW2_BOUNDS)
                .merge(local);
        }
        // Fold the exact waiting-time pmfs into the shared sketch set.
        // Sketch merging is commutative integer addition, so concurrent
        // workers may flush in any order without changing the result.
        let sketches = self.tel.sketches();
        if let Some(hists) = &st.stage_hists {
            for (i, h) in hists.iter().enumerate() {
                sketches.merge_sketch(
                    &format!("net.wait.stage{:02}", i + 1),
                    &banyan_obs::DistSketch::from_dense_counts(h.counts()),
                );
            }
        }
        sketches.merge_sketch(
            "net.wait.total",
            &banyan_obs::DistSketch::from_dense_counts(st.total_hist.counts()),
        );
    }
}

/// Convenience: build and run in one call.
pub fn run_network(cfg: NetworkConfig) -> NetworkStats {
    NetworkSim::new(cfg).run()
}

/// Convenience: build and run one instrumented simulation, registering
/// its expected cycle count with the shared progress ledger first (so
/// heartbeat ETAs are meaningful).
pub fn run_network_instrumented(cfg: NetworkConfig, tel: &Telemetry) -> NetworkStats {
    if tel.active() {
        tel.progress()
            .add_expected_cycles(cfg.warmup_cycles + cfg.measure_cycles);
    }
    NetworkSim::new(cfg).run_instrumented(tel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::ServiceDist;

    fn quick_cfg(k: u32, stages: u32, p: f64, m: u32) -> NetworkConfig {
        NetworkConfig {
            warmup_cycles: 500,
            measure_cycles: 4_000,
            ..NetworkConfig::new(k, stages, Workload::uniform(p, m))
        }
    }

    #[test]
    fn zero_load_delivers_nothing() {
        let stats = run_network(quick_cfg(2, 3, 0.0, 1));
        assert_eq!(stats.injected, 0);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.injected_total, 0);
    }

    #[test]
    fn instrumented_run_is_bit_identical_to_plain_run() {
        use banyan_obs::TelemetryConfig;
        let base = run_network(quick_cfg(2, 4, 0.6, 2));
        for cfg in [
            TelemetryConfig::on(),
            TelemetryConfig::on().with_sample_every(17),
            TelemetryConfig::off().with_progress(),
        ] {
            let tel = Telemetry::new(cfg);
            let inst = run_network_instrumented(quick_cfg(2, 4, 0.6, 2), &tel);
            assert_eq!(inst.injected, base.injected);
            assert_eq!(inst.delivered, base.delivered);
            assert_eq!(inst.injected_total, base.injected_total);
            assert_eq!(inst.delivered_total, base.delivered_total);
            assert_eq!(inst.in_flight_at_end, base.in_flight_at_end);
            assert_eq!(inst.cycles, base.cycles);
            for (a, b) in inst.stage_waits.iter().zip(&base.stage_waits) {
                assert_eq!(a.mean().to_bits(), b.mean().to_bits());
                assert_eq!(a.variance().to_bits(), b.variance().to_bits());
            }
            assert_eq!(
                inst.total_wait.mean().to_bits(),
                base.total_wait.mean().to_bits()
            );
        }
    }

    #[test]
    fn instrumented_run_records_spans_counters_and_occupancy() {
        use banyan_obs::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::on().with_sample_every(32));
        let stats = run_network_instrumented(quick_cfg(2, 3, 0.5, 1), &tel);
        for phase in ["net/warmup", "net/measure", "net/drain"] {
            let st = tel
                .spans()
                .stat(phase)
                .unwrap_or_else(|| panic!("missing span {phase}"));
            assert_eq!(st.calls, 1, "{phase}");
        }
        let reg = tel.registry();
        assert_eq!(
            reg.counter_value("net.injected_total"),
            Some(stats.injected_total)
        );
        assert_eq!(
            reg.counter_value("net.delivered_total"),
            Some(stats.delivered_total)
        );
        assert_eq!(
            reg.counter_value("net.in_flight_at_end"),
            Some(stats.in_flight_at_end)
        );
        assert_eq!(reg.counter_value("net.cycles"), Some(stats.cycles));
        assert_eq!(reg.counter_value("net.runs"), Some(1));
        // The conservation ledger closes inside the registry too.
        assert_eq!(
            reg.counter_value("net.injected_total").unwrap(),
            reg.counter_value("net.delivered_total").unwrap()
                + reg.counter_value("net.in_flight_at_end").unwrap()
        );
        let snap = reg.snapshot_json();
        assert!(
            snap.contains("net.occupancy.stage01"),
            "occupancy gauges present"
        );
        assert!(
            snap.contains("net.queue_occupancy"),
            "occupancy histogram present"
        );
        assert!(snap.contains("net.slab_high_water"), "slab HWM present");
        // Progress ledger saw the whole run (warmup + measure + drain).
        let p = tel.progress().snapshot();
        assert_eq!(p.cycles, stats.cycles);
        assert_eq!(p.injected, stats.injected_total);
        assert_eq!(p.delivered, stats.delivered_total);
        assert_eq!(p.in_flight(), stats.in_flight_at_end);
    }

    #[test]
    fn instrumented_run_captures_exact_wait_sketches() {
        use banyan_obs::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::on());
        let stats = run_network_instrumented(quick_cfg(2, 4, 0.5, 1), &tel);
        let sketches = tel.sketches();
        // One sketch per stage plus the end-to-end total, even though
        // the config did not request stage histograms explicitly.
        for i in 1..=4 {
            let name = format!("net.wait.stage{i:02}");
            let sk = sketches
                .get(&name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(
                sk.count(),
                stats.delivered,
                "{name} pmf must sum to delivered"
            );
            let i0 = i - 1;
            assert!(
                (sk.mean() - stats.stage_waits[i0].mean()).abs() < 1e-9,
                "{name} mean {} vs E(w) {}",
                sk.mean(),
                stats.stage_waits[i0].mean()
            );
            assert!(
                (sk.variance() - stats.stage_waits[i0].variance()).abs() < 1e-9,
                "{name} variance {} vs Var(w) {}",
                sk.variance(),
                stats.stage_waits[i0].variance()
            );
        }
        let total = sketches.get("net.wait.total").expect("total sketch");
        assert_eq!(total.count(), stats.delivered);
        assert!((total.mean() - stats.total_wait.mean()).abs() < 1e-9);
        // The pmf itself is exact: probabilities sum to one.
        let mass: f64 = total.pmf_points().iter().map(|&(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-9);
        // The returned stats now carry the per-stage histograms too.
        assert!(stats.stage_hists.is_some());
    }

    #[test]
    fn disabled_telemetry_records_no_sketches() {
        let tel = Telemetry::off();
        let stats = NetworkSim::new(quick_cfg(2, 3, 0.5, 1)).run_instrumented(&tel);
        assert!(tel.sketches().is_empty());
        assert!(
            stats.stage_hists.is_none(),
            "off path must not allocate stage hists"
        );
    }

    #[test]
    fn all_tracked_messages_are_delivered() {
        let stats = run_network(quick_cfg(2, 4, 0.5, 1));
        assert!(stats.injected > 0);
        assert_eq!(stats.injected, stats.delivered);
        assert_eq!(stats.total_wait.count(), stats.delivered);
        assert_eq!(stats.total_hist.total(), stats.delivered);
    }

    #[test]
    fn light_load_waits_are_tiny() {
        let stats = run_network(quick_cfg(2, 3, 0.01, 1));
        assert!(
            stats.total_wait.mean() < 0.05,
            "{}",
            stats.total_wait.mean()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_network(quick_cfg(2, 3, 0.5, 1));
        let b = run_network(quick_cfg(2, 3, 0.5, 1));
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.total_wait.mean(), b.total_wait.mean());
        let mut c = quick_cfg(2, 3, 0.5, 1);
        c.seed = 999;
        let c = run_network(c);
        assert_ne!(a.injected, c.injected);
    }

    #[test]
    fn stage1_matches_exact_analysis() {
        // k = 2, p = 0.5, m = 1: w₁ = 0.25, v₁ = 0.25 exactly (Eq. 6–7).
        let mut cfg = quick_cfg(2, 3, 0.5, 1);
        cfg.measure_cycles = 30_000;
        let stats = run_network(cfg);
        let w1 = stats.stage_waits[0].mean();
        let v1 = stats.stage_waits[0].variance();
        assert!((w1 - 0.25).abs() < 0.01, "w1 = {w1}");
        assert!((v1 - 0.25).abs() < 0.02, "v1 = {v1}");
    }

    #[test]
    fn stage1_matches_exact_analysis_m4() {
        // k = 2, p = 0.125, m = 4 (ρ = 0.5): Eq. 8 gives
        // w₁ = 0.5·(4 − 0.5)/(2·0.5) = 1.75.
        let mut cfg = quick_cfg(2, 3, 0.125, 4);
        cfg.measure_cycles = 60_000;
        let stats = run_network(cfg);
        let w1 = stats.stage_waits[0].mean();
        assert!((w1 - 1.75).abs() < 0.08, "w1 = {w1}");
    }

    #[test]
    fn later_stage_waits_exceed_first_stage() {
        // §IV: w_i increases with i toward w_∞ > w₁ (unit service).
        let mut cfg = quick_cfg(2, 6, 0.5, 1);
        cfg.measure_cycles = 30_000;
        let stats = run_network(cfg);
        let w1 = stats.stage_waits[0].mean();
        let w_deep = stats.stage_waits[4].mean();
        assert!(w_deep > w1 * 1.05, "w1 = {w1}, w5 = {w_deep}");
        // ...and approaches ~1.2·w₁ (r(0.5) for k = 2).
        assert!(w_deep < w1 * 1.4);
    }

    #[test]
    fn interior_stage_waits_drop_for_long_messages() {
        // §IV-B: for m ≥ 2 the first stage is the *most* congested —
        // interior sources are spaced by the service time.
        let mut cfg = quick_cfg(2, 5, 0.125, 4);
        cfg.measure_cycles = 40_000;
        let stats = run_network(cfg);
        let w1 = stats.stage_waits[0].mean();
        let w4 = stats.stage_waits[3].mean();
        assert!(w4 < w1, "w1 = {w1}, w4 = {w4}");
    }

    #[test]
    fn correlations_are_small_and_positive_between_adjacent_stages() {
        let mut cfg = quick_cfg(2, 6, 0.5, 1);
        cfg.collect_correlations = true;
        cfg.measure_cycles = 30_000;
        let stats = run_network(cfg);
        let corr = stats.correlations.as_ref().unwrap();
        // Table VI: adjacent ≈ 0.12, decaying with distance.
        let c12 = corr.correlation(2, 3);
        assert!(c12 > 0.05 && c12 < 0.25, "adjacent corr = {c12}");
        let c14 = corr.correlation(2, 5);
        assert!(c14 < c12, "corr should decay with stage distance");
    }

    #[test]
    fn merge_combines_replications() {
        let a = run_network(quick_cfg(2, 3, 0.5, 1));
        let mut b_cfg = quick_cfg(2, 3, 0.5, 1);
        b_cfg.seed = 42;
        let b = run_network(b_cfg);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.delivered, a.delivered + b.delivered);
        assert_eq!(
            merged.total_hist.total(),
            a.total_hist.total() + b.total_hist.total()
        );
        assert_eq!(
            merged.delivered_total,
            a.delivered_total + b.delivered_total
        );
        assert_eq!(
            merged.in_flight_at_end,
            a.in_flight_at_end + b.in_flight_at_end
        );
    }

    #[test]
    fn geometric_service_network_runs() {
        let wl = Workload {
            p: 0.2,
            q: 0.0,
            service: ServiceDist::Geometric(0.5),
        };
        let mut cfg = NetworkConfig::new(2, 3, wl);
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 4_000;
        let stats = run_network(cfg);
        assert_eq!(stats.injected, stats.delivered);
        assert!(stats.total_wait.mean() > 0.0);
    }

    #[test]
    fn hotspot_traffic_reduces_waiting() {
        let mut uni = quick_cfg(2, 4, 0.5, 1);
        uni.measure_cycles = 20_000;
        let u = run_network(uni);
        let mut hot = NetworkConfig::new(2, 4, Workload::hotspot(0.5, 0.8));
        hot.warmup_cycles = 500;
        hot.measure_cycles = 20_000;
        let h = run_network(hot);
        assert!(
            h.total_wait.mean() < u.total_wait.mean(),
            "hotspot {} vs uniform {}",
            h.total_wait.mean(),
            u.total_wait.mean()
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_stages_rejected() {
        NetworkSim::new(NetworkConfig::new(2, 17, Workload::uniform(0.1, 1)));
    }

    #[test]
    fn infinite_buffers_never_reject() {
        let stats = run_network(quick_cfg(2, 4, 0.8, 1));
        assert_eq!(stats.rejected_total, 0);
    }

    #[test]
    fn message_conservation_ledger_closes() {
        // injected_total = delivered_total + in_flight_at_end, with and
        // without finite buffers (rejections are counted separately and
        // never enter injected_total).
        for cap in [None, Some(16), Some(2), Some(1)] {
            let mut cfg = quick_cfg(2, 4, 0.7, 1);
            cfg.buffer_capacity = cap;
            let stats = run_network(cfg);
            assert_eq!(
                stats.injected_total,
                stats.delivered_total + stats.in_flight_at_end,
                "cap {cap:?}"
            );
            assert!(stats.delivered_total >= stats.delivered);
            if cap.is_none() {
                assert_eq!(stats.rejected_total, 0);
            }
        }
    }

    #[test]
    fn large_finite_buffers_match_infinite_at_moderate_load() {
        // §I: "for light-to-moderate loads, moderate-sized buffers provide
        // approximately the same performance as infinite buffers."
        let mut inf = quick_cfg(2, 5, 0.5, 1);
        inf.measure_cycles = 20_000;
        let a = run_network(inf);
        let mut fin = quick_cfg(2, 5, 0.5, 1);
        fin.measure_cycles = 20_000;
        fin.buffer_capacity = Some(16);
        let b = run_network(fin);
        assert_eq!(
            b.rejected_total, 0,
            "capacity 16 should never fill at p=0.5"
        );
        assert!(
            (a.total_wait.mean() - b.total_wait.mean()).abs() < 0.03,
            "{} vs {}",
            a.total_wait.mean(),
            b.total_wait.mean()
        );
    }

    #[test]
    fn tiny_buffers_reject_and_cap_waits() {
        let mut cfg = quick_cfg(2, 4, 0.9, 1);
        cfg.measure_cycles = 10_000;
        cfg.buffer_capacity = Some(1);
        let stats = run_network(cfg);
        assert!(stats.rejected_total > 0, "capacity 1 at p=0.9 must reject");
        assert_eq!(
            stats.injected, stats.delivered,
            "accepted messages still conserved"
        );
        // Offered load far exceeds what one buffer slot per port can
        // carry: most injections bounce, and accepted messages see
        // moderate (blocking-limited) waits rather than the enormous
        // queues an infinite buffer would build at p = 0.9.
        let accept =
            stats.injected_total as f64 / (stats.injected_total + stats.rejected_total) as f64;
        assert!(accept < 0.6, "accept rate {accept}");
        assert!(
            stats.total_wait.mean() < 10.0,
            "{}",
            stats.total_wait.mean()
        );
    }

    #[test]
    fn finite_buffers_are_conservative_under_all_loads() {
        for &p in &[0.3, 0.6, 0.9] {
            let mut cfg = quick_cfg(2, 3, p, 1);
            cfg.measure_cycles = 5_000;
            cfg.buffer_capacity = Some(2);
            let stats = run_network(cfg);
            assert_eq!(stats.injected, stats.delivered, "p={p}");
        }
    }

    /// White-box store-and-forward regression: a head message blocked by
    /// a full downstream buffer must keep accumulating waiting cycles,
    /// must not be reordered past its queue-mates, and the stalled cycles
    /// must show up in its recorded per-stage wait.
    #[test]
    fn blocked_head_keeps_waiting_and_fifo_order() {
        let mut cfg = quick_cfg(2, 2, 0.0, 1);
        cfg.buffer_capacity = Some(1);
        let mut sim = NetworkSim::new(cfg);

        // Hand-build the scenario at cycle 0. Wire layout (k=2, n=2,
        // omega): a stage-1 message on output wire 0 with destination
        // digit 0 for stage 2 forwards to stage-2 wire 0.
        let blocker = sim.alloc_slot(0, 1, true, sim.dest_digits(0));
        let ports = sim.ports;
        fifo_push_back(&mut sim.queues, &mut sim.slab, ports, blocker); // stage-2 wire 0
        sim.queues[ports].busy_until = 3; // server busy through cycle 2
        sim.active[sim.active_words] |= 1; // stage-2 wire 0 active

        let first = sim.alloc_slot(0, 1, true, sim.dest_digits(0));
        let second = sim.alloc_slot(0, 1, true, sim.dest_digits(0));
        fifo_push_back(&mut sim.queues, &mut sim.slab, 0, first); // stage-1 wire 0
        fifo_push_back(&mut sim.queues, &mut sim.slab, 0, second);
        sim.active[0] |= 1; // stage-1 wire 0 active
        sim.tracked_in_flight = 3;
        sim.stats.injected = 3;
        sim.stats.injected_total = 3;

        // Cycles 0–2: downstream full (capacity 1, blocker queued) or
        // busy — the head must stay put, in order, unserved.
        for cycle in 0..3u64 {
            sim.serve::<false>();
            sim.now += 1;
            assert_eq!(sim.queues[0].head, first, "cycle {cycle}: head reordered");
            assert_eq!(sim.queues[0].len, 2, "cycle {cycle}: queue drained early");
        }
        // Cycle 3: blocker's server freed; blocker (stage 2 = last
        // stage) departs, and `first` forwards in the same cycle (stage
        // order runs 1 then 2, so stage 1 sees the still-full buffer) —
        // no: stage 1 is served *before* stage 2, so `first` is still
        // blocked this cycle and forwards on cycle 4.
        sim.serve::<false>();
        sim.now += 1;
        assert_eq!(sim.queues[0].head, first);
        assert_eq!(sim.stats.delivered, 1, "blocker delivered");
        // Cycle 4: downstream now empty; `first` forwards with its full
        // stage-1 wait on record. It waited cycles 0..4 ⇒ wait = 4.
        sim.serve::<false>();
        sim.now += 1;
        assert_eq!(sim.queues[0].head, second, "FIFO order violated");
        assert_eq!(sim.slab[first as usize].waits[0], 4, "blocked cycles lost");
        // Cycle 5: stage 1 runs before stage 2, so `second` still sees a
        // full downstream buffer and stays blocked; `first` is delivered
        // at stage 2 (entered cycle 5, served cycle 5 ⇒ stage-2 wait 0).
        sim.serve::<false>();
        sim.now += 1;
        assert_eq!(sim.queues[0].head, second, "second served early");
        assert_eq!(sim.stats.delivered, 2);
        assert_eq!(sim.slab[first as usize].waits[1], 0);
        // Cycle 6: downstream finally empty; `second` forwards having
        // waited cycles 0..6 ⇒ wait = 6, all blocked cycles on record.
        sim.serve::<false>();
        sim.now += 1;
        assert_eq!(sim.slab[second as usize].waits[0], 6);
    }

    #[test]
    fn stage_histograms_collected_and_consistent() {
        let mut cfg = quick_cfg(2, 5, 0.5, 1);
        cfg.collect_stage_histograms = true;
        cfg.measure_cycles = 20_000;
        let stats = run_network(cfg);
        let hists = stats.stage_hists.as_ref().unwrap();
        assert_eq!(hists.len(), 5);
        for (i, h) in hists.iter().enumerate() {
            assert_eq!(h.total(), stats.delivered);
            assert!(
                (h.mean() - stats.stage_waits[i].mean()).abs() < 1e-9,
                "stage {i} histogram/accumulator mismatch"
            );
        }
    }

    #[test]
    fn stage_distributions_have_similar_shape() {
        // §V: "The distribution of waiting times seems to be about the
        // same for all stages." Compare stage-1 and deep-stage pmfs by
        // total variation (they differ slightly — deep stages wait ~20%
        // longer at p = 0.5 — but the shapes are close).
        use banyan_stats::distance::total_variation;
        let mut cfg = quick_cfg(2, 8, 0.5, 1);
        cfg.collect_stage_histograms = true;
        cfg.measure_cycles = 30_000;
        let stats = run_network(cfg);
        let hists = stats.stage_hists.as_ref().unwrap();
        let first = &hists[0];
        let deep = &hists[7];
        let tv = total_variation(deep, |v| first.pmf_at(v));
        assert!(tv < 0.06, "stage-1 vs stage-8 TV = {tv}");
        // And deep stages resemble each other even more closely.
        let tv78 = total_variation(&hists[7], |v| hists[6].pmf_at(v));
        assert!(tv78 < 0.02, "stage-7 vs stage-8 TV = {tv78}");
    }

    #[test]
    fn butterfly_statistically_matches_omega() {
        // Two wirings of the same banyan family: identical per-stage
        // statistics under uniform traffic.
        let mut omega = quick_cfg(2, 6, 0.5, 1);
        omega.measure_cycles = 20_000;
        let a = run_network(omega);
        let mut bfly = quick_cfg(2, 6, 0.5, 1);
        bfly.measure_cycles = 20_000;
        bfly.routing = Routing::Butterfly;
        let b = run_network(bfly);
        for i in 0..6 {
            let wa = a.stage_waits[i].mean();
            let wb = b.stage_waits[i].mean();
            assert!(
                (wa - wb).abs() < 0.02,
                "stage {i}: omega {wa} vs butterfly {wb}"
            );
        }
        assert!((a.total_wait.mean() - b.total_wait.mean()).abs() < 0.05);
        assert_eq!(b.injected, b.delivered);
    }

    #[test]
    fn butterfly_table_and_arithmetic_agree() {
        // The tabulated router and the arithmetic fallback must produce
        // bit-identical dynamics (the fallback only triggers for
        // enormous networks, so force both paths here).
        let mut cfg = quick_cfg(2, 5, 0.5, 1);
        cfg.routing = Routing::Butterfly;
        let tabled = run_network(cfg.clone());
        let mut sim = NetworkSim::new(cfg);
        sim.router = Router::ButterflyArith(ButterflyTopology::new(2, 5));
        let arith = sim.run();
        assert_eq!(tabled.injected, arith.injected);
        assert_eq!(tabled.total_wait.mean(), arith.total_wait.mean());
        assert_eq!(tabled.total_wait.variance(), arith.total_wait.variance());
        assert_eq!(
            tabled.stage_waits[2].mean().to_bits(),
            arith.stage_waits[2].mean().to_bits()
        );
    }

    #[test]
    fn random_digit_mode_statistically_matches_banyan() {
        // Uniform traffic: a full banyan and a fixed-width cylinder with
        // i.i.d. random routing digits must produce the same per-stage
        // waiting statistics.
        let mut banyan = quick_cfg(2, 6, 0.5, 1);
        banyan.measure_cycles = 20_000;
        let b = run_network(banyan);
        let mut cyl = quick_cfg(2, 6, 0.5, 1).with_random_digit_width(6);
        cyl.measure_cycles = 20_000;
        let c = run_network(cyl);
        for i in 0..6 {
            let wb = b.stage_waits[i].mean();
            let wc = c.stage_waits[i].mean();
            assert!(
                (wb - wc).abs() < 0.02,
                "stage {i}: banyan {wb} vs cylinder {wc}"
            );
        }
        assert!((b.total_wait.variance() - c.total_wait.variance()).abs() < 0.2);
    }

    #[test]
    fn random_digit_mode_allows_wide_switches_with_narrow_network() {
        // k = 8 with 4 stages on only 8² = 64 wires (a real banyan would
        // need 4096 ports).
        let cfg = NetworkConfig {
            warmup_cycles: 500,
            measure_cycles: 8_000,
            ..NetworkConfig::new(8, 4, Workload::uniform(0.5, 1)).with_random_digit_width(2)
        };
        let stats = run_network(cfg);
        assert_eq!(stats.injected, stats.delivered);
        // Eq. 6 for k = 8, p = 0.5: w₁ = (7/8)·0.5/1 = 0.4375.
        assert!((stats.stage_waits[0].mean() - 0.4375).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "uniform traffic")]
    fn random_digit_rejects_hotspot() {
        let cfg = NetworkConfig::new(2, 4, Workload::hotspot(0.5, 0.3)).with_random_digit_width(4);
        NetworkSim::new(cfg);
    }
}
