//! Clocked simulation of the full multistage banyan network.
//!
//! Implements exactly the model the paper analyzes (§I–II):
//!
//! * output-queued `k × k` switches with **infinite FIFO buffers**,
//! * one service start per output port per cycle; a size-`m` message
//!   occupies the port for `m` consecutive cycles,
//! * arriving messages never interfere with departing ones; a queue can
//!   accept any number of messages in one cycle,
//! * **cut-through** forwarding: a message's head packet reaches the next
//!   stage one cycle after its service starts, so the network service
//!   time of an unobstructed message is `n + m − 1` cycles,
//! * waiting time at a stage = cycles between the head packet's arrival
//!   at the queue and the start of service (0 if served immediately);
//!   service itself is *not* included — a message can have total waiting
//!   time zero.
//!
//! The measurement protocol is warmup → measure → drain: statistics come
//! only from messages injected during the measure window, and injection
//! continues (untracked) during the drain so late tracked messages still
//! experience steady-state congestion.

use crate::butterfly::ButterflyTopology;
use crate::topology::OmegaTopology;
use crate::traffic::Workload;
use banyan_stats::{CorrelationMatrix, IntHistogram, OnlineStats};
use banyan_prng::rngs::SmallRng;
use banyan_prng::SeedableRng;
use std::collections::VecDeque;

/// Hard cap on stages (fixed-size per-message wait record).
pub const MAX_STAGES: usize = 16;

/// How messages choose switch outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Routing {
    /// Real banyan destination-tag routing on a full `k^n`-port omega
    /// network. Required for nonuniform (hot-spot) traffic.
    Banyan,
    /// Destination-tag routing on a `k^n`-port butterfly (indirect
    /// `k`-cube) — a different wiring of the same banyan family;
    /// statistically identical under uniform traffic (verified in
    /// tests).
    Butterfly,
    /// Fixed-width "cylinder": every stage has `k^width_log_k` wires and
    /// each message picks an independent uniform routing digit per stage.
    ///
    /// Under **uniform** traffic this is statistically identical to the
    /// full banyan (a uniform destination's digits are i.i.d. uniform),
    /// but the width no longer grows as `k^n` — this is how the `k = 8`,
    /// 8-stage configuration of Table II stays simulable (a full banyan
    /// would need 16.7M ports). The equivalence is verified in tests.
    RandomDigit {
        /// Stage width as a power of `k` (wires per stage =
        /// `k^width_log_k`).
        width_log_k: u32,
    },
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Switch arity `k` (a banyan network has `k^stages` ports).
    pub k: u32,
    /// Number of stages `n`.
    pub stages: u32,
    /// Routing/width mode.
    pub routing: Routing,
    /// Output-buffer capacity in messages (`None` = infinite, the
    /// paper's idealization). With finite buffers the model is
    /// store-and-forward blocking: a server does not start forwarding
    /// while the downstream queue is full, and an injection into a full
    /// first-stage queue is rejected (counted, not retried). This is the
    /// §VI "finite buffer delays" extension.
    pub buffer_capacity: Option<usize>,
    /// Offered traffic.
    pub workload: Workload,
    /// Cycles simulated before measurement starts.
    pub warmup_cycles: u64,
    /// Cycles during which injected messages are tracked.
    pub measure_cycles: u64,
    /// Collect the full cross-stage correlation matrix (Table VI). Off by
    /// default: it costs `O(n²)` updates per delivered message.
    pub collect_correlations: bool,
    /// Collect a full waiting-time histogram per stage (used to check
    /// §V's "the distribution of waiting times seems to be about the
    /// same for all stages"). Off by default.
    pub collect_stage_histograms: bool,
    /// RNG seed (simulations are fully deterministic given the seed).
    pub seed: u64,
}

impl NetworkConfig {
    /// A reasonable default protocol for the given topology and workload.
    pub fn new(k: u32, stages: u32, workload: Workload) -> Self {
        NetworkConfig {
            k,
            stages,
            routing: Routing::Banyan,
            buffer_capacity: None,
            workload,
            warmup_cycles: 2_000,
            measure_cycles: 20_000,
            collect_correlations: false,
            collect_stage_histograms: false,
            seed: 0x0BAD_5EED,
        }
    }

    /// Switches to cylinder (random-digit) mode with `k^width_log_k`
    /// wires per stage. Only valid for uniform traffic (`q = 0`).
    pub fn with_random_digit_width(mut self, width_log_k: u32) -> Self {
        self.routing = Routing::RandomDigit { width_log_k };
        self
    }
}

/// Aggregated simulation output (all statistics refer to *tracked*
/// messages — those injected inside the measure window — except
/// `injected_total`).
#[derive(Clone, Debug)]
pub struct NetworkStats {
    /// Per-stage waiting-time statistics, index 0 = stage 1.
    pub stage_waits: Vec<OnlineStats>,
    /// Total (summed over stages) waiting time per message.
    pub total_wait: OnlineStats,
    /// Histogram of total waiting times (the Figs. 3–8 raw data).
    pub total_hist: IntHistogram,
    /// Cross-stage waiting-time correlations (Table VI), if collected.
    pub correlations: Option<CorrelationMatrix>,
    /// Per-stage waiting-time histograms, if collected.
    pub stage_hists: Option<Vec<IntHistogram>>,
    /// Tracked messages injected.
    pub injected: u64,
    /// Tracked messages delivered (equal to `injected` after a full run).
    pub delivered: u64,
    /// All messages injected, tracked or not.
    pub injected_total: u64,
    /// Injection attempts rejected because the first-stage buffer was
    /// full (always 0 with infinite buffers), tracked or not.
    pub rejected_total: u64,
    /// Cycles actually simulated (including warmup and drain).
    pub cycles: u64,
}

impl NetworkStats {
    pub(crate) fn new(
        stages: u32,
        collect_correlations: bool,
        collect_stage_histograms: bool,
    ) -> Self {
        NetworkStats {
            stage_waits: vec![OnlineStats::new(); stages as usize],
            total_wait: OnlineStats::new(),
            total_hist: IntHistogram::new(),
            correlations: collect_correlations.then(|| CorrelationMatrix::new(stages as usize)),
            stage_hists: collect_stage_histograms
                .then(|| vec![IntHistogram::new(); stages as usize]),
            injected: 0,
            delivered: 0,
            injected_total: 0,
            rejected_total: 0,
            cycles: 0,
        }
    }

    /// Merges statistics from an independent replication.
    pub fn merge(&mut self, other: &NetworkStats) {
        assert_eq!(
            self.stage_waits.len(),
            other.stage_waits.len(),
            "stage count mismatch"
        );
        for (a, b) in self.stage_waits.iter_mut().zip(&other.stage_waits) {
            a.merge(b);
        }
        self.total_wait.merge(&other.total_wait);
        self.total_hist.merge(&other.total_hist);
        match (&mut self.correlations, &other.correlations) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("correlation collection mismatch in merge"),
        }
        match (&mut self.stage_hists, &other.stage_hists) {
            (Some(a), Some(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge(y);
                }
            }
            (None, None) => {}
            _ => panic!("stage-histogram collection mismatch in merge"),
        }
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.injected_total += other.injected_total;
        self.rejected_total += other.rejected_total;
        self.cycles += other.cycles;
    }
}

#[derive(Clone, Debug)]
struct Message {
    dest: u64,
    size: u32,
    /// Cycle at which the head packet arrived at the current queue.
    entered: u64,
    tracked: bool,
    waits: [u32; MAX_STAGES],
}

#[derive(Clone, Debug, Default)]
struct PortQueue {
    fifo: VecDeque<Message>,
    /// Earliest cycle at which the server may start a new service.
    busy_until: u64,
}

/// The simulator itself. Construct with [`NetworkSim::new`], run to
/// completion with [`NetworkSim::run`].
pub struct NetworkSim {
    topo: OmegaTopology,
    butterfly: Option<ButterflyTopology>,
    cfg: NetworkConfig,
    /// `queues[(stage-1) * ports + wire]`.
    queues: Vec<PortQueue>,
    /// Per-stage list of wires whose queue may be non-empty (lazily
    /// pruned) — the serve() work list.
    active: Vec<Vec<u64>>,
    /// Membership flags for `active`, indexed like `queues`.
    in_active: Vec<bool>,
    rng: SmallRng,
    now: u64,
    tracked_in_flight: u64,
    stats: NetworkStats,
}

impl NetworkSim {
    /// Builds a simulator for the given configuration.
    ///
    /// # Panics
    /// Panics on invalid workload parameters or `stages > MAX_STAGES`.
    pub fn new(cfg: NetworkConfig) -> Self {
        cfg.workload.validate();
        assert!(
            (cfg.stages as usize) <= MAX_STAGES,
            "at most {MAX_STAGES} stages supported"
        );
        if let Some(cap) = cfg.buffer_capacity {
            assert!(cap >= 1, "buffer capacity must be at least 1 message");
        }
        let butterfly = matches!(cfg.routing, Routing::Butterfly)
            .then(|| ButterflyTopology::new(cfg.k, cfg.stages));
        let topo = match cfg.routing {
            Routing::Banyan | Routing::Butterfly => OmegaTopology::new(cfg.k, cfg.stages),
            Routing::RandomDigit { width_log_k } => {
                assert!(
                    cfg.workload.q == 0.0,
                    "random-digit routing is only equivalent for uniform traffic"
                );
                OmegaTopology::new(cfg.k, width_log_k)
            }
        };
        let total_queues = (topo.ports() * cfg.stages as u64) as usize;
        NetworkSim {
            topo,
            butterfly,
            rng: SmallRng::seed_from_u64(cfg.seed),
            queues: vec![PortQueue::default(); total_queues],
            active: vec![Vec::new(); cfg.stages as usize],
            in_active: vec![false; total_queues],
            now: 0,
            tracked_in_flight: 0,
            stats: NetworkStats::new(
                cfg.stages,
                cfg.collect_correlations,
                cfg.collect_stage_histograms,
            ),
            cfg,
        }
    }

    /// The network topology.
    pub fn topology(&self) -> &OmegaTopology {
        &self.topo
    }

    #[inline]
    fn queue_index(&self, stage: u32, wire: u64) -> usize {
        ((stage as u64 - 1) * self.topo.ports() + wire) as usize
    }

    /// Output wire taken by a message on `wire` entering `stage`.
    #[inline]
    fn route(&mut self, stage: u32, wire: u64, dest: u64) -> u64 {
        match self.cfg.routing {
            Routing::Banyan => self.topo.next_wire(stage, wire, dest),
            Routing::Butterfly => self
                .butterfly
                .as_ref()
                .expect("butterfly topology constructed in new()")
                .next_wire(stage, wire, dest),
            Routing::RandomDigit { .. } => {
                use banyan_prng::Rng;
                let shuffled = self.topo.shuffle(wire);
                let base = shuffled - shuffled % self.cfg.k as u64;
                base + self.rng.gen_range(0..self.cfg.k as u64)
            }
        }
    }

    /// Injects this cycle's fresh arrivals into the first-stage queues.
    fn inject(&mut self, tracked_window: bool) {
        let ports = self.topo.ports();
        for input in 0..ports {
            if let Some((dest, size)) =
                self.cfg
                    .workload
                    .sample_arrival(&mut self.rng, input, ports)
            {
                let wire = self.route(1, input, dest);
                let idx = self.queue_index(1, wire);
                if let Some(cap) = self.cfg.buffer_capacity {
                    if self.queues[idx].fifo.len() >= cap {
                        self.stats.rejected_total += 1;
                        continue;
                    }
                }
                self.stats.injected_total += 1;
                if tracked_window {
                    self.stats.injected += 1;
                    self.tracked_in_flight += 1;
                }
                self.queues[idx].fifo.push_back(Message {
                    dest,
                    size,
                    entered: self.now,
                    tracked: tracked_window,
                    waits: [0; MAX_STAGES],
                });
                self.activate(1, wire);
            }
        }
    }

    /// Starts at most one service at every eligible output port.
    ///
    /// Processing stages in increasing order is safe: a message forwarded
    /// from stage `i` this cycle is stamped `entered = now + 1` and is
    /// therefore ineligible at stage `i + 1` until the next cycle.
    ///
    /// Only queues on the stage's **active list** (non-empty fifo, lazily
    /// pruned) are visited, so a lightly loaded network costs
    /// O(messages) per cycle instead of O(ports × stages). The list is
    /// taken out before iteration so forwards can grow the *next* stage's
    /// list, and is **sorted by wire** first: same-cycle arrivals at a
    /// downstream queue must enqueue in ascending-wire order so the
    /// dynamics are bit-identical to a full ascending scan. (The
    /// tie-break is not cosmetic — a sticky arbitrary order measurably
    /// *decorrelates* consecutive-stage waits and would shift Table VI.)
    fn serve(&mut self) {
        let ports = self.topo.ports();
        let stages = self.cfg.stages;
        for stage in 1..=stages {
            let mut list = std::mem::take(&mut self.active[stage as usize - 1]);
            list.sort_unstable();
            let mut retained = Vec::with_capacity(list.len());
            for wire in list {
                let idx = self.queue_index(stage, wire);
                let q = &mut self.queues[idx];
                if q.fifo.is_empty() {
                    // Lazily drop emptied queues from the active list.
                    self.in_active[idx] = false;
                    continue;
                }
                if q.busy_until > self.now {
                    retained.push(wire);
                    continue;
                }
                let eligible = matches!(q.fifo.front(), Some(head) if head.entered <= self.now);
                if !eligible {
                    retained.push(wire);
                    continue;
                }
                let mut msg = q.fifo.pop_front().expect("checked non-empty");
                if stage < stages {
                    let next = self.route(stage + 1, wire, msg.dest);
                    let nidx = self.queue_index(stage + 1, next);
                    if let Some(cap) = self.cfg.buffer_capacity {
                        // Store-and-forward blocking: hold the message at
                        // the head until the downstream buffer has room.
                        if self.queues[nidx].fifo.len() >= cap {
                            self.queues[idx].fifo.push_front(msg);
                            retained.push(wire);
                            continue;
                        }
                    }
                    let q = &mut self.queues[idx];
                    q.busy_until = self.now + msg.size as u64;
                    msg.waits[stage as usize - 1] = (self.now - msg.entered) as u32;
                    msg.entered = self.now + 1;
                    self.queues[nidx].fifo.push_back(msg);
                    self.activate(stage + 1, next);
                } else {
                    q.busy_until = self.now + msg.size as u64;
                    msg.waits[stage as usize - 1] = (self.now - msg.entered) as u32;
                    self.deliver(msg);
                }
                let idx = self.queue_index(stage, wire);
                if self.queues[idx].fifo.is_empty() {
                    self.in_active[idx] = false;
                } else {
                    retained.push(wire);
                }
            }
            debug_assert!(retained.iter().all(|&w| w < ports));
            self.active[stage as usize - 1] = retained;
        }
    }

    /// Puts a queue on its stage's active list (idempotent).
    #[inline]
    fn activate(&mut self, stage: u32, wire: u64) {
        let idx = self.queue_index(stage, wire);
        if !self.in_active[idx] {
            self.in_active[idx] = true;
            self.active[stage as usize - 1].push(wire);
        }
    }

    /// Records statistics for a message whose final-stage service just
    /// started (all per-stage waits are known at that point).
    fn deliver(&mut self, msg: Message) {
        if !msg.tracked {
            return;
        }
        self.tracked_in_flight -= 1;
        self.stats.delivered += 1;
        let n = self.cfg.stages as usize;
        let mut total = 0u64;
        for (i, &w) in msg.waits[..n].iter().enumerate() {
            self.stats.stage_waits[i].push(w as f64);
            total += w as u64;
        }
        self.stats.total_wait.push(total as f64);
        self.stats.total_hist.record(total);
        if let Some(corr) = &mut self.stats.correlations {
            let mut obs = [0.0f64; MAX_STAGES];
            for (o, &w) in obs.iter_mut().zip(&msg.waits[..n]) {
                *o = w as f64;
            }
            corr.push(&obs[..n]);
        }
        if let Some(hists) = &mut self.stats.stage_hists {
            for (h, &w) in hists.iter_mut().zip(&msg.waits[..n]) {
                h.record(w as u64);
            }
        }
    }

    /// Advances one cycle.
    fn step(&mut self, tracked_window: bool) {
        self.inject(tracked_window);
        self.serve();
        self.now += 1;
    }

    /// Number of messages currently queued anywhere in the network.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(|q| q.fifo.len()).sum()
    }

    /// Runs the full warmup → measure → drain protocol and returns the
    /// statistics. The drain keeps injecting untracked background traffic
    /// so tracked stragglers finish under steady-state conditions; it is
    /// bounded by a generous safety factor and panics if tracked messages
    /// are still stuck after it (which would indicate an unstable load).
    pub fn run(mut self) -> NetworkStats {
        for _ in 0..self.cfg.warmup_cycles {
            self.step(false);
        }
        for _ in 0..self.cfg.measure_cycles {
            self.step(true);
        }
        // Drain: generous bound — waiting times at ρ < 1 are short
        // compared to this.
        let max_drain = 200 * self.cfg.stages as u64
            + self.cfg.measure_cycles
            + 100_000;
        let mut drained = 0u64;
        while self.tracked_in_flight > 0 {
            self.step(false);
            drained += 1;
            assert!(
                drained <= max_drain,
                "drain did not complete: {} tracked messages stuck (load too close to 1?)",
                self.tracked_in_flight
            );
        }
        self.stats.cycles = self.now;
        self.stats
    }
}

/// Convenience: build and run in one call.
pub fn run_network(cfg: NetworkConfig) -> NetworkStats {
    NetworkSim::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::ServiceDist;

    fn quick_cfg(k: u32, stages: u32, p: f64, m: u32) -> NetworkConfig {
        NetworkConfig {
            warmup_cycles: 500,
            measure_cycles: 4_000,
            ..NetworkConfig::new(k, stages, Workload::uniform(p, m))
        }
    }

    #[test]
    fn zero_load_delivers_nothing() {
        let stats = run_network(quick_cfg(2, 3, 0.0, 1));
        assert_eq!(stats.injected, 0);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.injected_total, 0);
    }

    #[test]
    fn all_tracked_messages_are_delivered() {
        let stats = run_network(quick_cfg(2, 4, 0.5, 1));
        assert!(stats.injected > 0);
        assert_eq!(stats.injected, stats.delivered);
        assert_eq!(stats.total_wait.count(), stats.delivered);
        assert_eq!(stats.total_hist.total(), stats.delivered);
    }

    #[test]
    fn light_load_waits_are_tiny() {
        let stats = run_network(quick_cfg(2, 3, 0.01, 1));
        assert!(stats.total_wait.mean() < 0.05, "{}", stats.total_wait.mean());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_network(quick_cfg(2, 3, 0.5, 1));
        let b = run_network(quick_cfg(2, 3, 0.5, 1));
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.total_wait.mean(), b.total_wait.mean());
        let mut c = quick_cfg(2, 3, 0.5, 1);
        c.seed = 999;
        let c = run_network(c);
        assert_ne!(a.injected, c.injected);
    }

    #[test]
    fn stage1_matches_exact_analysis() {
        // k = 2, p = 0.5, m = 1: w₁ = 0.25, v₁ = 0.25 exactly (Eq. 6–7).
        let mut cfg = quick_cfg(2, 3, 0.5, 1);
        cfg.measure_cycles = 30_000;
        let stats = run_network(cfg);
        let w1 = stats.stage_waits[0].mean();
        let v1 = stats.stage_waits[0].variance();
        assert!((w1 - 0.25).abs() < 0.01, "w1 = {w1}");
        assert!((v1 - 0.25).abs() < 0.02, "v1 = {v1}");
    }

    #[test]
    fn stage1_matches_exact_analysis_m4() {
        // k = 2, p = 0.125, m = 4 (ρ = 0.5): Eq. 8 gives
        // w₁ = 0.5·(4 − 0.5)/(2·0.5) = 1.75.
        let mut cfg = quick_cfg(2, 3, 0.125, 4);
        cfg.measure_cycles = 60_000;
        let stats = run_network(cfg);
        let w1 = stats.stage_waits[0].mean();
        assert!((w1 - 1.75).abs() < 0.08, "w1 = {w1}");
    }

    #[test]
    fn later_stage_waits_exceed_first_stage() {
        // §IV: w_i increases with i toward w_∞ > w₁ (unit service).
        let mut cfg = quick_cfg(2, 6, 0.5, 1);
        cfg.measure_cycles = 30_000;
        let stats = run_network(cfg);
        let w1 = stats.stage_waits[0].mean();
        let w_deep = stats.stage_waits[4].mean();
        assert!(w_deep > w1 * 1.05, "w1 = {w1}, w5 = {w_deep}");
        // ...and approaches ~1.2·w₁ (r(0.5) for k = 2).
        assert!(w_deep < w1 * 1.4);
    }

    #[test]
    fn interior_stage_waits_drop_for_long_messages() {
        // §IV-B: for m ≥ 2 the first stage is the *most* congested —
        // interior sources are spaced by the service time.
        let mut cfg = quick_cfg(2, 5, 0.125, 4);
        cfg.measure_cycles = 40_000;
        let stats = run_network(cfg);
        let w1 = stats.stage_waits[0].mean();
        let w4 = stats.stage_waits[3].mean();
        assert!(w4 < w1, "w1 = {w1}, w4 = {w4}");
    }

    #[test]
    fn correlations_are_small_and_positive_between_adjacent_stages() {
        let mut cfg = quick_cfg(2, 6, 0.5, 1);
        cfg.collect_correlations = true;
        cfg.measure_cycles = 30_000;
        let stats = run_network(cfg);
        let corr = stats.correlations.as_ref().unwrap();
        // Table VI: adjacent ≈ 0.12, decaying with distance.
        let c12 = corr.correlation(2, 3);
        assert!(c12 > 0.05 && c12 < 0.25, "adjacent corr = {c12}");
        let c14 = corr.correlation(2, 5);
        assert!(c14 < c12, "corr should decay with stage distance");
    }

    #[test]
    fn merge_combines_replications() {
        let a = run_network(quick_cfg(2, 3, 0.5, 1));
        let mut b_cfg = quick_cfg(2, 3, 0.5, 1);
        b_cfg.seed = 42;
        let b = run_network(b_cfg);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.delivered, a.delivered + b.delivered);
        assert_eq!(merged.total_hist.total(), a.total_hist.total() + b.total_hist.total());
    }

    #[test]
    fn geometric_service_network_runs() {
        let wl = Workload {
            p: 0.2,
            q: 0.0,
            service: ServiceDist::Geometric(0.5),
        };
        let mut cfg = NetworkConfig::new(2, 3, wl);
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 4_000;
        let stats = run_network(cfg);
        assert_eq!(stats.injected, stats.delivered);
        assert!(stats.total_wait.mean() > 0.0);
    }

    #[test]
    fn hotspot_traffic_reduces_waiting() {
        let mut uni = quick_cfg(2, 4, 0.5, 1);
        uni.measure_cycles = 20_000;
        let u = run_network(uni);
        let mut hot = NetworkConfig::new(2, 4, Workload::hotspot(0.5, 0.8));
        hot.warmup_cycles = 500;
        hot.measure_cycles = 20_000;
        let h = run_network(hot);
        assert!(
            h.total_wait.mean() < u.total_wait.mean(),
            "hotspot {} vs uniform {}",
            h.total_wait.mean(),
            u.total_wait.mean()
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_stages_rejected() {
        NetworkSim::new(NetworkConfig::new(2, 17, Workload::uniform(0.1, 1)));
    }

    #[test]
    fn infinite_buffers_never_reject() {
        let stats = run_network(quick_cfg(2, 4, 0.8, 1));
        assert_eq!(stats.rejected_total, 0);
    }

    #[test]
    fn large_finite_buffers_match_infinite_at_moderate_load() {
        // §I: "for light-to-moderate loads, moderate-sized buffers provide
        // approximately the same performance as infinite buffers."
        let mut inf = quick_cfg(2, 5, 0.5, 1);
        inf.measure_cycles = 20_000;
        let a = run_network(inf);
        let mut fin = quick_cfg(2, 5, 0.5, 1);
        fin.measure_cycles = 20_000;
        fin.buffer_capacity = Some(16);
        let b = run_network(fin);
        assert_eq!(b.rejected_total, 0, "capacity 16 should never fill at p=0.5");
        assert!(
            (a.total_wait.mean() - b.total_wait.mean()).abs() < 0.03,
            "{} vs {}",
            a.total_wait.mean(),
            b.total_wait.mean()
        );
    }

    #[test]
    fn tiny_buffers_reject_and_cap_waits() {
        let mut cfg = quick_cfg(2, 4, 0.9, 1);
        cfg.measure_cycles = 10_000;
        cfg.buffer_capacity = Some(1);
        let stats = run_network(cfg);
        assert!(stats.rejected_total > 0, "capacity 1 at p=0.9 must reject");
        assert_eq!(stats.injected, stats.delivered, "accepted messages still conserved");
        // Offered load far exceeds what one buffer slot per port can
        // carry: most injections bounce, and accepted messages see
        // moderate (blocking-limited) waits rather than the enormous
        // queues an infinite buffer would build at p = 0.9.
        let accept = stats.injected_total as f64
            / (stats.injected_total + stats.rejected_total) as f64;
        assert!(accept < 0.6, "accept rate {accept}");
        assert!(stats.total_wait.mean() < 10.0, "{}", stats.total_wait.mean());
    }

    #[test]
    fn finite_buffers_are_conservative_under_all_loads() {
        for &p in &[0.3, 0.6, 0.9] {
            let mut cfg = quick_cfg(2, 3, p, 1);
            cfg.measure_cycles = 5_000;
            cfg.buffer_capacity = Some(2);
            let stats = run_network(cfg);
            assert_eq!(stats.injected, stats.delivered, "p={p}");
        }
    }

    #[test]
    fn stage_histograms_collected_and_consistent() {
        let mut cfg = quick_cfg(2, 5, 0.5, 1);
        cfg.collect_stage_histograms = true;
        cfg.measure_cycles = 20_000;
        let stats = run_network(cfg);
        let hists = stats.stage_hists.as_ref().unwrap();
        assert_eq!(hists.len(), 5);
        for (i, h) in hists.iter().enumerate() {
            assert_eq!(h.total(), stats.delivered);
            assert!(
                (h.mean() - stats.stage_waits[i].mean()).abs() < 1e-9,
                "stage {i} histogram/accumulator mismatch"
            );
        }
    }

    #[test]
    fn stage_distributions_have_similar_shape() {
        // §V: "The distribution of waiting times seems to be about the
        // same for all stages." Compare stage-1 and deep-stage pmfs by
        // total variation (they differ slightly — deep stages wait ~20%
        // longer at p = 0.5 — but the shapes are close).
        use banyan_stats::distance::total_variation;
        let mut cfg = quick_cfg(2, 8, 0.5, 1);
        cfg.collect_stage_histograms = true;
        cfg.measure_cycles = 30_000;
        let stats = run_network(cfg);
        let hists = stats.stage_hists.as_ref().unwrap();
        let first = &hists[0];
        let deep = &hists[7];
        let tv = total_variation(deep, |v| first.pmf_at(v));
        assert!(tv < 0.06, "stage-1 vs stage-8 TV = {tv}");
        // And deep stages resemble each other even more closely.
        let tv78 = total_variation(&hists[7], |v| hists[6].pmf_at(v));
        assert!(tv78 < 0.02, "stage-7 vs stage-8 TV = {tv78}");
    }

    #[test]
    fn butterfly_statistically_matches_omega() {
        // Two wirings of the same banyan family: identical per-stage
        // statistics under uniform traffic.
        let mut omega = quick_cfg(2, 6, 0.5, 1);
        omega.measure_cycles = 20_000;
        let a = run_network(omega);
        let mut bfly = quick_cfg(2, 6, 0.5, 1);
        bfly.measure_cycles = 20_000;
        bfly.routing = Routing::Butterfly;
        let b = run_network(bfly);
        for i in 0..6 {
            let wa = a.stage_waits[i].mean();
            let wb = b.stage_waits[i].mean();
            assert!((wa - wb).abs() < 0.02, "stage {i}: omega {wa} vs butterfly {wb}");
        }
        assert!((a.total_wait.mean() - b.total_wait.mean()).abs() < 0.05);
        assert_eq!(b.injected, b.delivered);
    }

    #[test]
    fn random_digit_mode_statistically_matches_banyan() {
        // Uniform traffic: a full banyan and a fixed-width cylinder with
        // i.i.d. random routing digits must produce the same per-stage
        // waiting statistics.
        let mut banyan = quick_cfg(2, 6, 0.5, 1);
        banyan.measure_cycles = 20_000;
        let b = run_network(banyan);
        let mut cyl = quick_cfg(2, 6, 0.5, 1).with_random_digit_width(6);
        cyl.measure_cycles = 20_000;
        let c = run_network(cyl);
        for i in 0..6 {
            let wb = b.stage_waits[i].mean();
            let wc = c.stage_waits[i].mean();
            assert!((wb - wc).abs() < 0.02, "stage {i}: banyan {wb} vs cylinder {wc}");
        }
        assert!((b.total_wait.variance() - c.total_wait.variance()).abs() < 0.2);
    }

    #[test]
    fn random_digit_mode_allows_wide_switches_with_narrow_network() {
        // k = 8 with 4 stages on only 8² = 64 wires (a real banyan would
        // need 4096 ports).
        let cfg = NetworkConfig {
            warmup_cycles: 500,
            measure_cycles: 8_000,
            ..NetworkConfig::new(8, 4, Workload::uniform(0.5, 1)).with_random_digit_width(2)
        };
        let stats = run_network(cfg);
        assert_eq!(stats.injected, stats.delivered);
        // Eq. 6 for k = 8, p = 0.5: w₁ = (7/8)·0.5/1 = 0.4375.
        assert!((stats.stage_waits[0].mean() - 0.4375).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "uniform traffic")]
    fn random_digit_rejects_hotspot() {
        let cfg =
            NetworkConfig::new(2, 4, Workload::hotspot(0.5, 0.3)).with_random_digit_width(4);
        NetworkSim::new(cfg);
    }
}
