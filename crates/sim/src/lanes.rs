//! Lane-batched simulation engine: up to 64 independent replications in
//! lock-step "lanes" with structure-of-arrays state.
//!
//! Every lane is a complete, independent replication — its own RNG
//! stream, slab, queues, and statistics — but all lanes advance through
//! the same global cycle counter, so the per-cycle control flow
//! (injection port scan, stage/wire bitset scan) is shared and the
//! per-lane state lives in contiguous SoA vectors indexed
//! `queue * lanes + lane`. That layout is what lets the two hot
//! per-cycle costs amortize across replications:
//!
//! * the per-port Bernoulli arrival draw becomes one batched xoshiro
//!   step over four parallel state vectors (autovectorizable, one
//!   `u64 → f64 < p` compare per lane) instead of a dependent scalar
//!   chain per replication, and
//! * the destination digits of an arrival come from a precomputed
//!   `dest → packed-digits` table (one `u64` load) instead of `stages`
//!   runtime divisions per message.
//!
//! # Bit-identity contract
//!
//! A lane seeded with seed `s` produces **bit-identical** `NetworkStats`
//! to `NetworkSim` run with seed `s`. The argument is local:
//!
//! * RNG: a lane's stream is the same xoshiro256++ stream
//!   (`SmallRng::seed_from_u64` state, stepped by the same transition),
//!   and every draw happens at the same point of the replication's
//!   logical schedule — the batched Bernoulli performs exactly the one
//!   `next_u64` per port per cycle that `gen_bool` performs, with the
//!   identical `(w >> 11) as f64 * 2⁻⁵³ < p` compare, and all remaining
//!   arrival draws go through [`Workload::sample_arrival_tail`], the
//!   very code the scalar path runs.
//! * Order: injection scans ports in ascending order and serve scans
//!   stages ascending / wires ascending (bitset LSB-first) exactly like
//!   the scalar engine; within one (port | stage, wire) event the lanes
//!   are processed in lane order, which is invisible to any single lane
//!   because lanes share no state.
//! * Packed digits are the same base-`k` digits the scalar engine
//!   extracts (MSB first), just stored 4 bits apiece (hence the
//!   `k ≤ 16` support gate; random-digit mode draws digits per hop and
//!   has no such gate).
//! * Lock-step: warmup and measure have fixed lengths, so all lanes
//!   need them; during the drain, a lane whose tracked messages are all
//!   delivered is *finalized* (its `cycles` / `in_flight_at_end`
//!   recorded, exactly as the scalar run would at that point) and
//!   **frozen** — it stops injecting, serving, and drawing, so its RNG
//!   consumption matches a scalar run that ended there.
//!
//! The pinned bit-assertion tests in `runner.rs` plus the seeded
//! property test in `tests/properties.rs` enforce all of this.

use crate::network::{
    build_router, validate_and_build_topology, NetworkConfig, NetworkStats, Router, Routing,
    TraceState, HEARTBEAT_CHECK_CYCLES, MAX_STAGES, NIL,
};
use banyan_obs::msgtrace::RepTrace;
use banyan_obs::registry::POW2_BOUNDS;
use banyan_obs::{Gauge, Histogram, Telemetry};
use banyan_prng::rngs::SmallRng;
use banyan_prng::{Rng, RngCore, SeedableRng};
use banyan_stats::IntHistogram;
use std::sync::Arc;

/// Maximum lanes per block: one `u64` of lane masks.
pub(crate) const MAX_LANES: usize = 64;

/// Beyond this many ports the `dest → packed digits` table (8 bytes per
/// port) is not worth its memory; fall back to packing digits on the
/// fly per arrival. Same spirit as `MAX_ROUTE_TABLE_ENTRIES`.
const MAX_DIGIT_TABLE_PORTS: usize = 1 << 22;

/// The `u64 → f64 ∈ [0, 1)` scale factor of the workspace PRNG's
/// standard float distribution. The batched Bernoulli must reproduce
/// `Rng::gen_bool` bit-for-bit: same shift, same constant, same compare.
const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// Can `cfg` run on the lane engine? Routing digits are packed 4 bits
/// per stage, so destination-tag modes need `k ≤ 16`; random-digit mode
/// draws digits per hop and never packs.
pub(crate) fn lane_supported(cfg: &NetworkConfig) -> bool {
    matches!(cfg.routing, Routing::RandomDigit { .. }) || cfg.k <= 16
}

/// Upper bound on the *expected* message count of a lane block before
/// the stage-sweep path is declined in favor of the lock-step path. The
/// sweep materializes every message of the run, so this caps the
/// block-wide generation streams near 270 MB; the lock-step engine's
/// memory scales with messages *in flight* instead and handles the rest.
const MAX_SWEEP_BLOCK_MSGS: f64 = (1u64 << 24) as f64;

/// Upper bound on one lane's tiled-sweep scratch (the persistent
/// per-stage sub-streams, ~16 bytes per message per stage). Lanes are
/// swept one at a time, so this is the per-lane addition on top of the
/// block-wide generation streams.
const MAX_SWEEP_LANE_BYTES: u64 = 1 << 28;

/// Tile width (cycles) of the staircase sweep's frontier steps: large
/// enough that the per-(tile, stage, queue) merge bookkeeping
/// amortizes over many records, small enough that one tile's records
/// and their waits rows stay cache-resident across all `stages`
/// touches. 128 measured best on the Table I family (256 ports,
/// ρ = 0.2..0.8); the curve is flat within 64..256.
const TILE_CYCLES: u64 = 128;

/// Can a block of `lanes` replications of `cfg` run on the message-driven
/// stage-sweep engine ([`LaneBlock::run_swept`])? Requirements beyond
/// [`lane_supported`]:
///
/// * infinite buffers and destination-tag routing — with no blocking and
///   no per-hop RNG, the serve phase is a pure function of the arrival
///   sequence, which is what lets each queue be solved by one Lindley
///   recursion instead of a cycle loop;
/// * the precomputed digit table exists (the sweep looks digits up per
///   stage rather than carrying packed digits in its 20-byte records);
/// * every cycle index up to the drain bound fits in a `u32` (sweep
///   records store cycles as `u32`);
/// * the expected whole-run message count stays under
///   [`MAX_SWEEP_BLOCK_MSGS`].
pub(crate) fn sweep_eligible(cfg: &NetworkConfig, lanes: usize) -> bool {
    if !lane_supported(cfg)
        || cfg.buffer_capacity.is_some()
        || matches!(cfg.routing, Routing::RandomDigit { .. })
    {
        return false;
    }
    let Some(ports) = (cfg.k as u64).checked_pow(cfg.stages) else {
        return false;
    };
    if ports > MAX_DIGIT_TABLE_PORTS as u64 {
        return false;
    }
    let max_drain = 200 * cfg.stages as u64 + cfg.measure_cycles + 100_000;
    let Some(run) = cfg
        .warmup_cycles
        .checked_add(cfg.measure_cycles)
        .and_then(|t| t.checked_add(max_drain))
    else {
        return false;
    };
    if run > u32::MAX as u64 - 16 {
        return false;
    }
    let horizon = cfg.warmup_cycles + cfg.measure_cycles + 4 * cfg.stages as u64 + 64;
    let est = horizon as f64 * ports as f64 * cfg.workload.p * lanes as f64;
    if est > MAX_SWEEP_BLOCK_MSGS {
        return false;
    }
    // The tiled sweep keeps one lane's whole per-stage sub-stream
    // scratch resident (~16 bytes per message per stage); decline
    // configurations whose single-lane footprint would thrash.
    est / lanes as f64 * cfg.stages as f64 * 16.0 <= MAX_SWEEP_LANE_BYTES as f64
}

/// Structure-of-arrays xoshiro256++ bank: lane `l`'s generator state is
/// `(s0[l], s1[l], s2[l], s3[l])`, bit-compatible with a scalar
/// [`SmallRng`] seeded the same way.
struct LaneRngs {
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
}

impl LaneRngs {
    fn new(seeds: &[u64]) -> Self {
        let states: Vec<[u64; 4]> = seeds
            .iter()
            .map(|&s| SmallRng::seed_from_u64(s).state())
            .collect();
        LaneRngs {
            s0: states.iter().map(|s| s[0]).collect(),
            s1: states.iter().map(|s| s[1]).collect(),
            s2: states.iter().map(|s| s[2]).collect(),
            s3: states.iter().map(|s| s[3]).collect(),
        }
    }

    /// Advances lane `l` one step (the xoshiro256++ transition) and
    /// returns its output word.
    #[inline]
    fn next_u64(&mut self, l: usize) -> u64 {
        let result = self.s0[l]
            .wrapping_add(self.s3[l])
            .rotate_left(23)
            .wrapping_add(self.s0[l]);
        let t = self.s1[l] << 17;
        self.s2[l] ^= self.s0[l];
        self.s3[l] ^= self.s1[l];
        self.s1[l] ^= self.s2[l];
        self.s0[l] ^= self.s3[l];
        self.s2[l] ^= t;
        self.s3[l] = self.s3[l].rotate_left(45);
        result
    }

    /// Advances *every* lane one step, writing the outputs into `out`
    /// (`out.len()` = lane count). Straight-line over four parallel
    /// vectors so the compiler can vectorize the whole bank step.
    #[inline]
    fn fill_all(&mut self, out: &mut [u64]) {
        let n = out.len();
        let s0 = &mut self.s0[..n];
        let s1 = &mut self.s1[..n];
        let s2 = &mut self.s2[..n];
        let s3 = &mut self.s3[..n];
        for i in 0..n {
            let r = s0[i]
                .wrapping_add(s3[i])
                .rotate_left(23)
                .wrapping_add(s0[i]);
            let t = s1[i] << 17;
            s2[i] ^= s0[i];
            s3[i] ^= s1[i];
            s1[i] ^= s2[i];
            s0[i] ^= s3[i];
            s2[i] ^= t;
            s3[i] = s3[i].rotate_left(45);
            out[i] = r;
        }
    }
}

/// A scalar [`RngCore`] view of one lane's generator, for the arrival
/// draws that stay scalar (destination, service time, per-hop random
/// digits). Routing everything non-batched through this view keeps each
/// lane's draw *sequence* identical to a dedicated `SmallRng`.
struct LaneRng<'a> {
    rngs: &'a mut LaneRngs,
    lane: usize,
}

/// Register-resident xoshiro256++ for the stage sweep's generation
/// loop: the identical transition to [`SmallRng`], duplicated here so
/// the per-draw step inlines into the injection loop (the prng crate's
/// concrete `next_u64` is an out-of-line call across the crate
/// boundary, and the sweep draws once per port per cycle).
struct InlineRng {
    s: [u64; 4],
}

impl RngCore for InlineRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl RngCore for LaneRng<'_> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.rngs.next_u64(self.lane)
    }
}

/// One in-flight message of one lane. 24 bytes (vs the scalar `Slot`'s
/// 152): destination digits are packed 4 bits per stage and the
/// per-stage waits live in a parallel stride-`stages` array, so the slab
/// stays cache-dense even with many lanes resident.
#[derive(Clone, Copy)]
struct LaneSlot {
    /// Cycle at which the head packet arrived at the current queue.
    entered: u64,
    /// Base-`k` destination digits, 4 bits each: the digit consumed when
    /// leaving toward stage `j + 1`'s queue sits at bits `4j..4j+4`
    /// (MSB-first digit order, same digits as the scalar engine).
    digits: u64,
    /// Next message id in the same port FIFO (`NIL` at the tail).
    next: u32,
    size: u32,
    tracked: bool,
}

/// Packs `dest`'s base-`k` digits MSB-first, 4 bits per stage — the
/// packed twin of `NetworkSim::dest_digits`.
#[inline]
fn pack_digits(dest: u64, k: u64, stages: usize) -> u64 {
    let mut packed = 0u64;
    let mut rem = dest;
    for j in (0..stages).rev() {
        packed |= (rem % k) << (4 * j);
        rem /= k;
    }
    packed
}

/// Sentinel id for sweep records of untracked (warmup/drain) messages.
const UNTRACKED: u32 = u32::MAX;

/// One message of one lane in the stage sweep, 16 bytes. The wire is
/// implicit — records live in per-`(wire, digit)` sub-streams — and `a`
/// morphs: on a stage-`j` input stream it holds the arrival cycle at
/// that stage's queue.
#[derive(Clone, Copy, Default)]
struct SweptMsg {
    /// Arrival cycle at the current stage's queue.
    a: u32,
    /// Destination port — per-stage digits come from the digit table.
    dest: u32,
    /// Service time (cycles per stage).
    size: u32,
    /// Tracked-message index into the lane's waits array, or
    /// [`UNTRACKED`].
    id: u32,
}

/// One delivered message in the final delivery-order sort, 8 bytes.
#[derive(Clone, Copy, Default)]
struct FinalRec {
    /// Delivery cycle (final-stage service start).
    s: u32,
    /// Tracked-message index or [`UNTRACKED`].
    id: u32,
}

/// Reusable buffers for one lane's stage sweep.
#[derive(Default)]
struct SweepScratch {
    /// Persistent per-`(stage, wire, digit)` sub-streams, append-only
    /// across tiles: a record departing stage `j < stages − 1` wire `q`
    /// toward digit `d` is appended to `subs[j·ports·k + q·k + d]`,
    /// which is one of the `k` sorted inputs stage `j + 1`'s wire
    /// merges. `cons` holds each sub-stream's consumed-prefix length
    /// (the merge's read cursor), `gen_cons` the same cursor for the
    /// stage-0 generation streams, and `busy` each `(stage, wire)`
    /// queue's persistent `busy_until` — together they let the tiled
    /// sweep suspend and resume every queue's merge mid-stream.
    subs: Vec<Vec<SweptMsg>>,
    cons: Vec<u32>,
    gen_cons: Vec<u32>,
    busy: Vec<u64>,
    /// Deliveries per final-stage wire (each delivery-cycle ascending
    /// because a queue's service starts strictly increase); flattened
    /// wire-major into `finals` after the tile loop — the exact order a
    /// single stage-by-stage sweep produces — which is one stable
    /// counting sort by cycle away from global delivery order.
    finals_w: Vec<Vec<FinalRec>>,
    finals: Vec<FinalRec>,
    fin_tmp: Vec<FinalRec>,
    counts: Vec<u32>,
    /// Occupancy-sampling scratch (metrics only): per-`(stage, wire)`
    /// arrival and service-start cycles accumulated across tiles, and
    /// the dense `[tick][stage][wire]` occupancy matrix of the current
    /// attempt.
    qav: Vec<Vec<u32>>,
    qsv: Vec<Vec<u32>>,
    occ: Vec<u32>,
}

/// Result of one sweep attempt over one lane at a given horizon.
enum SweepOutcome {
    /// Statistics folded; the lane ended at cycle `e`.
    Done { e: u64 },
    /// Some tracked message's computed service start reached the
    /// horizon, so downstream values are untrustworthy; regenerate out
    /// to at least `needed` cycles and re-sweep.
    Retry { needed: u64 },
    /// The horizon already sits past the drain bound and `count`
    /// tracked messages still finish beyond it — the scalar engine's
    /// drain would have panicked here.
    Stuck { count: u64 },
}

/// Stable counting sort of `finals` by delivery cycle (values
/// `< buckets`), via `tmp`. On return `counts[c]` is the *inclusive*
/// end offset of cycle `c` — reused as the per-cycle delivery prefix
/// for the conservation counters and the slab high-water
/// reconstruction.
fn delivery_sort(
    finals: &mut Vec<FinalRec>,
    tmp: &mut Vec<FinalRec>,
    counts: &mut Vec<u32>,
    buckets: usize,
) {
    counts.clear();
    counts.resize(buckets, 0);
    for r in finals.iter() {
        counts[r.s as usize] += 1;
    }
    let mut acc = 0u32;
    for c in counts.iter_mut() {
        let v = *c;
        *c = acc;
        acc += v;
    }
    tmp.clear();
    tmp.resize(finals.len(), FinalRec::default());
    for r in finals.iter() {
        let c = &mut counts[r.s as usize];
        tmp[*c as usize] = *r;
        *c += 1;
    }
    std::mem::swap(finals, tmp);
}

/// Inverse wiring of every stage transition: `tables[j][q'·k..][..k]`
/// (for `j ≥ 1`) lists the sub-stream ids `q·k + d` whose records route
/// to stage-`j` wire `q'`, source-wire ascending — which is exactly the
/// scalar serve's insertion tie-break order for same-cycle arrivals.
/// Returns `None` if any wire's in-degree differs from `k`; the omega
/// and butterfly wirings are `k`-in-regular (each stage is a
/// permutation into `k × k` switches), so that is a fallback guard, not
/// an expected path.
fn build_parent_tables(
    router: &Router,
    ports: usize,
    k: usize,
    stages: usize,
) -> Option<Vec<Vec<u32>>> {
    let mut tables = vec![Vec::new()]; // stage 0 is fed by generation
    for j in 1..stages {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); ports];
        for q in 0..ports {
            for d in 0..k {
                lists[router.next(j, ports, k, q, d)].push((q * k + d) as u32);
            }
        }
        if lists.iter().any(|l| l.len() != k) {
            return None;
        }
        tables.push(lists.into_iter().flatten().collect());
    }
    Some(tables)
}

/// Folds one tracked delivery's per-stage waits into `st` — the exact
/// accounting of `NetworkSim::deliver`, shared by the lock-step and
/// stage-sweep paths so the (order-sensitive) Welford pushes have one
/// implementation.
fn fold_tracked_delivery(st: &mut NetworkStats, waits: &[u32]) {
    st.delivered += 1;
    let n = waits.len();
    let mut total = 0u64;
    for (i, &w) in waits.iter().enumerate() {
        st.stage_waits[i].push(w as f64);
        total += w as u64;
    }
    st.total_wait.push(total as f64);
    st.total_hist.record(total);
    if let Some(corr) = &mut st.correlations {
        let mut obs = [0.0f64; MAX_STAGES];
        for (o, &w) in obs.iter_mut().zip(waits) {
            *o = w as f64;
        }
        corr.push(&obs[..n]);
    }
    if let Some(hists) = &mut st.stage_hists {
        for (h, &w) in hists.iter_mut().zip(waits) {
            h.record(w as u64);
        }
    }
}

/// Per-record state of one queue's Lindley walk inside [`sweep_lane`]:
/// `free` is the scalar `busy_until`, everything else is the stage-pass
/// context the record handler needs. Kept as a named struct with an
/// `#[inline(always)]` method instead of a closure: the handler is
/// called from every merge site and LLVM outlines the closure form,
/// which costs an out-of-line call (plus a stack round-trip for the
/// record and the captured state) per record — about 3× the whole
/// sweep.
struct RecCtx<'a, const OCC: bool> {
    stages: usize,
    j: usize,
    k: usize,
    q: usize,
    last: bool,
    horizon: u64,
    dummy: usize,
    digit_table: &'a [u64],
    waits: &'a mut [u32],
    avals: &'a mut Vec<u32>,
    svals: &'a mut Vec<u32>,
    finals: &'a mut Vec<FinalRec>,
    next_subs: &'a mut [Vec<SweptMsg>],
    free: u64,
    max_tracked_s: u64,
}

impl<const OCC: bool> RecCtx<'_, OCC> {
    /// Serves one record at this queue: Lindley update, wait write,
    /// then either a final-delivery record (last stage) or a push into
    /// the next stage's sub-stream selected by the routing digit.
    #[inline(always)]
    fn do_rec(&mut self, rec: SweptMsg) {
        let a = rec.a;
        let s64 = (a as u64).max(self.free);
        self.free = s64 + rec.size as u64;
        let s = s64.min(self.horizon) as u32;
        self.waits[(rec.id as usize).min(self.dummy) * self.stages + self.j] = s - a;
        if OCC {
            self.avals.push(a);
            self.svals.push(s);
        }
        if self.last {
            if rec.id != UNTRACKED {
                self.max_tracked_s = self.max_tracked_s.max(s64);
            }
            self.finals.push(FinalRec { s, id: rec.id });
        } else {
            let d = ((self.digit_table[rec.dest as usize] >> (4 * (self.j + 1))) & 0xF) as usize;
            self.next_subs[self.q * self.k + d].push(SweptMsg {
                a: (s64 + 1).min(self.horizon) as u32,
                ..rec
            });
        }
    }
}

/// One sweep attempt over one lane with injections generated for cycles
/// `0..horizon`: stage by stage, each wire's FIFO is materialized by
/// merging its `k` parent sub-streams (sorted by arrival, ties broken
/// by source wire — the scalar serve's insertion order), walked once
/// with the per-queue Lindley recursion, and split by next-stage digit
/// into the `k` sub-streams the next stage merges. Departures leave a
/// queue at most once per cycle with the service start strictly
/// increasing, so every sub-stream stays sorted and the merge
/// reproduces exactly the scalar engine's queue contents — with each
/// message touched `O(stages)` times and no per-cycle scan at all.
///
/// Service starts computed below the horizon are exact — arrivals past
/// the horizon can only queue *behind* them — so an attempt is accepted
/// only when every tracked message's final service start is below the
/// horizon; values at or past it are clamped to the horizon (keeping
/// them detectably large downstream) and the caller extends the
/// generation and retries.
#[allow(clippy::too_many_arguments)]
fn sweep_lane<const OCC: bool>(
    stages: usize,
    ports: usize,
    k: usize,
    horizon: u64,
    hard_bound: u64,
    at_cap: bool,
    gen_q: &[Vec<SweptMsg>],
    inj: &[u32],
    digit_table: &[u64],
    parents: &[Vec<u32>],
    waits: &mut [u32],
    stats: &mut NetworkStats,
    n_tracked: u32,
    measured_end: u64,
    scratch: &mut SweepScratch,
    sample_every: u64,
    slab_hwm: &mut u64,
) -> SweepOutcome {
    let SweepScratch {
        subs,
        cons,
        gen_cons,
        busy,
        finals_w,
        finals,
        fin_tmp,
        counts,
        qav,
        qsv,
        occ,
    } = scratch;
    let pk = ports * k;
    let nsubs = (stages - 1) * pk;
    if subs.len() < nsubs {
        subs.resize_with(nsubs, Vec::new);
    }
    for v in subs.iter_mut() {
        v.clear();
    }
    cons.clear();
    cons.resize(nsubs, 0);
    gen_cons.clear();
    gen_cons.resize(ports, 0);
    busy.clear();
    busy.resize(stages * ports, 0);
    if finals_w.len() < ports {
        finals_w.resize_with(ports, Vec::new);
    }
    for v in finals_w.iter_mut() {
        v.clear();
    }
    finals.clear();
    let nt = if OCC {
        (horizon / sample_every) as usize
    } else {
        0
    };
    if OCC {
        occ.clear();
        occ.resize(nt * stages * ports, 0);
        if qav.len() < stages * ports {
            qav.resize_with(stages * ports, Vec::new);
            qsv.resize_with(stages * ports, Vec::new);
        }
        for v in qav.iter_mut() {
            v.clear();
        }
        for v in qsv.iter_mut() {
            v.clear();
        }
    }
    // Untracked records write their wait into a spare dummy row past the
    // tracked block — one `min` instead of a per-record branch.
    let dummy = n_tracked as usize;
    let mut max_tracked_s = 0u64;
    // OCC-off stand-ins for the RecCtx occupancy fields (the const
    // branch in `do_rec` never touches them).
    let (mut no_av, mut no_sv) = (Vec::new(), Vec::new());
    // Time-tiled staircase: advance a frontier `t_end` in `TILE_CYCLES`
    // steps; within one pass, stage `j` consumes the arrivals up to
    // `t_end − j`. Stage `j − 1` runs first in the same pass with limit
    // `t_end − j + 1`, and anything it consumes in a *later* pass
    // departs at `s + 1 > t_end − j + 2`, so every stage-`j` arrival
    // `≤ t_end − j` already sits in its sub-stream when stage `j` runs.
    // Each pass therefore sees exactly the records a full
    // stage-by-stage sweep would, just in cache-sized slices: a tile's
    // records and their waits rows stay hot across all `stages`
    // touches instead of being streamed from memory once per stage.
    let final_t = horizon + stages as u64;
    let mut t_end = 0u64;
    while t_end < final_t {
        t_end = (t_end + TILE_CYCLES).min(final_t);
        for j in 0..stages {
            let last = j + 1 == stages;
            let limit64 = t_end.saturating_sub(j as u64).min(horizon);
            if limit64 == 0 {
                continue;
            }
            let limit = limit64 as u32;
            // Block `j` of `subs` is written by stage `j` and read by
            // stage `j + 1`; the final stage writes deliveries instead
            // (its `rest` slice is empty).
            let take = if last { 0 } else { pk };
            let (done, rest) = subs.split_at_mut(j * pk);
            let prev: &[Vec<SweptMsg>] = if j == 0 { &[] } else { &done[(j - 1) * pk..] };
            let next = &mut rest[..take];
            let par_j = &parents[j];
            let busy_j = j * ports;
            for q in 0..ports {
                let (av, sv) = if OCC {
                    (&mut qav[busy_j + q], &mut qsv[busy_j + q])
                } else {
                    (&mut no_av, &mut no_sv)
                };
                // The per-queue Lindley walk over this wire's FIFO:
                // `free` is the scalar `busy_until` (persisted across
                // tiles), `s` the cycle the head's serve starts, and
                // the record leaves carrying its arrival cycle at the
                // next stage. `RecCtx::do_rec` is forced inline at
                // every merge site — as a closure LLVM outlines it,
                // and an out-of-line call per record roughly triples
                // the whole sweep's cost.
                let mut ctx = RecCtx::<OCC> {
                    stages,
                    j,
                    k,
                    q,
                    last,
                    horizon,
                    dummy,
                    digit_table,
                    waits: &mut *waits,
                    avals: av,
                    svals: sv,
                    finals: if last {
                        &mut finals_w[q]
                    } else {
                        &mut *fin_tmp
                    },
                    next_subs: &mut next[..],
                    free: busy[busy_j + q],
                    max_tracked_s,
                };
                if j == 0 {
                    // Stage 0's FIFO is the generation stream itself
                    // (cycle-then-port order — the scalar inject
                    // order).
                    let sq = &gen_q[q][..];
                    let mut i = gen_cons[q] as usize;
                    while i < sq.len() && sq[i].a <= limit {
                        ctx.do_rec(sq[i]);
                        i += 1;
                    }
                    gen_cons[q] = i as u32;
                } else if k == 2 {
                    let cbase = (j - 1) * pk;
                    let p0 = par_j[q * 2] as usize;
                    let p1 = par_j[q * 2 + 1] as usize;
                    let s0 = &prev[p0][..];
                    let s1 = &prev[p1][..];
                    let mut i0 = cons[cbase + p0] as usize;
                    let mut i1 = cons[cbase + p1] as usize;
                    loop {
                        // Exhausted streams read as `u32::MAX`, always
                        // past `limit` (cycles fit `u32::MAX − 16`).
                        let a0 = if i0 < s0.len() { s0[i0].a } else { u32::MAX };
                        let a1 = if i1 < s1.len() { s1[i1].a } else { u32::MAX };
                        // `<=` keeps same-cycle ties on the lower
                        // source wire, the scalar insertion order.
                        if a0 <= a1 {
                            if a0 > limit {
                                break;
                            }
                            ctx.do_rec(s0[i0]);
                            i0 += 1;
                        } else {
                            if a1 > limit {
                                break;
                            }
                            ctx.do_rec(s1[i1]);
                            i1 += 1;
                        }
                    }
                    cons[cbase + p0] = i0 as u32;
                    cons[cbase + p1] = i1 as u32;
                } else {
                    let cbase = (j - 1) * pk;
                    let base = q * k;
                    let mut idx = [0usize; 16];
                    for (i, &sub) in par_j[base..base + k].iter().enumerate() {
                        idx[i] = cons[cbase + sub as usize] as usize;
                    }
                    loop {
                        let mut best = usize::MAX;
                        let mut best_a = u32::MAX;
                        for (i, &sub) in par_j[base..base + k].iter().enumerate() {
                            let s = &prev[sub as usize];
                            // Strict `<` with ascending `i`: ties go to
                            // the lowest source wire (parents are
                            // wire-sorted).
                            if idx[i] < s.len() && s[idx[i]].a < best_a {
                                best_a = s[idx[i]].a;
                                best = i;
                            }
                        }
                        if best_a > limit {
                            break;
                        }
                        let rec = prev[par_j[base + best] as usize][idx[best]];
                        idx[best] += 1;
                        ctx.do_rec(rec);
                    }
                    for (i, &sub) in par_j[base..base + k].iter().enumerate() {
                        cons[cbase + sub as usize] = idx[i] as u32;
                    }
                }
                busy[busy_j + q] = ctx.free;
                max_tracked_s = ctx.max_tracked_s;
            }
        }
        // Reclaim consumed prefixes: move each sub-stream's unconsumed
        // tail (records still past the frontier — the queue backlog) to
        // the front and reset its cursor. This keeps every sub-stream
        // tile-sized, so the whole scratch recycles a few dozen MB of
        // hot pages instead of materializing every stage's full stream.
        for (v, c) in subs.iter_mut().zip(cons.iter_mut()) {
            let n = *c as usize;
            if n > 0 {
                let len = v.len();
                v.copy_within(n.., 0);
                v.truncate(len - n);
                *c = 0;
            }
        }
    }
    // Deliveries were collected per final wire; flatten wire-major.
    // Within a wire the serve order is already delivery-cycle
    // ascending, so this is exactly the order the non-tiled sweep
    // produced and what the stable delivery sort expects.
    for w in finals_w.iter() {
        finals.extend_from_slice(w);
    }
    if OCC && nt > 0 {
        // Queue-occupancy samples at block ticks T = s_e, 2·s_e, …:
        // length after the serve of cycle T − 1 is (#pushes ≤ T − 1) −
        // (#pops ≤ T − 1). A first-stage push happens at the arrival
        // cycle itself; later stages are pushed during the previous
        // stage's serve, one cycle before their arrival here.
        for j in 0..stages {
            let theta_off = u32::from(j == 0);
            for q in 0..ports {
                let avals = &qav[j * ports + q];
                let svals = &qsv[j * ports + q];
                let end = avals.len();
                let (mut pi, mut si) = (0, 0);
                for ti in 0..nt {
                    let t = ((ti as u64 + 1) * sample_every) as u32;
                    while pi < end && avals[pi] <= t - theta_off {
                        pi += 1;
                    }
                    while si < end && svals[si] < t {
                        si += 1;
                    }
                    if pi > si {
                        occ[(ti * stages + j) * ports + q] = (pi - si) as u32;
                    } else if si >= end {
                        break;
                    }
                }
            }
        }
    }
    if max_tracked_s >= horizon {
        if !at_cap {
            return SweepOutcome::Retry {
                needed: max_tracked_s + 1,
            };
        }
        let count = finals
            .iter()
            .filter(|r| r.id != UNTRACKED && r.s as u64 > hard_bound)
            .count() as u64;
        return SweepOutcome::Stuck { count };
    }
    // Accepted: every tracked service start is exact. The lane ends
    // exactly where the scalar drain freezes it — one cycle after the
    // last tracked delivery, but never before the measure window
    // closes.
    let e = if n_tracked == 0 {
        measured_end
    } else {
        measured_end.max(max_tracked_s + 1)
    };
    stats.cycles = e;
    stats.injected = n_tracked as u64;
    stats.injected_total = inj[..e as usize].iter().map(|&c| c as u64).sum();
    delivery_sort(finals, fin_tmp, counts, horizon as usize + 1);
    let mut delivered_total = 0u64;
    for rec in finals.iter() {
        if rec.s as u64 >= e {
            break;
        }
        delivered_total += 1;
        if rec.id != UNTRACKED {
            fold_tracked_delivery(stats, &waits[rec.id as usize * stages..][..stages]);
        }
    }
    debug_assert_eq!(stats.delivered, n_tracked as u64, "tracked delivery gap");
    stats.delivered_total = delivered_total;
    stats.in_flight_at_end = stats.injected_total - delivered_total;
    // Slab high-water reconstruction: the scalar slab grows only when
    // concurrent live messages exceed every previous peak, and within a
    // cycle injections precede the serves that free slots, so the peak
    // is max over cycles of (live after injecting). `counts` still
    // holds the delivery sort's inclusive per-cycle end offsets.
    let mut live = 0u64;
    let mut hwm = 0u64;
    let mut prev_end = 0u32;
    for t in 0..e as usize {
        live += inj[t] as u64;
        hwm = hwm.max(live);
        let end = counts[t];
        live -= (end - prev_end) as u64;
        prev_end = end;
    }
    *slab_hwm = hwm;
    SweepOutcome::Done { e }
}

/// A block of up to [`MAX_LANES`] lock-step replications.
///
/// Construct with [`LaneBlock::new`] (one seed per lane), run to
/// completion with [`LaneBlock::run_instrumented`]; the returned
/// statistics are in lane (= seed) order.
pub(crate) struct LaneBlock {
    cfg: NetworkConfig,
    lanes: usize,
    ports: usize,
    k: usize,
    stages: usize,
    router: Router,
    cap: Option<usize>,
    random_digit: bool,
    /// Per-port FIFO state, SoA over lanes: index `qidx * lanes + lane`
    /// where `qidx = (stage − 1) * ports + wire`.
    heads: Vec<u32>,
    tails: Vec<u32>,
    lens: Vec<u32>,
    busy_until: Vec<u64>,
    /// Per-queue bitmask of lanes whose FIFO there is non-empty.
    lane_active: Vec<u64>,
    /// Per-stage bitset of wires active in *any* lane — the same
    /// LSB-first scan order as the scalar engine's `active`, shared by
    /// all lanes so one pass serves the whole block.
    any_active: Vec<u64>,
    active_words: usize,
    rngs: LaneRngs,
    /// Per-lane message slab (ids are lane-local).
    slabs: Vec<Vec<LaneSlot>>,
    /// Per-lane waits, stride `stages` per slab id.
    waits: Vec<Vec<u32>>,
    free: Vec<Vec<u32>>,
    stats: Vec<NetworkStats>,
    /// Per-lane slab high-water mark reconstructed by the stage sweep
    /// (the lock-step path reads `slabs[lane].len()` instead).
    slab_hwm: Vec<u64>,
    tracked_in_flight: Vec<u64>,
    /// Lanes still running (drain freezes finished lanes).
    alive: u64,
    full_mask: u64,
    now: u64,
    /// Σ over lanes of cycles stepped so far (progress accounting).
    lane_cycles: u64,
    /// `dest → packed digits` (empty when unused: random-digit mode or
    /// a port count past `MAX_DIGIT_TABLE_PORTS`).
    digit_table: Vec<u64>,
    /// Scratch for the batched per-port Bernoulli (one word per lane).
    draws: Vec<u64>,
    /// Per-lane message-trace state (see [`banyan_obs::msgtrace`]);
    /// `None` outside [`LaneBlock::run_traced`]. Like telemetry, tracing
    /// is a const-generic instantiation, never a hot-loop runtime check.
    traces: Option<Vec<TraceState>>,
}

impl LaneBlock {
    /// Builds a block with one lane per seed.
    ///
    /// # Panics
    /// Panics on invalid configurations (same rules as
    /// [`crate::network::NetworkSim::new`]), an unsupported `k` (see
    /// [`lane_supported`]), or a lane count outside `1..=MAX_LANES`.
    pub(crate) fn new(cfg: &NetworkConfig, seeds: &[u64]) -> Self {
        let lanes = seeds.len();
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count must be in 1..={MAX_LANES}, got {lanes}"
        );
        assert!(
            lane_supported(cfg),
            "lane engine packs digits 4 bits/stage: k ≤ 16 required (got k={})",
            cfg.k
        );
        let topo = validate_and_build_topology(cfg);
        let router = build_router(cfg);
        let ports = topo.ports() as usize;
        let stages = cfg.stages as usize;
        let total_queues = ports * stages;
        let random_digit = matches!(cfg.routing, Routing::RandomDigit { .. });
        let digit_table = if !random_digit && ports <= MAX_DIGIT_TABLE_PORTS {
            (0..ports)
                .map(|d| pack_digits(d as u64, cfg.k as u64, stages))
                .collect()
        } else {
            Vec::new()
        };
        let full_mask = if lanes == MAX_LANES {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        LaneBlock {
            lanes,
            ports,
            k: cfg.k as usize,
            stages,
            router,
            cap: cfg.buffer_capacity,
            random_digit,
            heads: vec![NIL; total_queues * lanes],
            tails: vec![NIL; total_queues * lanes],
            lens: vec![0; total_queues * lanes],
            busy_until: vec![0; total_queues * lanes],
            lane_active: vec![0; total_queues],
            any_active: vec![0; ports.div_ceil(64) * stages],
            active_words: ports.div_ceil(64),
            rngs: LaneRngs::new(seeds),
            slabs: vec![Vec::new(); lanes],
            waits: vec![Vec::new(); lanes],
            free: vec![Vec::new(); lanes],
            stats: (0..lanes)
                .map(|_| {
                    NetworkStats::new(
                        cfg.stages,
                        cfg.collect_correlations,
                        cfg.collect_stage_histograms,
                    )
                })
                .collect(),
            slab_hwm: vec![0; lanes],
            tracked_in_flight: vec![0; lanes],
            alive: full_mask,
            full_mask,
            now: 0,
            lane_cycles: 0,
            digit_table,
            draws: vec![0; lanes],
            traces: None,
            cfg: cfg.clone(),
        }
    }

    #[inline]
    fn alloc_slot(
        &mut self,
        lane: usize,
        entered: u64,
        size: u32,
        tracked: bool,
        digits: u64,
    ) -> u32 {
        let slot = LaneSlot {
            entered,
            digits,
            next: NIL,
            size,
            tracked,
        };
        match self.free[lane].pop() {
            Some(id) => {
                self.slabs[lane][id as usize] = slot;
                self.waits[lane][id as usize * self.stages..][..self.stages].fill(0);
                id
            }
            None => {
                debug_assert!(self.slabs[lane].len() < NIL as usize, "slab id overflow");
                self.slabs[lane].push(slot);
                self.waits[lane].resize(self.slabs[lane].len() * self.stages, 0);
                (self.slabs[lane].len() - 1) as u32
            }
        }
    }

    /// Appends `id` to lane `lane`'s FIFO at `(stage0, wire)` and marks
    /// the queue active (both the lane mask and the shared wire bitset).
    #[inline]
    fn push_back(&mut self, stage0: usize, wire: usize, lane: usize, id: u32) {
        let qidx = stage0 * self.ports + wire;
        let qi = qidx * self.lanes + lane;
        self.slabs[lane][id as usize].next = NIL;
        if self.tails[qi] == NIL {
            self.heads[qi] = id;
        } else {
            let tail = self.tails[qi] as usize;
            self.slabs[lane][tail].next = id;
        }
        self.tails[qi] = id;
        self.lens[qi] += 1;
        self.lane_active[qidx] |= 1u64 << lane;
        self.any_active[stage0 * self.active_words + wire / 64] |= 1u64 << (wire % 64);
    }

    /// Unlinks and returns lane `lane`'s head at `qidx` (caller
    /// guarantees non-empty).
    #[inline]
    fn pop_front(&mut self, qidx: usize, lane: usize) -> u32 {
        let qi = qidx * self.lanes + lane;
        let id = self.heads[qi];
        debug_assert_ne!(id, NIL, "pop from empty lane queue");
        self.heads[qi] = self.slabs[lane][id as usize].next;
        if self.heads[qi] == NIL {
            self.tails[qi] = NIL;
        }
        self.lens[qi] -= 1;
        id
    }

    /// Completes one lane's arrival after its Bernoulli draw came up
    /// positive: destination/size/digit draws (scalar, through the
    /// lane's RNG view — the same code path as the scalar engine),
    /// routing, capacity check, slab allocation, enqueue.
    fn finish_arrival<const TRACE: bool>(&mut self, input: usize, lane: usize, tracked_window: bool) {
        let (dest, size) = {
            let mut rng = LaneRng {
                rngs: &mut self.rngs,
                lane,
            };
            self.cfg
                .workload
                .sample_arrival_tail(&mut rng, input as u64, self.ports as u64)
        };
        let (digits, digit0) = if self.random_digit {
            let mut rng = LaneRng {
                rngs: &mut self.rngs,
                lane,
            };
            (0u64, rng.gen_range(0..self.cfg.k as u64) as usize)
        } else if self.digit_table.is_empty() {
            let d = pack_digits(dest, self.cfg.k as u64, self.stages);
            (d, (d & 0xF) as usize)
        } else {
            let d = self.digit_table[dest as usize];
            (d, (d & 0xF) as usize)
        };
        let wire = self.router.next(0, self.ports, self.k, input, digit0);
        if let Some(cap) = self.cap {
            if self.lens[wire * self.lanes + lane] as usize >= cap {
                self.stats[lane].rejected_total += 1;
                return;
            }
        }
        self.stats[lane].injected_total += 1;
        if tracked_window {
            self.stats[lane].injected += 1;
            self.tracked_in_flight[lane] += 1;
        }
        let id = self.alloc_slot(lane, self.now, size, tracked_window, digits);
        if TRACE && tracked_window {
            // Tracked-injection ordinal: the just-incremented count —
            // the same message identity the scalar engine samples on.
            let ord = self.stats[lane].injected - 1;
            let tr = &mut self.traces.as_mut().expect("trace state")[lane];
            if tr.rt.sampled(ord) {
                let idx = tr.rt.begin(ord, self.now);
                if self.random_digit {
                    // Later digits are drawn per hop in serve().
                    tr.rt.push_digit(idx, digit0 as u8);
                } else {
                    // Unpack the 4-bit packed digits MSB-first — the
                    // exact digits the scalar engine extracts.
                    for j in 0..self.stages {
                        tr.rt.push_digit(idx, ((digits >> (4 * j)) & 0xF) as u8);
                    }
                }
                tr.set_open(id, idx as u32);
            }
        }
        self.push_back(0, wire, lane, id);
    }

    /// Injects this cycle's arrivals for every lane in `step_mask`,
    /// scanning ports in ascending order. When the whole block steps
    /// (`step_mask == full_mask`, i.e. warmup/measure and the early
    /// drain) the per-port Bernoulli is one batched RNG bank step;
    /// a partial mask (late drain) draws lane-by-lane so frozen lanes
    /// never advance their RNG.
    fn inject<const TRACE: bool>(&mut self, tracked_window: bool, step_mask: u64) {
        let p = self.cfg.workload.p;
        for input in 0..self.ports {
            let mut arrivals = 0u64;
            if step_mask == self.full_mask {
                let mut draws = std::mem::take(&mut self.draws);
                self.rngs.fill_all(&mut draws);
                for (l, &w) in draws.iter().enumerate() {
                    // Bit-exact `gen_bool`: same shift, scale, compare.
                    if ((w >> 11) as f64 * F64_SCALE) < p {
                        arrivals |= 1u64 << l;
                    }
                }
                self.draws = draws;
            } else {
                let mut m = step_mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let w = self.rngs.next_u64(l);
                    if ((w >> 11) as f64 * F64_SCALE) < p {
                        arrivals |= 1u64 << l;
                    }
                }
            }
            while arrivals != 0 {
                let lane = arrivals.trailing_zeros() as usize;
                arrivals &= arrivals - 1;
                self.finish_arrival::<TRACE>(input, lane, tracked_window);
            }
        }
    }

    /// Starts at most one service at every eligible output port of every
    /// lane in `step_mask`. Stage/wire order is the scalar engine's
    /// (ascending stages, LSB-first wire bitset); within a wire, lanes
    /// are visited in lane order — invisible to any single lane.
    fn serve<const TRACE: bool>(&mut self, step_mask: u64) {
        let stages = self.stages;
        let ports = self.ports;
        let k = self.k;
        let lanes = self.lanes;
        let now = self.now;
        let cap = self.cap;
        let random_digit = self.random_digit;
        let words = self.active_words;
        for stage in 1..=stages {
            let base = (stage - 1) * words;
            for wi in 0..words {
                let mut word = self.any_active[base + wi];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    let wire = wi * 64 + bit;
                    let qidx = (stage - 1) * ports + wire;
                    let mut lmask = self.lane_active[qidx] & step_mask;
                    while lmask != 0 {
                        let lane = lmask.trailing_zeros() as usize;
                        lmask &= lmask - 1;
                        let qi = qidx * lanes + lane;
                        let head = self.heads[qi];
                        if head == NIL {
                            // Defensive prune, mirroring the scalar scan.
                            self.lane_active[qidx] &= !(1u64 << lane);
                            continue;
                        }
                        let hid = head as usize;
                        if self.busy_until[qi] > now || self.slabs[lane][hid].entered > now {
                            continue;
                        }
                        if stage < stages {
                            let digit = if random_digit {
                                let mut rng = LaneRng {
                                    rngs: &mut self.rngs,
                                    lane,
                                };
                                rng.gen_range(0..self.cfg.k as u64) as usize
                            } else {
                                ((self.slabs[lane][hid].digits >> (4 * stage)) & 0xF) as usize
                            };
                            let next = self.router.next(stage, ports, k, wire, digit);
                            let nidx = stage * ports + next;
                            if let Some(cap) = cap {
                                // Store-and-forward blocking: the head
                                // stays queued until downstream has room.
                                if self.lens[nidx * lanes + lane] as usize >= cap {
                                    continue;
                                }
                            }
                            self.pop_front(qidx, lane);
                            if TRACE && random_digit {
                                // Record the digit only once its forward
                                // commits — a capacity-blocked head
                                // redraws next cycle (same rule as the
                                // scalar engine).
                                let tr =
                                    &mut self.traces.as_mut().expect("trace state")[lane];
                                if let Some(idx) = tr.open_rec(head) {
                                    tr.rt.push_digit(idx as usize, digit as u8);
                                }
                            }
                            self.busy_until[qi] = now + self.slabs[lane][hid].size as u64;
                            self.waits[lane][hid * stages + stage - 1] =
                                (now - self.slabs[lane][hid].entered) as u32;
                            self.slabs[lane][hid].entered = now + 1;
                            self.push_back(stage, next, lane, head);
                        } else {
                            self.pop_front(qidx, lane);
                            self.busy_until[qi] = now + self.slabs[lane][hid].size as u64;
                            self.waits[lane][hid * stages + stage - 1] =
                                (now - self.slabs[lane][hid].entered) as u32;
                            self.deliver::<TRACE>(lane, head);
                        }
                        if self.heads[qi] == NIL {
                            self.lane_active[qidx] &= !(1u64 << lane);
                        }
                    }
                    if self.lane_active[qidx] == 0 {
                        self.any_active[base + wi] &= !(1u64 << bit);
                    }
                }
            }
        }
    }

    /// Records a delivery into the lane's statistics — the exact
    /// accounting of `NetworkSim::deliver`, against the lane's own slab
    /// and stride-`stages` wait array.
    fn deliver<const TRACE: bool>(&mut self, lane: usize, id: u32) {
        self.stats[lane].delivered_total += 1;
        self.free[lane].push(id);
        let msg = self.slabs[lane][id as usize];
        if !msg.tracked {
            return;
        }
        self.tracked_in_flight[lane] -= 1;
        let n = self.stages;
        let waits = &self.waits[lane][id as usize * n..][..n];
        if TRACE {
            let tr = &mut self.traces.as_mut().expect("trace state")[lane];
            if let Some(idx) = tr.open_rec(id) {
                tr.open[id as usize] = NIL;
                tr.rt.set_waits(idx as usize, waits);
            }
        }
        fold_tracked_delivery(&mut self.stats[lane], waits);
    }

    /// Advances the lanes in `step_mask` one cycle.
    fn step<const TRACE: bool>(&mut self, tracked_window: bool, step_mask: u64) {
        self.inject::<TRACE>(tracked_window, step_mask);
        self.serve::<TRACE>(step_mask);
        self.now += 1;
        self.lane_cycles += u64::from(step_mask.count_ones());
    }

    /// Freezes every alive lane whose tracked messages have all been
    /// delivered: records its end-of-run `cycles` and
    /// `in_flight_at_end` exactly as the scalar run would at this point
    /// (lock-step makes "this point" the same cycle count) and removes
    /// it from the alive mask.
    fn finalize_done_lanes(&mut self) {
        let mut m = self.alive;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.tracked_in_flight[lane] == 0 {
                self.alive &= !(1u64 << lane);
                self.stats[lane].cycles = self.now;
                let total_queues = self.ports * self.stages;
                self.stats[lane].in_flight_at_end = (0..total_queues)
                    .map(|q| u64::from(self.lens[q * self.lanes + lane]))
                    .sum();
            }
        }
    }

    /// Runs warmup → measure → drain for the whole block and returns
    /// per-lane statistics in lane order. Telemetry is a pure observer,
    /// exactly as on the scalar path.
    ///
    /// Dispatches to the message-driven stage sweep when the
    /// configuration qualifies (see [`sweep_eligible`]) and to the
    /// cycle-driven lock-step engine otherwise; both are bit-identical
    /// to the scalar simulator.
    pub(crate) fn run_instrumented(self, tel: &Telemetry) -> Vec<NetworkStats> {
        match (sweep_eligible(&self.cfg, self.lanes), tel.active()) {
            (true, true) => self.run_swept::<true, false>(tel).0,
            (true, false) => self.run_swept::<false, false>(tel).0,
            (false, true) => self.drive::<true, false>(tel).0,
            (false, false) => self.drive::<false, false>(tel).0,
        }
    }

    /// Like [`LaneBlock::run_instrumented`], but additionally capturing
    /// sampled per-message lifecycle records into `rts` (one
    /// [`RepTrace`] per lane, in seed order). Tracing is strictly
    /// observational — RNG and dynamics untouched — and the records are
    /// identical to the ones the scalar engine emits for the same seeds,
    /// whichever of the two lane engines (lock-step or stage sweep)
    /// actually runs.
    pub(crate) fn run_traced(
        mut self,
        tel: &Telemetry,
        rts: Vec<RepTrace>,
    ) -> (Vec<NetworkStats>, Vec<RepTrace>) {
        assert_eq!(rts.len(), self.lanes, "one RepTrace per lane");
        self.traces = Some(rts.into_iter().map(TraceState::new).collect());
        let (stats, traces) = match (sweep_eligible(&self.cfg, self.lanes), tel.active()) {
            (true, true) => self.run_swept::<true, true>(tel),
            (true, false) => self.run_swept::<false, true>(tel),
            (false, true) => self.drive::<true, true>(tel),
            (false, false) => self.drive::<false, true>(tel),
        };
        let traces = traces.expect("trace state");
        (stats, traces.into_iter().map(|t| t.rt).collect())
    }

    /// Generates lane `lane`'s injections for cycles `from..to`,
    /// appending each hit to its stage-0 wire's stream `gen_q[wire]` —
    /// within a wire that is exactly the queue's FIFO arrival order,
    /// because the scalar inject scans ports ascending within a cycle.
    /// The lane's generator state lives in registers for the whole
    /// range (the bank is read and written back once), and the draw
    /// sequence — one Bernoulli word per port per cycle, plus the
    /// arrival tail on hits — is the scalar engine's, verbatim.
    ///
    /// Generating past the lane's eventual end cycle is harmless: a
    /// replication's statistics never depend on its RNG state after its
    /// final cycle, and injections at cycle `t` are a pure prefix
    /// function of the stream, so every record with `a < e` is the one
    /// the scalar run makes.
    fn generate_lane<const TRACE: bool>(
        &mut self,
        lane: usize,
        from: u64,
        to: u64,
        gen_q: &mut [Vec<SweptMsg>],
        inj: &mut Vec<u32>,
        tracked_count: &mut u32,
    ) {
        let p = self.cfg.workload.p;
        let stages = self.stages;
        let dig_k = self.cfg.k as u64;
        // Sweep generation visits injections in cycle-then-port order —
        // the scalar inject order — so the tracked counter *is* the
        // cross-engine message ordinal and sampling here selects the
        // exact set the other engines select. Waits are filled in after
        // the lane's sweep is accepted (ordinal-indexed, no open map).
        let mut tr = if TRACE {
            Some(&mut self.traces.as_mut().expect("trace state")[lane])
        } else {
            None
        };
        let tracked_from = self.cfg.warmup_cycles;
        let tracked_to = self.cfg.warmup_cycles + self.cfg.measure_cycles;
        let ports = self.ports;
        let k = self.k;
        let workload = &self.cfg.workload;
        let digit_table = &self.digit_table[..];
        let router = &self.router;
        let mut rng = InlineRng {
            s: [
                self.rngs.s0[lane],
                self.rngs.s1[lane],
                self.rngs.s2[lane],
                self.rngs.s3[lane],
            ],
        };
        for t in from..to {
            let tracked = t >= tracked_from && t < tracked_to;
            let mut injected = 0u32;
            for input in 0..ports {
                let w = rng.next_u64();
                // Bit-exact `gen_bool`: same shift, scale, compare.
                if ((w >> 11) as f64 * F64_SCALE) < p {
                    let (dest, size) =
                        workload.sample_arrival_tail(&mut rng, input as u64, ports as u64);
                    let digit = (digit_table[dest as usize] & 0xF) as usize;
                    let q = router.next(0, ports, k, input, digit);
                    let id = if tracked {
                        let i = *tracked_count;
                        *tracked_count += 1;
                        if TRACE {
                            let tr = tr.as_mut().expect("trace state");
                            if tr.rt.sampled(u64::from(i)) {
                                let idx = tr.rt.begin(u64::from(i), t);
                                tr.rt.set_digits_from_dest(idx, dest, dig_k, stages);
                            }
                        }
                        i
                    } else {
                        UNTRACKED
                    };
                    gen_q[q].push(SweptMsg {
                        a: t as u32,
                        dest: dest as u32,
                        size,
                        id,
                    });
                    injected += 1;
                }
            }
            inj.push(injected);
        }
        self.rngs.s0[lane] = rng.s[0];
        self.rngs.s1[lane] = rng.s[1];
        self.rngs.s2[lane] = rng.s[2];
        self.rngs.s3[lane] = rng.s[3];
    }

    /// Message-driven fast path: generates each lane's whole injection
    /// stream up front, then solves the lane stage by stage with
    /// per-queue merge + Lindley passes ([`sweep_lane`]) instead of a
    /// cycle loop. Bit-identical to [`Self::drive`] and the scalar
    /// engine — same RNG schedule, same FIFO orders, same fold order,
    /// same drain-failure condition.
    fn run_swept<const OBS: bool, const TRACE: bool>(
        mut self,
        tel: &Telemetry,
    ) -> (Vec<NetworkStats>, Option<Vec<TraceState>>) {
        let Some(parents) = build_parent_tables(&self.router, self.ports, self.k, self.stages)
        else {
            // Not a k-in-regular wiring (cannot happen for the shipped
            // topologies) — run the lock-step engine instead.
            return self.drive::<OBS, TRACE>(tel);
        };
        // Same auto-enable as the other drives: with metrics on, capture
        // per-stage pmfs for the distribution sketches.
        if OBS && tel.metrics_enabled() {
            for st in &mut self.stats {
                if st.stage_hists.is_none() {
                    st.stage_hists = Some(vec![IntHistogram::new(); self.stages]);
                }
            }
        }
        let mut obs = if OBS {
            Some(LaneObsState::new(tel, self.stages))
        } else {
            None
        };
        let collect_occ = obs.as_ref().is_some_and(|o| o.metrics);
        let sample_every = obs.as_ref().map_or(u64::MAX, |o| o.sample_every);
        let lanes = self.lanes;
        let stages = self.stages;
        let ports = self.ports;
        let k = self.k;
        let w_cycles = self.cfg.warmup_cycles;
        let m_cycles = self.cfg.measure_cycles;
        let measured_end = w_cycles + m_cycles;
        let max_drain = 200 * self.cfg.stages as u64 + m_cycles + 100_000;
        // The cycle at which the scalar drain's `drained <= max_drain`
        // assertion allows the last delivery; anything later panics.
        let hard_bound = measured_end + max_drain;
        let h_cap = hard_bound + 2;
        let slack = 4 * stages as u64 + 64;
        // Pre-size each wire's stream for its expected arrival count
        // (cycles × p, one Bernoulli per input port spread over `ports`
        // wires) so the generation loop almost never reallocates.
        let est_per_wire =
            ((measured_end + slack) as f64 * self.cfg.workload.p * 1.15) as usize + 16;
        let mut gen_q: Vec<Vec<Vec<SweptMsg>>> = (0..lanes)
            .map(|_| {
                (0..ports)
                    .map(|_| Vec::with_capacity(est_per_wire))
                    .collect()
            })
            .collect();
        let mut inj_per_cycle: Vec<Vec<u32>> = vec![Vec::new(); lanes];
        let mut tracked_counts: Vec<u32> = vec![0u32; lanes];
        let mut generated: Vec<u64> = vec![0u64; lanes];
        macro_rules! gen_to {
            ($lane:expr, $target:expr) => {{
                let lane = $lane;
                let target = $target;
                while generated[lane] < target {
                    let next = (generated[lane] + HEARTBEAT_CHECK_CYCLES).min(target);
                    self.generate_lane::<TRACE>(
                        lane,
                        generated[lane],
                        next,
                        &mut gen_q[lane],
                        &mut inj_per_cycle[lane],
                        &mut tracked_counts[lane],
                    );
                    generated[lane] = next;
                    if OBS {
                        tel.heartbeat_tick();
                    }
                }
            }};
        }
        {
            let _span = tel.span("net/warmup");
            for lane in 0..lanes {
                gen_to!(lane, w_cycles);
            }
        }
        {
            let _span = tel.span("net/measure");
            for lane in 0..lanes {
                gen_to!(lane, measured_end);
            }
        }
        let mut stuck = 0u64;
        let mut e_max = 0u64;
        // Block-level per-(tick, stage) occupancy totals across lanes,
        // for the gauge emission at the end.
        let mut occ_totals: Vec<u64> = Vec::new();
        {
            let _span = tel.span("net/drain");
            let mut horizon = (measured_end + slack).min(h_cap);
            let mut scratch = SweepScratch::default();
            for lane in 0..lanes {
                loop {
                    gen_to!(lane, horizon);
                    let n_tracked = tracked_counts[lane];
                    // One spare row past the tracked block absorbs the
                    // branchless untracked wait writes.
                    self.waits[lane].resize((n_tracked as usize + 1) * stages, 0);
                    macro_rules! sweep {
                        ($occ:expr) => {
                            sweep_lane::<$occ>(
                                stages,
                                ports,
                                k,
                                horizon,
                                hard_bound,
                                horizon >= h_cap,
                                &gen_q[lane],
                                &inj_per_cycle[lane],
                                &self.digit_table,
                                &parents,
                                &mut self.waits[lane],
                                &mut self.stats[lane],
                                n_tracked,
                                measured_end,
                                &mut scratch,
                                sample_every,
                                &mut self.slab_hwm[lane],
                            )
                        };
                    }
                    let outcome = if collect_occ {
                        sweep!(true)
                    } else {
                        sweep!(false)
                    };
                    match outcome {
                        SweepOutcome::Done { e } => {
                            self.lane_cycles += e;
                            e_max = e_max.max(e);
                            if TRACE {
                                // Waits rows are ordinal-indexed, so the
                                // sampled records (begun at generation
                                // time) are completed straight from the
                                // accepted sweep's wait matrix.
                                let tr =
                                    &mut self.traces.as_mut().expect("trace state")[lane];
                                for (idx, ord) in tr.rt.entries() {
                                    tr.rt.set_waits(
                                        idx,
                                        &self.waits[lane][ord as usize * stages..][..stages],
                                    );
                                }
                            }
                            if collect_occ {
                                let o = obs.as_ref().expect("telemetry state");
                                let hist = o.occupancy_hist.as_ref().expect("metrics enabled");
                                let ticks = (e / sample_every) as usize;
                                if occ_totals.len() < ticks * stages {
                                    occ_totals.resize(ticks * stages, 0);
                                }
                                for ti in 0..ticks {
                                    for st in 0..stages {
                                        let row =
                                            &scratch.occ[(ti * stages + st) * ports..][..ports];
                                        let mut sum = 0u64;
                                        for &len in row {
                                            hist.record(len as u64);
                                            sum += len as u64;
                                        }
                                        occ_totals[ti * stages + st] += sum;
                                    }
                                }
                            }
                            break;
                        }
                        SweepOutcome::Retry { needed } => {
                            horizon = (horizon + horizon / 2).max(needed + slack).min(h_cap);
                        }
                        SweepOutcome::Stuck { count } => {
                            stuck += count;
                            break;
                        }
                    }
                }
                if OBS {
                    let o = obs.as_mut().expect("telemetry state");
                    o.push_progress(&self);
                    tel.heartbeat_tick();
                }
            }
            assert!(
                stuck == 0,
                "drain did not complete: {stuck} tracked messages stuck (load too close to 1?)"
            );
            if collect_occ {
                // Emit the per-sample gauge sequence the lock-step block
                // produces: one set per stage per tick, ticks ascending,
                // so both the final value and the high-water mark match.
                let o = obs.as_ref().expect("telemetry state");
                let ticks = ((e_max / sample_every) as usize).min(occ_totals.len() / stages.max(1));
                for ti in 0..ticks {
                    for (st, gauge) in o.stage_occupancy.iter().enumerate() {
                        gauge.set(occ_totals[ti * stages + st]);
                    }
                }
            }
        }
        if OBS {
            obs.as_mut().expect("telemetry state").flush_final(&self);
        }
        let traces = self.traces.take();
        (self.stats, traces)
    }

    fn drive<const OBS: bool, const TRACE: bool>(
        mut self,
        tel: &Telemetry,
    ) -> (Vec<NetworkStats>, Option<Vec<TraceState>>) {
        // Same auto-enable as the scalar drive: with metrics on, capture
        // per-stage pmfs for the distribution sketches. Observational
        // only — dynamics and RNG untouched.
        if OBS && tel.metrics_enabled() {
            for st in &mut self.stats {
                if st.stage_hists.is_none() {
                    st.stage_hists = Some(vec![IntHistogram::new(); self.stages]);
                }
            }
        }
        let mut obs = if OBS {
            Some(LaneObsState::new(tel, self.stages))
        } else {
            None
        };
        let full = self.full_mask;
        {
            let _span = tel.span("net/warmup");
            for _ in 0..self.cfg.warmup_cycles {
                self.step::<TRACE>(false, full);
                if OBS {
                    obs.as_mut().expect("telemetry state").tick(&self, full);
                }
            }
        }
        {
            let _span = tel.span("net/measure");
            for _ in 0..self.cfg.measure_cycles {
                self.step::<TRACE>(true, full);
                if OBS {
                    obs.as_mut().expect("telemetry state").tick(&self, full);
                }
            }
        }
        // Per-lane drain bound: identical to the scalar engine's, and a
        // lane that exceeds it would have exceeded it scalar too (lock
        // step ⇒ same per-lane drain cycle count).
        let max_drain = 200 * self.cfg.stages as u64 + self.cfg.measure_cycles + 100_000;
        let mut drained = 0u64;
        {
            let _span = tel.span("net/drain");
            self.finalize_done_lanes();
            while self.alive != 0 {
                let mask = self.alive;
                self.step::<TRACE>(false, mask);
                drained += 1;
                assert!(
                    drained <= max_drain,
                    "drain did not complete: {} tracked messages stuck (load too close to 1?)",
                    self.tracked_in_flight.iter().sum::<u64>()
                );
                if OBS {
                    obs.as_mut().expect("telemetry state").tick(&self, mask);
                }
                self.finalize_done_lanes();
            }
        }
        if OBS {
            obs.as_mut().expect("telemetry state").flush_final(&self);
        }
        let traces = self.traces.take();
        (self.stats, traces)
    }
}

/// Block-level telemetry state: the lane twin of the scalar `ObsState`.
/// One instance observes the whole block; per-lane end-of-run values
/// (counters, sketches, `net.runs`) are flushed per lane in lane order,
/// so a lane block reports exactly what its replications would have
/// reported scalar — plus a `net.lane_runs` counter marking how many of
/// those replications ran lane-batched.
struct LaneObsState<'t> {
    tel: &'t Telemetry,
    metrics: bool,
    sample_every: u64,
    until_sample: u64,
    until_heartbeat: u64,
    last_cycles: u64,
    last_injected: u64,
    last_delivered: u64,
    last_rejected: u64,
    stage_occupancy: Vec<Arc<Gauge>>,
    /// Worker-local per-queue occupancy samples across all lanes, folded
    /// into the shared registry once at flush (same contention-free
    /// scheme as the scalar path).
    occupancy_hist: Option<Histogram>,
}

impl<'t> LaneObsState<'t> {
    fn new(tel: &'t Telemetry, stages: usize) -> Self {
        let metrics = tel.metrics_enabled();
        let stage_occupancy = if metrics {
            (0..stages)
                .map(|s| {
                    tel.registry()
                        .gauge(&format!("net.occupancy.stage{:02}", s + 1))
                })
                .collect()
        } else {
            Vec::new()
        };
        let occupancy_hist = metrics.then(|| Histogram::new(POW2_BOUNDS));
        let sample_every = tel.config().sample_every.max(1);
        LaneObsState {
            tel,
            metrics,
            sample_every,
            until_sample: sample_every,
            until_heartbeat: HEARTBEAT_CHECK_CYCLES,
            last_cycles: 0,
            last_injected: 0,
            last_delivered: 0,
            last_rejected: 0,
            stage_occupancy,
            occupancy_hist,
        }
    }

    /// Per-block-cycle bookkeeping. Lock-step alignment means a block
    /// cycle is the same cycle index in every stepped lane, so sampling
    /// on block-cycle countdowns samples each lane at exactly the
    /// cycles its scalar run would have been sampled at.
    #[inline]
    fn tick(&mut self, block: &LaneBlock, stepped: u64) {
        if self.metrics {
            self.until_sample -= 1;
            if self.until_sample == 0 {
                self.until_sample = self.sample_every;
                self.sample_occupancy(block, stepped);
            }
        }
        self.until_heartbeat -= 1;
        if self.until_heartbeat == 0 {
            self.until_heartbeat = HEARTBEAT_CHECK_CYCLES;
            self.push_progress(block);
            self.tel.heartbeat_tick();
        }
    }

    /// Samples every stepped lane's queue occupancies: per-queue values
    /// into the histogram (one sample per queue per lane — the same
    /// multiset the scalar runs would record) and per-stage totals,
    /// summed across stepped lanes, into the gauges.
    #[cold]
    fn sample_occupancy(&self, block: &LaneBlock, stepped: u64) {
        let hist = self.occupancy_hist.as_ref().expect("metrics enabled");
        for (s, gauge) in self.stage_occupancy.iter().enumerate() {
            let mut total = 0u64;
            for wire in 0..block.ports {
                let qbase = (s * block.ports + wire) * block.lanes;
                let mut m = stepped;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let len = u64::from(block.lens[qbase + lane]);
                    total += len;
                    hist.record(len);
                }
            }
            gauge.set(total);
        }
    }

    /// Pushes deltas since the last push: lane-cycles (each stepped lane
    /// counts its own cycle, so totals match scalar replication sums)
    /// and message counters summed across lanes.
    fn push_progress(&mut self, block: &LaneBlock) {
        let injected: u64 = block.stats.iter().map(|s| s.injected_total).sum();
        let delivered: u64 = block.stats.iter().map(|s| s.delivered_total).sum();
        let rejected: u64 = block.stats.iter().map(|s| s.rejected_total).sum();
        self.tel
            .progress()
            .add_cycles(block.lane_cycles - self.last_cycles);
        self.tel.progress().add_messages(
            injected - self.last_injected,
            delivered - self.last_delivered,
            rejected - self.last_rejected,
        );
        self.last_cycles = block.lane_cycles;
        self.last_injected = injected;
        self.last_delivered = delivered;
        self.last_rejected = rejected;
    }

    /// End-of-block flush: final progress delta, then per lane (in lane
    /// order) the same counters, slab high-water gauge, `net.runs`
    /// increment, and waiting-time sketches a scalar run flushes — plus
    /// `net.lane_runs`, so manifests record how many replications ran
    /// on the lane engine.
    fn flush_final(&mut self, block: &LaneBlock) {
        self.push_progress(block);
        if !self.metrics {
            return;
        }
        let reg = self.tel.registry();
        let sketches = self.tel.sketches();
        for lane in 0..block.lanes {
            let st = &block.stats[lane];
            reg.counter("net.injected_total").add(st.injected_total);
            reg.counter("net.delivered_total").add(st.delivered_total);
            reg.counter("net.rejected_total").add(st.rejected_total);
            reg.counter("net.in_flight_at_end").add(st.in_flight_at_end);
            reg.counter("net.cycles").add(st.cycles);
            reg.counter("net.tracked_injected").add(st.injected);
            reg.counter("net.tracked_delivered").add(st.delivered);
            reg.gauge("net.slab_high_water")
                .set(block.slab_hwm[lane].max(block.slabs[lane].len() as u64));
            reg.counter("net.runs").inc();
            reg.counter("net.lane_runs").inc();
            if let Some(hists) = &st.stage_hists {
                for (i, h) in hists.iter().enumerate() {
                    sketches.merge_sketch(
                        &format!("net.wait.stage{:02}", i + 1),
                        &banyan_obs::DistSketch::from_dense_counts(h.counts()),
                    );
                }
            }
            sketches.merge_sketch(
                "net.wait.total",
                &banyan_obs::DistSketch::from_dense_counts(st.total_hist.counts()),
            );
        }
        if let Some(local) = &self.occupancy_hist {
            reg.histogram("net.queue_occupancy", POW2_BOUNDS)
                .merge(local);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkSim;
    use crate::traffic::{ServiceDist, Workload};

    fn quick_cfg(k: u32, stages: u32, p: f64, m: u32) -> NetworkConfig {
        NetworkConfig {
            warmup_cycles: 300,
            measure_cycles: 2_000,
            ..NetworkConfig::new(k, stages, Workload::uniform(p, m))
        }
    }

    fn scalar_run(cfg: &NetworkConfig, seed: u64) -> NetworkStats {
        let mut c = cfg.clone();
        c.seed = seed;
        NetworkSim::new(c).run()
    }

    fn assert_stats_bit_identical(a: &NetworkStats, b: &NetworkStats, ctx: &str) {
        assert_eq!(a.injected, b.injected, "{ctx}: injected");
        assert_eq!(a.delivered, b.delivered, "{ctx}: delivered");
        assert_eq!(a.injected_total, b.injected_total, "{ctx}: injected_total");
        assert_eq!(
            a.delivered_total, b.delivered_total,
            "{ctx}: delivered_total"
        );
        assert_eq!(a.rejected_total, b.rejected_total, "{ctx}: rejected_total");
        assert_eq!(a.in_flight_at_end, b.in_flight_at_end, "{ctx}: in_flight");
        assert_eq!(a.cycles, b.cycles, "{ctx}: cycles");
        for (i, (x, y)) in a.stage_waits.iter().zip(&b.stage_waits).enumerate() {
            assert_eq!(x.count(), y.count(), "{ctx}: stage {i} count");
            assert_eq!(
                x.mean().to_bits(),
                y.mean().to_bits(),
                "{ctx}: stage {i} mean"
            );
            assert_eq!(
                x.variance().to_bits(),
                y.variance().to_bits(),
                "{ctx}: stage {i} variance"
            );
        }
        assert_eq!(
            a.total_wait.mean().to_bits(),
            b.total_wait.mean().to_bits(),
            "{ctx}: total mean"
        );
        assert_eq!(
            a.total_wait.variance().to_bits(),
            b.total_wait.variance().to_bits(),
            "{ctx}: total variance"
        );
        assert_eq!(a.total_hist, b.total_hist, "{ctx}: total hist");
    }

    #[test]
    fn packed_digits_match_scalar_extraction() {
        for (k, stages) in [(2u64, 6usize), (3, 4), (16, 5), (10, 3)] {
            let ports = k.pow(stages as u32);
            for dest in [0, 1, ports / 2, ports - 1] {
                let packed = pack_digits(dest, k, stages);
                let mut rem = dest;
                let mut expect = vec![0u64; stages];
                for d in expect.iter_mut().rev() {
                    *d = rem % k;
                    rem /= k;
                }
                for (j, &d) in expect.iter().enumerate() {
                    assert_eq!(
                        (packed >> (4 * j)) & 0xF,
                        d,
                        "k={k} stages={stages} dest={dest} digit {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_rng_bank_matches_scalar_streams() {
        let seeds = [7u64, 0, u64::MAX, 0xDEAD];
        let mut bank = LaneRngs::new(&seeds);
        let mut scalars: Vec<SmallRng> =
            seeds.iter().map(|&s| SmallRng::seed_from_u64(s)).collect();
        let mut out = vec![0u64; seeds.len()];
        for round in 0..64 {
            if round % 2 == 0 {
                bank.fill_all(&mut out);
            } else {
                for (l, o) in out.iter_mut().enumerate() {
                    *o = bank.next_u64(l);
                }
            }
            for (l, s) in scalars.iter_mut().enumerate() {
                assert_eq!(out[l], s.next_u64(), "round {round} lane {l}");
            }
        }
    }

    #[test]
    fn single_lane_matches_scalar() {
        let cfg = quick_cfg(2, 4, 0.6, 2);
        let lane = LaneBlock::new(&cfg, &[cfg.seed])
            .run_instrumented(&Telemetry::off())
            .remove(0);
        let scalar = scalar_run(&cfg, cfg.seed);
        assert_stats_bit_identical(&lane, &scalar, "single lane");
    }

    #[test]
    fn every_lane_matches_its_scalar_replication() {
        let cfg = quick_cfg(2, 3, 0.5, 1);
        let seeds: Vec<u64> = (0..7).map(|i| cfg.seed.wrapping_add(i)).collect();
        let lanes = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        for (i, (lane, &seed)) in lanes.iter().zip(&seeds).enumerate() {
            let scalar = scalar_run(&cfg, seed);
            assert_stats_bit_identical(lane, &scalar, &format!("lane {i}"));
        }
    }

    #[test]
    fn lanes_match_scalar_with_finite_buffers_and_blocking() {
        let mut cfg = quick_cfg(2, 4, 0.8, 2);
        cfg.buffer_capacity = Some(2);
        let seeds: Vec<u64> = (0..5).map(|i| cfg.seed.wrapping_add(i)).collect();
        let lanes = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        for (i, (lane, &seed)) in lanes.iter().zip(&seeds).enumerate() {
            let scalar = scalar_run(&cfg, seed);
            assert!(lane.rejected_total > 0 || scalar.rejected_total == 0);
            assert_stats_bit_identical(lane, &scalar, &format!("finite-buffer lane {i}"));
        }
    }

    #[test]
    fn lanes_match_scalar_in_random_digit_mode() {
        let mut cfg = quick_cfg(3, 4, 0.5, 1).with_random_digit_width(2);
        cfg.measure_cycles = 1_500;
        let seeds: Vec<u64> = (0..4).map(|i| cfg.seed.wrapping_add(i)).collect();
        let lanes = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        for (i, (lane, &seed)) in lanes.iter().zip(&seeds).enumerate() {
            let scalar = scalar_run(&cfg, seed);
            assert_stats_bit_identical(lane, &scalar, &format!("random-digit lane {i}"));
        }
    }

    #[test]
    fn lanes_match_scalar_for_hotspot_and_geometric_service() {
        let mut cfg = NetworkConfig::new(
            2,
            3,
            Workload {
                p: 0.3,
                q: 0.2,
                service: ServiceDist::Geometric(0.5),
            },
        );
        cfg.warmup_cycles = 200;
        cfg.measure_cycles = 1_500;
        let seeds: Vec<u64> = (0..6).map(|i| cfg.seed.wrapping_add(i)).collect();
        let lanes = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        for (i, (lane, &seed)) in lanes.iter().zip(&seeds).enumerate() {
            let scalar = scalar_run(&cfg, seed);
            assert_stats_bit_identical(lane, &scalar, &format!("hotspot lane {i}"));
        }
    }

    #[test]
    fn lanes_match_scalar_with_correlations_and_stage_hists() {
        let mut cfg = quick_cfg(2, 5, 0.5, 1);
        cfg.collect_correlations = true;
        cfg.collect_stage_histograms = true;
        let seeds: Vec<u64> = (0..3).map(|i| cfg.seed.wrapping_add(i)).collect();
        let lanes = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        for (i, (lane, &seed)) in lanes.iter().zip(&seeds).enumerate() {
            let scalar = scalar_run(&cfg, seed);
            assert_stats_bit_identical(lane, &scalar, &format!("corr lane {i}"));
            let lc = lane.correlations.as_ref().unwrap();
            let sc = scalar.correlations.as_ref().unwrap();
            assert_eq!(
                lc.correlation(1, 2).to_bits(),
                sc.correlation(1, 2).to_bits(),
                "lane {i} correlation"
            );
            assert_eq!(lane.stage_hists, scalar.stage_hists, "lane {i} stage hists");
        }
    }

    #[test]
    fn butterfly_routing_matches_scalar() {
        let mut cfg = quick_cfg(2, 5, 0.5, 1);
        cfg.routing = Routing::Butterfly;
        let seeds: Vec<u64> = (0..3).map(|i| cfg.seed.wrapping_add(i)).collect();
        let lanes = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        for (i, (lane, &seed)) in lanes.iter().zip(&seeds).enumerate() {
            let scalar = scalar_run(&cfg, seed);
            assert_stats_bit_identical(lane, &scalar, &format!("butterfly lane {i}"));
        }
    }

    #[test]
    fn instrumented_block_is_bit_identical_and_reports_lane_runs() {
        use banyan_obs::TelemetryConfig;
        let cfg = quick_cfg(2, 3, 0.5, 1);
        let seeds: Vec<u64> = (0..4).map(|i| cfg.seed.wrapping_add(i)).collect();
        let plain = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        let tel = Telemetry::new(TelemetryConfig::on());
        let inst = LaneBlock::new(&cfg, &seeds).run_instrumented(&tel);
        for (i, (a, b)) in plain.iter().zip(&inst).enumerate() {
            assert_eq!(a.delivered, b.delivered, "lane {i}");
            assert_eq!(
                a.total_wait.mean().to_bits(),
                b.total_wait.mean().to_bits(),
                "lane {i}"
            );
        }
        let reg = tel.registry();
        assert_eq!(reg.counter_value("net.runs"), Some(4));
        assert_eq!(reg.counter_value("net.lane_runs"), Some(4));
        let delivered: u64 = inst.iter().map(|s| s.delivered_total).sum();
        assert_eq!(reg.counter_value("net.delivered_total"), Some(delivered));
        // Conservation ledger closes across the whole block.
        assert_eq!(
            reg.counter_value("net.injected_total").unwrap(),
            reg.counter_value("net.delivered_total").unwrap()
                + reg.counter_value("net.in_flight_at_end").unwrap()
        );
        // Progress saw every lane's cycles.
        let cycles: u64 = inst.iter().map(|s| s.cycles).sum();
        assert_eq!(tel.progress().snapshot().cycles, cycles);
        // One span set per block (not per lane).
        for phase in ["net/warmup", "net/measure", "net/drain"] {
            assert_eq!(tel.spans().stat(phase).unwrap().calls, 1, "{phase}");
        }
    }

    #[test]
    fn wait_sketches_fold_identically_to_scalar_runs() {
        use banyan_obs::TelemetryConfig;
        let cfg = quick_cfg(2, 3, 0.5, 1);
        let seeds: Vec<u64> = (0..4).map(|i| cfg.seed.wrapping_add(i)).collect();
        let tel_lanes = Telemetry::new(TelemetryConfig::on());
        LaneBlock::new(&cfg, &seeds).run_instrumented(&tel_lanes);
        let tel_scalar = Telemetry::new(TelemetryConfig::on());
        for &seed in &seeds {
            let mut c = cfg.clone();
            c.seed = seed;
            NetworkSim::new(c).run_instrumented(&tel_scalar);
        }
        for name in ["net.wait.stage01", "net.wait.stage03", "net.wait.total"] {
            let a = tel_lanes.sketches().get(name).expect(name);
            let b = tel_scalar.sketches().get(name).expect(name);
            assert_eq!(a.count(), b.count(), "{name}");
            assert_eq!(a.pmf_points(), b.pmf_points(), "{name}");
        }
    }

    #[test]
    fn max_width_block_runs_and_matches_spot_checked_lanes() {
        let mut cfg = quick_cfg(2, 3, 0.5, 1);
        cfg.warmup_cycles = 100;
        cfg.measure_cycles = 400;
        let seeds: Vec<u64> = (0..MAX_LANES as u64)
            .map(|i| cfg.seed.wrapping_add(i))
            .collect();
        let lanes = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        assert_eq!(lanes.len(), MAX_LANES);
        for &i in &[0usize, 31, 63] {
            let scalar = scalar_run(&cfg, seeds[i]);
            assert_stats_bit_identical(&lanes[i], &scalar, &format!("lane {i}/64"));
        }
    }

    #[test]
    fn lockstep_engine_stays_bit_identical_on_sweep_eligible_configs() {
        // `run_instrumented` routes eligible configs to the sweep, so the
        // lock-step engine would silently lose scalar parity without a
        // direct exercise. Run both engines on the same eligible config.
        let cfg = quick_cfg(2, 4, 0.6, 2);
        assert!(sweep_eligible(&cfg, 3), "config must exercise the sweep");
        let seeds: Vec<u64> = (0..3).map(|i| cfg.seed.wrapping_add(i)).collect();
        let swept = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        let lockstep = LaneBlock::new(&cfg, &seeds).drive::<false, false>(&Telemetry::off()).0;
        for (i, ((sw, ls), &seed)) in swept.iter().zip(&lockstep).zip(&seeds).enumerate() {
            let scalar = scalar_run(&cfg, seed);
            assert_stats_bit_identical(sw, &scalar, &format!("swept lane {i}"));
            assert_stats_bit_identical(ls, &scalar, &format!("lock-step lane {i}"));
        }
    }

    #[test]
    fn heavy_load_drain_extension_matches_scalar() {
        // ρ close to 1 makes the first sweep horizon too short, forcing
        // the Retry path (horizon growth + full scratch reset). The
        // retried sweep must still be bit-identical to the scalar run.
        let mut cfg = quick_cfg(2, 3, 0.97, 1);
        cfg.measure_cycles = 1_500;
        let seeds: Vec<u64> = (0..2).map(|i| cfg.seed.wrapping_add(i)).collect();
        let lanes = LaneBlock::new(&cfg, &seeds).run_instrumented(&Telemetry::off());
        let measured_end = cfg.warmup_cycles + cfg.measure_cycles;
        for (i, (lane, &seed)) in lanes.iter().zip(&seeds).enumerate() {
            let scalar = scalar_run(&cfg, seed);
            assert_stats_bit_identical(lane, &scalar, &format!("heavy lane {i}"));
            assert!(
                lane.cycles > measured_end,
                "lane {i}: expected a drain extension past {measured_end}, got {}",
                lane.cycles
            );
        }
    }

    #[test]
    fn swept_and_lockstep_telemetry_agree() {
        use banyan_obs::TelemetryConfig;
        let cfg = quick_cfg(2, 3, 0.5, 1);
        assert!(sweep_eligible(&cfg, 4));
        let seeds: Vec<u64> = (0..4).map(|i| cfg.seed.wrapping_add(i)).collect();
        let mk = || Telemetry::new(TelemetryConfig::on().with_sample_every(64));
        let tel_sw = mk();
        LaneBlock::new(&cfg, &seeds).run_swept::<true, false>(&tel_sw);
        let tel_ls = mk();
        LaneBlock::new(&cfg, &seeds).drive::<true, false>(&tel_ls);
        let (a, b) = (tel_sw.registry(), tel_ls.registry());
        for name in [
            "net.injected_total",
            "net.delivered_total",
            "net.rejected_total",
            "net.in_flight_at_end",
            "net.cycles",
            "net.tracked_injected",
            "net.tracked_delivered",
            "net.runs",
            "net.lane_runs",
        ] {
            assert_eq!(a.counter_value(name), b.counter_value(name), "{name}");
        }
        assert_eq!(
            a.gauge("net.slab_high_water").get(),
            b.gauge("net.slab_high_water").get(),
            "slab high-water"
        );
        for s in 1..=3 {
            let name = format!("net.occupancy.stage{s:02}");
            assert_eq!(a.gauge(&name).get(), b.gauge(&name).get(), "{name}");
        }
        let ha = a.histogram("net.queue_occupancy", POW2_BOUNDS);
        let hb = b.histogram("net.queue_occupancy", POW2_BOUNDS);
        assert_eq!(ha.bucket_counts(), hb.bucket_counts(), "occupancy hist");
        for name in ["net.wait.stage01", "net.wait.stage03", "net.wait.total"] {
            let sa = tel_sw.sketches().get(name).expect(name);
            let sb = tel_ls.sketches().get(name).expect(name);
            assert_eq!(sa.count(), sb.count(), "{name} count");
            assert_eq!(sa.pmf_points(), sb.pmf_points(), "{name} pmf");
        }
        assert_eq!(
            tel_sw.progress().snapshot().cycles,
            tel_ls.progress().snapshot().cycles,
            "progress cycles"
        );
    }

    #[test]
    #[should_panic(expected = "k ≤ 16")]
    fn wide_switches_rejected_in_tag_mode() {
        let cfg = NetworkConfig::new(17, 2, Workload::uniform(0.1, 1));
        LaneBlock::new(&cfg, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn zero_lanes_rejected() {
        let cfg = quick_cfg(2, 3, 0.5, 1);
        LaneBlock::new(&cfg, &[]);
    }
}
