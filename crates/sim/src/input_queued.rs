//! Input-queued switch discipline — the contrast that motivates the
//! paper's output-queued model.
//!
//! The paper's switches buffer at the **outputs** and can accept any
//! number of arrivals per cycle (§II) — an idealization that requires a
//! switch fabric with internal speedup `k`. The cheaper alternative,
//! FIFO buffers at the **inputs**, suffers head-of-line (HOL) blocking:
//! a message stuck behind a head contending for a busy output cannot
//! move even when its own output is free. This simulator implements that
//! discipline on the same omega wiring, with per-switch rotating-priority
//! arbitration, so the two architectures can be compared directly — the
//! `ablation_discipline` experiment shows the input-queued network
//! saturating at far lower load, which is exactly why the
//! Ultracomputer/RP3 designs (and the paper's analysis) buffer at
//! outputs.

use crate::network::{NetworkStats, MAX_STAGES};
use crate::topology::OmegaTopology;
use crate::traffic::Workload;
use banyan_prng::rngs::SmallRng;
use banyan_prng::SeedableRng;
use std::collections::VecDeque;

/// Configuration of an input-queued network simulation.
#[derive(Clone, Debug)]
pub struct InputQueuedConfig {
    /// Switch arity `k` (network has `k^stages` ports).
    pub k: u32,
    /// Number of stages.
    pub stages: u32,
    /// Offered traffic (uniform only; hot-spot destinations are allowed
    /// but arbitration fairness is only rotating-priority).
    pub workload: Workload,
    /// Warmup cycles before measurement.
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

impl InputQueuedConfig {
    /// Default protocol for the given topology/workload.
    pub fn new(k: u32, stages: u32, workload: Workload) -> Self {
        InputQueuedConfig {
            k,
            stages,
            workload,
            warmup_cycles: 2_000,
            measure_cycles: 20_000,
            seed: 0x1BAD_5EED,
        }
    }
}

#[derive(Clone, Debug)]
struct Message {
    dest: u64,
    size: u32,
    entered: u64,
    tracked: bool,
    waits: [u32; MAX_STAGES],
}

/// Input-queued network simulator. Construct and [`InputQueuedSim::run`].
pub struct InputQueuedSim {
    topo: OmegaTopology,
    cfg: InputQueuedConfig,
    /// FIFO per stage *input* wire: `queues[(stage-1)*N + wire]`.
    queues: Vec<VecDeque<Message>>,
    /// Output-port busy horizon: `busy[(stage-1)*N + out_wire]`.
    busy_until: Vec<u64>,
    /// Input wires feeding each switch (same at every stage).
    switch_inputs: Vec<Vec<u64>>,
    rng: SmallRng,
    now: u64,
    tracked_in_flight: u64,
    stats: NetworkStats,
}

impl InputQueuedSim {
    /// Builds the simulator.
    pub fn new(cfg: InputQueuedConfig) -> Self {
        cfg.workload.validate();
        assert!(
            (cfg.stages as usize) <= MAX_STAGES,
            "at most {MAX_STAGES} stages supported"
        );
        let topo = OmegaTopology::new(cfg.k, cfg.stages);
        let n = topo.ports();
        let switches = topo.switches_per_stage() as usize;
        let mut switch_inputs = vec![Vec::new(); switches];
        for w in 0..n {
            switch_inputs[(topo.shuffle(w) / cfg.k as u64) as usize].push(w);
        }
        let total = (n * cfg.stages as u64) as usize;
        InputQueuedSim {
            topo,
            rng: SmallRng::seed_from_u64(cfg.seed),
            queues: vec![VecDeque::new(); total],
            busy_until: vec![0; total],
            switch_inputs,
            now: 0,
            tracked_in_flight: 0,
            stats: NetworkStats::new(cfg.stages, false, false),
            cfg,
        }
    }

    #[inline]
    fn idx(&self, stage: u32, wire: u64) -> usize {
        ((stage as u64 - 1) * self.topo.ports() + wire) as usize
    }

    fn inject(&mut self, tracked_window: bool) {
        let ports = self.topo.ports();
        for input in 0..ports {
            if let Some((dest, size)) =
                self.cfg
                    .workload
                    .sample_arrival(&mut self.rng, input, ports)
            {
                self.stats.injected_total += 1;
                if tracked_window {
                    self.stats.injected += 1;
                    self.tracked_in_flight += 1;
                }
                let idx = self.idx(1, input);
                self.queues[idx].push_back(Message {
                    dest,
                    size,
                    entered: self.now,
                    tracked: tracked_window,
                    waits: [0; MAX_STAGES],
                });
            }
        }
    }

    /// One arbitration round at every switch of every stage.
    fn serve(&mut self) {
        let k = self.cfg.k as usize;
        let stages = self.cfg.stages;
        for stage in 1..=stages {
            for sw in 0..self.switch_inputs.len() {
                // Rotating priority: a different input wins ties each
                // cycle, so no input starves.
                let start = (self.now as usize + sw) % k;
                for off in 0..k {
                    let wire = self.switch_inputs[sw][(start + off) % k];
                    let qidx = self.idx(stage, wire);
                    let eligible =
                        matches!(self.queues[qidx].front(), Some(h) if h.entered <= self.now);
                    if !eligible {
                        continue;
                    }
                    let head = self.queues[qidx].front().expect("checked");
                    let out = self.topo.next_wire(stage, wire, head.dest);
                    let oidx = self.idx(stage, out);
                    if self.busy_until[oidx] > self.now {
                        continue; // HOL: this head blocks the whole queue
                    }
                    let mut msg = self.queues[qidx].pop_front().expect("checked");
                    self.busy_until[oidx] = self.now + msg.size as u64;
                    msg.waits[stage as usize - 1] = (self.now - msg.entered) as u32;
                    if stage < stages {
                        msg.entered = self.now + 1;
                        // Stage-(i+1) input wire = this stage's output wire.
                        let nidx = self.idx(stage + 1, out);
                        self.queues[nidx].push_back(msg);
                    } else {
                        self.deliver(msg);
                    }
                }
            }
        }
    }

    fn deliver(&mut self, msg: Message) {
        if !msg.tracked {
            return;
        }
        self.tracked_in_flight -= 1;
        self.stats.delivered += 1;
        let n = self.cfg.stages as usize;
        let mut total = 0u64;
        for (i, &w) in msg.waits[..n].iter().enumerate() {
            self.stats.stage_waits[i].push(w as f64);
            total += w as u64;
        }
        self.stats.total_wait.push(total as f64);
        self.stats.total_hist.record(total);
    }

    fn step(&mut self, tracked_window: bool) {
        self.inject(tracked_window);
        self.serve();
        self.now += 1;
    }

    /// Runs warmup → measure → drain and returns the statistics.
    ///
    /// # Panics
    /// Panics if tracked messages cannot drain within a generous bound —
    /// which happens when the offered load exceeds the (HOL-limited)
    /// saturation throughput and queues grow without bound.
    pub fn run(mut self) -> NetworkStats {
        for _ in 0..self.cfg.warmup_cycles {
            self.step(false);
        }
        for _ in 0..self.cfg.measure_cycles {
            self.step(true);
        }
        let max_drain = 200 * self.cfg.stages as u64 + 10 * self.cfg.measure_cycles + 100_000;
        let mut drained = 0u64;
        while self.tracked_in_flight > 0 {
            self.step(false);
            drained += 1;
            assert!(
                drained <= max_drain,
                "drain did not complete: {} tracked messages stuck (offered load beyond \
                 the input-queued saturation point?)",
                self.tracked_in_flight
            );
        }
        self.stats.cycles = self.now;
        self.stats
    }
}

/// Convenience: build and run in one call.
pub fn run_input_queued(cfg: InputQueuedConfig) -> NetworkStats {
    InputQueuedSim::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{run_network, NetworkConfig};

    fn quick(k: u32, stages: u32, p: f64) -> InputQueuedConfig {
        InputQueuedConfig {
            warmup_cycles: 500,
            measure_cycles: 6_000,
            ..InputQueuedConfig::new(k, stages, Workload::uniform(p, 1))
        }
    }

    #[test]
    fn conserves_messages_at_light_load() {
        let stats = run_input_queued(quick(2, 4, 0.3));
        assert!(stats.injected > 0);
        assert_eq!(stats.injected, stats.delivered);
        assert_eq!(stats.total_hist.total(), stats.delivered);
    }

    #[test]
    fn light_load_matches_output_queued() {
        // With almost no contention the discipline cannot matter.
        let iq = run_input_queued(quick(2, 4, 0.05));
        let mut oq_cfg = NetworkConfig::new(2, 4, Workload::uniform(0.05, 1));
        oq_cfg.warmup_cycles = 500;
        oq_cfg.measure_cycles = 6_000;
        let oq = run_network(oq_cfg);
        assert!(
            (iq.total_wait.mean() - oq.total_wait.mean()).abs() < 0.02,
            "iq {} vs oq {}",
            iq.total_wait.mean(),
            oq.total_wait.mean()
        );
    }

    #[test]
    fn hol_blocking_costs_at_moderate_load() {
        // At p = 0.5 the input-queued network waits strictly longer than
        // the output-queued one (HOL blocking).
        let iq = run_input_queued(quick(2, 5, 0.5));
        let mut oq_cfg = NetworkConfig::new(2, 5, Workload::uniform(0.5, 1));
        oq_cfg.warmup_cycles = 500;
        oq_cfg.measure_cycles = 6_000;
        let oq = run_network(oq_cfg);
        assert!(
            iq.total_wait.mean() > 1.3 * oq.total_wait.mean(),
            "iq {} vs oq {}",
            iq.total_wait.mean(),
            oq.total_wait.mean()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_input_queued(quick(2, 3, 0.4));
        let b = run_input_queued(quick(2, 3, 0.4));
        assert_eq!(a.total_wait.mean(), b.total_wait.mean());
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn rotating_priority_is_fair() {
        // Under symmetric saturating-ish traffic both inputs of a switch
        // should be served about equally: check stage-1 waits of the two
        // inputs of one switch differ by little. We proxy this with the
        // overall stage-1 wait being finite and the run draining.
        let stats = run_input_queued(quick(2, 3, 0.45));
        assert_eq!(stats.injected, stats.delivered);
        assert!(stats.stage_waits[0].mean() < 20.0);
    }
}
