//! Traffic generation: arrival patterns and service-time samplers.
//!
//! Mirrors the §III traffic classes of the paper on the *sampling* side
//! (the analytical side lives in `banyan-core`). Destinations are either
//! uniform over all network outputs or "favorite" with probability `q`
//! (§III-A-3 / §IV-D, hot-spot traffic where each input owns a private
//! memory module); message sizes come from a [`ServiceDist`].

use banyan_prng::Rng;

/// A sampleable service-time (message size) distribution.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceDist {
    /// Every message takes exactly `m >= 1` cycles per stage.
    Constant(u32),
    /// Finite mixture of constant sizes: `(size, probability)` pairs.
    Mixed(Vec<(u32, f64)>),
    /// Geometric with success probability `μ ∈ (0, 1]` (mean `1/μ`),
    /// capped at `u32::MAX` cycles.
    Geometric(f64),
}

impl ServiceDist {
    /// Unit service: one cycle per stage.
    pub fn unit() -> Self {
        ServiceDist::Constant(1)
    }

    /// Validates the parameters, panicking on nonsense.
    pub fn validate(&self) {
        match self {
            ServiceDist::Constant(m) => assert!(*m >= 1, "size must be >= 1"),
            ServiceDist::Mixed(sizes) => {
                assert!(!sizes.is_empty(), "mixture must be non-empty");
                assert!(sizes.iter().all(|&(m, _)| m >= 1), "sizes must be >= 1");
                let total: f64 = sizes.iter().map(|&(_, g)| g).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "mixture weights must sum to 1, got {total}"
                );
            }
            ServiceDist::Geometric(mu) => {
                assert!(*mu > 0.0 && *mu <= 1.0, "μ must be in (0,1], got {mu}")
            }
        }
    }

    /// Mean service time.
    pub fn mean(&self) -> f64 {
        match self {
            ServiceDist::Constant(m) => *m as f64,
            ServiceDist::Mixed(sizes) => sizes.iter().map(|&(m, g)| m as f64 * g).sum(),
            ServiceDist::Geometric(mu) => 1.0 / mu,
        }
    }

    /// Draws one service time.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            ServiceDist::Constant(m) => *m,
            ServiceDist::Mixed(sizes) => {
                let mut u: f64 = rng.gen();
                for &(m, g) in sizes {
                    if u < g {
                        return m;
                    }
                    u -= g;
                }
                sizes.last().expect("validated non-empty").0
            }
            ServiceDist::Geometric(mu) => {
                // Inverse-CDF sampling: S = 1 + ⌊ln U / ln(1−μ)⌋.
                if *mu >= 1.0 {
                    return 1;
                }
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let s = 1.0 + (u.ln() / (1.0 - mu).ln()).floor();
                s.min(u32::MAX as f64) as u32
            }
        }
    }
}

/// Workload offered to the network: per-input per-cycle arrival
/// probability `p`, hot-spot factor `q`, and a message-size distribution.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Probability that an input port generates a message in a cycle.
    pub p: f64,
    /// Probability that a generated message goes to the input's favorite
    /// output (its own index); with probability `1 − q` the destination
    /// is uniform over all outputs (including the favorite), as in
    /// §III-A-3.
    pub q: f64,
    /// Message-size distribution.
    pub service: ServiceDist,
}

impl Workload {
    /// Uniform traffic with constant message size.
    pub fn uniform(p: f64, m: u32) -> Self {
        Workload {
            p,
            q: 0.0,
            service: ServiceDist::Constant(m),
        }
    }

    /// Hot-spot traffic (§IV-D) with unit-size messages.
    pub fn hotspot(p: f64, q: f64) -> Self {
        Workload {
            p,
            q,
            service: ServiceDist::unit(),
        }
    }

    /// Validates all fields.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.p), "p must be a probability");
        assert!((0.0..=1.0).contains(&self.q), "q must be a probability");
        self.service.validate();
    }

    /// Offered traffic intensity per output port, `ρ = p·E[S]` (square
    /// switches: λ = p).
    pub fn rho(&self) -> f64 {
        self.p * self.service.mean()
    }

    /// Samples this cycle's arrival at one input: `None` (no message) or
    /// `Some((dest, size))`.
    pub fn sample_arrival<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        input: u64,
        ports: u64,
    ) -> Option<(u64, u32)> {
        if !rng.gen_bool(self.p) {
            return None;
        }
        Some(self.sample_arrival_tail(rng, input, ports))
    }

    /// The destination/size draws of [`Workload::sample_arrival`], after
    /// the Bernoulli arrival draw has already come up positive. Split out
    /// so the lane-batched engine — which performs the Bernoulli draw for
    /// all lanes at once — consumes the *same* code (and thus the same
    /// RNG draw sequence) for the remainder of the arrival. Keeping one
    /// implementation is what makes lane-vs-scalar bit-identity a local
    /// argument instead of a cross-file invariant.
    #[inline]
    pub(crate) fn sample_arrival_tail<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        input: u64,
        ports: u64,
    ) -> (u64, u32) {
        let dest = if self.q > 0.0 && rng.gen_bool(self.q) {
            input
        } else {
            rng.gen_range(0..ports)
        };
        (dest, self.service.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_prng::rngs::SmallRng;
    use banyan_prng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn constant_service_is_constant() {
        let d = ServiceDist::Constant(4);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 4);
        }
        assert_eq!(d.mean(), 4.0);
    }

    #[test]
    fn mixed_service_frequencies_match_weights() {
        let d = ServiceDist::Mixed(vec![(4, 0.25), (8, 0.75)]);
        d.validate();
        assert_eq!(d.mean(), 7.0);
        let mut r = rng();
        let n = 200_000;
        let mut c4 = 0u32;
        for _ in 0..n {
            match d.sample(&mut r) {
                4 => c4 += 1,
                8 => {}
                other => panic!("unexpected size {other}"),
            }
        }
        let f4 = c4 as f64 / n as f64;
        assert!((f4 - 0.25).abs() < 0.01, "f4 = {f4}");
    }

    #[test]
    fn geometric_service_mean_and_min() {
        let mu = 0.25;
        let d = ServiceDist::Geometric(mu);
        let mut r = rng();
        let n = 200_000;
        let mut sum = 0u64;
        let mut min = u32::MAX;
        for _ in 0..n {
            let s = d.sample(&mut r);
            assert!(s >= 1);
            min = min.min(s);
            sum += s as u64;
        }
        assert_eq!(min, 1);
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn geometric_mu_one_is_unit() {
        let d = ServiceDist::Geometric(1.0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn arrival_rate_matches_p() {
        let w = Workload::uniform(0.3, 1);
        let mut r = rng();
        let n = 200_000;
        let mut hits = 0u32;
        for _ in 0..n {
            if w.sample_arrival(&mut r, 0, 64).is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn uniform_destinations_cover_all_ports() {
        let w = Workload::uniform(1.0, 1);
        let mut r = rng();
        let ports = 16u64;
        let mut counts = vec![0u32; ports as usize];
        let n = 160_000;
        for _ in 0..n {
            let (dest, _) = w.sample_arrival(&mut r, 3, ports).unwrap();
            counts[dest as usize] += 1;
        }
        let expect = n as f64 / ports as f64;
        for (d, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 0.1 * expect,
                "dest {d}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn hotspot_bias_toward_own_output() {
        let w = Workload::hotspot(1.0, 0.5);
        let mut r = rng();
        let ports = 8u64;
        let input = 5u64;
        let n = 100_000;
        let mut own = 0u32;
        for _ in 0..n {
            let (dest, _) = w.sample_arrival(&mut r, input, ports).unwrap();
            if dest == input {
                own += 1;
            }
        }
        // P(own) = q + (1−q)/ports = 0.5 + 0.0625 = 0.5625.
        let f = own as f64 / n as f64;
        assert!((f - 0.5625).abs() < 0.01, "f = {f}");
    }

    #[test]
    fn rho_accounts_for_size() {
        assert!((Workload::uniform(0.125, 4).rho() - 0.5).abs() < 1e-15);
        let w = Workload {
            p: 0.1,
            q: 0.0,
            service: ServiceDist::Mixed(vec![(4, 0.5), (8, 0.5)]),
        };
        assert!((w.rho() - 0.6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mixture_rejected() {
        ServiceDist::Mixed(vec![(1, 0.3)]).validate();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_p_rejected() {
        Workload::uniform(1.5, 1).validate();
    }
}
