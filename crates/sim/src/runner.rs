//! Parallel replication of simulations across threads.
//!
//! Statistical accuracy in the tables comes from many independent
//! replications with distinct seeds; every accumulator in `banyan-stats`
//! merges exactly, so replications shard across threads (crossbeam scoped
//! threads — no `'static` bounds needed) and combine losslessly.

use crate::network::{run_network, NetworkConfig, NetworkStats};
use crate::queue::{run_queue, QueueConfig, QueueStats};

/// Runs `reps` independent replications of a network simulation on up to
/// `threads` worker threads (seeds `cfg.seed + 0 … cfg.seed + reps − 1`)
/// and merges the statistics.
///
/// # Panics
/// Panics if `reps == 0`.
pub fn run_network_replicated(cfg: &NetworkConfig, reps: u32, threads: usize) -> NetworkStats {
    assert!(reps > 0, "need at least one replication");
    let threads = threads.max(1).min(reps as usize);
    let mut partials: Vec<Option<NetworkStats>> = (0..reps).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (chunk_idx, chunk) in partials.chunks_mut(reps.div_ceil(threads as u32) as usize).enumerate() {
            let base = chunk_idx * reps.div_ceil(threads as u32) as usize;
            let cfg = cfg.clone();
            scope.spawn(move |_| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let mut c = cfg.clone();
                    c.seed = cfg.seed.wrapping_add((base + off) as u64);
                    *slot = Some(run_network(c));
                }
            });
        }
    })
    .expect("simulation worker panicked");
    let mut iter = partials.into_iter().map(|s| s.expect("all slots filled"));
    let mut acc = iter.next().expect("reps > 0");
    for s in iter {
        acc.merge(&s);
    }
    acc
}

/// Runs `reps` independent replications of a single-queue simulation and
/// merges them (single-threaded; queue sims are cheap).
pub fn run_queue_replicated(cfg: &QueueConfig, reps: u32) -> QueueStats {
    assert!(reps > 0, "need at least one replication");
    let mut acc: Option<QueueStats> = None;
    for i in 0..reps {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add(i as u64);
        let s = run_queue(&c);
        match &mut acc {
            None => acc = Some(s),
            Some(a) => a.merge(&s),
        }
    }
    acc.expect("reps > 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ArrivalDist;
    use crate::traffic::{ServiceDist, Workload};

    #[test]
    fn replicated_network_accumulates_all_messages() {
        let cfg = NetworkConfig {
            warmup_cycles: 200,
            measure_cycles: 1_000,
            ..NetworkConfig::new(2, 3, Workload::uniform(0.5, 1))
        };
        let single = run_network(cfg.clone());
        let multi = run_network_replicated(&cfg, 4, 2);
        assert!(multi.delivered > 3 * single.delivered);
        assert_eq!(multi.injected, multi.delivered);
        // Means agree statistically.
        assert!((multi.total_wait.mean() - single.total_wait.mean()).abs() < 0.15);
    }

    #[test]
    fn replication_improves_on_distinct_seeds() {
        let cfg = NetworkConfig {
            warmup_cycles: 200,
            measure_cycles: 500,
            ..NetworkConfig::new(2, 3, Workload::uniform(0.5, 1))
        };
        let a = run_network_replicated(&cfg, 3, 3);
        // Three replications of the same seed would triple-count
        // identical data; distinct seeds must give a different total than
        // 3× any single run (overwhelmingly likely).
        let single = run_network(cfg);
        assert_ne!(a.delivered, 3 * single.delivered);
    }

    #[test]
    fn replicated_queue_merges_counts() {
        let cfg = QueueConfig {
            warmup_cycles: 100,
            measure_cycles: 5_000,
            ..QueueConfig::new(
                ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
                ServiceDist::Constant(1),
            )
        };
        let one = run_queue(&cfg);
        let four = run_queue_replicated(&cfg, 4);
        assert!(four.wait.count() > 3 * one.wait.count());
        assert!((four.wait.mean() - 0.25).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_reps_panics() {
        let cfg = QueueConfig::new(
            ArrivalDist::Tabulated(vec![1.0]),
            ServiceDist::Constant(1),
        );
        run_queue_replicated(&cfg, 0);
    }
}
