//! Parallel replication of simulations across threads.
//!
//! Statistical accuracy in the tables comes from many independent
//! replications with distinct seeds; every accumulator in `banyan-stats`
//! merges exactly, so replications shard across threads (`std::thread`
//! scoped threads — no `'static` bounds needed) and combine losslessly.
//!
//! Seeding scheme: replication `i` of a run with base seed `s` uses
//! seed `s + i` (wrapping). Results are therefore bit-identical for any
//! thread count — the merge always proceeds in replication order — and
//! any published table row is reproducible from its base seed alone.

use crate::lanes::{lane_supported, sweep_eligible, LaneBlock, MAX_LANES};
use crate::network::{NetworkConfig, NetworkSim, NetworkStats};
use crate::queue::{run_queue_instrumented, QueueConfig, QueueStats};
use banyan_obs::msgtrace::{MsgTracer, RepTrace};
use banyan_obs::Telemetry;

/// Default lane-block width when [`ReplicationEngine::Auto`] picks the
/// lane engine: wide enough to amortize the batched RNG bank and digit
/// table, small enough that a block's SoA working set stays cache-
/// friendly for the table-family configurations.
const DEFAULT_LANE_WIDTH: usize = 32;

/// How [`run_network_replicated`] executes the replications assigned to
/// one worker. Every variant produces **bit-identical** merged
/// statistics — the engine only changes how the work is scheduled, never
/// a replication's RNG stream or the merge order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationEngine {
    /// Lane blocks when the configuration qualifies for the
    /// message-driven stage sweep (which outruns the scalar engine even
    /// with a single replication per block); one scalar simulation per
    /// replication otherwise. The cycle-driven lock-step lane engine is
    /// never picked automatically — on sweep-ineligible configurations
    /// it trails the scalar engine on wide networks, so it remains an
    /// explicit [`ReplicationEngine::Lanes`] opt-in.
    Auto,
    /// One scalar [`NetworkSim`] per replication (the pre-lane behavior).
    Scalar,
    /// Lock-step lane blocks of at most this width (clamped to
    /// `1..=64`). Panics if the configuration cannot run on the lane
    /// engine.
    Lanes(usize),
}

impl ReplicationEngine {
    /// Lane-block width to use for one worker's chunk of `chunk_len`
    /// replications, or `None` for the scalar path.
    fn lane_width(self, cfg: &NetworkConfig, chunk_len: usize) -> Option<usize> {
        match self {
            ReplicationEngine::Scalar => None,
            ReplicationEngine::Auto => {
                let width = DEFAULT_LANE_WIDTH.min(chunk_len.max(1));
                sweep_eligible(cfg, width).then_some(width)
            }
            ReplicationEngine::Lanes(w) => {
                assert!(
                    lane_supported(cfg),
                    "configuration not supported by the lane engine (k ≤ 16 required)"
                );
                Some(w.clamp(1, MAX_LANES))
            }
        }
    }
}

/// Runs `reps` independent replications of a network simulation on up to
/// `threads` worker threads (seeds `cfg.seed + 0 … cfg.seed + reps − 1`)
/// and merges the statistics. The result is independent of `threads`
/// (including `threads > reps` and uneven replication counts per
/// worker); `threads == 0` is treated as 1. Uses
/// [`ReplicationEngine::Auto`], which batches each worker's replications
/// into lock-step lane blocks when profitable — bit-identical to the
/// scalar engine either way.
///
/// # Panics
/// Panics if `reps == 0`, or if a worker's simulation panics.
pub fn run_network_replicated(cfg: &NetworkConfig, reps: u32, threads: usize) -> NetworkStats {
    run_network_replicated_instrumented(cfg, reps, threads, &Telemetry::off())
}

/// [`run_network_replicated`] with shared telemetry: per-worker spans
/// (`runner/workerNN`), a `runner/merge` span, expected-cycle
/// registration for heartbeat ETAs, and one run-log provenance line.
/// All sinks in `tel` are thread-safe, so every replication reports into
/// the same registry. Telemetry never touches a replication's RNG or
/// the merge order, so the merged statistics are **bit-identical** for
/// any `TelemetryConfig` and any thread count.
///
/// # Panics
/// Panics if `reps == 0`, or if a worker's simulation panics.
pub fn run_network_replicated_instrumented(
    cfg: &NetworkConfig,
    reps: u32,
    threads: usize,
    tel: &Telemetry,
) -> NetworkStats {
    run_network_replicated_with_engine(cfg, reps, threads, tel, ReplicationEngine::Auto)
}

/// [`run_network_replicated_instrumented`] with an explicit
/// [`ReplicationEngine`]. The engine choice is recorded in the run log
/// (`engine=lanesW` / `engine=scalar`) for provenance; the merged
/// statistics are bit-identical across engines, which the
/// `lane_engine_bit_identity` property test and the `overhead_guard`
/// bench both enforce.
///
/// # Panics
/// Panics if `reps == 0`, if a worker's simulation panics, or if
/// [`ReplicationEngine::Lanes`] is forced on an unsupported
/// configuration.
pub fn run_network_replicated_with_engine(
    cfg: &NetworkConfig,
    reps: u32,
    threads: usize,
    tel: &Telemetry,
    engine: ReplicationEngine,
) -> NetworkStats {
    run_network_replicated_traced(cfg, reps, threads, tel, engine, None)
}

/// [`run_network_replicated_with_engine`] with optional per-message
/// lifecycle tracing (see [`banyan_obs::msgtrace`]). With
/// `tracer = Some(..)`, replication `i` records its sampled messages
/// into `tracer` under rep index `i` and seed `cfg.seed + i` — the
/// sampling decision is a pure hash of `(seed, ordinal)`, so the traced
/// message set (and, after rendering, the trace file bytes) is
/// **identical** for any thread count and any [`ReplicationEngine`].
/// Tracing never touches a replication's RNG or dynamics, so the merged
/// statistics are bit-identical to an untraced run.
///
/// # Panics
/// Panics if `reps == 0`, if a worker's simulation panics, or if
/// [`ReplicationEngine::Lanes`] is forced on an unsupported
/// configuration.
pub fn run_network_replicated_traced(
    cfg: &NetworkConfig,
    reps: u32,
    threads: usize,
    tel: &Telemetry,
    engine: ReplicationEngine,
    tracer: Option<&MsgTracer>,
) -> NetworkStats {
    assert!(reps > 0, "need at least one replication");
    let reps = reps as usize;
    let threads = threads.clamp(1, reps);
    // ceil-split so no worker is idle while another holds 2+ extra reps;
    // the last chunk may be short (or some trailing workers may get
    // nothing when threads does not divide reps — chunks() simply
    // yields fewer chunks, which is fine).
    let chunk_len = reps.div_ceil(threads);
    let lane_width = engine.lane_width(cfg, chunk_len);
    if tel.active() {
        tel.progress()
            .add_expected_cycles((cfg.warmup_cycles + cfg.measure_cycles) * reps as u64);
    }
    if tel.metrics_enabled() {
        let engine_tag = match lane_width {
            Some(w) => format!("lanes{w}"),
            None => "scalar".to_string(),
        };
        tel.log_run(format!(
            "network reps={reps} threads={threads} engine={engine_tag} base_seed={:#x} cfg={:?}",
            cfg.seed, cfg
        ));
    }
    let mut partials: Vec<Option<NetworkStats>> = vec![None; reps];
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in partials.chunks_mut(chunk_len).enumerate() {
            let base = chunk_idx * chunk_len;
            scope.spawn(move || {
                let _span = tel
                    .metrics_enabled()
                    .then(|| tel.span(&format!("runner/worker{chunk_idx:02}")));
                match lane_width {
                    Some(w) => {
                        // Lane blocks of up to `w` lanes; replication
                        // `base + off + j` rides lane `j` of its block
                        // with the same `seed + index` it would get
                        // scalar, and lands in the same ordered slot.
                        let mut off = 0;
                        while off < chunk.len() {
                            let width = w.min(chunk.len() - off);
                            let seeds: Vec<u64> = (0..width)
                                .map(|j| cfg.seed.wrapping_add((base + off + j) as u64))
                                .collect();
                            let block = LaneBlock::new(cfg, &seeds);
                            let stats = match tracer {
                                Some(tc) => {
                                    let rts: Vec<RepTrace> = seeds
                                        .iter()
                                        .enumerate()
                                        .map(|(j, &s)| tc.rep((base + off + j) as u32, s))
                                        .collect();
                                    let (stats, rts) = block.run_traced(tel, rts);
                                    for rt in rts {
                                        tc.commit(rt);
                                    }
                                    stats
                                }
                                None => block.run_instrumented(tel),
                            };
                            for (j, s) in stats.into_iter().enumerate() {
                                chunk[off + j] = Some(s);
                            }
                            off += width;
                        }
                    }
                    None => {
                        for (off, slot) in chunk.iter_mut().enumerate() {
                            let mut c = cfg.clone();
                            c.seed = cfg.seed.wrapping_add((base + off) as u64);
                            *slot = Some(match tracer {
                                Some(tc) => {
                                    let rt = tc.rep((base + off) as u32, c.seed);
                                    let (stats, rt) = NetworkSim::new(c).run_traced(tel, rt);
                                    tc.commit(rt);
                                    stats
                                }
                                None => NetworkSim::new(c).run_instrumented(tel),
                            });
                        }
                    }
                }
            });
        }
    });
    // Every slot belongs to exactly one chunk and scope joins all
    // workers (propagating panics), so the merge in replication order
    // never observes an empty slot.
    let _span = tel.metrics_enabled().then(|| tel.span("runner/merge"));
    let mut iter = partials
        .into_iter()
        .map(|s| s.expect("scope joined every worker"));
    let mut acc = iter.next().expect("reps > 0");
    for s in iter {
        acc.merge(&s);
    }
    acc
}

/// Runs `reps` independent replications of a single-queue simulation on
/// up to `threads` worker threads and merges them. Seeds follow the same
/// `base + i` scheme as [`run_network_replicated`], and the merge always
/// proceeds in replication order — `QueueStats::merge` averages
/// utilization/idle/autocorrelation pairwise, so an out-of-order (tree)
/// merge would *not* be bit-identical; collecting partials into ordered
/// slots first keeps the result independent of `threads`.
///
/// # Panics
/// Panics if `reps == 0`, or if a worker's simulation panics.
pub fn run_queue_replicated(cfg: &QueueConfig, reps: u32, threads: usize) -> QueueStats {
    run_queue_replicated_instrumented(cfg, reps, threads, &Telemetry::off())
}

/// [`run_queue_replicated`] with shared telemetry — the queue-side
/// counterpart of [`run_network_replicated_instrumented`], with the same
/// bit-identity guarantee.
///
/// # Panics
/// Panics if `reps == 0`, or if a worker's simulation panics.
pub fn run_queue_replicated_instrumented(
    cfg: &QueueConfig,
    reps: u32,
    threads: usize,
    tel: &Telemetry,
) -> QueueStats {
    assert!(reps > 0, "need at least one replication");
    let reps = reps as usize;
    let threads = threads.clamp(1, reps);
    if tel.active() {
        tel.progress()
            .add_expected_cycles((cfg.warmup_cycles + cfg.measure_cycles) * reps as u64);
    }
    if tel.metrics_enabled() {
        tel.log_run(format!(
            "queue reps={reps} threads={threads} base_seed={:#x} cfg={:?}",
            cfg.seed, cfg
        ));
    }
    let chunk_len = reps.div_ceil(threads);
    let mut partials: Vec<Option<QueueStats>> = vec![None; reps];
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in partials.chunks_mut(chunk_len).enumerate() {
            let base = chunk_idx * chunk_len;
            scope.spawn(move || {
                let _span = tel
                    .metrics_enabled()
                    .then(|| tel.span(&format!("runner/worker{chunk_idx:02}")));
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let mut c = cfg.clone();
                    c.seed = cfg.seed.wrapping_add((base + off) as u64);
                    *slot = Some(run_queue_instrumented(&c, tel));
                }
            });
        }
    });
    let _span = tel.metrics_enabled().then(|| tel.span("runner/merge"));
    let mut iter = partials
        .into_iter()
        .map(|s| s.expect("scope joined every worker"));
    let mut acc = iter.next().expect("reps > 0");
    for s in iter {
        acc.merge(&s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::run_network;
    use crate::queue::{run_queue, ArrivalDist};
    use crate::traffic::{ServiceDist, Workload};

    fn quick_net() -> NetworkConfig {
        NetworkConfig {
            warmup_cycles: 200,
            measure_cycles: 1_000,
            ..NetworkConfig::new(2, 3, Workload::uniform(0.5, 1))
        }
    }

    #[test]
    fn replicated_network_accumulates_all_messages() {
        let cfg = quick_net();
        let single = run_network(cfg.clone());
        let multi = run_network_replicated(&cfg, 4, 2);
        assert!(multi.delivered > 3 * single.delivered);
        assert_eq!(multi.injected, multi.delivered);
        // Means agree statistically.
        assert!((multi.total_wait.mean() - single.total_wait.mean()).abs() < 0.15);
    }

    #[test]
    fn replication_improves_on_distinct_seeds() {
        let mut cfg = quick_net();
        cfg.measure_cycles = 500;
        let a = run_network_replicated(&cfg, 3, 3);
        // Three replications of the same seed would triple-count
        // identical data; distinct seeds must give a different total than
        // 3× any single run (overwhelmingly likely).
        let single = run_network(cfg);
        assert_ne!(a.delivered, 3 * single.delivered);
    }

    #[test]
    fn more_threads_than_reps_is_fine() {
        // Regression: reps = 3 on 8 threads must neither panic nor drop
        // a replication — it must equal the single-threaded merge.
        let cfg = quick_net();
        let wide = run_network_replicated(&cfg, 3, 8);
        let narrow = run_network_replicated(&cfg, 3, 1);
        assert_eq!(wide.delivered, narrow.delivered);
        assert_eq!(wide.total_wait.mean(), narrow.total_wait.mean());
        assert_eq!(wide.total_wait.variance(), narrow.total_wait.variance());
    }

    #[test]
    fn single_rep_any_thread_count() {
        // Regression: reps = 1 (on both 1 and many threads) equals a
        // plain run with the same seed.
        let cfg = quick_net();
        let plain = run_network(cfg.clone());
        for threads in [1usize, 4, 16] {
            let rep = run_network_replicated(&cfg, 1, threads);
            assert_eq!(rep.delivered, plain.delivered, "threads = {threads}");
            assert_eq!(rep.total_wait.mean(), plain.total_wait.mean());
        }
    }

    #[test]
    fn uneven_chunking_keeps_all_replications() {
        // reps = 5 over 4 threads: ceil-chunks of 2 leave the last
        // worker with a single rep; all five must still be merged.
        let cfg = quick_net();
        let a = run_network_replicated(&cfg, 5, 4);
        let b = run_network_replicated(&cfg, 5, 1);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.injected_total, b.injected_total);
        assert_eq!(a.total_wait.mean(), b.total_wait.mean());
    }

    #[test]
    fn table_row_reproducible_across_runs_and_thread_counts() {
        // The determinism contract behind every published table number:
        // the same base seed reproduces the same Table-I row (stage-1
        // mean and variance at k = 2, p = 0.5, m = 1) bit-for-bit,
        // across repeated runs and across threads = 1 vs threads = 4.
        let mut cfg = NetworkConfig::new(2, 3, Workload::uniform(0.5, 1));
        cfg.warmup_cycles = 300;
        cfg.measure_cycles = 3_000;
        let a = run_network_replicated(&cfg, 4, 1);
        let b = run_network_replicated(&cfg, 4, 1);
        let c = run_network_replicated(&cfg, 4, 4);
        assert_eq!(a.stage_waits[0].mean(), b.stage_waits[0].mean());
        assert_eq!(a.stage_waits[0].variance(), b.stage_waits[0].variance());
        assert_eq!(a.stage_waits[0].mean(), c.stage_waits[0].mean());
        assert_eq!(a.stage_waits[0].variance(), c.stage_waits[0].variance());
        assert_eq!(a.total_wait.mean(), c.total_wait.mean());
        assert_eq!(a.delivered, c.delivered);
        // Pinned bits, captured before the zero-allocation hot-path
        // refactor: any drift in RNG draw order, enqueue order, or wait
        // accounting changes these and fails loudly. (The float values
        // are 0.24908417284156228 and 0.256019684114666.)
        assert_eq!(a.stage_waits[0].mean().to_bits(), 0x3fcfe1fd7c2721e1);
        assert_eq!(a.stage_waits[0].variance().to_bits(), 0x3fd062a06299e748);
        assert_eq!(a.total_wait.mean(), 0.8211223045541591);
        assert_eq!(a.delivered, 48_044);
        assert_eq!(a.injected_total, 52_928);
    }

    #[test]
    fn engines_are_bit_identical_for_any_width_and_thread_count() {
        // The tentpole contract: scalar and lane engines agree on every
        // merged statistic bit-for-bit, for any lane width and sharding.
        let mut cfg = quick_net();
        cfg.measure_cycles = 2_000;
        let tel = Telemetry::off();
        let scalar =
            run_network_replicated_with_engine(&cfg, 6, 1, &tel, ReplicationEngine::Scalar);
        for (width, threads) in [(1usize, 1usize), (2, 1), (3, 2), (6, 1), (64, 4), (5, 8)] {
            let lanes = run_network_replicated_with_engine(
                &cfg,
                6,
                threads,
                &tel,
                ReplicationEngine::Lanes(width),
            );
            let ctx = format!("width={width} threads={threads}");
            assert_eq!(lanes.delivered, scalar.delivered, "{ctx}");
            assert_eq!(lanes.injected_total, scalar.injected_total, "{ctx}");
            assert_eq!(
                lanes.total_wait.mean().to_bits(),
                scalar.total_wait.mean().to_bits(),
                "{ctx}"
            );
            assert_eq!(
                lanes.total_wait.variance().to_bits(),
                scalar.total_wait.variance().to_bits(),
                "{ctx}"
            );
            assert_eq!(lanes.total_hist, scalar.total_hist, "{ctx}");
            for (i, (a, b)) in lanes
                .stage_waits
                .iter()
                .zip(&scalar.stage_waits)
                .enumerate()
            {
                assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{ctx} stage {i}");
                assert_eq!(
                    a.variance().to_bits(),
                    b.variance().to_bits(),
                    "{ctx} stage {i}"
                );
            }
        }
    }

    #[test]
    fn auto_engine_falls_back_to_scalar_for_wide_switches() {
        // k = 17 cannot pack digits 4 bits/stage; Auto must run scalar
        // rather than panic (random-digit mode would still lane-batch).
        let mut cfg = NetworkConfig::new(17, 2, Workload::uniform(0.2, 1));
        cfg.warmup_cycles = 50;
        cfg.measure_cycles = 200;
        let auto = run_network_replicated(&cfg, 3, 1);
        let scalar = run_network_replicated_with_engine(
            &cfg,
            3,
            1,
            &Telemetry::off(),
            ReplicationEngine::Scalar,
        );
        assert_eq!(auto.delivered, scalar.delivered);
        assert_eq!(
            auto.total_wait.mean().to_bits(),
            scalar.total_wait.mean().to_bits()
        );
    }

    #[test]
    fn run_log_records_engine_choice() {
        use banyan_obs::{Telemetry, TelemetryConfig};
        let cfg = quick_net();
        let tel = Telemetry::new(TelemetryConfig::on());
        run_network_replicated_with_engine(&cfg, 4, 2, &tel, ReplicationEngine::Lanes(8));
        assert!(tel.run_log_json().contains("engine=lanes8"));
        let tel2 = Telemetry::new(TelemetryConfig::on());
        run_network_replicated_with_engine(&cfg, 4, 2, &tel2, ReplicationEngine::Scalar);
        assert!(tel2.run_log_json().contains("engine=scalar"));
    }

    #[test]
    fn auto_picks_sweep_only_when_eligible() {
        use banyan_obs::{Telemetry, TelemetryConfig};
        // Sweep-eligible config → Auto lanes at the chunk width (4 reps
        // on 2 threads gives chunks of 2).
        let cfg = quick_net();
        let tel = Telemetry::new(TelemetryConfig::on());
        run_network_replicated_instrumented(&cfg, 4, 2, &tel);
        assert!(tel.run_log_json().contains("engine=lanes2"));
        // Finite buffers disqualify the sweep, and the lock-step engine
        // is never auto-picked — Auto must fall back to scalar (and
        // still merge identically to the forced scalar engine).
        let mut blocked = quick_net();
        blocked.buffer_capacity = Some(4);
        let tel2 = Telemetry::new(TelemetryConfig::on());
        let auto = run_network_replicated_instrumented(&blocked, 3, 1, &tel2);
        assert!(tel2.run_log_json().contains("engine=scalar"));
        let scalar = run_network_replicated_with_engine(
            &blocked,
            3,
            1,
            &Telemetry::off(),
            ReplicationEngine::Scalar,
        );
        assert_eq!(auto.delivered, scalar.delivered);
        assert_eq!(
            auto.total_wait.mean().to_bits(),
            scalar.total_wait.mean().to_bits()
        );
    }

    #[test]
    fn queue_replication_bit_identical_across_thread_counts() {
        // Same contract as the network path: QueueStats::merge is
        // order-dependent (pairwise averaging), so the sharded version
        // must merge in replication order regardless of thread count.
        let cfg = QueueConfig {
            warmup_cycles: 200,
            measure_cycles: 10_000,
            ..QueueConfig::new(
                ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.6 },
                ServiceDist::Constant(1),
            )
        };
        let base = run_queue_replicated(&cfg, 5, 1);
        for threads in [2usize, 3, 4, 8] {
            let t = run_queue_replicated(&cfg, 5, threads);
            assert_eq!(t.wait.count(), base.wait.count(), "threads = {threads}");
            assert_eq!(t.wait.mean().to_bits(), base.wait.mean().to_bits());
            assert_eq!(t.wait.variance().to_bits(), base.wait.variance().to_bits());
            assert_eq!(t.utilization.to_bits(), base.utilization.to_bits());
            assert_eq!(t.idle_fraction.to_bits(), base.idle_fraction.to_bits());
        }
    }

    #[test]
    fn replicated_queue_merges_counts() {
        let cfg = QueueConfig {
            warmup_cycles: 100,
            measure_cycles: 5_000,
            ..QueueConfig::new(
                ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
                ServiceDist::Constant(1),
            )
        };
        let one = run_queue(&cfg);
        let four = run_queue_replicated(&cfg, 4, 2);
        assert!(four.wait.count() > 3 * one.wait.count());
        assert!((four.wait.mean() - 0.25).abs() < 0.05);
    }

    #[test]
    fn instrumented_replication_is_bit_identical_and_shares_sink() {
        use banyan_obs::{Telemetry, TelemetryConfig};
        let cfg = quick_net();
        let base = run_network_replicated(&cfg, 4, 2);
        let tel = Telemetry::new(TelemetryConfig::on());
        let inst = run_network_replicated_instrumented(&cfg, 4, 2, &tel);
        assert_eq!(inst.delivered, base.delivered);
        assert_eq!(
            inst.total_wait.mean().to_bits(),
            base.total_wait.mean().to_bits()
        );
        assert_eq!(
            inst.total_wait.variance().to_bits(),
            base.total_wait.variance().to_bits()
        );
        // All four replications reported into the one registry…
        assert_eq!(tel.registry().counter_value("net.runs"), Some(4));
        assert_eq!(
            tel.registry().counter_value("net.delivered_total"),
            Some(inst.delivered_total)
        );
        // …under two worker spans plus the merge span, with expected
        // cycles registered for the ETA.
        assert_eq!(tel.spans().stat("runner/worker00").unwrap().calls, 1);
        assert_eq!(tel.spans().stat("runner/worker01").unwrap().calls, 1);
        assert_eq!(tel.spans().stat("runner/merge").unwrap().calls, 1);
        let snap = tel.progress().snapshot();
        assert_eq!(
            snap.expected_cycles,
            4 * (cfg.warmup_cycles + cfg.measure_cycles)
        );
        assert!(tel.run_log_json().contains("network reps=4 threads=2"));
    }

    #[test]
    fn wait_sketches_fold_identically_across_thread_counts() {
        use banyan_obs::{Telemetry, TelemetryConfig};
        // Sketch merges are commutative and lossless, so the folded
        // per-stage pmfs must be exactly equal no matter how the
        // replications shard across workers.
        let cfg = quick_net();
        let tel1 = Telemetry::new(TelemetryConfig::on());
        let base = run_network_replicated_instrumented(&cfg, 4, 1, &tel1);
        for threads in [2usize, 4, 8] {
            let tel = Telemetry::new(TelemetryConfig::on());
            let inst = run_network_replicated_instrumented(&cfg, 4, threads, &tel);
            assert_eq!(inst.delivered, base.delivered, "threads = {threads}");
            for name in ["net.wait.stage01", "net.wait.stage03", "net.wait.total"] {
                let a = tel1.sketches().get(name).expect(name);
                let b = tel.sketches().get(name).expect(name);
                assert_eq!(a.count(), b.count(), "{name} threads = {threads}");
                assert_eq!(a.pmf_points(), b.pmf_points(), "{name} threads = {threads}");
                assert_eq!(a.mean().to_bits(), b.mean().to_bits());
                assert_eq!(a.variance().to_bits(), b.variance().to_bits());
            }
            // The total sketch holds every measured delivery's wait.
            let total = tel.sketches().get("net.wait.total").unwrap();
            assert_eq!(total.count(), inst.delivered);
        }
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_reps_panics() {
        let cfg = QueueConfig::new(ArrivalDist::Tabulated(vec![1.0]), ServiceDist::Constant(1));
        run_queue_replicated(&cfg, 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_network_reps_panics() {
        run_network_replicated(&quick_net(), 0, 4);
    }
}
