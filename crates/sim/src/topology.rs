//! Omega (shuffle-exchange) banyan topology and destination-tag routing.
//!
//! The network of Fig. 1 of the paper: `N = k^n` inputs and outputs
//! connected by `n` stages of `k × k` switches, a perfect `k`-way shuffle
//! in front of every stage. It is a *banyan* network: there is exactly one
//! path from each input to each output, and the path is self-routing —
//! stage `i` switches on the `i`-th most-significant base-`k` digit of the
//! destination address.

/// An `n`-stage omega network of `k × k` switches (`N = k^n` ports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OmegaTopology {
    k: u32,
    stages: u32,
    size: u64,
}

impl OmegaTopology {
    /// Builds the topology. `k >= 2`, `stages >= 1`, and `k^stages` must
    /// fit comfortably in memory (`N <= 2^24` enforced to catch typos).
    pub fn new(k: u32, stages: u32) -> Self {
        assert!(k >= 2, "switch size must be at least 2");
        assert!(stages >= 1, "need at least one stage");
        let size = (k as u64)
            .checked_pow(stages)
            .expect("network size overflows u64");
        assert!(size <= 1 << 24, "network with {size} ports is unreasonably large");
        OmegaTopology { k, stages, size }
    }

    /// Switch arity `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of stages `n`.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Number of input/output ports `N = k^n`.
    pub fn ports(&self) -> u64 {
        self.size
    }

    /// Number of switches per stage (`N / k`).
    pub fn switches_per_stage(&self) -> u64 {
        self.size / self.k as u64
    }

    /// The perfect `k`-way shuffle applied to wire indices in front of
    /// every stage: a left rotation of the base-`k` address by one digit,
    /// `w ↦ (w·k mod N) + ⌊w·k / N⌋`.
    pub fn shuffle(&self, wire: u64) -> u64 {
        debug_assert!(wire < self.size);
        (wire * self.k as u64) % self.size + (wire * self.k as u64) / self.size
    }

    /// The base-`k` digit of `dest` consumed by stage `stage`
    /// (1-indexed): digit 1 is the most significant.
    pub fn route_digit(&self, stage: u32, dest: u64) -> u32 {
        debug_assert!((1..=self.stages).contains(&stage));
        debug_assert!(dest < self.size);
        let shift = self.stages - stage;
        ((dest / (self.k as u64).pow(shift)) % self.k as u64) as u32
    }

    /// One routing step: a message sitting on `wire` at the *input* of
    /// stage `stage` (after the preceding shuffle has not yet been
    /// applied), heading for `dest`, comes out on the returned wire at
    /// the *output* of that stage.
    ///
    /// The wire first passes the shuffle, lands in switch
    /// `⌊shuffled / k⌋`, and exits on that switch's output selected by
    /// the stage's destination digit.
    pub fn next_wire(&self, stage: u32, wire: u64, dest: u64) -> u64 {
        let shuffled = self.shuffle(wire);
        let switch_base = shuffled - shuffled % self.k as u64;
        switch_base + self.route_digit(stage, dest) as u64
    }

    /// Per-wire switch base for the hot path: `next_wire` decomposes as
    /// `switch_bases[wire] + route_digit(stage, dest)`, and because the
    /// same shuffle precedes every stage the base is **stage
    /// independent** — the whole stage × wire routing table collapses to
    /// this one vector. Ports fit in `u32` (`N ≤ 2^24` by construction).
    pub fn switch_bases(&self) -> Vec<u32> {
        (0..self.size)
            .map(|wire| {
                let shuffled = self.shuffle(wire);
                (shuffled - shuffled % self.k as u64) as u32
            })
            .collect()
    }

    /// The full path of output wires a message takes from `input` to
    /// `dest` (one entry per stage). The last entry equals `dest` — the
    /// banyan self-routing property.
    pub fn path(&self, input: u64, dest: u64) -> Vec<u64> {
        let mut wire = input;
        (1..=self.stages)
            .map(|stage| {
                wire = self.next_wire(stage, wire, dest);
                wire
            })
            .collect()
    }

    /// The switch index (within its stage) that a stage-output wire
    /// belongs to.
    pub fn switch_of_output(&self, wire: u64) -> u64 {
        wire / self.k as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_a_digit_rotation() {
        let t = OmegaTopology::new(2, 3); // N = 8
        // Left-rotate 3-bit addresses: 0b011 → 0b110, 0b100 → 0b001.
        assert_eq!(t.shuffle(0b011), 0b110);
        assert_eq!(t.shuffle(0b100), 0b001);
        assert_eq!(t.shuffle(0), 0);
        assert_eq!(t.shuffle(7), 7);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        for &(k, n) in &[(2u32, 4u32), (4, 3), (8, 2), (3, 3)] {
            let t = OmegaTopology::new(k, n);
            let mut seen = vec![false; t.ports() as usize];
            for w in 0..t.ports() {
                let s = t.shuffle(w);
                assert!(!seen[s as usize], "k={k} n={n}: collision at {s}");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn routing_reaches_destination_exhaustively() {
        for &(k, n) in &[(2u32, 3u32), (2, 4), (4, 2), (8, 2), (3, 3)] {
            let t = OmegaTopology::new(k, n);
            for input in 0..t.ports() {
                for dest in 0..t.ports() {
                    let path = t.path(input, dest);
                    assert_eq!(path.len(), n as usize);
                    assert_eq!(
                        *path.last().unwrap(),
                        dest,
                        "k={k} n={n} input={input} dest={dest}"
                    );
                }
            }
        }
    }

    #[test]
    fn routing_reaches_destination_large_sampled() {
        let t = OmegaTopology::new(2, 12); // N = 4096
        for step in 0..64u64 {
            let input = (step * 641) % t.ports();
            let dest = (step * 1013 + 17) % t.ports();
            assert_eq!(*t.path(input, dest).last().unwrap(), dest);
        }
    }

    #[test]
    fn banyan_unique_path_property() {
        // Two messages from the same input to the same destination take
        // the same path; and conversely, for k=2, n=3, each (input, dest)
        // pair's path is determined — verify paths differ when dest
        // differs in the digit consumed at each stage.
        let t = OmegaTopology::new(2, 3);
        for input in 0..8 {
            for d1 in 0..8u64 {
                for d2 in 0..8u64 {
                    let p1 = t.path(input, d1);
                    let p2 = t.path(input, d2);
                    if d1 == d2 {
                        assert_eq!(p1, p2);
                    } else {
                        assert_ne!(p1.last(), p2.last());
                    }
                }
            }
        }
    }

    #[test]
    fn stage_digit_msb_first() {
        let t = OmegaTopology::new(2, 4);
        let dest = 0b1010;
        assert_eq!(t.route_digit(1, dest), 1);
        assert_eq!(t.route_digit(2, dest), 0);
        assert_eq!(t.route_digit(3, dest), 1);
        assert_eq!(t.route_digit(4, dest), 0);
        let t3 = OmegaTopology::new(3, 3);
        let d = 2 * 9 + 3; // digits (2, 1, 0)
        assert_eq!(t3.route_digit(1, d), 2);
        assert_eq!(t3.route_digit(2, d), 1);
        assert_eq!(t3.route_digit(3, d), 0);
    }

    #[test]
    fn uniform_destinations_spread_uniformly_at_each_stage() {
        // Load balance: for any stage, as (input, dest) range over all
        // pairs, each stage-output wire is used equally often — the
        // structural fact behind the uniform-traffic analysis.
        let t = OmegaTopology::new(2, 3);
        for stage_idx in 0..3usize {
            let mut counts = vec![0u32; 8];
            for input in 0..8 {
                for dest in 0..8 {
                    counts[t.path(input, dest)[stage_idx] as usize] += 1;
                }
            }
            assert!(counts.iter().all(|&c| c == 8), "stage {stage_idx}: {counts:?}");
        }
    }

    #[test]
    fn switch_bases_reproduce_next_wire() {
        for &(k, n) in &[(2u32, 4u32), (4, 2), (3, 3)] {
            let t = OmegaTopology::new(k, n);
            let bases = t.switch_bases();
            for stage in 1..=n {
                for wire in 0..t.ports() {
                    for dest in 0..t.ports() {
                        let expect = t.next_wire(stage, wire, dest);
                        let got = bases[wire as usize] as u64
                            + t.route_digit(stage, dest) as u64;
                        assert_eq!(got, expect, "k={k} n={n} s={stage} w={wire} d={dest}");
                    }
                }
            }
        }
    }

    #[test]
    fn switch_grouping() {
        let t = OmegaTopology::new(4, 2);
        assert_eq!(t.switches_per_stage(), 4);
        assert_eq!(t.switch_of_output(0), 0);
        assert_eq!(t.switch_of_output(3), 0);
        assert_eq!(t.switch_of_output(4), 1);
        assert_eq!(t.switch_of_output(15), 3);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn k1_rejected() {
        OmegaTopology::new(1, 3);
    }

    #[test]
    #[should_panic(expected = "unreasonably large")]
    fn oversize_rejected() {
        OmegaTopology::new(2, 25);
    }
}
