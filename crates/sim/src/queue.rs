//! Single first-stage queue simulator (the exact §II model).
//!
//! Simulates one output port of a first-stage switch as a discrete-time
//! batch-arrival queue via the Lindley recursion the paper's proof uses:
//! with `s` the unfinished work at the end of the previous cycle, a batch
//! of messages arriving this cycle with service times `v₁, …, v_a` (in
//! arrival order) waits `w_i = s + v₁ + … + v_{i−1}`, and
//! `s ← max(0, s + Σv − 1)`.
//!
//! This validates Theorem 1 (and every §III closed form) directly — the
//! batch-count distributions below sample exactly the pgfs `R(z)` the
//! analysis uses, including bulk and nonuniform classes that the network
//! simulator does not exercise at a single port.

use crate::traffic::ServiceDist;
use banyan_obs::Telemetry;
use banyan_stats::{CoMoment, IntHistogram, OnlineStats};
use banyan_prng::rngs::SmallRng;
use banyan_prng::{Rng, SeedableRng};

/// Per-cycle batch-size (message-count) distribution at the queue.
#[derive(Clone, Debug)]
pub enum ArrivalDist {
    /// Uniform traffic on a `k × s` switch: `Binomial(k, p/s)` messages
    /// per cycle (§III-A-1).
    UniformSwitch {
        /// Switch inputs.
        k: u32,
        /// Switch outputs.
        s: u32,
        /// Per-input arrival probability.
        p: f64,
    },
    /// Bulk arrivals (§III-A-2): each of the `k` inputs contributes, with
    /// probability `p/s`, a bulk of `b` messages.
    BulkSwitch {
        /// Switch inputs.
        k: u32,
        /// Switch outputs.
        s: u32,
        /// Per-input arrival probability.
        p: f64,
        /// Bulk size.
        b: u32,
    },
    /// Nonuniform favorite-output traffic on a square switch (§III-A-3):
    /// one favored input sends a bulk here with probability
    /// `α = p(q + (1−q)/k)`, each of the other `k−1` with
    /// `β = p(1−q)/k`.
    Nonuniform {
        /// Switch size (square).
        k: u32,
        /// Per-input arrival probability.
        p: f64,
        /// Hot-spot factor.
        q: f64,
        /// Bulk size.
        b: u32,
    },
    /// Arbitrary batch-count pmf (`pmf[j]` = probability of `j` messages).
    Tabulated(Vec<f64>),
}

impl ArrivalDist {
    /// Mean messages per cycle `λ`.
    pub fn lambda(&self) -> f64 {
        match self {
            ArrivalDist::UniformSwitch { k, s, p } => *k as f64 * p / *s as f64,
            ArrivalDist::BulkSwitch { k, s, p, b } => *k as f64 * p * *b as f64 / *s as f64,
            ArrivalDist::Nonuniform { p, b, .. } => p * *b as f64,
            ArrivalDist::Tabulated(pmf) => {
                pmf.iter().enumerate().map(|(j, &g)| j as f64 * g).sum()
            }
        }
    }

    /// Draws the number of messages arriving in one cycle.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            ArrivalDist::UniformSwitch { k, s, p } => {
                let a = p / *s as f64;
                (0..*k).filter(|_| rng.gen_bool(a)).count() as u32
            }
            ArrivalDist::BulkSwitch { k, s, p, b } => {
                let a = p / *s as f64;
                (0..*k).filter(|_| rng.gen_bool(a)).count() as u32 * b
            }
            ArrivalDist::Nonuniform { k, p, q, b } => {
                let alpha = p * (q + (1.0 - q) / *k as f64);
                let beta = p * (1.0 - q) / *k as f64;
                let mut n = u32::from(rng.gen_bool(alpha));
                n += (1..*k).filter(|_| rng.gen_bool(beta)).count() as u32;
                n * b
            }
            ArrivalDist::Tabulated(pmf) => {
                let mut u: f64 = rng.gen();
                for (j, &g) in pmf.iter().enumerate() {
                    if u < g {
                        return j as u32;
                    }
                    u -= g;
                }
                (pmf.len() - 1) as u32
            }
        }
    }
}

/// Configuration of a single-queue run.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Batch-count distribution per cycle.
    pub arrivals: ArrivalDist,
    /// Per-message service-time distribution.
    pub service: ServiceDist,
    /// Cycles before measurement.
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

impl QueueConfig {
    /// Default protocol for the given distributions.
    pub fn new(arrivals: ArrivalDist, service: ServiceDist) -> Self {
        QueueConfig {
            arrivals,
            service,
            warmup_cycles: 10_000,
            measure_cycles: 500_000,
            seed: 0xFACE_FEED,
        }
    }
}

/// Output of a single-queue run.
#[derive(Clone, Debug)]
pub struct QueueStats {
    /// Waiting-time moments over measured messages.
    pub wait: OnlineStats,
    /// Waiting-time histogram.
    pub hist: IntHistogram,
    /// End-of-cycle unfinished work (the `s` of Theorem 1's proof; its
    /// transform is `Ψ(z)`).
    pub backlog: OnlineStats,
    /// Histogram of the end-of-cycle unfinished work — the empirical
    /// counterpart of the inverted `Ψ(z)` pmf.
    pub backlog_hist: IntHistogram,
    /// Fraction of measured cycles ending with zero backlog,
    /// `P(s = 0) = Ψ(0)`.
    pub idle_fraction: f64,
    /// Long-run fraction of busy cycles (utilization ≈ ρ).
    pub utilization: f64,
    /// Lag-1..=4 autocorrelation of the busy indicator — the queue's
    /// *output* process. Nonzero values are exactly why the paper cannot
    /// analyze stage 2 exactly ("the inputs at successive cycles are not
    /// independent", §IV): this output feeds the next stage.
    pub output_autocorr: [f64; 4],
}

impl QueueStats {
    /// Merges an independent replication.
    pub fn merge(&mut self, other: &QueueStats) {
        // Scalar fractions combine by simple averaging (replications use
        // identical cycle counts in this project).
        self.utilization = 0.5 * (self.utilization + other.utilization);
        self.idle_fraction = 0.5 * (self.idle_fraction + other.idle_fraction);
        for (a, b) in self.output_autocorr.iter_mut().zip(&other.output_autocorr) {
            *a = 0.5 * (*a + b);
        }
        self.wait.merge(&other.wait);
        self.hist.merge(&other.hist);
        self.backlog.merge(&other.backlog);
        self.backlog_hist.merge(&other.backlog_hist);
    }
}

/// The Lindley-recursion state, factored out so the plain and
/// instrumented entry points drive the *same* per-cycle body (identical
/// operation and RNG order → bit-identical statistics).
struct LindleyState {
    rng: SmallRng,
    /// Unfinished work at end of previous cycle.
    s: u64,
    wait: OnlineStats,
    hist: IntHistogram,
    backlog_stats: OnlineStats,
    backlog_hist: IntHistogram,
    busy_cycles: u64,
    idle_ends: u64,
    autocorr: [CoMoment; 4],
    busy_history: [f64; 4],
    history_len: usize,
}

impl LindleyState {
    fn new(cfg: &QueueConfig) -> Self {
        cfg.service.validate();
        LindleyState {
            rng: SmallRng::seed_from_u64(cfg.seed),
            s: 0,
            wait: OnlineStats::new(),
            hist: IntHistogram::new(),
            backlog_stats: OnlineStats::new(),
            backlog_hist: IntHistogram::new(),
            busy_cycles: 0,
            idle_ends: 0,
            autocorr: [CoMoment::new(), CoMoment::new(), CoMoment::new(), CoMoment::new()],
            busy_history: [0.0; 4],
            history_len: 0,
        }
    }

    /// Advances one cycle of the batch-arrival Lindley recursion.
    #[inline]
    fn step(&mut self, cfg: &QueueConfig, measuring: bool) {
        let count = cfg.arrivals.sample(&mut self.rng);
        let mut batch_work: u64 = 0;
        for _ in 0..count {
            let v = cfg.service.sample(&mut self.rng) as u64;
            let w = self.s + batch_work;
            if measuring {
                self.wait.push(w as f64);
                self.hist.record(w);
            }
            batch_work += v;
        }
        let backlog = self.s + batch_work;
        let busy = if backlog > 0 { 1.0 } else { 0.0 };
        if measuring && backlog > 0 {
            self.busy_cycles += 1;
        }
        self.s = backlog.saturating_sub(1);
        if measuring {
            self.backlog_stats.push(self.s as f64);
            self.backlog_hist.record(self.s);
            if self.s == 0 {
                self.idle_ends += 1;
            }
            // Output-process autocorrelation at lags 1..=4
            // (busy_history[j] = busy indicator j+1 cycles ago).
            for lag in 1..=4usize {
                if self.history_len >= lag {
                    self.autocorr[lag - 1].push(self.busy_history[lag - 1], busy);
                }
            }
            // Shift ring: history[0] = most recent.
            self.busy_history.rotate_right(1);
            self.busy_history[0] = busy;
            self.history_len = (self.history_len + 1).min(4);
        }
    }

    fn finish(self, cfg: &QueueConfig) -> QueueStats {
        QueueStats {
            wait: self.wait,
            hist: self.hist,
            backlog: self.backlog_stats,
            backlog_hist: self.backlog_hist,
            idle_fraction: self.idle_ends as f64 / cfg.measure_cycles.max(1) as f64,
            utilization: self.busy_cycles as f64 / cfg.measure_cycles.max(1) as f64,
            output_autocorr: [
                self.autocorr[0].correlation(),
                self.autocorr[1].correlation(),
                self.autocorr[2].correlation(),
                self.autocorr[3].correlation(),
            ],
        }
    }
}

/// A minimal reusable Lindley cell: the bare batch-arrival single-server
/// queue dynamics of [`LindleyState::step`] (same clocked semantics —
/// FIFO within a cycle's batch, one unit of work retired per cycle)
/// without any statistics machinery. External drivers that model a
/// network of output ports — e.g. the `banyan-flow` event check, where
/// arrivals come from routed messages rather than an [`ArrivalDist`] —
/// enqueue each arrival's service demand during the cycle and call
/// [`PortQueue::end_cycle`] once per clock tick for *every* port,
/// including idle ones (the server retires work unconditionally).
#[derive(Clone, Copy, Debug, Default)]
pub struct PortQueue {
    /// Unfinished work at the end of the previous cycle.
    backlog: u64,
    /// Work enqueued by arrivals so far *this* cycle.
    batch_work: u64,
}

impl PortQueue {
    /// A fresh, empty port.
    pub fn new() -> Self {
        PortQueue::default()
    }

    /// Enqueues one arrival with service demand `service` cycles and
    /// returns its waiting time: the backlog carried in from previous
    /// cycles plus the work of same-cycle arrivals already queued ahead
    /// of it (`w = s + batch_work`, exactly as [`LindleyState::step`]
    /// computes it).
    pub fn arrive(&mut self, service: u64) -> u64 {
        let wait = self.backlog + self.batch_work;
        self.batch_work += service;
        wait
    }

    /// Closes the cycle: folds this cycle's batch into the backlog and
    /// retires one unit of work (`s ← (s + batch) − 1`, floored at 0).
    /// Must be called every cycle, arrivals or not.
    pub fn end_cycle(&mut self) {
        self.backlog = (self.backlog + self.batch_work).saturating_sub(1);
        self.batch_work = 0;
    }

    /// Unfinished work carried into the next cycle (after
    /// [`PortQueue::end_cycle`]).
    pub fn backlog(&self) -> u64 {
        self.backlog
    }

    /// True when no work remains queued at this port.
    pub fn is_empty(&self) -> bool {
        self.backlog == 0 && self.batch_work == 0
    }
}

/// Runs the Lindley-recursion simulation.
pub fn run_queue(cfg: &QueueConfig) -> QueueStats {
    let mut st = LindleyState::new(cfg);
    for cycle in 0..(cfg.warmup_cycles + cfg.measure_cycles) {
        st.step(cfg, cycle >= cfg.warmup_cycles);
    }
    st.finish(cfg)
}

/// How often (in cycles) the instrumented queue run pushes progress
/// deltas and lets the heartbeat check its interval.
const HEARTBEAT_CHECK_CYCLES: u64 = 65_536;

/// Like [`run_queue`], but reporting into `tel`: `queue/warmup` and
/// `queue/measure` spans, progress-ledger cycle deltas, and end-of-run
/// counters (`queue.cycles`, `queue.messages`, `queue.runs`). Telemetry
/// is observational only — the returned statistics are bit-identical to
/// [`run_queue`] for any configuration; with telemetry off this *is*
/// [`run_queue`].
pub fn run_queue_instrumented(cfg: &QueueConfig, tel: &Telemetry) -> QueueStats {
    if !tel.active() {
        return run_queue(cfg);
    }
    let mut st = LindleyState::new(cfg);
    let mut since_push = 0u64;
    {
        let _span = tel.span("queue/warmup");
        for _ in 0..cfg.warmup_cycles {
            st.step(cfg, false);
            since_push += 1;
            if since_push == HEARTBEAT_CHECK_CYCLES {
                tel.progress().add_cycles(since_push);
                since_push = 0;
                tel.heartbeat_tick();
            }
        }
    }
    {
        let _span = tel.span("queue/measure");
        for _ in 0..cfg.measure_cycles {
            st.step(cfg, true);
            since_push += 1;
            if since_push == HEARTBEAT_CHECK_CYCLES {
                tel.progress().add_cycles(since_push);
                since_push = 0;
                tel.heartbeat_tick();
            }
        }
    }
    tel.progress().add_cycles(since_push);
    let stats = st.finish(cfg);
    if tel.metrics_enabled() {
        let reg = tel.registry();
        reg.counter("queue.cycles").add(cfg.warmup_cycles + cfg.measure_cycles);
        reg.counter("queue.messages").add(stats.wait.count());
        reg.counter("queue.runs").inc();
        // Fold the exact waiting-time pmf (already collected by the
        // Lindley loop — zero extra hot-path work) into the sketch set.
        tel.sketches().merge_sketch(
            "queue.wait",
            &banyan_obs::DistSketch::from_dense_counts(stats.hist.counts()),
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(arrivals: ArrivalDist, service: ServiceDist) -> QueueStats {
        run_queue(&QueueConfig {
            warmup_cycles: 5_000,
            measure_cycles: 400_000,
            ..QueueConfig::new(arrivals, service)
        })
    }

    #[test]
    fn port_queue_matches_lindley_semantics() {
        // Drive a PortQueue with an explicit arrival schedule and check
        // the waits against the hand-computed Lindley recursion.
        let mut q = PortQueue::new();
        assert!(q.is_empty());
        // Cycle 0: two unit-service arrivals. First waits 0, second 1.
        assert_eq!(q.arrive(1), 0);
        assert_eq!(q.arrive(1), 1);
        q.end_cycle();
        assert_eq!(q.backlog(), 1); // 2 units queued, 1 retired
        // Cycle 1: one m = 3 arrival behind the leftover unit.
        assert_eq!(q.arrive(3), 1);
        q.end_cycle();
        assert_eq!(q.backlog(), 3);
        // Cycles 2–4: empty cycles still retire one unit each.
        q.end_cycle();
        q.end_cycle();
        assert_eq!(q.backlog(), 1);
        assert!(!q.is_empty());
        q.end_cycle();
        assert_eq!(q.backlog(), 0);
        assert!(q.is_empty());
        // Drained port stays at zero (saturating decrement).
        q.end_cycle();
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn uniform_unit_service_matches_eq6_eq7() {
        // k = 2, p = 0.5: E(w) = 0.25, Var(w) = 0.25.
        let stats = quick(
            ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
            ServiceDist::Constant(1),
        );
        assert!((stats.wait.mean() - 0.25).abs() < 0.01, "{}", stats.wait.mean());
        assert!(
            (stats.wait.variance() - 0.25).abs() < 0.02,
            "{}",
            stats.wait.variance()
        );
        assert!((stats.utilization - 0.5).abs() < 0.01);
    }

    #[test]
    fn constant_m4_matches_eq8() {
        // k = 2, p = 0.125, m = 4: ρ = 0.5, E(w) = 0.5·3.5/(2·0.5) = 1.75.
        let stats = quick(
            ArrivalDist::UniformSwitch {
                k: 2,
                s: 2,
                p: 0.125,
            },
            ServiceDist::Constant(4),
        );
        assert!((stats.wait.mean() - 1.75).abs() < 0.06, "{}", stats.wait.mean());
    }

    #[test]
    fn bulk_arrivals_match_closed_form() {
        // k = 2, p = 0.1, b = 4, unit service: λ = kpb/s = 0.4,
        // E(w) = (b−1 + (1−1/k)λ)/(2(1−λ)) = (3 + 0.2)/1.2 = 2.667.
        let stats = quick(
            ArrivalDist::BulkSwitch {
                k: 2,
                s: 2,
                p: 0.1,
                b: 4,
            },
            ServiceDist::Constant(1),
        );
        let want = 3.2 / 1.2;
        assert!(
            (stats.wait.mean() - want).abs() < 0.08,
            "{} vs {want}",
            stats.wait.mean()
        );
    }

    #[test]
    fn nonuniform_q1_never_waits() {
        // q = 1, b = 1: single dedicated source, unit service — the queue
        // is always empty when a message arrives.
        let stats = quick(
            ArrivalDist::Nonuniform {
                k: 2,
                p: 0.9,
                q: 1.0,
                b: 1,
            },
            ServiceDist::Constant(1),
        );
        assert_eq!(stats.wait.max(), 0.0);
        assert!((stats.wait.mean()).abs() < 1e-12);
    }

    #[test]
    fn nonuniform_hand_checked_mean() {
        // k = 2, p = 0.5, q = 0.1: w₁ exact = R''/(2λ(1−λ)) with
        // R'' = 2αβ = 0.12375 → 0.2475.
        let stats = quick(
            ArrivalDist::Nonuniform {
                k: 2,
                p: 0.5,
                q: 0.1,
                b: 1,
            },
            ServiceDist::Constant(1),
        );
        assert!((stats.wait.mean() - 0.2475).abs() < 0.01, "{}", stats.wait.mean());
    }

    #[test]
    fn geometric_service_matches_theorem1() {
        // k = 2, p = 0.3, μ = 0.75: exact mean from the generic formula:
        // E(w) = (R''/μ + 2λ²(1−μ)/μ²)/(2λ(1−λ/μ)), R'' = λ²/2, λ = 0.3
        // = (0.045/0.75 + 2·0.09·0.25/0.5625)/(0.6·0.6) = 0.3888…
        let stats = quick(
            ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.3 },
            ServiceDist::Geometric(0.75),
        );
        let want = (0.045 / 0.75 + 2.0 * 0.09 * 0.25 / 0.5625) / (2.0 * 0.3 * (1.0 - 0.4));
        assert!(
            (stats.wait.mean() - want).abs() < 0.02,
            "{} vs {want}",
            stats.wait.mean()
        );
    }

    #[test]
    fn tabulated_arrivals_respected() {
        // Deterministic one arrival per cycle, unit service: the queue is
        // a D/D/1 at ρ = 1⁻ … use P(1) = 0.6, P(0) = 0.4 instead.
        let stats = quick(
            ArrivalDist::Tabulated(vec![0.4, 0.6]),
            ServiceDist::Constant(1),
        );
        // Single arrivals, unit service: nobody ever waits behind a
        // batch-mate, and the backlog never exceeds 0 after service:
        // w ≡ 0.
        assert_eq!(stats.wait.max(), 0.0);
        assert!((stats.utilization - 0.6).abs() < 0.01);
    }

    #[test]
    fn lambda_helpers() {
        assert!((ArrivalDist::UniformSwitch { k: 4, s: 8, p: 0.6 }.lambda() - 0.3).abs() < 1e-15);
        assert!(
            (ArrivalDist::BulkSwitch { k: 2, s: 2, p: 0.1, b: 4 }.lambda() - 0.4).abs() < 1e-15
        );
        assert!(
            (ArrivalDist::Nonuniform { k: 2, p: 0.5, q: 0.3, b: 2 }.lambda() - 1.0).abs()
                < 1e-15
        );
        assert!((ArrivalDist::Tabulated(vec![0.5, 0.25, 0.25]).lambda() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn instrumented_queue_run_is_bit_identical_and_records() {
        use banyan_obs::TelemetryConfig;
        let cfg = QueueConfig {
            warmup_cycles: 2_000,
            measure_cycles: 50_000,
            ..QueueConfig::new(
                ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
                ServiceDist::Geometric(0.75),
            )
        };
        let base = run_queue(&cfg);
        let tel = Telemetry::new(TelemetryConfig::on());
        let inst = run_queue_instrumented(&cfg, &tel);
        assert_eq!(inst.wait.count(), base.wait.count());
        assert_eq!(inst.wait.mean().to_bits(), base.wait.mean().to_bits());
        assert_eq!(inst.wait.variance().to_bits(), base.wait.variance().to_bits());
        assert_eq!(inst.backlog.mean().to_bits(), base.backlog.mean().to_bits());
        assert_eq!(inst.idle_fraction.to_bits(), base.idle_fraction.to_bits());
        for (a, b) in inst.output_autocorr.iter().zip(&base.output_autocorr) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(tel.spans().stat("queue/warmup").unwrap().calls, 1);
        assert_eq!(tel.spans().stat("queue/measure").unwrap().calls, 1);
        let reg = tel.registry();
        assert_eq!(reg.counter_value("queue.cycles"), Some(52_000));
        assert_eq!(reg.counter_value("queue.messages"), Some(base.wait.count()));
        assert_eq!(reg.counter_value("queue.runs"), Some(1));
        assert_eq!(tel.progress().snapshot().cycles, 52_000);
        // The exact waiting-time pmf is mirrored into the sketch set.
        let sk = tel.sketches().get("queue.wait").expect("queue.wait sketch");
        assert_eq!(sk.count(), base.wait.count());
        assert!((sk.mean() - base.wait.mean()).abs() < 1e-9);
        assert!((sk.variance() - base.wait.variance()).abs() < 1e-9);
        // A disabled sink takes the plain path and records nothing.
        let off = Telemetry::off();
        let quiet = run_queue_instrumented(&cfg, &off);
        assert_eq!(quiet.wait.mean().to_bits(), base.wait.mean().to_bits());
        assert!(off.registry().is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = QueueConfig::new(
            ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
            ServiceDist::Constant(1),
        );
        let a = run_queue(&cfg);
        let b = run_queue(&cfg);
        assert_eq!(a.wait.mean(), b.wait.mean());
        assert_eq!(a.wait.count(), b.wait.count());
        assert_eq!(a.backlog.mean(), b.backlog.mean());
    }

    #[test]
    fn output_process_has_memory() {
        // §IV's premise: the output of a queue (the next stage's input)
        // is NOT a memoryless stream — the busy indicator has positive
        // autocorrelation that decays with lag.
        let stats = quick(
            ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
            ServiceDist::Constant(1),
        );
        let ac = stats.output_autocorr;
        assert!(ac[0] > 0.05, "lag-1 autocorr {:.4} should be clearly positive", ac[0]);
        assert!(ac[0] > ac[1] && ac[1] > ac[2], "autocorrelation should decay: {ac:?}");
        assert!(ac[3] < ac[0] / 2.0, "long-lag memory should fade: {ac:?}");
    }

    #[test]
    fn bernoulli_stream_without_queueing_is_memoryless() {
        // Sanity check of the estimator itself: single arrivals with unit
        // service never queue (w ≡ 0) and the busy process is i.i.d.
        // Bernoulli — autocorrelation ≈ 0.
        let stats = quick(
            ArrivalDist::Tabulated(vec![0.5, 0.5]),
            ServiceDist::Constant(1),
        );
        for (lag, &ac) in stats.output_autocorr.iter().enumerate() {
            assert!(ac.abs() < 0.01, "lag {} autocorr {ac}", lag + 1);
        }
    }

    #[test]
    fn backlog_and_idle_fraction_tracked() {
        // k = 2, p = 0.5, unit service: P(s = 0) = (1−ρ)/R(0)
        // = 0.5/0.5625 = 0.888…, and E[s] = V₂/(2(1−ρ)) = 0.125.
        let stats = quick(
            ArrivalDist::UniformSwitch { k: 2, s: 2, p: 0.5 },
            ServiceDist::Constant(1),
        );
        assert!((stats.idle_fraction - 0.5 / 0.5625).abs() < 0.01, "{}", stats.idle_fraction);
        assert!((stats.backlog.mean() - 0.125).abs() < 0.01, "{}", stats.backlog.mean());
    }
}
