//! Butterfly (indirect binary `k`-cube) wiring — a second banyan
//! topology.
//!
//! The paper's analysis applies to any *banyan* (unique-path,
//! self-routing) multistage network; the omega network of
//! [`crate::topology`] is one member of the delta family, the butterfly
//! another. In a `k`-ary butterfly, stage `i` (1-indexed) connects wire
//! `w` to wires that differ from `w` only in the `i`-th most significant
//! base-`k` digit; routing sets that digit to the destination's.
//!
//! Under uniform traffic the two wirings are statistically
//! indistinguishable (both are delta networks; each stage's switch
//! outputs see the same exchangeable traffic), which the test suite
//! verifies — this is the topological-equivalence fact that lets the
//! paper speak of "banyan networks" generically.

/// An `n`-stage, `k`-ary butterfly network (`N = k^n` ports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ButterflyTopology {
    k: u32,
    stages: u32,
    size: u64,
}

impl ButterflyTopology {
    /// Builds the topology (`k >= 2`, `stages >= 1`, `N <= 2^24`).
    pub fn new(k: u32, stages: u32) -> Self {
        assert!(k >= 2, "switch size must be at least 2");
        assert!(stages >= 1, "need at least one stage");
        let size = (k as u64)
            .checked_pow(stages)
            .expect("network size overflows u64");
        assert!(size <= 1 << 24, "network with {size} ports is unreasonably large");
        ButterflyTopology { k, stages, size }
    }

    /// Switch arity `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of stages.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Number of ports `N = k^n`.
    pub fn ports(&self) -> u64 {
        self.size
    }

    /// Weight of the digit consumed by `stage` (digit 1 = most
    /// significant).
    fn digit_weight(&self, stage: u32) -> u64 {
        (self.k as u64).pow(self.stages - stage)
    }

    /// One routing step: replace the `stage`-th most significant digit
    /// of the current wire with the destination's.
    pub fn next_wire(&self, stage: u32, wire: u64, dest: u64) -> u64 {
        debug_assert!((1..=self.stages).contains(&stage));
        debug_assert!(wire < self.size && dest < self.size);
        let w = self.digit_weight(stage);
        let k = self.k as u64;
        let own = (wire / w) % k;
        let want = (dest / w) % k;
        (wire as i64 + (want as i64 - own as i64) * w as i64) as u64
    }

    /// Like [`next_wire`](Self::next_wire), but takes the destination
    /// *digit* directly instead of extracting it from a full address —
    /// the form the simulator uses once digits are precomputed at
    /// injection.
    pub fn next_wire_for_digit(&self, stage: u32, wire: u64, digit: u32) -> u64 {
        debug_assert!((1..=self.stages).contains(&stage));
        debug_assert!(wire < self.size && digit < self.k);
        let w = self.digit_weight(stage);
        let own = (wire / w) % self.k as u64;
        (wire as i64 + (digit as i64 - own as i64) * w as i64) as u64
    }

    /// Full `stage × wire × digit` next-wire table, laid out
    /// `table[(stage0 * ports + wire) * k + digit]` with `stage0`
    /// 0-indexed. Wires fit in `u32` (`N ≤ 2^24` by construction).
    pub fn routing_table(&self) -> Vec<u32> {
        let ports = self.size as usize;
        let k = self.k as usize;
        let mut table = vec![0u32; self.stages as usize * ports * k];
        for stage0 in 0..self.stages as usize {
            for wire in 0..ports {
                let base = (stage0 * ports + wire) * k;
                for digit in 0..k {
                    table[base + digit] =
                        self.next_wire_for_digit(stage0 as u32 + 1, wire as u64, digit as u32)
                            as u32;
                }
            }
        }
        table
    }

    /// The full output-wire path from `input` to `dest`.
    pub fn path(&self, input: u64, dest: u64) -> Vec<u64> {
        let mut wire = input;
        (1..=self.stages)
            .map(|stage| {
                wire = self.next_wire(stage, wire, dest);
                wire
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_reaches_destination_exhaustively() {
        for &(k, n) in &[(2u32, 3u32), (2, 4), (4, 2), (3, 3)] {
            let t = ButterflyTopology::new(k, n);
            for input in 0..t.ports() {
                for dest in 0..t.ports() {
                    let path = t.path(input, dest);
                    assert_eq!(*path.last().unwrap(), dest, "k={k} n={n} {input}->{dest}");
                    assert!(path.iter().all(|&w| w < t.ports()));
                }
            }
        }
    }

    #[test]
    fn digits_fixed_msb_first() {
        let t = ButterflyTopology::new(2, 4);
        // After stage i, the i most significant bits equal the dest's.
        let input = 0b0110u64;
        let dest = 0b1001u64;
        let path = t.path(input, dest);
        assert_eq!(path[0] >> 3, dest >> 3);
        assert_eq!(path[1] >> 2, dest >> 2);
        assert_eq!(path[2] >> 1, dest >> 1);
        assert_eq!(path[3], dest);
    }

    #[test]
    fn unique_path_property() {
        // Same (input, dest) ⇒ same path (deterministic routing).
        let t = ButterflyTopology::new(2, 3);
        for input in 0..8 {
            for dest in 0..8 {
                assert_eq!(t.path(input, dest), t.path(input, dest));
            }
        }
    }

    #[test]
    fn load_balance_over_all_pairs() {
        // Each stage-output wire is used equally often over all
        // (input, dest) pairs — same structural fact as the omega.
        let t = ButterflyTopology::new(2, 3);
        for stage_idx in 0..3usize {
            let mut counts = vec![0u32; 8];
            for input in 0..8 {
                for dest in 0..8 {
                    counts[t.path(input, dest)[stage_idx] as usize] += 1;
                }
            }
            assert!(counts.iter().all(|&c| c == 8), "stage {stage_idx}: {counts:?}");
        }
    }

    #[test]
    fn routing_table_reproduces_next_wire() {
        for &(k, n) in &[(2u32, 4u32), (4, 2), (3, 3)] {
            let t = ButterflyTopology::new(k, n);
            let table = t.routing_table();
            let ports = t.ports() as usize;
            for stage in 1..=n {
                for wire in 0..t.ports() {
                    for dest in 0..t.ports() {
                        let expect = t.next_wire(stage, wire, dest);
                        let digit = (dest / t.digit_weight(stage)) % k as u64;
                        let idx = (((stage - 1) as usize * ports + wire as usize) * k as usize)
                            + digit as usize;
                        assert_eq!(table[idx] as u64, expect);
                        assert_eq!(t.next_wire_for_digit(stage, wire, digit as u32), expect);
                    }
                }
            }
        }
    }

    #[test]
    fn stage_moves_are_local_to_one_digit() {
        let t = ButterflyTopology::new(4, 3);
        let wire = 37u64;
        let dest = 58u64;
        let mut prev = wire;
        for (i, &next) in t.path(wire, dest).iter().enumerate() {
            let stage = i as u32 + 1;
            let w = (4u64).pow(3 - stage);
            // Only the stage digit may change.
            assert_eq!(prev / (w * 4), next / (w * 4), "higher digits fixed");
            assert_eq!(prev % w, next % w, "lower digits fixed");
            prev = next;
        }
    }
}
