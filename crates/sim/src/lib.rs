//! # banyan-sim
//!
//! Clocked simulation of buffered multistage banyan (omega) networks —
//! the "extensive simulations" substrate of Kruskal–Snir–Weiss. Two
//! simulators are provided:
//!
//! * [`queue`] — one first-stage output port as a discrete-time
//!   batch-arrival queue (the exact §II model, via the Lindley
//!   recursion). Validates Theorem 1 and every §III closed form,
//!   including bulk and nonuniform arrival classes.
//! * [`network`] — the full `k^n`-port omega network ([`topology`]) of
//!   output-queued `k × k` switches with infinite FIFO buffers and
//!   cut-through forwarding, instrumented per stage. Produces everything
//!   the paper's tables and figures need: per-stage waiting means and
//!   variances (Tables I–V), cross-stage correlations (Table VI), and
//!   total-waiting-time histograms (Tables VII–XII, Figs. 3–8).
//!
//! Workloads ([`traffic`]) cover uniform Bernoulli arrivals, hot-spot
//! ("favorite output") traffic, and constant / mixed / geometric message
//! sizes. [`runner`] shards replications across threads and merges the
//! streaming statistics exactly; replications sharing a worker run
//! lock-step on a lane-batched structure-of-arrays engine
//! (bit-identical to the scalar simulator — see [`ReplicationEngine`]).
//!
//! Simulations are deterministic given their seed.
//!
//! ```
//! use banyan_sim::network::{run_network, NetworkConfig};
//! use banyan_sim::traffic::Workload;
//!
//! let mut cfg = NetworkConfig::new(2, 3, Workload::uniform(0.5, 1));
//! cfg.warmup_cycles = 200;
//! cfg.measure_cycles = 2_000;
//! let stats = run_network(cfg);
//! assert_eq!(stats.injected, stats.delivered);
//! // First-stage mean waiting ≈ 0.25 (paper Eq. 6).
//! assert!((stats.stage_waits[0].mean() - 0.25).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod butterfly;
pub mod input_queued;
mod lanes;
pub mod network;
pub mod queue;
pub mod runner;
pub mod topology;
pub mod traffic;

pub use butterfly::ButterflyTopology;
pub use input_queued::{run_input_queued, InputQueuedConfig, InputQueuedSim};
pub use network::{run_network, NetworkConfig, NetworkSim, NetworkStats};
pub use queue::{run_queue, ArrivalDist, PortQueue, QueueConfig, QueueStats};
pub use runner::{
    run_network_replicated, run_network_replicated_traced, run_network_replicated_with_engine,
    run_queue_replicated, ReplicationEngine,
};
pub use topology::OmegaTopology;
pub use traffic::{ServiceDist, Workload};
