//! Randomized property tests for the simulation substrate, driven by
//! the seeded in-repo harness (`banyan_prng::check`).

use banyan_prng::check::check;
use banyan_prng::rngs::SmallRng;
use banyan_prng::SeedableRng;
use banyan_sim::network::{run_network, NetworkConfig};
use banyan_sim::queue::{run_queue, ArrivalDist, QueueConfig};
use banyan_sim::topology::OmegaTopology;
use banyan_sim::traffic::{ServiceDist, Workload};

const CASES: u32 = 32;

#[test]
fn routing_always_reaches_destination() {
    check(CASES, |g| {
        let (k, n) = g.pick(&[(2u32, 3u32), (2, 6), (2, 10), (4, 4), (8, 3), (3, 4)]);
        let seed = g.any_u64();
        let t = OmegaTopology::new(k, n);
        let input = seed % t.ports();
        let dest = (seed / 7) % t.ports();
        let path = t.path(input, dest);
        assert_eq!(path.len(), n as usize);
        assert_eq!(*path.last().unwrap(), dest);
        assert!(path.iter().all(|&w| w < t.ports()));
    });
}

#[test]
fn shuffle_is_bijective_sampled() {
    check(CASES, |g| {
        let (k, n) = g.pick(&[(2u32, 8u32), (4, 5), (8, 4)]);
        let w = g.any_u64();
        let t = OmegaTopology::new(k, n);
        let wire = w % t.ports();
        // Applying the shuffle n times is the identity (full rotation of
        // an n-digit number).
        let mut cur = wire;
        for _ in 0..n {
            cur = t.shuffle(cur);
        }
        assert_eq!(cur, wire);
    });
}

#[test]
fn service_samples_within_support() {
    check(CASES, |g| {
        let mu = g.f64(0.05..1.0);
        let seed = g.any_u64();
        let mut rng = SmallRng::seed_from_u64(seed);
        let geo = ServiceDist::Geometric(mu);
        for _ in 0..50 {
            assert!(geo.sample(&mut rng) >= 1);
        }
        let m = ServiceDist::Mixed(vec![(2, 0.5), (7, 0.5)]);
        for _ in 0..50 {
            let s = m.sample(&mut rng);
            assert!(s == 2 || s == 7);
        }
    });
}

#[test]
fn queue_sim_waits_and_utilization_sane() {
    check(CASES, |g| {
        let p = g.f64(0.05..0.9);
        let seed = g.any_u64();
        let stats = run_queue(&QueueConfig {
            warmup_cycles: 500,
            measure_cycles: 20_000,
            seed,
            arrivals: ArrivalDist::UniformSwitch { k: 2, s: 2, p },
            service: ServiceDist::Constant(1),
        });
        assert!(stats.wait.min() >= 0.0);
        assert!((0.0..=1.0).contains(&stats.utilization));
        // Utilization tracks ρ = p.
        assert!((stats.utilization - p).abs() < 0.05);
    });
}

#[test]
fn network_conserves_messages() {
    check(CASES, |g| {
        let p = g.f64(0.05..0.8);
        let n = g.u32(2..6);
        let m = g.pick(&[1u32, 2]);
        let seed = g.any_u64();
        if p * m as f64 >= 0.9 {
            return; // unstable load — not the property under test
        }
        let cfg = NetworkConfig {
            warmup_cycles: 200,
            measure_cycles: 2_000,
            seed,
            ..NetworkConfig::new(2, n, Workload::uniform(p, m))
        };
        let stats = run_network(cfg);
        assert_eq!(stats.injected, stats.delivered);
        assert_eq!(stats.total_hist.total(), stats.delivered);
        assert_eq!(stats.total_wait.count(), stats.delivered);
        assert!(stats.injected_total >= stats.injected);
        // Every per-stage accumulator saw every tracked message.
        for s in &stats.stage_waits {
            assert_eq!(s.count(), stats.delivered);
        }
    });
}

#[test]
fn finite_buffer_accounting_invariant() {
    // Conservation ledger under arbitrary finite capacities: every
    // injection attempt is either rejected up front or ends up counted
    // as delivered or still in flight — nothing is lost or double
    // counted, at any load, capacity, or message size.
    check(CASES, |g| {
        let p = g.f64(0.05..0.95);
        let n = g.u32(2..6);
        let m = g.pick(&[1u32, 2, 4]);
        let cap = g.pick(&[1usize, 2, 4, 16]);
        let seed = g.any_u64();
        let cfg = NetworkConfig {
            warmup_cycles: 200,
            measure_cycles: 2_000,
            seed,
            buffer_capacity: Some(cap),
            ..NetworkConfig::new(2, n, Workload::uniform(p, m))
        };
        let stats = run_network(cfg);
        // Accepted messages: injected_total = delivered + in-flight
        // (rejected attempts never enter injected_total, so adding
        // rejected_total to both sides gives the attempt-level ledger).
        assert_eq!(
            stats.injected_total,
            stats.delivered_total + stats.in_flight_at_end,
            "p={p} n={n} m={m} cap={cap}"
        );
        assert_eq!(
            stats.injected, stats.delivered,
            "tracked messages all drain"
        );
        assert!(stats.delivered_total >= stats.delivered);
        // Capacity 1 at heavy offered load must actually reject.
        if cap == 1 && p * m as f64 > 0.5 {
            assert!(stats.rejected_total > 0, "p={p} m={m} cap=1 never rejected");
        }
    });
}

#[test]
fn network_total_equals_sum_of_stage_means() {
    check(CASES, |g| {
        let p = g.f64(0.1..0.7);
        let seed = g.any_u64();
        let cfg = NetworkConfig {
            warmup_cycles: 200,
            measure_cycles: 3_000,
            seed,
            ..NetworkConfig::new(2, 4, Workload::uniform(p, 1))
        };
        let stats = run_network(cfg);
        if stats.delivered == 0 {
            return;
        }
        let sum: f64 = stats.stage_waits.iter().map(|w| w.mean()).sum();
        assert!((stats.total_wait.mean() - sum).abs() < 1e-9 * (1.0 + sum));
    });
}

#[test]
fn butterfly_routing_always_reaches_destination() {
    check(CASES, |g| {
        use banyan_sim::butterfly::ButterflyTopology;
        let (k, n) = g.pick(&[(2u32, 3u32), (2, 8), (4, 4), (3, 4)]);
        let seed = g.any_u64();
        let t = ButterflyTopology::new(k, n);
        let input = seed % t.ports();
        let dest = (seed / 13) % t.ports();
        let path = t.path(input, dest);
        assert_eq!(*path.last().unwrap(), dest);
        assert!(path.iter().all(|&w| w < t.ports()));
    });
}

#[test]
fn input_queued_conserves_messages() {
    check(CASES, |g| {
        use banyan_sim::input_queued::{run_input_queued, InputQueuedConfig};
        let p = g.f64(0.05..0.45);
        let seed = g.any_u64();
        let cfg = InputQueuedConfig {
            warmup_cycles: 200,
            measure_cycles: 1_500,
            seed,
            ..InputQueuedConfig::new(2, 3, Workload::uniform(p, 1))
        };
        let stats = run_input_queued(cfg);
        assert_eq!(stats.injected, stats.delivered);
        assert!(stats.total_wait.min() >= 0.0);
    });
}

#[test]
fn telemetry_never_perturbs_replicated_results() {
    // The observability contract: `run_network_replicated` is
    // bit-identical with telemetry off vs on (any sampling cadence, any
    // thread count) — telemetry observes counters and queues but never
    // the RNG or the dynamics.
    use banyan_obs::{Telemetry, TelemetryConfig};
    use banyan_sim::runner::run_network_replicated_instrumented;
    check(CASES, |g| {
        let p = g.f64(0.1..0.8);
        let n = g.u32(2..5);
        let reps = g.pick(&[1u32, 2, 3]);
        let threads = g.pick(&[1usize, 2, 4]);
        let sample_every = g.pick(&[1u64, 7, 256]);
        let seed = g.any_u64();
        let cfg = NetworkConfig {
            warmup_cycles: 100,
            measure_cycles: 1_000,
            seed,
            ..NetworkConfig::new(2, n, Workload::uniform(p, 1))
        };
        let off = run_network_replicated_instrumented(&cfg, reps, threads, &Telemetry::off());
        let tel = Telemetry::new(TelemetryConfig::on().with_sample_every(sample_every));
        let on = run_network_replicated_instrumented(&cfg, reps, threads, &tel);
        let label = format!("p={p} n={n} reps={reps} threads={threads} every={sample_every}");
        assert_eq!(on.injected, off.injected, "{label}");
        assert_eq!(on.delivered, off.delivered, "{label}");
        assert_eq!(on.injected_total, off.injected_total, "{label}");
        assert_eq!(on.delivered_total, off.delivered_total, "{label}");
        assert_eq!(on.in_flight_at_end, off.in_flight_at_end, "{label}");
        assert_eq!(
            on.total_wait.mean().to_bits(),
            off.total_wait.mean().to_bits(),
            "{label}"
        );
        assert_eq!(
            on.total_wait.variance().to_bits(),
            off.total_wait.variance().to_bits(),
            "{label}"
        );
        for (a, b) in on.stage_waits.iter().zip(&off.stage_waits) {
            assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{label}");
            assert_eq!(a.variance().to_bits(), b.variance().to_bits(), "{label}");
        }
        // The registry agrees with the merged stats: telemetry is a
        // faithful observer, not a second bookkeeper.
        let reg = tel.registry();
        assert_eq!(
            reg.counter_value("net.runs"),
            Some(u64::from(reps)),
            "{label}"
        );
        assert_eq!(
            reg.counter_value("net.injected_total"),
            Some(on.injected_total),
            "{label}"
        );
        assert_eq!(
            reg.counter_value("net.delivered_total"),
            Some(on.delivered_total),
            "{label}"
        );
    });
}

#[test]
fn lane_engine_bit_identity() {
    // The lane-engine contract (PR 6 tentpole): for random
    // (p, k, n, m), buffer capacities, lane widths, and thread counts,
    // the lock-step lane engine produces NetworkStats bit-identical to
    // one scalar simulation per replication — means, variances,
    // histograms, and the conservation ledger.
    use banyan_obs::Telemetry;
    use banyan_sim::runner::run_network_replicated_with_engine;
    use banyan_sim::ReplicationEngine;
    check(CASES, |g| {
        let (k, n) = g.pick(&[(2u32, 2u32), (2, 4), (2, 6), (3, 3), (4, 3), (8, 2)]);
        let m = g.pick(&[1u32, 2, 4]);
        let mut p = g.f64(0.05..0.9);
        if p * m as f64 >= 0.85 {
            p = 0.8 / m as f64; // keep the drain bounded
        }
        let cap = g.pick(&[None, None, Some(2usize), Some(8)]);
        let reps = g.pick(&[2u32, 3, 5, 8]);
        let width = g.pick(&[1usize, 2, 4, 32, 64]);
        let threads = g.pick(&[1usize, 2, 4]);
        let seed = g.any_u64();
        let cfg = NetworkConfig {
            warmup_cycles: 100,
            measure_cycles: 800,
            seed,
            buffer_capacity: cap,
            ..NetworkConfig::new(k, n, Workload::uniform(p, m))
        };
        let label = format!(
            "k={k} n={n} m={m} p={p} cap={cap:?} reps={reps} width={width} threads={threads} seed={seed:#x}"
        );
        let tel = Telemetry::off();
        let scalar = run_network_replicated_with_engine(
            &cfg,
            reps,
            threads,
            &tel,
            ReplicationEngine::Scalar,
        );
        let lanes = run_network_replicated_with_engine(
            &cfg,
            reps,
            threads,
            &tel,
            ReplicationEngine::Lanes(width),
        );
        assert_eq!(lanes.injected, scalar.injected, "{label}");
        assert_eq!(lanes.delivered, scalar.delivered, "{label}");
        assert_eq!(lanes.injected_total, scalar.injected_total, "{label}");
        assert_eq!(lanes.delivered_total, scalar.delivered_total, "{label}");
        assert_eq!(lanes.rejected_total, scalar.rejected_total, "{label}");
        assert_eq!(lanes.in_flight_at_end, scalar.in_flight_at_end, "{label}");
        assert_eq!(lanes.cycles, scalar.cycles, "{label}");
        assert_eq!(lanes.total_hist, scalar.total_hist, "{label}");
        assert_eq!(
            lanes.total_wait.mean().to_bits(),
            scalar.total_wait.mean().to_bits(),
            "{label}"
        );
        assert_eq!(
            lanes.total_wait.variance().to_bits(),
            scalar.total_wait.variance().to_bits(),
            "{label}"
        );
        for (i, (a, b)) in lanes
            .stage_waits
            .iter()
            .zip(&scalar.stage_waits)
            .enumerate()
        {
            assert_eq!(a.count(), b.count(), "{label} stage {i}");
            assert_eq!(a.mean().to_bits(), b.mean().to_bits(), "{label} stage {i}");
            assert_eq!(
                a.variance().to_bits(),
                b.variance().to_bits(),
                "{label} stage {i}"
            );
        }
    });
}

#[test]
fn msgtrace_engines_byte_identical() {
    // The message-tracing contract (PR 10 tentpole): the scalar engine
    // and the lane engine (lock-step or stage-sweep, any width, any
    // thread count) render byte-identical msgtrace JSONL documents for
    // the same configuration and seed — the strongest cross-engine
    // correctness check in the repo, since it compares individual
    // message lifecycles rather than aggregate statistics.
    use banyan_obs::msgtrace::{header_object, render_jsonl, MsgTracer};
    use banyan_obs::Telemetry;
    use banyan_sim::runner::run_network_replicated_traced;
    use banyan_sim::ReplicationEngine;
    check(CASES, |g| {
        let (k, n) = g.pick(&[(2u32, 2u32), (2, 4), (2, 6), (3, 3), (4, 3), (8, 2)]);
        let m = g.pick(&[1u32, 2, 4]);
        let mut p = g.f64(0.05..0.9);
        if p * m as f64 >= 0.85 {
            p = 0.8 / m as f64;
        }
        let cap = g.pick(&[None, None, Some(2usize), Some(8)]);
        let reps = g.pick(&[1u32, 2, 3, 5]);
        let width = g.pick(&[1usize, 2, 4, 32]);
        let rate = g.pick(&[0.05f64, 0.25, 1.0]);
        let seed = g.any_u64();
        let cfg = NetworkConfig {
            warmup_cycles: 100,
            measure_cycles: 600,
            seed,
            buffer_capacity: cap,
            ..NetworkConfig::new(k, n, Workload::uniform(p, m))
        };
        let label = format!(
            "k={k} n={n} m={m} p={p} cap={cap:?} reps={reps} width={width} rate={rate} seed={seed:#x}"
        );
        let render = |engine: ReplicationEngine, threads: usize| {
            let tracer = MsgTracer::new(rate);
            let stats = run_network_replicated_traced(
                &cfg,
                reps,
                threads,
                &Telemetry::off(),
                engine,
                Some(&tracer),
            );
            let header = header_object("net", cfg.stages, cfg.seed, reps, rate).finish();
            (render_jsonl(&header, &tracer.finish()), stats)
        };
        let (base, base_stats) = render(ReplicationEngine::Scalar, 1);
        for threads in [1usize, 2, 4, 8] {
            let (doc, stats) = render(ReplicationEngine::Lanes(width), threads);
            assert_eq!(doc, base, "lanes width={width} threads={threads}: {label}");
            assert_eq!(stats.delivered, base_stats.delivered, "{label}");
            let (doc_s, _) = render(ReplicationEngine::Scalar, threads);
            assert_eq!(doc_s, base, "scalar threads={threads}: {label}");
        }
        // A traced run never perturbs the simulation itself.
        let untraced = banyan_sim::runner::run_network_replicated_with_engine(
            &cfg,
            reps,
            1,
            &Telemetry::off(),
            ReplicationEngine::Scalar,
        );
        assert_eq!(untraced.delivered, base_stats.delivered, "{label}");
        assert_eq!(
            untraced.total_wait.mean().to_bits(),
            base_stats.total_wait.mean().to_bits(),
            "{label}"
        );
    });
}

#[test]
fn msgtrace_sample_is_submultiset_of_full_pmf() {
    // Contract (b) of the tracing design: the multiset of sampled
    // end-to-end waits is a sub-multiset of the full waiting-time pmf
    // the telemetry sketches record, and each record's stage waits sum
    // to its total exactly (contract (a), enforced per record).
    use banyan_obs::msgtrace::MsgTracer;
    use banyan_obs::{Telemetry, TelemetryConfig};
    use banyan_sim::runner::run_network_replicated_traced;
    use banyan_sim::ReplicationEngine;
    use std::collections::HashMap;
    check(CASES, |g| {
        let p = g.f64(0.1..0.8);
        let n = g.u32(2..5);
        let reps = g.pick(&[1u32, 2, 3]);
        let rate = g.pick(&[0.1f64, 0.5, 1.0]);
        let engine = g.pick(&[
            ReplicationEngine::Scalar,
            ReplicationEngine::Lanes(8),
            ReplicationEngine::Auto,
        ]);
        let seed = g.any_u64();
        let cfg = NetworkConfig {
            warmup_cycles: 100,
            measure_cycles: 800,
            seed,
            ..NetworkConfig::new(2, n, Workload::uniform(p, 1))
        };
        let label = format!("p={p} n={n} reps={reps} rate={rate} engine={engine:?} seed={seed:#x}");
        let tel = Telemetry::new(TelemetryConfig::on());
        let tracer = MsgTracer::new(rate);
        run_network_replicated_traced(&cfg, reps, 2, &tel, engine, Some(&tracer));
        let records = tracer.finish();
        let mut sampled: HashMap<u64, u64> = HashMap::new();
        for r in &records {
            assert_eq!(
                r.waits.iter().map(|&w| u64::from(w)).sum::<u64>(),
                r.total_wait(),
                "{label}"
            );
            assert_eq!(r.waits.len(), n as usize, "{label}");
            *sampled.entry(r.total_wait()).or_insert(0) += 1;
        }
        let full: HashMap<u64, u64> = tel
            .sketches()
            .get("net.wait.total")
            .expect("total-wait sketch present")
            .count_points()
            .into_iter()
            .collect();
        for (&w, &c) in &sampled {
            assert!(
                full.get(&w).copied().unwrap_or(0) >= c,
                "{label}: sampled wait {w} appears {c} times but pmf has {:?}",
                full.get(&w)
            );
        }
        if rate >= 1.0 {
            // Every tracked message traced: the multisets are equal.
            let full_count: u64 = full.values().sum();
            assert_eq!(records.len() as u64, full_count, "{label}");
        }
    });
}

#[test]
fn same_seed_same_results() {
    check(CASES, |g| {
        let p = g.f64(0.1..0.8);
        let seed = g.any_u64();
        let mk = || NetworkConfig {
            warmup_cycles: 100,
            measure_cycles: 1_000,
            seed,
            ..NetworkConfig::new(2, 3, Workload::uniform(p, 1))
        };
        let a = run_network(mk());
        let b = run_network(mk());
        assert_eq!(a.injected_total, b.injected_total);
        assert_eq!(a.total_wait.mean(), b.total_wait.mean());
        assert_eq!(a.total_wait.variance(), b.total_wait.variance());
    });
}
