//! Property-based tests (proptest) for the simulation substrate.

use banyan_sim::network::{run_network, NetworkConfig};
use banyan_sim::queue::{run_queue, ArrivalDist, QueueConfig};
use banyan_sim::topology::OmegaTopology;
use banyan_sim::traffic::{ServiceDist, Workload};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn routing_always_reaches_destination(
        kn in prop::sample::select(vec![(2u32, 3u32), (2, 6), (2, 10), (4, 4), (8, 3), (3, 4)]),
        seed in any::<u64>(),
    ) {
        let (k, n) = kn;
        let t = OmegaTopology::new(k, n);
        let input = seed % t.ports();
        let dest = (seed / 7) % t.ports();
        let path = t.path(input, dest);
        prop_assert_eq!(path.len(), n as usize);
        prop_assert_eq!(*path.last().unwrap(), dest);
        prop_assert!(path.iter().all(|&w| w < t.ports()));
    }

    #[test]
    fn shuffle_is_bijective_sampled(
        kn in prop::sample::select(vec![(2u32, 8u32), (4, 5), (8, 4)]),
        w in any::<u64>(),
    ) {
        let (k, n) = kn;
        let t = OmegaTopology::new(k, n);
        let wire = w % t.ports();
        // Applying the shuffle n times is the identity (full rotation of
        // an n-digit number).
        let mut cur = wire;
        for _ in 0..n {
            cur = t.shuffle(cur);
        }
        prop_assert_eq!(cur, wire);
    }

    #[test]
    fn service_samples_within_support(mu in 0.05f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = ServiceDist::Geometric(mu);
        for _ in 0..50 {
            prop_assert!(g.sample(&mut rng) >= 1);
        }
        let m = ServiceDist::Mixed(vec![(2, 0.5), (7, 0.5)]);
        for _ in 0..50 {
            let s = m.sample(&mut rng);
            prop_assert!(s == 2 || s == 7);
        }
    }

    #[test]
    fn queue_sim_waits_and_utilization_sane(
        p in 0.05f64..0.9,
        seed in any::<u64>(),
    ) {
        let stats = run_queue(&QueueConfig {
            warmup_cycles: 500,
            measure_cycles: 20_000,
            seed,
            arrivals: ArrivalDist::UniformSwitch { k: 2, s: 2, p },
            service: ServiceDist::Constant(1),
        });
        prop_assert!(stats.wait.min() >= 0.0);
        prop_assert!((0.0..=1.0).contains(&stats.utilization));
        // Utilization tracks ρ = p.
        prop_assert!((stats.utilization - p).abs() < 0.05);
    }

    #[test]
    fn network_conserves_messages(
        p in 0.05f64..0.8,
        n in 2u32..6,
        m in prop::sample::select(vec![1u32, 2]),
        seed in any::<u64>(),
    ) {
        prop_assume!((p * m as f64) < 0.9);
        let cfg = NetworkConfig {
            warmup_cycles: 200,
            measure_cycles: 2_000,
            seed,
            ..NetworkConfig::new(2, n, Workload::uniform(p, m))
        };
        let stats = run_network(cfg);
        prop_assert_eq!(stats.injected, stats.delivered);
        prop_assert_eq!(stats.total_hist.total(), stats.delivered);
        prop_assert_eq!(stats.total_wait.count(), stats.delivered);
        prop_assert!(stats.injected_total >= stats.injected);
        // Every per-stage accumulator saw every tracked message.
        for s in &stats.stage_waits {
            prop_assert_eq!(s.count(), stats.delivered);
        }
    }

    #[test]
    fn network_total_equals_sum_of_stage_means(
        p in 0.1f64..0.7,
        seed in any::<u64>(),
    ) {
        let cfg = NetworkConfig {
            warmup_cycles: 200,
            measure_cycles: 3_000,
            seed,
            ..NetworkConfig::new(2, 4, Workload::uniform(p, 1))
        };
        let stats = run_network(cfg);
        prop_assume!(stats.delivered > 0);
        let sum: f64 = stats.stage_waits.iter().map(|w| w.mean()).sum();
        prop_assert!((stats.total_wait.mean() - sum).abs() < 1e-9 * (1.0 + sum));
    }

    #[test]
    fn butterfly_routing_always_reaches_destination(
        kn in prop::sample::select(vec![(2u32, 3u32), (2, 8), (4, 4), (3, 4)]),
        seed in any::<u64>(),
    ) {
        use banyan_sim::butterfly::ButterflyTopology;
        let (k, n) = kn;
        let t = ButterflyTopology::new(k, n);
        let input = seed % t.ports();
        let dest = (seed / 13) % t.ports();
        let path = t.path(input, dest);
        prop_assert_eq!(*path.last().unwrap(), dest);
        prop_assert!(path.iter().all(|&w| w < t.ports()));
    }

    #[test]
    fn input_queued_conserves_messages(p in 0.05f64..0.45, seed in any::<u64>()) {
        use banyan_sim::input_queued::{run_input_queued, InputQueuedConfig};
        let cfg = InputQueuedConfig {
            warmup_cycles: 200,
            measure_cycles: 1_500,
            seed,
            ..InputQueuedConfig::new(2, 3, Workload::uniform(p, 1))
        };
        let stats = run_input_queued(cfg);
        prop_assert_eq!(stats.injected, stats.delivered);
        prop_assert!(stats.total_wait.min() >= 0.0);
    }

    #[test]
    fn same_seed_same_results(p in 0.1f64..0.8, seed in any::<u64>()) {
        let mk = || NetworkConfig {
            warmup_cycles: 100,
            measure_cycles: 1_000,
            seed,
            ..NetworkConfig::new(2, 3, Workload::uniform(p, 1))
        };
        let a = run_network(mk());
        let b = run_network(mk());
        prop_assert_eq!(a.injected_total, b.injected_total);
        prop_assert_eq!(a.total_wait.mean(), b.total_wait.mean());
        prop_assert_eq!(a.total_wait.variance(), b.total_wait.variance());
    }
}
