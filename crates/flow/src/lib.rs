//! # banyan-flow
//!
//! Generalized end-to-end waiting-time analysis for **feed-forward
//! routed networks**, lifting the paper's per-stage laws out of the
//! banyan restriction (ROADMAP item 3; cf. Chen, "End-to-End Delay
//! Approximation in Packet-Switched Networks", and Giroudot–Mifdaoui's
//! per-node wormhole NoC analysis for the heterogeneous-node view).
//!
//! * [`graph`] — the routed-DAG model: [`FlowGraph`] with per-node
//!   service ([`Node`]), output-port links ([`Link`]), and explicit
//!   routed [`Flow`]s; link-rate aggregation and precedence depths.
//! * [`engine`] — the analytic engine: [`FlowAnalysis`] computes each
//!   flow's mean, variance, quantiles, and full waiting-time pmf by
//!   applying the §II/§IV single-queue laws per hop (at the hop's
//!   aggregated link load and depth) and convolving the per-hop pmfs
//!   under Kleinrock's independence assumption. On a banyan this
//!   reproduces `banyan_core::TotalWaiting` bit for bit.
//! * [`topo`] — generators: [`omega`], [`butterfly`]
//!   (with extra stages), k-ary [`mesh`] with XY routing, and
//!   two-level [`fat_tree`].
//! * [`sim`] — the event check: [`simulate_flows`] replays the routed
//!   traffic over real queues (no independence assumed) and returns
//!   per-flow waiting sketches for KS drift gauges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod graph;
pub mod sim;
pub mod topo;

pub use engine::{FlowAnalysis, HopParams};
pub use graph::{Flow, FlowGraph, FlowId, Link, LinkId, Node, NodeId};
pub use sim::{
    simulate_flows, simulate_network, simulate_network_traced, FlowSimConfig, FlowSimReport,
};
pub use topo::{butterfly, fat_tree, mesh, omega};
