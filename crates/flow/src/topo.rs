//! Built-in topology generators: omega and butterfly banyans (the
//! collapse targets), k-ary 2-D meshes with XY routing, and two-level
//! fat-trees.
//!
//! All generators produce fully-routed [`FlowGraph`]s — every flow
//! carries its explicit link path — so the analytic engine and the event
//! simulator see exactly the same traffic. The banyan generators route
//! the *identity permutation* (terminal `s` sends to terminal `s` at
//! rate `p`): under destination-tag routing that is a bijection at every
//! stage, so each link carries exactly one flow and its aggregated rate
//! is `p` by a single-term sum — the bit-exactness hook for the
//! §V-collapse contract.

use crate::graph::{FlowGraph, LinkId, NodeId};
use banyan_sim::traffic::ServiceDist;

/// `base^exp` over `usize` (topology sizes are small).
fn pow(base: usize, exp: u32) -> usize {
    base.pow(exp)
}

/// MSB-first digit `j ∈ [1, n]` of `w` in radix `k`.
fn digit(w: usize, j: u32, n: u32, k: usize) -> usize {
    (w / pow(k, n - j)) % k
}

/// Adds a flow whose endpoints are implied by its path (source node of
/// the first link, owner of the final ejection port).
fn add_routed(g: &mut FlowGraph, rate: f64, path: Vec<LinkId>) {
    let src = g.links()[path[0]].from;
    let last = *path.last().expect("generator paths are non-empty");
    let dst = g.links()[last].to.unwrap_or(g.links()[last].from);
    g.add_flow(src, dst, rate, path)
        .expect("generator produced an invalid path");
}

/// An `n`-stage omega (shuffle-exchange) network of `k × k` switches
/// routing the identity permutation at per-terminal rate `p` with
/// constant message size `m`.
///
/// Terminals are the `k^n` wires; every stage is a perfect shuffle
/// (left digit rotation) followed by a rank of `k^{n−1}` switches doing
/// destination-tag routing (stage `t` consumes MSB-first digit `t` of
/// the destination). Stage-`t` links are the output ports of the
/// stage-`t` switches; stage-`n` ports eject.
pub fn omega(k: u32, n: u32, p: f64, m: u32) -> FlowGraph {
    assert!(k >= 2 && n >= 1, "need k ≥ 2, n ≥ 1");
    let kk = k as usize;
    let wires = pow(kk, n);
    let switches = wires / kk;
    let mut g = FlowGraph::new();
    let node = |t: u32, sw: usize| -> NodeId { (t as usize - 1) * switches + sw };
    for t in 1..=n {
        for sw in 0..switches {
            g.add_node(format!("s{t}x{sw}"), k, ServiceDist::Constant(m));
        }
    }
    // Link id (t, w): output port `w % k` of switch `w / k` at stage t.
    let shuffle = |w: usize| (w * kk) % wires + (w * kk) / wires;
    for t in 1..=n {
        for w in 0..wires {
            let to = (t < n).then(|| node(t + 1, shuffle(w) / kk));
            g.add_link(node(t, w / kk), to);
        }
    }
    for s in 0..wires {
        add_routed(&mut g, p, omega_path(k, n, s, s));
    }
    g
}

/// The link path a message takes through [`omega`] from terminal `src`
/// to terminal `dst` (link ids as laid out by the generator).
pub fn omega_path(k: u32, n: u32, src: usize, dst: usize) -> Vec<LinkId> {
    let kk = k as usize;
    let wires = pow(kk, n);
    assert!(src < wires && dst < wires, "terminal out of range");
    let shuffle = |w: usize| (w * kk) % wires + (w * kk) / wires;
    let mut w = src;
    (1..=n)
        .map(|t| {
            let sw = shuffle(w) / kk;
            w = sw * kk + digit(dst, t, n, kk);
            (t as usize - 1) * wires + w
        })
        .collect()
}

/// An indirect `k`-ary butterfly on `k^n` wires with `extra` straight
/// pass-through stages prepended (`extra = 0` is the plain butterfly),
/// routing the identity permutation at rate `p`, constant size `m`.
///
/// Butterfly stage `j` connects switches whose wire labels differ only
/// in MSB-first digit `j` and corrects that digit to the destination's;
/// the extra stages forward each wire straight through, adding queueing
/// stages without changing the permutation — the "butterfly with extra
/// stages" configuration, which collapses to the §V law at `n + extra`
/// stages.
pub fn butterfly(k: u32, n: u32, extra: u32, p: f64, m: u32) -> FlowGraph {
    assert!(k >= 2 && n >= 1, "need k ≥ 2, n ≥ 1");
    let kk = k as usize;
    let wires = pow(kk, n);
    let switches = wires / kk;
    let stages = extra + n;
    let mut g = FlowGraph::new();
    let node = |t: u32, sw: usize| -> NodeId { (t as usize - 1) * switches + sw };
    // Switch of wire `w` at stage `t`: natural grouping `w / k` during
    // the straight stages, digit-`j` grouping in butterfly stage `j`.
    let switch_of = |t: u32, w: usize| -> usize {
        if t <= extra {
            w / kk
        } else {
            let j = t - extra;
            let span = pow(kk, n - j);
            (w / (span * kk)) * span + w % span
        }
    };
    for t in 1..=stages {
        for sw in 0..switches {
            g.add_node(format!("b{t}x{sw}"), k, ServiceDist::Constant(m));
        }
    }
    // Link id (t, w): the stage-t output port that leaves on wire `w`.
    for t in 1..=stages {
        for w in 0..wires {
            let to = (t < stages).then(|| node(t + 1, switch_of(t + 1, w)));
            g.add_link(node(t, switch_of(t, w)), to);
        }
    }
    for s in 0..wires {
        let path = butterfly_path(k, n, extra, s, s);
        add_routed(&mut g, p, path);
    }
    g
}

/// The link path through [`butterfly`] from terminal `src` to `dst`.
pub fn butterfly_path(k: u32, n: u32, extra: u32, src: usize, dst: usize) -> Vec<LinkId> {
    let kk = k as usize;
    let wires = pow(kk, n);
    assert!(src < wires && dst < wires, "terminal out of range");
    let mut w = src;
    (1..=extra + n)
        .map(|t| {
            if t > extra {
                let j = t - extra;
                let span = pow(kk, n - j);
                w = (w / (span * kk)) * span * kk + digit(dst, j, n, kk) * span + w % span;
            }
            (t as usize - 1) * wires + w
        })
        .collect()
}

/// A `rows × cols` mesh of routers under dimension-ordered (XY: column
/// first, then row) routing with all-to-all uniform traffic: every
/// router injects rate `p`, split evenly over the other `rows·cols − 1`
/// routers; messages have constant size `m`.
///
/// Each router is one node whose modeling fan-in is its in-degree plus
/// one injection port; its output ports are the mesh links to its
/// neighbours plus an ejection port. XY routing keeps the link
/// precedence DAG acyclic even though the physical mesh has cycles.
pub fn mesh(rows: usize, cols: usize, p: f64, m: u32) -> FlowGraph {
    assert!(rows * cols >= 2, "mesh needs at least two routers");
    let mut g = FlowGraph::new();
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            let degree = usize::from(c + 1 < cols)
                + usize::from(c > 0)
                + usize::from(r + 1 < rows)
                + usize::from(r > 0);
            g.add_node(
                format!("r{r}c{c}"),
                degree as u32 + 1,
                ServiceDist::Constant(m),
            );
        }
    }
    // Per-router output ports in fixed order: east, west, south, north,
    // eject. `ports[router] = [east, west, south, north, eject]`, with
    // usize::MAX marking a direction that does not exist.
    const NONE: usize = usize::MAX;
    let mut ports = vec![[NONE; 5]; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let me = id(r, c);
            if c + 1 < cols {
                ports[me][0] = g.add_link(me, Some(id(r, c + 1)));
            }
            if c > 0 {
                ports[me][1] = g.add_link(me, Some(id(r, c - 1)));
            }
            if r + 1 < rows {
                ports[me][2] = g.add_link(me, Some(id(r + 1, c)));
            }
            if r > 0 {
                ports[me][3] = g.add_link(me, Some(id(r - 1, c)));
            }
            ports[me][4] = g.add_link(me, None);
        }
    }
    let rate = p / (rows * cols - 1) as f64;
    for sr in 0..rows {
        for sc in 0..cols {
            for dr in 0..rows {
                for dc in 0..cols {
                    if (sr, sc) == (dr, dc) {
                        continue;
                    }
                    let mut path = Vec::new();
                    let (mut r, mut c) = (sr, sc);
                    while c != dc {
                        let dir = if dc > c { 0 } else { 1 };
                        path.push(ports[id(r, c)][dir]);
                        c = if dc > c { c + 1 } else { c - 1 };
                    }
                    while r != dr {
                        let dir = if dr > r { 2 } else { 3 };
                        path.push(ports[id(r, c)][dir]);
                        r = if dr > r { r + 1 } else { r - 1 };
                    }
                    path.push(ports[id(dr, dc)][4]);
                    add_routed(&mut g, rate, path);
                }
            }
        }
    }
    g
}

/// A two-level fat-tree: `leaves` leaf switches each hosting
/// `hosts_per_leaf` terminals, fully connected to `spines` spine
/// switches; all-to-all uniform host traffic at per-host rate `p`,
/// constant size `m`, with deterministic spine selection
/// (`(src + dst) mod spines` — a static ECMP hash).
///
/// Intra-leaf traffic crosses only the destination's ejection port;
/// inter-leaf traffic goes up to one spine and back down. Leaf fan-in is
/// `hosts_per_leaf + spines` (host injection ports plus spine
/// downlinks); spine fan-in is `leaves`.
pub fn fat_tree(leaves: usize, spines: usize, hosts_per_leaf: usize, p: f64, m: u32) -> FlowGraph {
    assert!(leaves >= 2 && spines >= 1 && hosts_per_leaf >= 1, "degenerate fat-tree");
    let mut g = FlowGraph::new();
    for l in 0..leaves {
        g.add_node(
            format!("leaf{l}"),
            (hosts_per_leaf + spines) as u32,
            ServiceDist::Constant(m),
        );
    }
    for s in 0..spines {
        g.add_node(format!("spine{s}"), leaves as u32, ServiceDist::Constant(m));
    }
    let spine_node = |s: usize| leaves + s;
    // Leaf ports: uplinks to every spine, then per-host ejection ports.
    let mut up = Vec::with_capacity(leaves);
    let mut eject = Vec::with_capacity(leaves);
    for l in 0..leaves {
        up.push((0..spines).map(|s| g.add_link(l, Some(spine_node(s)))).collect::<Vec<_>>());
        eject.push((0..hosts_per_leaf).map(|_| g.add_link(l, None)).collect::<Vec<_>>());
    }
    let mut down = Vec::with_capacity(spines);
    for s in 0..spines {
        down.push((0..leaves).map(|l| g.add_link(spine_node(s), Some(l))).collect::<Vec<_>>());
    }
    let hosts = leaves * hosts_per_leaf;
    let rate = p / (hosts - 1) as f64;
    for src in 0..hosts {
        for dst in 0..hosts {
            if src == dst {
                continue;
            }
            let (sl, dl, dh) = (src / hosts_per_leaf, dst / hosts_per_leaf, dst % hosts_per_leaf);
            let path = if sl == dl {
                vec![eject[dl][dh]]
            } else {
                let s = (src + dst) % spines;
                vec![up[sl][s], down[s][dl], eject[dl][dh]]
            };
            add_routed(&mut g, rate, path);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_identity_gives_one_flow_per_link() {
        for &(k, n) in &[(2u32, 3u32), (3, 2), (4, 2)] {
            let g = omega(k, n, 0.4, 1);
            let wires = pow(k as usize, n);
            assert_eq!(g.links().len(), wires * n as usize);
            for (l, &rate) in g.link_rates().iter().enumerate() {
                assert_eq!(rate.to_bits(), 0.4f64.to_bits(), "link {l}");
            }
            let depths = g.link_depths().unwrap();
            for (l, &d) in depths.iter().enumerate() {
                assert_eq!(d as usize, l / wires + 1, "link {l}");
            }
        }
    }

    #[test]
    fn butterfly_identity_gives_one_flow_per_link() {
        for &(k, n, extra) in &[(2u32, 3u32, 0u32), (2, 2, 2), (3, 2, 1)] {
            let g = butterfly(k, n, extra, 0.3, 2);
            for &rate in &g.link_rates() {
                assert_eq!(rate.to_bits(), 0.3f64.to_bits());
            }
            let wires = pow(k as usize, n);
            let depths = g.link_depths().unwrap();
            for (l, &d) in depths.iter().enumerate() {
                assert_eq!(d as usize, l / wires + 1, "link {l}");
            }
        }
    }

    #[test]
    fn omega_routes_arbitrary_pairs() {
        // Destination-tag routing must land every (src, dst) pair on an
        // ejection port of the right switch: re-add each path as a flow
        // and let FlowGraph's chain validation vet it.
        let mut g = omega(2, 3, 0.1, 1);
        for src in 0..8 {
            for dst in 0..8 {
                let path = omega_path(2, 3, src, dst);
                assert_eq!(path.len(), 3);
                add_routed(&mut g, 0.0, path);
            }
        }
    }

    #[test]
    fn butterfly_routes_arbitrary_pairs() {
        let mut g = butterfly(2, 2, 1, 0.1, 1);
        for src in 0..4 {
            for dst in 0..4 {
                let path = butterfly_path(2, 2, 1, src, dst);
                assert_eq!(path.len(), 3);
                add_routed(&mut g, 0.0, path);
            }
        }
    }

    #[test]
    fn mesh_2x2_matches_hand_analysis() {
        // 2×2 all-to-all at p = 0.5: 12 flows of rate p/3; mesh links
        // carry two flows (λ = 1/3), ejection ports three (λ = 1/2);
        // horizontal depth 1, vertical depth 2, ejection depth 3.
        let g = mesh(2, 2, 0.5, 1);
        assert_eq!(g.flows().len(), 12);
        let rates = g.link_rates();
        let depths = g.link_depths().unwrap();
        for (l, link) in g.links().iter().enumerate() {
            if link.to.is_none() {
                assert!((rates[l] - 0.5).abs() < 1e-12, "eject {l}: {}", rates[l]);
                assert_eq!(depths[l], 3);
            } else {
                assert!((rates[l] - 1.0 / 3.0).abs() < 1e-12, "mesh {l}: {}", rates[l]);
            }
        }
        for n in g.nodes() {
            assert_eq!(n.fan_in, 3);
        }
    }

    #[test]
    fn fat_tree_routes_and_conserves_rate() {
        let g = fat_tree(3, 2, 2, 0.3, 1);
        // Total ejected rate equals total injected rate.
        let eject_total: f64 = g
            .links()
            .iter()
            .zip(g.link_rates())
            .filter(|(l, _)| l.to.is_none())
            .map(|(_, r)| r)
            .sum();
        assert!((eject_total - 6.0 * 0.3).abs() < 1e-12, "{eject_total}");
        assert!(g.link_depths().is_ok());
    }
}
