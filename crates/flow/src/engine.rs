//! The analytic per-flow delay engine.
//!
//! Under Kleinrock's independence assumption a flow's end-to-end waiting
//! time is the sum of independent per-hop waits. The per-hop kernel
//! picks between two arrival models from the link's *stream
//! decomposition* — the traffic grouped by how it reaches the link:
//!
//! * Every flow on its **first** hop is an independent Bernoulli source
//!   (each flow injects from its own port; injections are never
//!   serialized against each other).
//! * Every flow in **transit** arrives through its previous link, and
//!   all flows sharing that previous link form **one** stream — a wire
//!   delivers at most one message head per cycle, so their superposition
//!   is serialized upstream.
//!
//! A link fed by **two or more** distinct streams gets the exact
//! tagged-stream law — Theorem 1's decomposition specialized to the
//! real composition, the heterogeneous per-node view meshes and
//! fat-trees need. The wait of a tagged message from stream `s` is
//! `W_s = V + M_s`: `V` the port's stationary start-of-cycle workload
//! (driven by the *full* per-slot work `S = m·Σ_j Bernoulli(r_j)`,
//! solved exactly by the skip-free-to-the-left balance recursion) plus
//! `M_s`, the service of same-slot mates served first — drawn from the
//! *other* streams only (a stream is serialized upstream, so it never
//! batches with itself) at a uniformly random batch position. This is
//! per-flow, not per-link: the minority stream on a port waits longer
//! than the link average because its co-arrivals are the majority.
//!
//! A link fed by a **single** aggregated stream carries no composition
//! information — in this engine a flow is a *rate aggregate* (the
//! paper's uniform-traffic port load), not a literal point source — so
//! the kernel closes with the paper's uniform-switch model: arrivals
//! `Binomial(fan_in, λ/fan_in)` and the [`StageConstants`] stage-`i`
//! laws at the link's depth, exactly the per-stage call
//! `banyan_core::TotalWaiting` makes. A banyan routing the identity
//! permutation has exactly one stream per link, so on a banyan the
//! engine *is* the §V closed form, bit for bit (the contract pinned by
//! `tests/flow.rs`).
//!
//! Means add across hops; variances combine through the §V geometric
//! covariance model applied per hop (`banyan_core::covariance_params`
//! with the hop's own `ρ = mλ` and `k`); the full density is the
//! convolution of the per-hop pmfs — exact §II transform inversion
//! wherever the arrival pgf is known (multi-stream links, depth-1
//! single-stream links), moment-matched gammas discretized to the
//! integer grid for deeper single-stream hops (the §IV laws only give
//! moments there).

use crate::graph::{FlowGraph, FlowId, LinkId};
use banyan_core::models::uniform_queue;
use banyan_core::{covariance_params, StageConstants};
use banyan_numerics::fft::{convolve, normalize_pmf};
use banyan_numerics::series::pmf_mean_var;
use banyan_sim::traffic::ServiceDist;
use banyan_stats::Gamma;
use std::collections::BTreeMap;

/// How traffic reaches a link: fresh flows inject from their own port
/// (`(false, flow_id)`), transit flows arrive serialized through their
/// previous link (`(true, link_id)`).
type StreamKey = (bool, usize);

/// The numbers the per-hop kernel needs.
#[derive(Clone, Copy, Debug)]
pub struct HopParams {
    /// The link this hop queues at.
    pub link: LinkId,
    /// Depth of the link in the precedence DAG (stage index `i`).
    pub depth: u32,
    /// Fan-in `k` of the owning node.
    pub fan_in: u32,
    /// Aggregated link rate `λ` (the paper's per-port load `p`).
    pub lambda: f64,
    /// Constant message size `m` at the owning node.
    pub m: u32,
    /// Rate of the stream the tagged flow arrives in at this hop (its
    /// own injection, or the serialized previous link it shares).
    pub own_stream: f64,
}

impl HopParams {
    /// Hop traffic intensity `ρ = mλ`.
    pub fn rho(&self) -> f64 {
        self.m as f64 * self.lambda
    }
}

/// Validated per-link state plus the per-flow delay laws.
///
/// Construction checks the whole graph once: acyclic precedence,
/// constant service at every loaded link, and `ρ = mλ < 1` per link.
#[derive(Clone, Debug)]
pub struct FlowAnalysis<'g> {
    graph: &'g FlowGraph,
    constants: StageConstants,
    rates: Vec<f64>,
    depths: Vec<u32>,
    /// Per link: the distinct streams feeding it (fresh flows
    /// individually, transit flows grouped by previous link), in
    /// deterministic key order. Zero-rate contributors are dropped.
    streams: Vec<Vec<(StreamKey, f64)>>,
    /// Per link: the stationary start-of-cycle workload pmf `V` for
    /// multi-stream links (`None` where the single-stream aggregate
    /// closure applies). Solved once at construction, which is also
    /// where a near-critical load whose workload tail outruns
    /// [`MAX_HOP_SUPPORT`] is rejected — so the moment laws never see a
    /// silently truncated pmf.
    workloads: Vec<Option<Vec<f64>>>,
}

/// Support bound for per-hop pmfs: beyond this the engine refuses
/// rather than silently truncating mass (loads this heavy want the
/// simulator, not a 2^17-point convolution).
const MAX_HOP_SUPPORT: usize = 1 << 17;

impl<'g> FlowAnalysis<'g> {
    /// Validates `graph` and prepares the engine with the paper's
    /// interpolation constants.
    pub fn new(graph: &'g FlowGraph) -> Result<Self, String> {
        Self::with_constants(graph, StageConstants::default())
    }

    /// Same, with custom stage constants (e.g. re-calibrated).
    pub fn with_constants(graph: &'g FlowGraph, constants: StageConstants) -> Result<Self, String> {
        let rates = graph.link_rates();
        let depths = graph.link_depths()?;
        for (l, (&lambda, link)) in rates.iter().zip(graph.links()).enumerate() {
            if lambda == 0.0 {
                continue;
            }
            let node = &graph.nodes()[link.from];
            let ServiceDist::Constant(m) = node.service else {
                return Err(format!(
                    "analytic engine needs constant service, node '{}' has {:?}",
                    node.name, node.service
                ));
            };
            let rho = m as f64 * lambda;
            if rho >= 1.0 {
                return Err(format!(
                    "link {l} (out of '{}') is overloaded: ρ = mλ = {rho:.4} ≥ 1",
                    node.name
                ));
            }
        }
        // Stream decomposition: group each link's traffic by arrival
        // port. Keys sort fresh sources (by flow id) before transit
        // streams (by upstream link id), so the order is deterministic.
        let mut groups: Vec<BTreeMap<StreamKey, f64>> =
            vec![BTreeMap::new(); graph.links().len()];
        for (f, flow) in graph.flows().iter().enumerate() {
            if flow.rate == 0.0 {
                continue;
            }
            for (j, &l) in flow.path.iter().enumerate() {
                let key = if j == 0 {
                    (false, f)
                } else {
                    (true, flow.path[j - 1])
                };
                *groups[l].entry(key).or_insert(0.0) += flow.rate;
            }
        }
        let streams: Vec<Vec<(StreamKey, f64)>> = groups
            .into_iter()
            .map(|g| g.into_iter().collect())
            .collect();
        // Solve the start-of-cycle workload chain of every multi-stream
        // link up front: the per-slot work is `S = m·Σ_j Bernoulli(r_j)`
        // over the link's streams, and a tail that outruns the support
        // cap is a construction error (the same "load too heavy" refusal
        // `hop_pmf` makes), not a silent truncation.
        let mut workloads = vec![None; graph.links().len()];
        for (l, stream) in streams.iter().enumerate() {
            if stream.len() < 2 {
                continue;
            }
            let node = &graph.nodes()[graph.links()[l].from];
            let ServiceDist::Constant(m) = node.service else {
                unreachable!("loaded links were validated constant-service above");
            };
            let m = m as usize;
            let mut batch = vec![1.0];
            for &(_, r) in stream {
                batch = convolve(&batch, &[1.0 - r, r]);
            }
            let mut s_pmf = vec![0.0; (batch.len() - 1) * m + 1];
            for (b, &p) in batch.iter().enumerate() {
                s_pmf[b * m] = p;
            }
            workloads[l] = Some(
                workload_pmf(&s_pmf)
                    .map_err(|e| format!("link {l} (out of '{}'): {e}", node.name))?,
            );
        }
        Ok(FlowAnalysis {
            graph,
            constants,
            rates,
            depths,
            streams,
            workloads,
        })
    }

    /// The graph under analysis.
    pub fn graph(&self) -> &FlowGraph {
        self.graph
    }

    /// Aggregated rate of link `l`.
    pub fn link_rate(&self, l: LinkId) -> f64 {
        self.rates[l]
    }

    /// Depth of link `l` in the precedence DAG.
    pub fn link_depth(&self, l: LinkId) -> u32 {
        self.depths[l]
    }

    /// The rates of the distinct streams feeding link `l` (fresh flows
    /// individually, transit flows grouped by previous link).
    pub fn link_streams(&self, l: LinkId) -> Vec<f64> {
        self.streams[l].iter().map(|&(_, r)| r).collect()
    }

    /// The exact tagged-stream wait pmf for a multi-stream hop:
    /// `W_s = V ⊛ M_s` with `V` the stationary start-of-cycle workload
    /// under the full per-slot work `S = m·Σ_j Bernoulli(r_j)` and
    /// `M_s` the work of same-slot mates served first, drawn from the
    /// *other* streams at a uniformly random batch position. `None` for
    /// single-stream links (the aggregate closure applies there — see
    /// the module docs) and idle links.
    fn tagged_hop_pmf(&self, h: &HopParams) -> Option<Vec<f64>> {
        // The stationary workload under the full per-slot work was
        // solved at construction (present exactly for multi-stream
        // links).
        let v = self.workloads[h.link].as_deref()?;
        let streams = &self.streams[h.link];
        let m = h.m as usize;
        // Same-slot mates come from the other streams only — a stream
        // is serialized upstream, so it never batches with itself. Skip
        // one occurrence of the tagged flow's own stream rate (streams
        // of equal rate are interchangeable).
        let mut mates = vec![1.0];
        let mut skipped = false;
        for &(_, r) in streams {
            if !skipped && r.to_bits() == h.own_stream.to_bits() {
                skipped = true;
                continue;
            }
            mates = convolve(&mates, &[1.0 - r, r]);
        }
        // Uniform batch position: with `b` mates present, `a` of them
        // are served first with probability 1/(b+1), for a = 0..=b.
        let mut ahead = vec![0.0; mates.len()];
        for (b, &p) in mates.iter().enumerate() {
            let share = p / (b as f64 + 1.0);
            for slot in ahead.iter_mut().take(b + 1) {
                *slot += share;
            }
        }
        let mut m_pmf = vec![0.0; (ahead.len() - 1) * m + 1];
        for (a, &p) in ahead.iter().enumerate() {
            m_pmf[a * m] = p;
        }
        Some(convolve(v, &m_pmf))
    }

    /// The kernel inputs for each hop of flow `f`, in path order.
    pub fn hop_params(&self, f: FlowId) -> Vec<HopParams> {
        let path = &self.graph.flows()[f].path;
        path.iter()
            .enumerate()
            .map(|(j, &l)| {
                let node = &self.graph.nodes()[self.graph.links()[l].from];
                let ServiceDist::Constant(m) = node.service else {
                    unreachable!("constructor rejected non-constant service on loaded links");
                };
                let key = if j == 0 { (false, f) } else { (true, path[j - 1]) };
                let own_stream = self.streams[l]
                    .iter()
                    .find(|&&(k, _)| k == key)
                    .map_or(0.0, |&(_, r)| r);
                HopParams {
                    link: l,
                    depth: self.depths[l],
                    fan_in: node.fan_in,
                    lambda: self.rates[l],
                    m,
                    own_stream,
                }
            })
            .collect()
    }

    /// Mean wait at one hop. Multi-stream links use the exact
    /// tagged-stream law for the composed arrivals; single-stream links
    /// use the §IV stage-`i` law at the aggregate load — the same
    /// `StageConstants` call (same branch on `m`) as
    /// `TotalWaiting::stage_mean`.
    pub fn hop_mean(&self, h: &HopParams) -> f64 {
        if let Some(pmf) = self.tagged_hop_pmf(h) {
            return pmf_mean_var(&pmf).0;
        }
        if h.m == 1 {
            self.constants.w_stage(h.depth, h.lambda, h.fan_in)
        } else {
            self.constants.w_stage_m(h.depth, h.lambda, h.fan_in, h.m as f64)
        }
    }

    /// Wait variance at one hop (`TotalWaiting::stage_var` analogue,
    /// with the same multi-stream dispatch as [`FlowAnalysis::hop_mean`]).
    pub fn hop_var(&self, h: &HopParams) -> f64 {
        if let Some(pmf) = self.tagged_hop_pmf(h) {
            return pmf_mean_var(&pmf).1;
        }
        if h.m == 1 {
            self.constants.v_stage(h.depth, h.lambda, h.fan_in)
        } else {
            self.constants.v_stage_m(h.depth, h.lambda, h.fan_in, h.m as f64)
        }
    }

    /// Mean end-to-end waiting time of flow `f`: sum of the hop means in
    /// ascending path order (the accumulation order of
    /// `TotalWaiting::mean_total`, so the banyan case agrees bit for
    /// bit).
    pub fn mean_wait(&self, f: FlowId) -> f64 {
        self.hop_params(f).iter().map(|h| self.hop_mean(h)).sum()
    }

    /// End-to-end waiting variance of flow `f` under the §V geometric
    /// covariance model, applied per hop with that hop's own `(ρ, k)`:
    /// hop `j` of `L` contributes `v_j·(1 + 2a(1 − b^{L−1−j})/(1 − b))`.
    /// On a banyan every hop shares `(ρ, k)`, and the arithmetic is
    /// exactly `TotalWaiting::var_total`.
    pub fn var_wait(&self, f: FlowId) -> f64 {
        let hops = self.hop_params(f);
        let hop_count = hops.len();
        hops.iter()
            .enumerate()
            .map(|(j, h)| {
                let (a, b) = covariance_params(h.rho(), h.fan_in);
                let tail_len = (hop_count - 1 - j) as i32;
                let factor = 1.0 + 2.0 * a * (1.0 - b.powi(tail_len)) / (1.0 - b);
                self.hop_var(h) * factor
            })
            .sum()
    }

    /// Gamma approximation of flow `f`'s waiting time, moment-matched to
    /// [`FlowAnalysis::mean_wait`] / [`FlowAnalysis::var_wait`]. `None`
    /// when the flow sees no contention (degenerate wait at 0).
    pub fn gamma(&self, f: FlowId) -> Option<Gamma> {
        Gamma::from_mean_var(self.mean_wait(f), self.var_wait(f))
    }

    /// Cut-through service time of flow `f`: one cycle of head advance
    /// per hop plus the tail of the message behind it, `L + m₁ − 1`,
    /// with `m₁` the message size at the first hop (on a banyan:
    /// `n + m − 1`, `TotalWaiting::total_service`).
    pub fn total_service(&self, f: FlowId) -> u32 {
        let flow = &self.graph.flows()[f];
        let first = &self.graph.nodes()[self.graph.links()[flow.path[0]].from];
        let ServiceDist::Constant(m) = first.service else {
            unreachable!("constructor rejected non-constant service on loaded links");
        };
        flow.path.len() as u32 + m - 1
    }

    /// Mean end-to-end delay (waiting plus pipelined service).
    pub fn mean_delay(&self, f: FlowId) -> f64 {
        self.mean_wait(f) + self.total_service(f) as f64
    }

    /// Approximate `q`-th delay quantile of flow `f` via the gamma
    /// waiting model shifted by the service time.
    ///
    /// # Panics
    /// Panics unless `q ∈ (0, 1)`.
    pub fn delay_quantile(&self, f: FlowId, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "quantile level must be in (0,1)");
        let shift = self.total_service(f) as f64;
        match self.gamma(f) {
            Some(g) => shift + g.quantile(q),
            None => shift,
        }
    }

    /// The pmf of one hop's wait on the integer grid: the exact
    /// tagged-stream law on multi-stream links, exact Theorem 1
    /// inversion on depth-1 single-stream links (fresh
    /// `Binomial(fan_in, λ/fan_in)`), and a discretized moment-matched
    /// gamma for deeper single-stream hops (the §IV laws only give
    /// moments there). Support extends until less than `1e-12` mass
    /// remains.
    fn hop_pmf(&self, h: &HopParams) -> Result<Vec<f64>, String> {
        if h.lambda == 0.0 {
            return Ok(vec![1.0]);
        }
        if let Some(pmf) = self.tagged_hop_pmf(h) {
            return Ok(pmf);
        }
        if h.depth == 1 {
            let q = uniform_queue(h.fan_in, h.lambda, h.m)
                .map_err(|e| format!("hop at link {}: {e:?}", h.link))?;
            let len = (q.wait_quantile(1.0 - 1e-12) as usize).saturating_add(8);
            if len > MAX_HOP_SUPPORT {
                return Err(format!(
                    "hop at link {} needs {len} support points (> {MAX_HOP_SUPPORT}); load too heavy for the density engine",
                    h.link
                ));
            }
            Ok(q.pmf(len))
        } else {
            let (w, v) = (self.hop_mean(h), self.hop_var(h));
            let Some(g) = Gamma::from_mean_var(w, v) else {
                return Ok(vec![1.0]);
            };
            let hi = g.quantile(1.0 - 1e-12).ceil() as usize + 2;
            if hi > MAX_HOP_SUPPORT {
                return Err(format!(
                    "hop at link {} needs {hi} support points (> {MAX_HOP_SUPPORT}); load too heavy for the density engine",
                    h.link
                ));
            }
            // Integer discretization with the half-integer continuity
            // correction used throughout the repo: P(j) = F(j+½) − F(j−½).
            let mut pmf = Vec::with_capacity(hi + 1);
            let mut prev = 0.0;
            for j in 0..=hi {
                let c = g.cdf(j as f64 + 0.5);
                pmf.push(c - prev);
                prev = c;
            }
            Ok(pmf)
        }
    }

    /// The full end-to-end waiting-time pmf of flow `f`: per-hop pmfs
    /// chained with [`convolve`] and renormalized once with
    /// [`normalize_pmf`] (per-hop truncation keeps ≥ `1 − 1e-12` mass,
    /// so the product stays within `normalize_pmf`'s round-off budget).
    pub fn waiting_pmf(&self, f: FlowId) -> Result<Vec<f64>, String> {
        let mut acc = vec![1.0];
        for h in &self.hop_params(f) {
            acc = convolve(&acc, &self.hop_pmf(h)?);
        }
        normalize_pmf(&mut acc);
        Ok(acc)
    }

    /// Dense CDF table of flow `f`'s waiting time (`table[j] = P(w ≤ j)`),
    /// for KS drift gauges via `banyan_obs::tail::table_cdf`.
    pub fn wait_cdf_table(&self, f: FlowId) -> Result<Vec<f64>, String> {
        let pmf = self.waiting_pmf(f)?;
        let mut acc = 0.0;
        Ok(pmf
            .iter()
            .map(|&p| {
                acc += p;
                acc.min(1.0)
            })
            .collect())
    }
}

/// Stationary pmf of the start-of-cycle workload `V` of a clocked
/// single-server port fed by iid per-slot work `S ~ s_pmf`:
/// `V' = max(V + S − 1, 0)`.
///
/// The chain is skip-free to the left, so the balance equations solve
/// by forward substitution from `π₀`: work conservation gives the
/// fraction of idle slots `P(V = 0, S = 0) = 1 − E[S]`, i.e.
/// `π₀ = (1 − E[S]) / s₀`, and for `j ≥ 0`
/// `π_{j+1}·s₀ = π_j − Σ_{i≤j} π_i·s_{j+1−i} − [j = 0]·π₀·s₀`.
/// The geometric tail is chased until less than `1e-13` mass remains.
/// A tail still holding more than `1e-12` mass at `MAX_HOP_SUPPORT`
/// points is an error — the same refusal [`FlowAnalysis::hop_pmf`]
/// makes at this bound — never a silent truncation (downstream
/// `normalize_pmf` budgets `1e-9` total round-off, and the moment laws
/// read this pmf directly).
fn workload_pmf(s_pmf: &[f64]) -> Result<Vec<f64>, String> {
    let s0 = s_pmf[0];
    let mean_s: f64 = s_pmf.iter().enumerate().map(|(j, &p)| j as f64 * p).sum();
    debug_assert!(s0 > 0.0 && mean_s < 1.0, "caller verified ρ < 1");
    let mut pi = vec![(1.0 - mean_s) / s0];
    let mut mass = pi[0];
    while mass < 1.0 - 1e-13 {
        if pi.len() >= MAX_HOP_SUPPORT {
            if mass < 1.0 - 1e-12 {
                return Err(format!(
                    "start-of-cycle workload needs more than {MAX_HOP_SUPPORT} support points; \
                     load too heavy for the density engine"
                ));
            }
            break;
        }
        let j = pi.len() - 1;
        let mut next = pi[j];
        // Only the trailing window of π reaches back into s_pmf:
        // s_{j+1−i} vanishes once j + 1 − i ≥ len(s).
        for i in (j + 2).saturating_sub(s_pmf.len())..=j {
            next -= pi[i] * s_pmf[j + 1 - i];
        }
        if j == 0 {
            next -= pi[0] * s0;
        }
        let next = (next / s0).max(0.0);
        if next == 0.0 {
            break;
        }
        mass += next;
        pi.push(next);
    }
    Ok(pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowGraph;

    /// A 2-hop line of 2×2 switches, one flow owning every link.
    fn line(p: f64, m: u32) -> FlowGraph {
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::Constant(m));
        let b = g.add_node("b", 2, ServiceDist::Constant(m));
        let ab = g.add_link(a, Some(b));
        let out = g.add_link(b, None);
        g.add_flow(a, b, p, vec![ab, out]).unwrap();
        g
    }

    #[test]
    fn line_matches_two_stage_banyan() {
        let g = line(0.5, 1);
        let an = FlowAnalysis::new(&g).unwrap();
        let t = banyan_core::TotalWaiting::new(2, 2, 0.5, 1);
        assert_eq!(an.mean_wait(0).to_bits(), t.mean_total().to_bits());
        assert_eq!(an.var_wait(0).to_bits(), t.var_total().to_bits());
        assert_eq!(an.total_service(0), t.total_service());
    }

    #[test]
    fn overload_is_rejected_with_link_context() {
        let g = line(0.3, 4); // ρ = 1.2
        let err = FlowAnalysis::new(&g).unwrap_err();
        assert!(err.contains("overloaded"), "{err}");
    }

    #[test]
    fn non_constant_service_is_rejected() {
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::Geometric(0.5));
        let out = g.add_link(a, None);
        g.add_flow(a, a, 0.2, vec![out]).unwrap();
        assert!(FlowAnalysis::new(&g)
            .unwrap_err()
            .contains("constant service"));
    }

    #[test]
    fn idle_flow_waits_zero() {
        let mut g = line(0.5, 1);
        // A zero-rate flow across fresh links.
        let c = g.add_node("c", 2, ServiceDist::unit());
        let cout = g.add_link(c, None);
        let f = g.add_flow(c, c, 0.0, vec![cout]).unwrap();
        let an = FlowAnalysis::new(&g).unwrap();
        assert_eq!(an.mean_wait(f), 0.0);
        assert!(an.gamma(f).is_none());
        assert_eq!(an.delay_quantile(f, 0.99), 1.0); // pure service
        assert_eq!(an.waiting_pmf(f).unwrap(), vec![1.0]);
    }

    /// Two flows on one port: equal rates make the streams
    /// interchangeable, so the tagged-stream law must coincide with
    /// Theorem 1 for `Binomial(2, λ/2)` arrivals (Eq. 6/7 moments).
    #[test]
    fn two_equal_streams_match_theorem_1() {
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::unit());
        let out = g.add_link(a, None);
        g.add_flow(a, a, 0.25, vec![out]).unwrap();
        g.add_flow(a, a, 0.25, vec![out]).unwrap();
        let an = FlowAnalysis::new(&g).unwrap();
        let q = uniform_queue(2, 0.5, 1).unwrap();
        for f in 0..2 {
            assert!((an.mean_wait(f) - q.mean_wait()).abs() < 1e-9);
            assert!((an.var_wait(f) - q.var_wait()).abs() < 1e-9);
        }
    }

    /// Unequal streams: a tagged message never batches with its own
    /// serialized stream, so the minority stream (whose co-arrivals are
    /// the majority) waits longer — and the rate-weighted mixture is
    /// the link average `E[V] + m·r₂/(2λ)`.
    #[test]
    fn minority_stream_waits_longer_than_majority() {
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 3, ServiceDist::unit());
        let out = g.add_link(a, None);
        let lo = g.add_flow(a, a, 1.0 / 6.0, vec![out]).unwrap();
        let hi = g.add_flow(a, a, 1.0 / 3.0, vec![out]).unwrap();
        let an = FlowAnalysis::new(&g).unwrap();
        let (w_lo, w_hi) = (an.mean_wait(lo), an.mean_wait(hi));
        assert!(
            w_lo > w_hi,
            "minority {w_lo} should exceed majority {w_hi}"
        );
        // Mixture check against the batch-queue link average: for unit
        // service E[W] = E[V] + r₂/(2λ) with r₂ = 2·r_lo·r_hi.
        let lambda = 0.5;
        let r2 = 2.0 * (1.0 / 6.0) * (1.0 / 3.0);
        let mix = ((1.0 / 6.0) * w_lo + (1.0 / 3.0) * w_hi) / lambda;
        let mates_avg = r2 / (2.0 * lambda);
        let e_v = mix - mates_avg;
        // Tagged decomposition: E[W_s] = E[V] + (λ − r_s)/2.
        assert!((w_lo - (e_v + (lambda - 1.0 / 6.0) / 2.0)).abs() < 1e-9);
        assert!((w_hi - (e_v + (lambda - 1.0 / 3.0) / 2.0)).abs() < 1e-9);
    }

    /// ρ = 0.99998 passes the per-link stability check, but the
    /// workload tail needs far more than `MAX_HOP_SUPPORT` points to
    /// hold `1 − 1e-13` mass — the engine must refuse at construction
    /// instead of truncating (a truncated workload understated
    /// `hop_mean`/`hop_var` and tripped `normalize_pmf`'s round-off
    /// assertion in `waiting_pmf`).
    #[test]
    fn near_critical_multi_stream_load_is_refused() {
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::unit());
        let out = g.add_link(a, None);
        g.add_flow(a, a, 0.49999, vec![out]).unwrap();
        g.add_flow(a, a, 0.49999, vec![out]).unwrap();
        let err = FlowAnalysis::new(&g).unwrap_err();
        assert!(err.contains("load too heavy"), "{err}");
    }

    #[test]
    fn pmf_moments_track_the_laws() {
        let g = line(0.5, 1);
        let an = FlowAnalysis::new(&g).unwrap();
        let pmf = an.waiting_pmf(0).unwrap();
        let total: f64 = pmf.iter().sum();
        assert_eq!(total.to_bits(), 1.0f64.to_bits());
        let (mean, var) = pmf_mean_var(&pmf);
        // Depth 1 is exact; depth 2 is a gamma rounded to the integer
        // grid (P(j) = F(j+½) − F(j−½)), which for a heavily
        // zero-skewed hop wait pulls the grid mean below the continuous
        // one by up to ~0.1 cycle — the same continuity-correction
        // convention the KS gauges use on both sides, so densities stay
        // comparable even though raw moments shift slightly.
        assert!((mean - an.mean_wait(0)).abs() < 0.1, "{mean}");
        assert!((var - an.var_wait(0)).abs() < 0.3, "{var}");
    }
}
