//! Event check: a small cycle-driven simulator that replays a
//! [`FlowGraph`]'s routed traffic over real queues and records each
//! flow's *observed* end-to-end waiting time as an exact
//! [`DistSketch`] — the ground truth the KS drift gauges compare the
//! analytic engine against (the `network_vs_analysis` pattern).
//!
//! Semantics mirror the clocked model everywhere the analytic engine
//! makes an assumption: every link is a batch-Lindley output port
//! (`banyan_sim::PortQueue`, the same cell as the single-queue
//! simulator), injections are Bernoulli per flow per cycle, and a
//! message whose head waited `w` cycles at one hop arrives at the next
//! hop's queue at `c + w + 1` (cut-through: the head advances after one
//! cycle of transmission). What the simulator does **not** assume is
//! independence between hops — that is precisely the Kleinrock
//! approximation under test.

use crate::graph::FlowGraph;
use banyan_obs::msgtrace::{MsgTracer, RepTrace};
use banyan_obs::DistSketch;
use banyan_prng::rngs::SmallRng;
use banyan_prng::{Rng, SeedableRng};
use banyan_sim::PortQueue;
use std::collections::BTreeMap;

/// Knobs for the event check.
#[derive(Clone, Copy, Debug)]
pub struct FlowSimConfig {
    /// Cycles discarded before measurement starts.
    pub warmup_cycles: u64,
    /// Cycles during which injected messages are measured.
    pub measure_cycles: u64,
    /// Independent replications (seeded `seed + i`), sketches merged.
    pub reps: u32,
    /// Base seed.
    pub seed: u64,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            warmup_cycles: 2_000,
            measure_cycles: 20_000,
            reps: 4,
            seed: 1,
        }
    }
}

/// Injection keeps running this long past the measure window so the
/// last measured messages traverse the network under steady load.
const COOLDOWN_CYCLES: u64 = 512;

/// Hard cap on post-injection drain cycles (a message stuck longer than
/// this means the instance is effectively unstable).
const DRAIN_CAP: u64 = 1_000_000;

/// `Msg::trace` value for untraced messages.
const TRACE_NONE: u32 = u32::MAX;

/// A message in flight: which flow it belongs to, which hop it is about
/// to queue at, the waiting accumulated so far, whether it was injected
/// inside the measure window, and (for sampled messages) its open
/// record index in the replication's [`RepTrace`].
#[derive(Clone, Copy, Debug)]
struct Msg {
    flow: u32,
    hop: u32,
    wait_acc: u64,
    measured: bool,
    trace: u32,
}

/// What the event check observed: exact waiting-time sketches per flow
/// (end-to-end) and per link (single-hop), indexed like
/// `graph.flows()` / `graph.links()`.
#[derive(Clone, Debug)]
pub struct FlowSimReport {
    /// End-to-end waiting time of each flow's measured messages.
    pub flows: Vec<DistSketch>,
    /// Per-hop waiting time observed at each link (all measured
    /// messages crossing it) — the instrument for localizing where the
    /// analytic kernel drifts.
    pub links: Vec<DistSketch>,
}

/// Runs the event check and returns one merged waiting-time sketch per
/// flow (indexed like `graph.flows()`). Deterministic for a given
/// config: replication `i` is seeded `seed + i` and replications are
/// merged in order.
pub fn simulate_flows(graph: &FlowGraph, cfg: &FlowSimConfig) -> Vec<DistSketch> {
    simulate_network(graph, cfg).flows
}

/// Like [`simulate_flows`], but also reports the per-link hop-wait
/// sketches.
pub fn simulate_network(graph: &FlowGraph, cfg: &FlowSimConfig) -> FlowSimReport {
    simulate_network_traced(graph, cfg, None)
}

/// Like [`simulate_network`], with an optional sampled per-message
/// lifecycle tracer. A traced record holds the message's injection
/// cycle and one wait per hop of its flow's path (no routing digits —
/// the path is the flow's, not per-message); the sampled set is a pure
/// function of `(seed, ordinal)` where the ordinal counts measured
/// injections in injection order, so tracing never perturbs the
/// simulation.
pub fn simulate_network_traced(
    graph: &FlowGraph,
    cfg: &FlowSimConfig,
    tracer: Option<&MsgTracer>,
) -> FlowSimReport {
    assert!(cfg.reps >= 1, "need at least one replication");
    let mut merged = FlowSimReport {
        flows: (0..graph.flows().len())
            .map(|_| DistSketch::new_exact())
            .collect(),
        links: (0..graph.links().len())
            .map(|_| DistSketch::new_exact())
            .collect(),
    };
    for i in 0..cfg.reps {
        let seed = cfg.seed.wrapping_add(u64::from(i));
        let mut rt = tracer.map(|tc| tc.rep(i, seed));
        let rep = run_once(graph, cfg, seed, &mut rt);
        if let (Some(tc), Some(rt)) = (tracer, rt) {
            tc.commit(rt);
        }
        for (m, r) in merged.flows.iter_mut().zip(&rep.flows) {
            m.merge(r);
        }
        for (m, r) in merged.links.iter_mut().zip(&rep.links) {
            m.merge(r);
        }
    }
    merged
}

fn run_once(
    graph: &FlowGraph,
    cfg: &FlowSimConfig,
    seed: u64,
    trace: &mut Option<RepTrace>,
) -> FlowSimReport {
    let links = graph.links();
    let flows = graph.flows();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ports = vec![PortQueue::new(); links.len()];
    // Calendar of future hop arrivals; forwarded messages always land
    // strictly in the future (w + 1 ≥ 1), so the current cycle's list
    // can be drained up front.
    let mut calendar: BTreeMap<u64, Vec<Msg>> = BTreeMap::new();
    let mut sketches: Vec<DistSketch> = (0..flows.len()).map(|_| DistSketch::new_exact()).collect();
    let mut link_sketches: Vec<DistSketch> =
        (0..links.len()).map(|_| DistSketch::new_exact()).collect();
    let inject_end = cfg.warmup_cycles + cfg.measure_cycles + COOLDOWN_CYCLES;
    let measure_end = cfg.warmup_cycles + cfg.measure_cycles;
    // Tracked-injection ordinal: counts measured injections in
    // injection order (cycle-major, flow-index-minor) whether or not a
    // tracer is attached, so the sampled set is seed-deterministic.
    let mut ord = 0u64;
    let mut cycle = 0u64;
    while cycle < inject_end || !calendar.is_empty() {
        assert!(
            cycle < inject_end + DRAIN_CAP,
            "flow event check failed to drain — instance unstable?"
        );
        let mut today = calendar.remove(&cycle).unwrap_or_default();
        if cycle < inject_end {
            for (fi, f) in flows.iter().enumerate() {
                if f.rate > 0.0 && rng.gen_bool(f.rate) {
                    let measured = cycle >= cfg.warmup_cycles && cycle < measure_end;
                    let mut tid = TRACE_NONE;
                    if measured {
                        if let Some(tr) = trace.as_mut() {
                            if tr.sampled(ord) {
                                tid = tr.begin(ord, cycle) as u32;
                            }
                        }
                        ord += 1;
                    }
                    today.push(Msg {
                        flow: fi as u32,
                        hop: 0,
                        wait_acc: 0,
                        measured,
                        trace: tid,
                    });
                }
            }
        }
        // Messages landing at the same port in the same cycle are
        // served in *random* order — a Fisher–Yates pass before the
        // stable per-port sort. Theorem 1's within-batch term averages
        // over batch positions uniformly; a deterministic tie-break
        // (e.g. flow id) would hand the same flow the front of the
        // batch every cycle and bias its observed wait low.
        for i in (1..today.len()).rev() {
            today.swap(i, rng.gen_range(0..i + 1));
        }
        today.sort_by_key(|m| flows[m.flow as usize].path[m.hop as usize]);
        for msg in today {
            let path = &flows[msg.flow as usize].path;
            let link = path[msg.hop as usize];
            let service = graph.nodes()[links[link].from].service.sample(&mut rng) as u64;
            let w = ports[link].arrive(service);
            let total = msg.wait_acc + w;
            if msg.measured {
                link_sketches[link].record(w);
            }
            if msg.trace != TRACE_NONE {
                if let Some(tr) = trace.as_mut() {
                    tr.push_wait(
                        msg.trace as usize,
                        u32::try_from(w).expect("hop wait exceeds u32"),
                    );
                }
            }
            if msg.hop as usize + 1 == path.len() {
                if msg.measured {
                    sketches[msg.flow as usize].record(total);
                }
            } else {
                calendar.entry(cycle + w + 1).or_default().push(Msg {
                    hop: msg.hop + 1,
                    wait_acc: total,
                    ..msg
                });
            }
        }
        for p in ports.iter_mut() {
            p.end_cycle();
        }
        cycle += 1;
    }
    FlowSimReport {
        flows: sketches,
        links: link_sketches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::omega;

    fn quick_cfg() -> FlowSimConfig {
        FlowSimConfig {
            warmup_cycles: 500,
            measure_cycles: 8_000,
            reps: 2,
            seed: 7,
        }
    }

    #[test]
    fn single_queue_matches_eq6_moments() {
        // One k=2-ish port fed by two flows of rate 0.25: total λ = 0.5
        // Bernoulli-superposed — close to the Binomial(2, 0.25) switch
        // port, whose Eq. 6/7 moments are E(w) = 0.25, Var(w) = 0.25.
        // Two independent Bernoulli injectors ARE Binomial(2, λ/2), so
        // the match is within statistical noise, not just approximate.
        use banyan_sim::traffic::ServiceDist;
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::unit());
        let out = g.add_link(a, None);
        g.add_flow(a, a, 0.25, vec![out]).unwrap();
        g.add_flow(a, a, 0.25, vec![out]).unwrap();
        let cfg = FlowSimConfig {
            measure_cycles: 60_000,
            ..quick_cfg()
        };
        let sk = simulate_flows(&g, &cfg);
        let mut all = DistSketch::new_exact();
        all.merge(&sk[0]);
        all.merge(&sk[1]);
        assert!((all.mean() - 0.25).abs() < 0.02, "{}", all.mean());
        assert!((all.variance() - 0.25).abs() < 0.04, "{}", all.variance());
    }

    #[test]
    fn deterministic_for_fixed_seed_and_merged_across_reps() {
        let g = omega(2, 2, 0.4, 1);
        let a = simulate_flows(&g, &quick_cfg());
        let b = simulate_flows(&g, &quick_cfg());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.count(), y.count());
            assert_eq!(x.count_points(), y.count_points());
        }
        let single = simulate_flows(
            &g,
            &FlowSimConfig {
                reps: 1,
                ..quick_cfg()
            },
        );
        // More reps → strictly more samples.
        assert!(a[0].count() > single[0].count());
    }

    #[test]
    fn traced_run_matches_untraced_and_validates() {
        use banyan_obs::msgtrace::{header_object, parse_trace, render_jsonl, MsgTracer};
        let g = omega(2, 2, 0.4, 1);
        let cfg = FlowSimConfig {
            warmup_cycles: 200,
            measure_cycles: 2_000,
            reps: 2,
            seed: 11,
        };
        let plain = simulate_network(&g, &cfg);
        let tracer = MsgTracer::new(1.0);
        let traced = simulate_network_traced(&g, &cfg, Some(&tracer));
        // Tracing is purely observational.
        for (a, b) in plain.flows.iter().zip(&traced.flows) {
            assert_eq!(a.count_points(), b.count_points());
        }
        let records = tracer.finish();
        // Rate 1.0: one record per measured message.
        let measured: u64 = plain.flows.iter().map(DistSketch::count).sum();
        assert_eq!(records.len() as u64, measured);
        // Hop counts are variable; the header declares stages: 0 and the
        // parser accepts per-record lengths.
        let header = header_object("flow", 0, cfg.seed, cfg.reps, 1.0).finish();
        let doc = render_jsonl(&header, &records);
        let parsed = parse_trace(&doc).expect("flow trace validates");
        assert_eq!(parsed.stages, None);
        assert_eq!(parsed.records.len(), records.len());
        // Record totals replay the end-to-end pmf exactly.
        let mut sk: Vec<DistSketch> = (0..g.flows().len())
            .map(|_| DistSketch::new_exact())
            .collect();
        let mut all = DistSketch::new_exact();
        for r in &records {
            assert!(r.digits.is_empty());
            all.record(r.total_wait());
        }
        for f in &plain.flows {
            sk[0].merge(f);
        }
        assert_eq!(all.count_points(), sk[0].count_points());
        // Sub-rate sampling is a subset and deterministic.
        let t1 = MsgTracer::new(0.25);
        simulate_network_traced(&g, &cfg, Some(&t1));
        let t2 = MsgTracer::new(0.25);
        simulate_network_traced(&g, &cfg, Some(&t2));
        let (r1, r2) = (t1.finish(), t2.finish());
        assert!(!r1.is_empty() && r1.len() < records.len());
        assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!((a.rep, a.ord, a.inject), (b.rep, b.ord, b.inject));
            assert_eq!(a.waits, b.waits);
        }
    }

    #[test]
    fn zero_rate_flows_record_nothing() {
        use banyan_sim::traffic::ServiceDist;
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::unit());
        let out = g.add_link(a, None);
        g.add_flow(a, a, 0.0, vec![out]).unwrap();
        let sk = simulate_flows(&g, &quick_cfg());
        assert_eq!(sk[0].count(), 0);
    }
}
