//! The routed-DAG model: nodes with per-node service, directed links
//! (output ports), and flows with explicit paths.
//!
//! A [`FlowGraph`] is *not* a banyan: it is any network whose queueing
//! points are the output ports of its nodes. Each [`Link`] is one such
//! port — the queue lives at the link, contended by the traffic of every
//! [`Flow`] routed over it. The banyan of the paper is the special case
//! where the nodes are `k × k` switches arranged in stages and every
//! flow's path crosses one link per stage.
//!
//! Two derived quantities drive the analytic engine:
//!
//! * **link rates** — the per-cycle message rate on each link is the sum
//!   of the rates of the flows routed over it ([`FlowGraph::link_rates`]),
//!   the feed-forward analogue of the paper's per-port load `p`;
//! * **link depths** — how many queueing points traffic has already
//!   crossed when it reaches a link ([`FlowGraph::link_depths`]). Depth 1
//!   links see fresh (Bernoulli) arrivals and get the exact Theorem 1
//!   law; deeper links see smoothed departure processes and get the §IV
//!   stage-`i` laws. Depth is the longest chain in the *link precedence
//!   DAG* (link `a` precedes link `b` when some flow crosses `a`
//!   immediately before `b`), which must be acyclic — the "feed-forward"
//!   in the crate name.

use banyan_sim::traffic::ServiceDist;

/// Index of a node in its [`FlowGraph`].
pub type NodeId = usize;
/// Index of a link (output port) in its [`FlowGraph`].
pub type LinkId = usize;
/// Index of a flow in its [`FlowGraph`].
pub type FlowId = usize;

/// A switching element: `fan_in` input ports feeding its output ports,
/// each transmission drawn from `service`.
///
/// `fan_in` is the *modeling* arity: the analytic engine assumes each of
/// the node's output ports receives `Binomial(fan_in, λ/fan_in)` arrivals
/// per cycle, exactly like a `fan_in × fan_in` switch in the paper. A
/// mesh router with two incoming mesh links and one injection port has
/// `fan_in = 3` even though its degree bookkeeping never appears
/// explicitly in the graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Human-readable name (used in errors and reports).
    pub name: String,
    /// Number of input ports contending for each output port (≥ 2).
    pub fan_in: u32,
    /// Transmission-time distribution for messages leaving this node.
    pub service: ServiceDist,
}

/// One output port of `from`: the queueing point of the model.
///
/// `to` is the node the port feeds, or `None` for an ejection port
/// (traffic leaves the network after this queue).
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// The node whose output port this is.
    pub from: NodeId,
    /// Downstream node, or `None` for an ejection port.
    pub to: Option<NodeId>,
}

/// A routed traffic stream: `rate` messages per cycle injected at `src`,
/// following `path` (a chain of links) to `dst`.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Node where the flow enters the network.
    pub src: NodeId,
    /// Node where the flow leaves the network.
    pub dst: NodeId,
    /// Per-cycle injection probability (Bernoulli).
    pub rate: f64,
    /// The links crossed, in order. Every element queues the flow once.
    pub path: Vec<LinkId>,
}

/// A feed-forward routed network: nodes, links, and flows.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    nodes: Vec<Node>,
    links: Vec<Link>,
    flows: Vec<Flow>,
}

impl FlowGraph {
    /// An empty graph.
    pub fn new() -> Self {
        FlowGraph::default()
    }

    /// Adds a node and returns its id.
    ///
    /// # Panics
    /// Panics on `fan_in < 2` (the paper's switch laws need at least two
    /// contending inputs) or an invalid service distribution.
    pub fn add_node(&mut self, name: impl Into<String>, fan_in: u32, service: ServiceDist) -> NodeId {
        assert!(fan_in >= 2, "node fan-in must be at least 2");
        service.validate();
        self.nodes.push(Node {
            name: name.into(),
            fan_in,
            service,
        });
        self.nodes.len() - 1
    }

    /// Adds an output port of `from` feeding `to` (or ejecting on
    /// `None`) and returns its id.
    ///
    /// # Panics
    /// Panics on out-of-range node ids.
    pub fn add_link(&mut self, from: NodeId, to: Option<NodeId>) -> LinkId {
        assert!(from < self.nodes.len(), "link source node out of range");
        if let Some(t) = to {
            assert!(t < self.nodes.len(), "link target node out of range");
        }
        self.links.push(Link { from, to });
        self.links.len() - 1
    }

    /// Adds a routed flow after validating its path: the rate is a
    /// probability, the path is non-empty, starts at `src`, chains
    /// link-to-node contiguously, and ends at `dst` (either on an
    /// ejection port of `dst` or on a link into `dst`).
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        rate: f64,
        path: Vec<LinkId>,
    ) -> Result<FlowId, String> {
        if src >= self.nodes.len() || dst >= self.nodes.len() {
            return Err("flow endpoint node out of range".into());
        }
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("flow rate {rate} must be a probability"));
        }
        if path.is_empty() {
            return Err("flow path must cross at least one link".into());
        }
        for &l in &path {
            if l >= self.links.len() {
                return Err(format!("flow path references unknown link {l}"));
            }
        }
        if self.links[path[0]].from != src {
            return Err(format!(
                "flow path starts at node {}, not its source {src}",
                self.links[path[0]].from
            ));
        }
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if self.links[a].to != Some(self.links[b].from) {
                return Err(format!("flow path breaks between links {a} and {b}"));
            }
        }
        let last = *path.last().expect("non-empty path");
        let reaches_dst = match self.links[last].to {
            None => self.links[last].from == dst,
            Some(t) => t == dst,
        };
        if !reaches_dst {
            return Err(format!("flow path does not end at destination {dst}"));
        }
        self.flows.push(Flow {
            src,
            dst,
            rate,
            path,
        });
        Ok(self.flows.len() - 1)
    }

    /// All nodes, by id.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, by id.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All flows, by id.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Aggregated per-link message rates: `λ_l = Σ_{flows f ∋ l} rate_f`,
    /// accumulated in flow-insertion order (deterministic, and a
    /// single-term sum — hence bit-exact — when one flow owns the link,
    /// as in a banyan under a permutation).
    pub fn link_rates(&self) -> Vec<f64> {
        let mut rates = vec![0.0; self.links.len()];
        for f in &self.flows {
            for &l in &f.path {
                rates[l] += f.rate;
            }
        }
        rates
    }

    /// Per-link depths in the flow-induced link precedence DAG: depth 1
    /// for links no flow enters from another link, otherwise one more
    /// than the deepest immediate predecessor. Links carrying no flow
    /// get depth 1.
    ///
    /// Fails when the precedence relation has a cycle — the network is
    /// not feed-forward under the given routing (note the *physical*
    /// graph may still contain cycles, e.g. a mesh: XY routing keeps the
    /// precedence relation acyclic).
    pub fn link_depths(&self) -> Result<Vec<u32>, String> {
        let n = self.links.len();
        // Deduplicated successor lists + indegrees of the precedence DAG.
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for f in &self.flows {
            for w in f.path.windows(2) {
                succ[w[0]].push(w[1]);
            }
        }
        let mut indeg = vec![0usize; n];
        for s in &mut succ {
            s.sort_unstable();
            s.dedup();
            for &t in s.iter() {
                indeg[t] += 1;
            }
        }
        // Kahn topological pass, relaxing longest-path depths.
        let mut depth = vec![1u32; n];
        let mut queue: Vec<usize> = (0..n).filter(|&l| indeg[l] == 0).collect();
        let mut seen = queue.len();
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head];
            head += 1;
            for &t in &succ[l] {
                depth[t] = depth[t].max(depth[l] + 1);
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                    seen += 1;
                }
            }
        }
        if seen < n {
            return Err("routing is not feed-forward: link precedence has a cycle".into());
        }
        Ok(depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch_line() -> FlowGraph {
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::unit());
        let b = g.add_node("b", 2, ServiceDist::unit());
        let ab = g.add_link(a, Some(b));
        let out = g.add_link(b, None);
        g.add_flow(a, b, 0.3, vec![ab, out]).unwrap();
        g
    }

    #[test]
    fn rates_aggregate_over_shared_links() {
        let mut g = two_switch_line();
        // A second flow sharing only the ejection port.
        g.add_flow(1, 1, 0.25, vec![1]).unwrap();
        assert_eq!(g.link_rates(), vec![0.3, 0.55]);
    }

    #[test]
    fn depths_follow_path_order() {
        let g = two_switch_line();
        assert_eq!(g.link_depths().unwrap(), vec![1, 2]);
    }

    #[test]
    fn depth_is_longest_precedence_chain() {
        // Ejection port reached both directly (depth-1 chain) and after
        // a transit link: depth is the longest chain, so 2.
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::unit());
        let b = g.add_node("b", 2, ServiceDist::unit());
        let ab = g.add_link(a, Some(b));
        let out = g.add_link(b, None);
        g.add_flow(b, b, 0.1, vec![out]).unwrap();
        g.add_flow(a, b, 0.1, vec![ab, out]).unwrap();
        assert_eq!(g.link_depths().unwrap(), vec![1, 2]);
    }

    #[test]
    fn cyclic_routing_is_rejected() {
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::unit());
        let b = g.add_node("b", 2, ServiceDist::unit());
        let ab = g.add_link(a, Some(b));
        let ba = g.add_link(b, Some(a));
        let out = g.add_link(a, None);
        // a→b→a→eject and b→a→b→… is fine per flow, but together the
        // precedence relation ab→ba→ab closes a cycle.
        g.add_flow(a, a, 0.1, vec![ab, ba, out]).unwrap();
        let bout = g.add_link(b, None);
        g.add_flow(b, b, 0.1, vec![ba, ab, bout]).unwrap();
        assert!(g.link_depths().unwrap_err().contains("cycle"));
    }

    #[test]
    fn bad_paths_are_rejected() {
        let mut g = FlowGraph::new();
        let a = g.add_node("a", 2, ServiceDist::unit());
        let b = g.add_node("b", 2, ServiceDist::unit());
        let ab = g.add_link(a, Some(b));
        let out = g.add_link(b, None);
        assert!(g.add_flow(a, b, 0.1, vec![]).is_err());
        assert!(g.add_flow(b, b, 0.1, vec![ab, out]).is_err()); // wrong src
        assert!(g.add_flow(a, a, 0.1, vec![ab, out]).is_err()); // wrong dst
        assert!(g.add_flow(a, b, 0.1, vec![out, ab]).is_err()); // broken chain
        assert!(g.add_flow(a, b, 1.5, vec![ab, out]).is_err()); // bad rate
    }
}
