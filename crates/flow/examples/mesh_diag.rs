//! Scratch diagnostic: per-link and per-flow sim-vs-analytic waits on
//! the 2×2 mesh acceptance instance.

use banyan_flow::{mesh, simulate_network, FlowAnalysis, FlowSimConfig};
use banyan_obs::tail::ks_distance;

fn main() {
    let g = mesh(2, 2, 0.5, 1);
    let an = FlowAnalysis::new(&g).unwrap();
    let rep = simulate_network(
        &g,
        &FlowSimConfig {
            warmup_cycles: 2_000,
            measure_cycles: 40_000,
            reps: 4,
            seed: 42,
        },
    );
    println!("-- links (model = tagged-stream mixture) --");
    for (l, sk) in rep.links.iter().enumerate() {
        if sk.count() == 0 {
            continue;
        }
        let node = &g.nodes()[g.links()[l].from];
        let lambda = an.link_rate(l);
        let streams = an.link_streams(l);
        let mix: f64 = streams
            .iter()
            .map(|&r| {
                let h = banyan_flow::HopParams {
                    link: l,
                    depth: an.link_depth(l),
                    fan_in: node.fan_in,
                    lambda,
                    m: 1,
                    own_stream: r,
                };
                (r / lambda) * an.hop_mean(&h)
            })
            .sum();
        println!(
            "link {l:2} from {:6} depth {} lambda {:.3} streams {:?} | sim mean {:.4} var {:.4} | model mix mean {:.4}",
            node.name,
            an.link_depth(l),
            lambda,
            streams,
            sk.mean(),
            sk.variance(),
            mix,
        );
    }
    println!("-- flows --");
    for (f, sk) in rep.flows.iter().enumerate() {
        let table = an.wait_cdf_table(f).unwrap();
        let ks = ks_distance(sk, |x| banyan_obs::tail::table_cdf(&table, x));
        let fl = &g.flows()[f];
        println!(
            "flow {f:2} {}->{} hops {} | sim mean {:.4} var {:.4} | model mean {:.4} var {:.4} | KS {:.4}",
            fl.src,
            fl.dst,
            fl.path.len(),
            sk.mean(),
            sk.variance(),
            an.mean_wait(f),
            an.var_wait(f),
            ks
        );
    }
}
