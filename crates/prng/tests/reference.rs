//! Reference-vector tests pinning the generators to the published
//! outputs of the original C implementations.
//!
//! * SplitMix64 vectors match Vigna's `splitmix64.c` (the seed-0 first
//!   output `0xE220A8397B1DCDAF` and the widely used seed-1234567
//!   sequence).
//! * xoshiro256++ vectors match `xoshiro256plusplus.c` run from state
//!   `[1, 2, 3, 4]` (the same vector pinned by the `rand_xoshiro`
//!   crate). The first output is also hand-checkable:
//!   `rotl(1 + 4, 23) + 1 = 5·2²³ + 1 = 41943041`.

use banyan_prng::rngs::SmallRng;
use banyan_prng::{Rng, RngCore, SeedableRng, SplitMix64, Xoshiro256PlusPlus};

#[test]
fn splitmix64_matches_reference_seed_zero() {
    let mut sm = SplitMix64::new(0);
    let got: Vec<u64> = (0..5).map(|_| sm.next_u64()).collect();
    assert_eq!(
        got,
        [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ]
    );
}

#[test]
fn splitmix64_matches_reference_seed_1234567() {
    let mut sm = SplitMix64::new(1234567);
    let got: Vec<u64> = (0..5).map(|_| sm.next_u64()).collect();
    assert_eq!(
        got,
        [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ]
    );
}

#[test]
fn xoshiro256pp_matches_reference_from_state() {
    let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
    let got: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ]
    );
}

#[test]
fn seed_from_u64_composes_splitmix_expansion() {
    // seed_from_u64(s) must equal from_state(four SplitMix64(s) words):
    // the documented (and published-table-relevant) seeding scheme.
    let mut sm = SplitMix64::new(0xFACE_FEED);
    let state = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
    let mut a = Xoshiro256PlusPlus::from_state(state);
    let mut b = SmallRng::seed_from_u64(0xFACE_FEED);
    for _ in 0..16 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn seed_from_u64_zero_reference_outputs() {
    // Pins the full seed→stream pipeline (SplitMix64 expansion feeding
    // xoshiro256++), computed with an independent implementation.
    let mut rng = SmallRng::seed_from_u64(0);
    let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        [
            5987356902031041503,
            7051070477665621255,
            6633766593972829180,
            211316841551650330,
            9136120204379184874,
            379361710973160858,
        ]
    );
}

#[test]
fn f64_standard_matches_bit_construction() {
    // gen::<f64>() is specified as (next_u64 >> 11) · 2⁻⁵³; pin it so
    // simulation streams never silently change.
    let mut bits = SmallRng::seed_from_u64(42);
    let mut vals = SmallRng::seed_from_u64(42);
    for _ in 0..16 {
        let expect = (bits.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let got: f64 = vals.gen();
        assert_eq!(got, expect);
    }
}
