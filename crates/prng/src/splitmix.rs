//! SplitMix64 (Steele–Lea–Flood / Vigna's `splitmix64.c`).
//!
//! A tiny one-word generator whose only job here is seed expansion: it
//! turns a single `u64` into the four state words of
//! [`Xoshiro256PlusPlus`](crate::Xoshiro256PlusPlus) (the seeding
//! scheme recommended by the xoshiro authors), and provides the
//! per-case seed stream of the property harness. Equidistributed over
//! all 2⁶⁴ outputs, so the expanded state is never pathological.

use crate::{RngCore, SeedableRng};

/// Weyl-sequence increment (the "golden gamma", ⌊2⁶⁴/φ⌋ rounded to odd).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator; the first output already mixes `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}
