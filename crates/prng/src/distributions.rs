//! Discrete sampling helpers for the workloads of the paper: Bernoulli
//! per-input arrivals, binomial batch counts (§III-A-1), and geometric
//! service times (§III-B).

use crate::Rng;

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        Bernoulli { p }
    }

    /// Draws one trial.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.p)
    }
}

/// Binomial(n, p): the number of successes in `n` Bernoulli trials —
/// the per-cycle batch count at a uniform-traffic switch output.
///
/// Sampling is by direct summation of trials, O(n) per draw: exact, and
/// fast for the switch arities this project uses (`n = k ≤ 16`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Binomial {
    n: u32,
    p: f64,
}

impl Binomial {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(n: u32, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        Binomial { n, p }
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Draws one batch count in `0..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        (0..self.n).filter(|_| rng.gen_bool(self.p)).count() as u32
    }
}

/// Geometric with success probability `p ∈ (0, 1]` on support
/// `{1, 2, …}` (trials until first success) — the paper's geometric
/// message-size distribution with mean `1/p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics unless `0 < p ≤ 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1], got {p}");
        Geometric { p }
    }

    /// Mean `1/p`.
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one value ≥ 1 by CDF inversion:
    /// `S = 1 + ⌊ln U / ln(1 − p)⌋`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let s = 1.0 + (u.ln() / (1.0 - self.p).ln()).floor();
        s.min(u64::MAX as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn bernoulli_frequency() {
        let d = Bernoulli::new(0.7);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut rng)).count();
        assert!((hits as f64 / n as f64 - 0.7).abs() < 0.01);
    }

    #[test]
    fn binomial_mean_and_support() {
        let d = Binomial::new(8, 0.25);
        assert_eq!(d.mean(), 2.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 50_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!(v <= 8);
            sum += v as u64;
        }
        assert!((sum as f64 / n as f64 - 2.0).abs() < 0.03);
    }

    #[test]
    fn geometric_mean_and_min() {
        let d = Geometric::new(0.25);
        assert_eq!(d.mean(), 4.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            min = min.min(v);
            sum += v;
        }
        assert_eq!(min, 1);
        assert!((sum as f64 / n as f64 - 4.0).abs() < 0.06);
    }

    #[test]
    fn geometric_p1_is_constant_one() {
        let d = Geometric::new(1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!((0..100).all(|_| d.sample(&mut rng) == 1));
    }
}
