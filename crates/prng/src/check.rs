//! Seeded randomized-property harness — the in-repo replacement for
//! `proptest` in the four `tests/properties.rs` suites.
//!
//! [`check`] runs a property closure against `cases` independently
//! seeded [`Gen`]s. Each case's inputs are drawn through `Gen`, which
//! records everything it hands out; on an assertion failure the harness
//! prints the failing case number, its seed, every drawn input, and the
//! `PROP_SEED` incantation that reproduces the run — then re-raises the
//! panic so the test still fails normally.
//!
//! ```
//! use banyan_prng::check::check;
//!
//! check(64, |g| {
//!     let x = g.f64(-100.0..100.0);
//!     let shift = g.f64(-10.0..10.0);
//!     assert!(((x + shift) - shift - x).abs() < 1e-9);
//! });
//! ```
//!
//! Set `PROP_SEED=<u64>` (decimal or `0x…` hex) to pin the base seed;
//! the default base seed is fixed, so CI runs are deterministic.

use crate::rngs::SmallRng;
use crate::{Rng, RngCore, SeedableRng, SplitMix64};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default base seed (decimal digits of π mixed into a u64) — fixed so
/// every offline run replays the identical case sequence.
pub const DEFAULT_BASE_SEED: u64 = 0x3141_5926_5358_9793;

/// A recording random-input source handed to property closures.
pub struct Gen {
    rng: SmallRng,
    trace: Vec<String>,
    quiet: bool,
}

impl Gen {
    fn new(case_seed: u64) -> Self {
        Gen {
            rng: SmallRng::seed_from_u64(case_seed),
            trace: Vec::new(),
            quiet: false,
        }
    }

    fn record(&mut self, kind: &str, value: &dyn Debug) {
        if !self.quiet {
            self.trace.push(format!("{kind} = {value:?}"));
        }
    }

    /// Uniform `f64` in the half-open range.
    pub fn f64(&mut self, range: Range<f64>) -> f64 {
        let v = self.rng.gen_range(range.clone());
        self.record(&format!("f64 in {range:?}"), &v);
        v
    }

    /// Uniform `u64` in the half-open range.
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        let v = self.rng.gen_range(range.clone());
        self.record(&format!("u64 in {range:?}"), &v);
        v
    }

    /// Uniform `u32` in the half-open range.
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        let v = self.rng.gen_range(range.clone());
        self.record(&format!("u32 in {range:?}"), &v);
        v
    }

    /// Uniform `usize` in the half-open range.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        let v = self.rng.gen_range(range.clone());
        self.record(&format!("usize in {range:?}"), &v);
        v
    }

    /// Uniform `i64` in the half-open range.
    pub fn i64(&mut self, range: Range<i64>) -> i64 {
        let v = self.rng.gen_range(range.clone());
        self.record(&format!("i64 in {range:?}"), &v);
        v
    }

    /// A uniformly random `u64` over the full range (proptest's
    /// `any::<u64>()`).
    pub fn any_u64(&mut self) -> u64 {
        let v = self.rng.next_u64();
        self.record("any u64", &v);
        v
    }

    /// Picks one element of a non-empty slice uniformly (proptest's
    /// `sample::select`).
    pub fn pick<T: Clone + Debug>(&mut self, options: &[T]) -> T {
        assert!(!options.is_empty(), "pick from empty slice");
        let v = options[self.rng.gen_range(0..options.len())].clone();
        self.record("pick", &v);
        v
    }

    /// A vector with uniform length in `len` whose elements are drawn
    /// by `element` (proptest's `collection::vec`). The whole vector is
    /// recorded as one trace entry.
    pub fn vec_with<T: Debug>(
        &mut self,
        len: Range<usize>,
        mut element: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        assert!(len.start < len.end, "empty length range");
        let n = self.rng.gen_range(len);
        let was_quiet = self.quiet;
        self.quiet = true;
        let v: Vec<T> = (0..n).map(|_| element(self)).collect();
        self.quiet = was_quiet;
        self.record(&format!("vec(len {n})"), &v);
        v
    }

    /// Direct access to the underlying generator (for properties that
    /// need to hand an `Rng` to the code under test). Draws through it
    /// are not traced.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

fn base_seed_from_env() -> u64 {
    match std::env::var("PROP_SEED") {
        Err(_) => DEFAULT_BASE_SEED,
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("PROP_SEED must be a u64, got {s:?}"))
        }
    }
}

/// Runs `property` against `cases` independently seeded inputs, using
/// the base seed from `PROP_SEED` (or the fixed default).
///
/// # Panics
/// Re-raises the property's panic after printing the failing case, its
/// drawn inputs, and the reproduction seed.
pub fn check(cases: u32, property: impl Fn(&mut Gen)) {
    check_with_seed(base_seed_from_env(), cases, property);
}

/// [`check`] with an explicit base seed (ignores `PROP_SEED`).
pub fn check_with_seed(base_seed: u64, cases: u32, property: impl Fn(&mut Gen)) {
    let mut seeds = SplitMix64::new(base_seed);
    for case in 0..cases {
        let case_seed = seeds.next_u64();
        let mut g = Gen::new(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
        if let Err(payload) = outcome {
            eprintln!(
                "\n[property] FAILED on case {case} of {cases} \
                 (base seed {base_seed:#018x}, case seed {case_seed:#018x})"
            );
            eprintln!("[property] inputs drawn by the failing case:");
            for line in &g.trace {
                eprintln!("[property]   {line}");
            }
            eprintln!("[property] reproduce with: PROP_SEED={base_seed:#x} cargo test");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_a_true_property() {
        check(100, |g| {
            let xs = g.vec_with(1..20, |g| g.f64(-10.0..10.0));
            let sum: f64 = xs.iter().sum();
            let rev: f64 = xs.iter().rev().sum();
            assert!((sum - rev).abs() < 1e-9);
        });
    }

    #[test]
    fn fails_a_false_property_and_reports() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with_seed(7, 50, |g| {
                let v = g.u64(0..100);
                assert!(v < 90, "drew {v}");
            })
        }));
        assert!(result.is_err(), "property v < 90 must fail within 50 cases");
    }

    #[test]
    fn same_base_seed_replays_identical_cases() {
        let collect = |seed: u64| {
            let captured = std::cell::RefCell::new(Vec::new());
            check_with_seed(seed, 10, |g| captured.borrow_mut().push(g.any_u64()));
            captured.into_inner()
        };
        let a = collect(99);
        let b = collect(99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_ne!(a, collect(100));
    }
}
