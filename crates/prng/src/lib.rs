//! # banyan-prng
//!
//! Self-contained pseudo-random number generation for the whole
//! workspace — no external crates, so the reproduction builds and tests
//! fully offline and every published table number is reproducible
//! bit-for-bit from a seed.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — the 64-bit finalizer-based generator used to
//!   expand a single `u64` seed into full generator state (and as a
//!   cheap stream of per-case seeds in the property harness).
//! * [`Xoshiro256PlusPlus`] — xoshiro256++ (Blackman–Vigna), the
//!   workhorse generator behind every simulation. Exported as
//!   [`rngs::SmallRng`] so call sites read like the familiar `rand`
//!   API subset they were written against: `SmallRng::seed_from_u64`,
//!   `gen::<f64>()`, `gen_range`, `gen_bool`.
//!
//! Both implementations are pinned by reference-vector tests against
//! the published outputs of the original C sources.
//!
//! ```
//! use banyan_prng::rngs::SmallRng;
//! use banyan_prng::{Rng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! assert!(rng.gen_range(0..10u64) < 10);
//! let mut again = SmallRng::seed_from_u64(7);
//! let v: f64 = again.gen();
//! assert_eq!(u, v); // fully deterministic given the seed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod distributions;
mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// Named generators, mirroring the `rand::rngs` module layout.
pub mod rngs {
    /// The workspace's small, fast default generator (xoshiro256++).
    pub type SmallRng = crate::Xoshiro256PlusPlus;
}

use std::ops::Range;

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly random bits (the upper half of
    /// [`next_u64`](Self::next_u64), which has the better-mixed bits in
    /// xoshiro-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods layered on any [`RngCore`].
///
/// This is the drop-in subset of the `rand::Rng` API the workspace
/// uses; the blanket impl makes every generator (and `&mut` reference
/// to one) an `Rng`.
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution: `f64` uniform in
    /// `[0, 1)` (53 random mantissa bits), integers uniform over their
    /// full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from a half-open range.
    ///
    /// Integer ranges are exact (Lemire rejection — no modulo bias);
    /// `f64` ranges sample `lo + u·(hi − lo)` with the result clamped
    /// below `hi`.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1) — every representable
        // multiple of 2⁻⁵³ is equally likely.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Uniform below `n` without modulo bias (Lemire's multiply-shift
/// rejection method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = rng.next_u64() as u128 * n as u128;
    if (m as u64) < n {
        // Reject the small sliver that would over-represent low values.
        let threshold = n.wrapping_neg() % n;
        while (m as u64) < threshold {
            m = rng.next_u64() as u128 * n as u128;
        }
    }
    (m >> 64) as u64
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u64, u32, usize, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "invalid f64 range in gen_range: {:?}",
            self
        );
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding can land exactly on `end`; keep the range half-open.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Generators constructible from a single 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_integers_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_range_respects_nonzero_start() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(5..8u64);
            assert!((5..8).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(-3..3i64);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn gen_range_f64_stays_half_open() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let f = hits as f64 / n as f64;
        assert!((f - 0.3).abs() < 0.01, "f = {f}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_p() {
        SmallRng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_int_range_rejected() {
        SmallRng::seed_from_u64(0).gen_range(3..3u64);
    }

    #[test]
    fn works_through_unsized_rng_reference() {
        // The simulators take `R: Rng + ?Sized`; make sure `&mut R`
        // plumbing compiles and behaves.
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            let _ = rng.gen_bool(0.5);
            let _ = rng.gen_range(0..4u64);
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let v = sample(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn uniform_below_is_unbiased_across_boundary() {
        // n = 3 exercises the rejection path; frequencies must be even.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for c in counts {
            let f = c as f64 / n as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.01, "{counts:?}");
        }
    }
}
