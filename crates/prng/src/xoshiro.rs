//! xoshiro256++ 1.0 (Blackman–Vigna, `xoshiro256plusplus.c`).
//!
//! 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; the recommended
//! general-purpose member of the xoshiro family and this workspace's
//! default generator behind [`rngs::SmallRng`](crate::rngs::SmallRng).

use crate::{RngCore, SeedableRng, SplitMix64};

/// The xoshiro256++ generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds a generator from raw state words.
    ///
    /// # Panics
    /// Panics on the all-zero state (the one fixed point of the
    /// transition function — the generator would emit zeros forever).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro256++ state must not be all zero");
        Xoshiro256PlusPlus { s }
    }

    /// The raw state words. Round-trips through [`Self::from_state`]:
    /// a generator rebuilt from this state continues the exact same
    /// stream. This is what lets structure-of-arrays consumers (the
    /// lane-batched simulator) hold many generators as four parallel
    /// word vectors while staying bit-compatible with the scalar path.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    /// Expands `seed` through SplitMix64 into the four state words, per
    /// the xoshiro authors' recommendation. Distinct seeds give
    /// decorrelated streams, which is what makes `base seed +
    /// replication offset` a sound parallel-replication scheme.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 visits each output exactly once per period, so four
        // consecutive zeros are impossible — but keep the guard local
        // rather than relying on that argument.
        if s == [0; 4] {
            return Xoshiro256PlusPlus { s: [1, 0, 0, 0] };
        }
        Xoshiro256PlusPlus { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "all zero")]
    fn zero_state_rejected() {
        Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn state_round_trips_and_continues_the_stream() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(0xDEAD_BEEF);
        a.next_u64();
        let mut b = Xoshiro256PlusPlus::from_state(a.state());
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(0);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(1);
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xa, xb);
    }
}
