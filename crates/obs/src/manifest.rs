//! Provenance-stamped run manifests.
//!
//! A manifest is the JSON record written next to a run's results: what
//! configuration ran, with which seeds, on how many threads, how long
//! each phase took, what the metrics registry saw, and which git
//! revision produced it. The schema is documented in DESIGN.md
//! ("Observability"); `schema` names its version so downstream tooling
//! can evolve.

use crate::json::{escape, fmt_f64, JsonObject};
use crate::Telemetry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Manifest schema identifier written into every file.
///
/// v2 adds the `distributions` section (per-stage waiting-time
/// sketches with exact pmf, moments, and report quantiles), the
/// `span_quantiles` section (P² duration quantiles per span path),
/// and free-form extra sections such as `drift` (observed-vs-analytic
/// KS reports). v1 readers that only consume the v1 keys keep working
/// — all v1 keys are retained unchanged.
pub const SCHEMA: &str = "banyan-obs/manifest/v2";

/// Builder for one run manifest.
#[derive(Debug)]
pub struct Manifest {
    name: String,
    created_unix: u64,
    host_parallelism: usize,
    git_rev: Option<String>,
    config: BTreeMap<String, String>,
    seeds: Vec<(String, u64)>,
    reps: Option<u32>,
    threads: Option<usize>,
    phases: Vec<(String, f64)>,
    artifacts: Vec<String>,
    /// Extra top-level sections: `(key, pre-rendered JSON value)`.
    sections: Vec<(String, String)>,
}

impl Manifest {
    /// Starts a manifest, stamping creation time, host parallelism, and
    /// the current git revision (when a `.git` is discoverable).
    pub fn new(name: &str) -> Self {
        Manifest {
            name: name.to_string(),
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            host_parallelism: host_parallelism(),
            git_rev: git_rev_from(&std::env::current_dir().unwrap_or_default()),
            config: BTreeMap::new(),
            seeds: Vec::new(),
            reps: None,
            threads: None,
            phases: Vec::new(),
            artifacts: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Records one configuration key (stringified; keys sort in output).
    pub fn config(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.config.insert(key.to_string(), value.to_string());
        self
    }

    /// Records a named seed (e.g. `base`).
    pub fn seed(&mut self, label: &str, value: u64) -> &mut Self {
        self.seeds.push((label.to_string(), value));
        self
    }

    /// Records the replication count.
    pub fn reps(&mut self, reps: u32) -> &mut Self {
        self.reps = Some(reps);
        self
    }

    /// Records the worker-thread count.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = Some(threads);
        self
    }

    /// Records a completed phase and its wall time in seconds.
    pub fn phase(&mut self, label: &str, secs: f64) -> &mut Self {
        self.phases.push((label.to_string(), secs));
        self
    }

    /// Records an output artifact path produced by the run.
    pub fn artifact(&mut self, path: impl std::fmt::Display) -> &mut Self {
        self.artifacts.push(path.to_string());
        self
    }

    /// Adds an extra top-level section whose value is already-rendered
    /// JSON (e.g. `drift` reports). Sections are emitted after the
    /// telemetry snapshots, in insertion order.
    pub fn section_raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.sections.push((key.to_string(), json.to_string()));
        self
    }

    /// Renders the manifest, embedding the telemetry's span and metric
    /// snapshots when one is provided.
    pub fn to_json(&self, telemetry: Option<&Telemetry>) -> String {
        let mut o = JsonObject::new();
        o.field_str("schema", SCHEMA)
            .field_str("name", &self.name)
            .field_u64("created_unix", self.created_unix)
            .field_u64("host_parallelism", self.host_parallelism as u64);
        match &self.git_rev {
            Some(rev) => o.field_str("git_rev", rev),
            None => o.field_raw("git_rev", "null"),
        };
        let mut cfg = JsonObject::new();
        for (k, v) in &self.config {
            cfg.field_str(k, v);
        }
        o.field_raw("config", &cfg.finish());
        let mut seeds = JsonObject::new();
        for (k, v) in &self.seeds {
            seeds.field_u64(k, *v);
        }
        o.field_raw("seeds", &seeds.finish());
        match self.reps {
            Some(r) => o.field_u64("reps", u64::from(r)),
            None => o.field_raw("reps", "null"),
        };
        match self.threads {
            Some(t) => o.field_u64("threads", t as u64),
            None => o.field_raw("threads", "null"),
        };
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|(label, secs)| {
                format!(
                    "{{\"label\": \"{}\", \"secs\": {}}}",
                    escape(label),
                    fmt_f64(*secs)
                )
            })
            .collect();
        o.field_raw("phases", &format!("[{}]", phases.join(", ")));
        let artifacts: Vec<String> = self
            .artifacts
            .iter()
            .map(|a| format!("\"{}\"", escape(a)))
            .collect();
        o.field_raw("artifacts", &format!("[{}]", artifacts.join(", ")));
        match telemetry {
            Some(tel) => {
                o.field_raw("spans", &tel.spans().snapshot_json());
                o.field_raw("span_quantiles", &tel.spans().duration_quantiles_json());
                o.field_raw("metrics", &tel.registry().snapshot_json());
                o.field_raw("distributions", &tel.sketches().snapshot_json());
                o.field_raw("runs", &tel.run_log_json());
            }
            None => {
                o.field_raw("spans", "{}");
                o.field_raw("span_quantiles", "{}");
                o.field_raw("metrics", "{}");
                o.field_raw("distributions", "{}");
                o.field_raw("runs", "[]");
            }
        }
        for (key, json) in &self.sections {
            o.field_raw(key, json);
        }
        let mut s = o.finish_pretty(2);
        s.push('\n');
        s
    }

    /// Writes the manifest to `path`.
    pub fn write(
        &self,
        path: impl AsRef<Path>,
        telemetry: Option<&Telemetry>,
    ) -> std::io::Result<PathBuf> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json(telemetry))?;
        Ok(path.to_path_buf())
    }
}

/// Number of hardware threads the host advertises (1 when unknown).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves the current git revision by walking up from `start` to the
/// nearest `.git` and reading `HEAD` (following one level of `ref:`
/// indirection, falling back to `packed-refs`). Returns `None` outside
/// a repository — provenance is best-effort, never a hard dependency.
pub fn git_rev_from(start: &Path) -> Option<String> {
    let git_dir = start.ancestors().map(|a| a.join(".git")).find(|g| g.exists())?;
    let head = std::fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(rev) = std::fs::read_to_string(git_dir.join(refname)) {
            return Some(rev.trim().to_string());
        }
        // Ref may only exist packed.
        let packed = std::fs::read_to_string(git_dir.join("packed-refs")).ok()?;
        packed.lines().find_map(|line| {
            let (rev, name) = line.split_once(' ')?;
            (name.trim() == refname).then(|| rev.to_string())
        })
    } else if head.len() >= 40 {
        // Detached HEAD holds the revision directly.
        Some(head.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;

    #[test]
    fn manifest_renders_all_sections() {
        let mut m = Manifest::new("unit");
        m.config("k", 2)
            .config("p", 0.5)
            .seed("base", 7)
            .reps(4)
            .threads(2)
            .phase("measure", 1.25)
            .artifact("results/unit.txt");
        let tel = Telemetry::new(TelemetryConfig::on());
        tel.registry().counter("net.injected_total").add(10);
        let s = m.to_json(Some(&tel));
        for key in [
            "\"schema\"",
            "\"banyan-obs/manifest/v2\"",
            "\"config\"",
            "\"k\": \"2\"",
            "\"seeds\"",
            "\"base\": 7",
            "\"reps\": 4",
            "\"threads\": 2",
            "\"phases\"",
            "\"measure\"",
            "\"host_parallelism\"",
            "\"net.injected_total\": 10",
            "\"artifacts\"",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn manifest_without_telemetry_has_empty_snapshots() {
        let s = Manifest::new("bare").to_json(None);
        assert!(s.contains("\"spans\": {}"));
        assert!(s.contains("\"metrics\": {}"));
        assert!(s.contains("\"distributions\": {}"));
        assert!(s.contains("\"runs\": []"));
    }

    #[test]
    fn sketches_and_sections_are_embedded() {
        let tel = Telemetry::new(TelemetryConfig::on());
        let mut sk = crate::DistSketch::new_exact();
        sk.record_n(0, 3);
        sk.record_n(2, 1);
        tel.sketches().merge_sketch("net.wait.total", &sk);
        let mut m = Manifest::new("dist");
        m.section_raw("drift", "[{\"name\": \"net.wait.total\", \"ks\": 0.01}]");
        let s = m.to_json(Some(&tel));
        assert!(s.contains("\"distributions\""));
        assert!(s.contains("\"net.wait.total\""));
        assert!(s.contains("\"kind\": \"exact\""));
        assert!(s.contains("\"drift\""));
        assert!(s.contains("\"span_quantiles\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn git_rev_resolves_in_this_repo_and_fails_gracefully_outside() {
        // The test runs somewhere inside the workspace, which is a git
        // repository; the rev must look like a hex hash.
        if let Some(rev) = git_rev_from(&std::env::current_dir().unwrap()) {
            assert!(rev.len() >= 40, "{rev}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "{rev}");
        }
        assert_eq!(git_rev_from(Path::new("/nonexistent-dir-xyz")), None);
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("banyan_obs_test_{}", std::process::id()));
        let path = dir.join("nested/run.manifest.json");
        let written = Manifest::new("w").write(&path, None).unwrap();
        assert!(written.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
