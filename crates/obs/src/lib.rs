//! # banyan-obs
//!
//! Zero-dependency run telemetry for the banyan reproduction: a
//! metrics [`registry`] (monotonic counters, gauges with high-water
//! marks, fixed-bucket histograms), hierarchical [`span`] timers,
//! distribution [`sketch`]es (exact sparse integer pmfs, P² streaming
//! quantiles), [`tail`] tracking with analytic drift checks, a
//! `chrome://tracing` [`trace`] exporter, a sampled per-message
//! lifecycle tracer ([`msgtrace`]), a rate-limited stderr
//! progress [`heartbeat`], and provenance-stamped run [`manifest`]s
//! (config, seeds, phase wall times, metric snapshot, host
//! parallelism, git revision).
//!
//! The central type is [`Telemetry`]: one shared, thread-safe sink per
//! run. The design contract, enforced by the `overhead_guard` bench in
//! `banyan-bench`, is that a **disabled** telemetry
//! ([`Telemetry::off`]) keeps instrumented code on the exact
//! uninstrumented path — the simulator branches *once per run* on
//! [`Telemetry::active`], not per cycle — and that telemetry never
//! perturbs simulation results: it observes counters and queues, never
//! the RNG or the dynamics, so replication statistics are bit-identical
//! with telemetry on or off.
//!
//! ```
//! use banyan_obs::{Telemetry, TelemetryConfig};
//!
//! let tel = Telemetry::new(TelemetryConfig::on());
//! {
//!     let _phase = tel.span("demo/phase");
//!     tel.registry().counter("demo.events").add(3);
//! }
//! assert_eq!(tel.registry().counter_value("demo.events"), Some(3));
//! assert!(tel.spans().stat("demo/phase").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod heartbeat;
pub mod json;
pub mod limiter;
pub mod manifest;
pub mod msgtrace;
pub mod registry;
pub mod rolling;
pub mod sketch;
pub mod span;
pub mod tail;
pub mod trace;

pub use expo::Exposition;
pub use msgtrace::{MsgRecord, MsgTracer, RepTrace};
pub use heartbeat::{Heartbeat, Progress, ProgressSnapshot};
pub use limiter::RateLimiter;
pub use manifest::Manifest;
pub use registry::{Counter, Gauge, Histogram, MetricSnapshot, Registry};
pub use rolling::{RollingStat, WindowSnapshot, WindowSpec};
pub use sketch::{DistSketch, P2Quantile, QuantileSet, SketchSet};
pub use span::{SpanEvent, SpanGuard, SpanSet, SpanStat};
pub use tail::DriftReport;

use crate::json::escape;
use std::sync::Mutex;
use std::time::Duration;

/// What to record and how often.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record metrics and spans.
    pub metrics: bool,
    /// Emit the stderr progress heartbeat.
    pub progress: bool,
    /// Occupancy-sampling cadence, in simulated cycles.
    pub sample_every: u64,
    /// Minimum wall-clock interval between heartbeat lines.
    pub heartbeat_interval: Duration,
}

impl TelemetryConfig {
    /// Everything off: instrumented code takes its uninstrumented path.
    pub fn off() -> Self {
        TelemetryConfig {
            metrics: false,
            progress: false,
            sample_every: 256,
            heartbeat_interval: Duration::from_millis(500),
        }
    }

    /// Metrics and spans on (no heartbeat), default cadence.
    pub fn on() -> Self {
        TelemetryConfig {
            metrics: true,
            ..TelemetryConfig::off()
        }
    }

    /// Enables the stderr heartbeat.
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }

    /// Overrides the occupancy-sampling cadence (cycles; min 1).
    pub fn with_sample_every(mut self, cycles: u64) -> Self {
        self.sample_every = cycles.max(1);
        self
    }

    /// True if any instrumentation is requested.
    pub fn active(&self) -> bool {
        self.metrics || self.progress
    }
}

/// The shared per-run telemetry sink. Construct once, share by
/// reference across replication workers (all sinks are thread-safe).
#[derive(Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    registry: Registry,
    spans: SpanSet,
    sketches: SketchSet,
    progress: Progress,
    heartbeat: Option<Heartbeat>,
    run_log: Mutex<Vec<String>>,
}

impl Telemetry {
    /// Builds a sink for the given configuration.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let heartbeat = cfg
            .progress
            .then(|| Heartbeat::new(cfg.heartbeat_interval));
        Telemetry {
            cfg,
            registry: Registry::new(),
            spans: SpanSet::new(),
            sketches: SketchSet::new(),
            progress: Progress::default(),
            heartbeat,
            run_log: Mutex::new(Vec::new()),
        }
    }

    /// A disabled sink (cheap: no allocation beyond empty maps).
    pub fn off() -> Self {
        Telemetry::new(TelemetryConfig::off())
    }

    /// The configuration this sink was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// True if any instrumentation is on — the once-per-run branch that
    /// keeps disabled telemetry off the hot path.
    #[inline]
    pub fn active(&self) -> bool {
        self.cfg.active()
    }

    /// True if metrics/spans are recorded.
    #[inline]
    pub fn metrics_enabled(&self) -> bool {
        self.cfg.metrics
    }

    /// True if the heartbeat is on.
    #[inline]
    pub fn progress_enabled(&self) -> bool {
        self.heartbeat.is_some()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span timings.
    pub fn spans(&self) -> &SpanSet {
        &self.spans
    }

    /// The distribution sketches (per-stage wait pmfs and friends).
    /// Workers record into local [`DistSketch`]es and fold them in
    /// here once per replication via [`SketchSet::merge_sketch`].
    pub fn sketches(&self) -> &SketchSet {
        &self.sketches
    }

    /// The shared progress ledger.
    pub fn progress(&self) -> &Progress {
        &self.progress
    }

    /// Starts a span (a no-op guard when metrics are disabled).
    pub fn span(&self, path: &str) -> SpanGuard<'_> {
        if self.cfg.metrics {
            self.spans.time(path)
        } else {
            SpanSet::noop()
        }
    }

    /// Lets the heartbeat emit if its interval elapsed (no-op without
    /// `--progress`). Call at a coarse cadence, never per cycle.
    #[inline]
    pub fn heartbeat_tick(&self) {
        if let Some(hb) = &self.heartbeat {
            hb.maybe_emit(&self.progress);
        }
    }

    /// Forces a final heartbeat summary line (run completion).
    pub fn heartbeat_final(&self) {
        if let Some(hb) = &self.heartbeat {
            hb.emit_final(&self.progress);
        }
    }

    /// Heartbeat lines emitted so far (0 without a heartbeat).
    pub fn heartbeat_lines(&self) -> u64 {
        self.heartbeat.as_ref().map_or(0, Heartbeat::lines_emitted)
    }

    /// Appends one provenance line to the run log (a free-form
    /// description of a simulation launched under this sink). Ignored
    /// when metrics are disabled.
    pub fn log_run(&self, desc: String) {
        if self.cfg.metrics {
            self.run_log.lock().expect("run log poisoned").push(desc);
        }
    }

    /// The run log as a JSON array of strings.
    pub fn run_log_json(&self) -> String {
        let log = self.run_log.lock().expect("run log poisoned");
        let items: Vec<String> = log.iter().map(|l| format!("\"{}\"", escape(l))).collect();
        format!("[{}]", items.join(", "))
    }

    /// Full snapshot: `{"spans": .., "metrics": .., "distributions": ..,
    /// "runs": ..}`.
    pub fn snapshot_json(&self) -> String {
        let mut o = json::JsonObject::new();
        o.field_raw("spans", &self.spans.snapshot_json())
            .field_raw("metrics", &self.registry.snapshot_json())
            .field_raw("distributions", &self.sketches.snapshot_json())
            .field_raw("runs", &self.run_log_json());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inactive_and_records_nothing() {
        let tel = Telemetry::off();
        assert!(!tel.active());
        {
            let _g = tel.span("x");
        }
        tel.log_run("ignored".into());
        assert!(tel.spans().snapshot().is_empty());
        assert!(tel.registry().is_empty());
        assert_eq!(tel.run_log_json(), "[]");
        tel.heartbeat_tick(); // no heartbeat: must not panic
        assert_eq!(tel.heartbeat_lines(), 0);
    }

    #[test]
    fn on_records_spans_and_runs() {
        let tel = Telemetry::new(TelemetryConfig::on());
        assert!(tel.active() && tel.metrics_enabled() && !tel.progress_enabled());
        {
            let _g = tel.span("a/b");
        }
        tel.log_run("cfg k=2".into());
        assert_eq!(tel.spans().stat("a/b").unwrap().calls, 1);
        assert_eq!(tel.run_log_json(), "[\"cfg k=2\"]");
        let snap = tel.snapshot_json();
        assert!(snap.contains("\"spans\""));
        assert!(snap.contains("\"metrics\""));
        assert!(snap.contains("\"runs\""));
    }

    #[test]
    fn progress_config_creates_heartbeat() {
        let tel = Telemetry::new(TelemetryConfig::off().with_progress());
        assert!(tel.active());
        assert!(tel.progress_enabled());
        assert!(!tel.metrics_enabled());
        tel.progress().add_cycles(10);
        tel.heartbeat_final();
        assert_eq!(tel.heartbeat_lines(), 1);
    }

    #[test]
    fn sample_every_floor_is_one() {
        assert_eq!(TelemetryConfig::on().with_sample_every(0).sample_every, 1);
    }
}
