//! Distribution sketches: lossless integer pmfs and streaming quantiles.
//!
//! The paper's central object is the *distribution* of waiting times,
//! not its mean — so the telemetry layer captures shape, not just
//! scalars. Two sketch kinds cover the two value domains we meet:
//!
//! * [`DistSketch::Exact`] — a sparse integer histogram. Waiting times
//!   in a clocked network are small non-negative integers (cycles), so
//!   the full pmf fits in a handful of map entries and can be captured
//!   **losslessly**. Mean and variance are computed from exact integer
//!   sums (`Σv`, `Σv²`), so they agree bit-for-bit with any other exact
//!   accumulation over the same values. Merging two sketches is plain
//!   counter addition — commutative and lossless — so per-worker
//!   instances fold cleanly in `runner`'s replication merge.
//! * [`P2Quantile`] — the Jain & Chlamtac P² streaming estimator for
//!   continuous values (span durations in seconds), five markers per
//!   tracked quantile, O(1) memory. Exact below five observations.
//!
//! [`SketchSet`] is the named registry of sketches hanging off a
//! `Telemetry` sink, mirroring `Registry` for scalar metrics.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::{escape, fmt_f64, JsonObject};

/// The standard report quantiles: p50 / p90 / p99 / p999.
pub const REPORT_QUANTILES: [f64; 4] = [0.50, 0.90, 0.99, 0.999];

/// Conventional label for a quantile probability: `0.5` → `"p50"`,
/// `0.99` → `"p99"`, `0.999` → `"p999"`.
pub fn quantile_label(q: f64) -> String {
    let pct = q * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("p{}", pct.round() as u64)
    } else {
        format!("p{}", (q * 1000.0).round() as u64)
    }
}

/// A mergeable distribution sketch.
///
/// Currently one variant: the exact sparse integer histogram. The enum
/// leaves room for lossy variants (e.g. DDSketch-style relative-error
/// bins) without changing the registry or manifest surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistSketch {
    /// Exact sparse pmf over non-negative integers.
    Exact {
        /// value -> count, sparse (only observed values present).
        counts: BTreeMap<u64, u64>,
        /// Total number of recorded observations.
        count: u64,
        /// Exact integer sum of recorded values.
        sum: u128,
        /// Exact integer sum of squared values.
        sum_sq: u128,
    },
}

impl Default for DistSketch {
    fn default() -> Self {
        Self::new_exact()
    }
}

impl DistSketch {
    /// An empty exact sketch.
    pub fn new_exact() -> Self {
        DistSketch::Exact {
            counts: BTreeMap::new(),
            count: 0,
            sum: 0,
            sum_sq: 0,
        }
    }

    /// Build an exact sketch from a dense `counts[value] = n` slice
    /// (the layout used by `banyan-stats`' `IntHistogram`).
    pub fn from_dense_counts(dense: &[u64]) -> Self {
        let mut s = Self::new_exact();
        for (v, &n) in dense.iter().enumerate() {
            if n > 0 {
                s.record_n(v as u64, n);
            }
        }
        s
    }

    /// Record one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let DistSketch::Exact {
            counts,
            count,
            sum,
            sum_sq,
        } = self;
        *counts.entry(value).or_insert(0) += n;
        *count += n;
        *sum += value as u128 * n as u128;
        *sum_sq += (value as u128 * value as u128) * n as u128;
    }

    /// Fold another sketch into this one. Exact and lossless: the
    /// result is identical to having recorded both observation streams
    /// into a single sketch, in any order.
    pub fn merge(&mut self, other: &DistSketch) {
        let DistSketch::Exact {
            counts: oc,
            count: on,
            sum: os,
            sum_sq: osq,
        } = other;
        let DistSketch::Exact {
            counts,
            count,
            sum,
            sum_sq,
        } = self;
        for (&v, &n) in oc {
            *counts.entry(v).or_insert(0) += n;
        }
        *count += on;
        *sum += os;
        *sum_sq += osq;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        let DistSketch::Exact { count, .. } = self;
        *count
    }

    /// Exact mean; a documented `0.0` on an empty sketch (never NaN).
    pub fn mean(&self) -> f64 {
        let DistSketch::Exact { count, sum, .. } = self;
        if *count == 0 {
            0.0
        } else {
            *sum as f64 / *count as f64
        }
    }

    /// Exact population variance; `0.0` on an empty sketch.
    pub fn variance(&self) -> f64 {
        let DistSketch::Exact {
            count, sum, sum_sq, ..
        } = self;
        if *count == 0 {
            return 0.0;
        }
        let n = *count as f64;
        let mean = *sum as f64 / n;
        // E[X²] − E[X]²; the integer sums are exact so the only
        // rounding is the final float arithmetic.
        (*sum_sq as f64 / n - mean * mean).max(0.0)
    }

    /// The sparse support points `(value, count)`, ascending. Exact
    /// integer counts — the raw material for cumulative statistics that
    /// must be bit-reproducible (running integer sums divided once,
    /// rather than accumulated float probabilities).
    pub fn count_points(&self) -> Vec<(u64, u64)> {
        let DistSketch::Exact { counts, .. } = self;
        counts.iter().map(|(&v, &c)| (v, c)).collect()
    }

    /// The sparse pmf points `(value, P(X = value))`, ascending.
    pub fn pmf_points(&self) -> Vec<(u64, f64)> {
        let DistSketch::Exact { counts, count, .. } = self;
        if *count == 0 {
            return Vec::new();
        }
        let n = *count as f64;
        counts.iter().map(|(&v, &c)| (v, c as f64 / n)).collect()
    }

    /// Complementary CDF `P(X >= value)`; exact; `0.0` when empty.
    pub fn ccdf_at(&self, value: u64) -> f64 {
        let DistSketch::Exact { counts, count, .. } = self;
        if *count == 0 {
            return 0.0;
        }
        let ge: u64 = counts.range(value..).map(|(_, &c)| c).sum();
        ge as f64 / *count as f64
    }

    /// CDF `P(X <= value)`; exact; `0.0` when empty.
    pub fn cdf_at(&self, value: u64) -> f64 {
        let DistSketch::Exact { counts, count, .. } = self;
        if *count == 0 {
            return 0.0;
        }
        let le: u64 = counts.range(..=value).map(|(_, &c)| c).sum();
        le as f64 / *count as f64
    }

    /// Smallest value v with `P(X <= v) >= q`. Empty sketch: 0.
    pub fn quantile(&self, q: f64) -> u64 {
        let DistSketch::Exact { counts, count, .. } = self;
        if *count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * *count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (&v, &c) in counts {
            acc += c;
            if acc >= target {
                return v;
            }
        }
        *counts.keys().next_back().expect("non-empty")
    }

    /// Serialize to a JSON object: kind, count, exact moments, report
    /// quantiles, and the full sparse pmf as parallel arrays.
    pub fn to_json(&self) -> String {
        let DistSketch::Exact { counts, count, .. } = self;
        let mut o = JsonObject::new();
        o.field_str("kind", "exact")
            .field_u64("count", *count)
            .field_f64("mean", self.mean())
            .field_f64("variance", self.variance());
        let mut q = JsonObject::new();
        for &p in &REPORT_QUANTILES {
            q.field_u64(&quantile_label(p), self.quantile(p));
        }
        o.field_raw("quantiles", &q.finish());
        let values: Vec<String> = counts.keys().map(|v| v.to_string()).collect();
        let cs: Vec<String> = counts.values().map(|c| c.to_string()).collect();
        o.field_raw("values", &format!("[{}]", values.join(",")));
        o.field_raw("counts", &format!("[{}]", cs.join(",")));
        o.finish()
    }
}

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm,
/// CACM 1985): five markers track `q` without storing observations.
/// Exact while fewer than five observations have been seen.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far (first five fill `heights` directly).
    count: u64,
}

impl P2Quantile {
    /// Track the `q`-quantile, `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile probability.
    pub fn probability(&self) -> f64 {
        self.q
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        self.count += 1;

        // Find the cell containing x, clamping the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            (0..4).find(|&i| x < self.heights[i + 1]).unwrap_or(3)
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate. Exact for fewer than five
    /// observations (sorted lookup); `0.0` when no data at all.
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => 0.0,
            n @ 1..=4 => {
                let mut seen = self.heights[..n as usize].to_vec();
                seen.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let idx = ((self.q * n as f64).ceil() as usize).clamp(1, n as usize) - 1;
                seen[idx]
            }
            _ => self.heights[2],
        }
    }
}

/// A bundle of P² estimators at the standard report quantiles.
#[derive(Debug, Clone)]
pub struct QuantileSet {
    estimators: Vec<P2Quantile>,
}

impl Default for QuantileSet {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSet {
    /// Track p50/p90/p99/p999.
    pub fn new() -> Self {
        QuantileSet {
            estimators: REPORT_QUANTILES
                .iter()
                .map(|&q| P2Quantile::new(q))
                .collect(),
        }
    }

    /// Record one observation into every estimator.
    pub fn record(&mut self, x: f64) {
        for e in &mut self.estimators {
            e.record(x);
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.estimators.first().map_or(0, |e| e.count())
    }

    /// `(probability, estimate)` pairs, non-decreasing in probability.
    ///
    /// The five-marker estimators are independent, and on
    /// duplicate-heavy or strongly patterned streams two adjacent ones
    /// can momentarily cross (e.g. p90 above p99) even though each
    /// stays within `[min, max]`. A crossed pair sits inside the pair's
    /// joint uncertainty band, so the standard isotonic repair — a
    /// running maximum over increasing probability — restores
    /// monotonicity without leaving `[min, max]` and without touching
    /// marker state.
    pub fn estimates(&self) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = self
            .estimators
            .iter()
            .map(|e| (e.probability(), e.estimate()))
            .collect();
        let mut running = f64::NEG_INFINITY;
        for e in &mut out {
            running = running.max(e.1);
            e.1 = running;
        }
        out
    }

    /// JSON object `{"count": …, "p50": …, "p90": …, …}` (monotone, the
    /// same repaired values as [`QuantileSet::estimates`]).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("count", self.count());
        for (p, e) in self.estimates() {
            o.field_f64(&quantile_label(p), e);
        }
        o.finish()
    }
}

/// Named registry of distribution sketches, the shape analogue of
/// `Registry`. Coarse-grained lock: workers record into **local**
/// sketches and merge here once per replication, so the mutex is never
/// on a hot loop.
#[derive(Debug, Default)]
pub struct SketchSet {
    sketches: Mutex<BTreeMap<String, DistSketch>>,
}

impl SketchSet {
    /// An empty sketch registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold `sketch` into the named slot (creating it when absent).
    /// Merging is commutative, so concurrent workers may flush in any
    /// order without affecting the result.
    pub fn merge_sketch(&self, name: &str, sketch: &DistSketch) {
        let mut map = self.sketches.lock().expect("sketch registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(DistSketch::new_exact)
            .merge(sketch);
    }

    /// Clone of the named sketch, if present.
    pub fn get(&self, name: &str) -> Option<DistSketch> {
        self.sketches
            .lock()
            .expect("sketch registry poisoned")
            .get(name)
            .cloned()
    }

    /// Sorted snapshot of all named sketches.
    pub fn snapshot(&self) -> Vec<(String, DistSketch)> {
        self.sketches
            .lock()
            .expect("sketch registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// True when no sketch has been merged yet.
    pub fn is_empty(&self) -> bool {
        self.sketches
            .lock()
            .expect("sketch registry poisoned")
            .is_empty()
    }

    /// JSON object mapping sketch name to its serialized form.
    pub fn snapshot_json(&self) -> String {
        let map = self.sketches.lock().expect("sketch registry poisoned");
        let parts: Vec<String> = map
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", escape(k), v.to_json()))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// Convenience: format an `(value, prob)` list as a JSON array of
/// `[v, p]` pairs (used by drift reports).
pub fn points_json(points: &[(u64, f64)]) -> String {
    let parts: Vec<String> = points
        .iter()
        .map(|&(v, p)| format!("[{}, {}]", v, fmt_f64(p)))
        .collect();
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sketch_moments_match_direct_computation() {
        let mut s = DistSketch::new_exact();
        let data = [0u64, 0, 1, 2, 2, 2, 5, 9];
        for &v in &data {
            s.record(v);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<u64>() as f64 / n;
        let var = data.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        assert_eq!(s.count(), data.len() as u64);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn empty_sketch_is_documented_zeroes() {
        let s = DistSketch::new_exact();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.ccdf_at(0), 0.0);
        assert!(s.pmf_points().is_empty());
    }

    #[test]
    fn merge_is_lossless_and_order_free() {
        let mut a = DistSketch::new_exact();
        let mut b = DistSketch::new_exact();
        let mut whole = DistSketch::new_exact();
        for v in [1u64, 1, 3, 7] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 3, 3, 40] {
            b.record(v);
            whole.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn quantiles_and_tails_are_exact() {
        let mut s = DistSketch::new_exact();
        // pmf: P(0)=.5, P(1)=.3, P(4)=.2
        s.record_n(0, 50);
        s.record_n(1, 30);
        s.record_n(4, 20);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(0.6), 1);
        assert_eq!(s.quantile(0.99), 4);
        assert!((s.ccdf_at(1) - 0.5).abs() < 1e-12);
        assert!((s.ccdf_at(4) - 0.2).abs() < 1e-12);
        assert!((s.ccdf_at(5) - 0.0).abs() < 1e-12);
        assert!((s.cdf_at(0) - 0.5).abs() < 1e-12);
        let total: f64 = s.pmf_points().iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_dense_counts_round_trips() {
        let dense = [5u64, 0, 3, 0, 0, 2];
        let s = DistSketch::from_dense_counts(&dense);
        assert_eq!(s.count(), 10);
        assert_eq!(s.pmf_points().len(), 3);
        assert!((s.mean() - 1.6).abs() < 1e-12); // (0·5 + 2·3 + 5·2) / 10
    }

    #[test]
    fn p2_tracks_uniform_median_closely() {
        // Deterministic LCG; no external RNG in the obs crate.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut p2 = P2Quantile::new(0.5);
        for _ in 0..20_000 {
            p2.record(next());
        }
        assert!(
            (p2.estimate() - 0.5).abs() < 0.02,
            "median estimate {}",
            p2.estimate()
        );
    }

    #[test]
    fn p2_exact_under_five_observations() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), 0.0);
        p2.record(10.0);
        assert_eq!(p2.estimate(), 10.0);
        p2.record(2.0);
        p2.record(6.0);
        assert_eq!(p2.estimate(), 6.0);
    }

    #[test]
    fn p2_tail_quantile_on_skewed_data() {
        let mut p2 = P2Quantile::new(0.9);
        // 0..=999 in a scrambled but deterministic order.
        for i in 0..1000u64 {
            p2.record(((i * 373) % 1000) as f64);
        }
        assert!(
            (p2.estimate() - 900.0).abs() < 25.0,
            "p90 estimate {}",
            p2.estimate()
        );
    }

    /// White-box P² invariants after every observation: marker heights
    /// sorted, marker positions strictly increasing, estimate within
    /// the observed `[min, max]`.
    fn assert_p2_invariants(p2: &P2Quantile, min: f64, max: f64, ctx: &str) {
        if p2.count >= 5 {
            for w in p2.heights.windows(2) {
                assert!(w[0] <= w[1], "{ctx}: heights out of order {:?}", p2.heights);
            }
            for w in p2.positions.windows(2) {
                assert!(
                    w[1] - w[0] >= 1.0,
                    "{ctx}: positions collapsed {:?}",
                    p2.positions
                );
            }
        }
        let e = p2.estimate();
        assert!(
            e >= min && e <= max,
            "{ctx}: estimate {e} outside [{min}, {max}]"
        );
    }

    /// Adversarial stream families for the quantile property tests:
    /// duplicate-heavy small alphabets, sawtooth patterns, alternating
    /// extremes, constants, and block-sorted runs — the shapes known to
    /// stress five-marker estimators.
    fn adversarial_stream(g: &mut banyan_prng::check::Gen) -> Vec<f64> {
        let len = g.usize(5..400);
        match g.u32(0..5) {
            0 => {
                // Duplicate-heavy: tiny alphabet, arbitrary scale.
                let alphabet = g.u64(1..6);
                let scale = g.f64(0.001..1e6);
                (0..len)
                    .map(|_| g.u64(0..alphabet) as f64 * scale)
                    .collect()
            }
            1 => {
                let period = g.u64(2..12);
                (0..len).map(|i| (i as u64 % period) as f64).collect()
            }
            2 => {
                let hi = g.f64(1.0..1e9);
                (0..len)
                    .map(|i| if i % 2 == 0 { 0.0 } else { hi })
                    .collect()
            }
            3 => vec![g.f64(-100.0..100.0); len],
            _ => {
                // Ascending or descending run with duplicates.
                let mut v: Vec<f64> = (0..len).map(|i| (i / 3) as f64).collect();
                if g.u32(0..2) == 0 {
                    v.reverse();
                }
                v
            }
        }
    }

    #[test]
    fn p2_markers_stay_ordered_and_bounded_on_adversarial_streams() {
        banyan_prng::check::check(64, |g| {
            let stream = adversarial_stream(g);
            let q = g.pick(&[0.5, 0.9, 0.99, 0.999]);
            let mut p2 = P2Quantile::new(q);
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for (i, &x) in stream.iter().enumerate() {
                p2.record(x);
                min = min.min(x);
                max = max.max(x);
                assert_p2_invariants(&p2, min, max, &format!("q={q} step {i}"));
            }
        });
    }

    #[test]
    fn quantile_set_estimates_are_monotone_on_adversarial_streams() {
        banyan_prng::check::check(64, |g| {
            let stream = adversarial_stream(g);
            let mut qs = QuantileSet::new();
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for (i, &x) in stream.iter().enumerate() {
                qs.record(x);
                min = min.min(x);
                max = max.max(x);
                let est = qs.estimates();
                for w in est.windows(2) {
                    assert!(
                        w[0].0 < w[1].0 && w[0].1 <= w[1].1,
                        "step {i}: p{} = {} above p{} = {}",
                        w[0].0,
                        w[0].1,
                        w[1].0,
                        w[1].1
                    );
                }
                for &(p, e) in &est {
                    assert!(
                        e >= min && e <= max,
                        "step {i}: p{p} = {e} outside [{min}, {max}]"
                    );
                }
            }
        });
    }

    #[test]
    fn quantile_set_json_uses_repaired_estimates() {
        // A stream that provably crosses the raw p90/p99 estimators
        // (from the sawtooth family); the JSON must carry the repaired
        // monotone values.
        let mut qs = QuantileSet::new();
        for i in 0..100u64 {
            qs.record((i % 7) as f64);
        }
        let est = qs.estimates();
        let json = qs.to_json();
        for (p, e) in est {
            assert!(
                json.contains(&format!("\"{}\": {e}", quantile_label(p))),
                "json {json} missing repaired {p} -> {e}"
            );
        }
    }

    #[test]
    fn sketch_set_merges_across_names() {
        let set = SketchSet::new();
        let mut w1 = DistSketch::new_exact();
        w1.record_n(1, 4);
        let mut w2 = DistSketch::new_exact();
        w2.record_n(2, 6);
        set.merge_sketch("net.wait.total", &w1);
        set.merge_sketch("net.wait.total", &w2);
        let merged = set.get("net.wait.total").expect("present");
        assert_eq!(merged.count(), 10);
        assert!((merged.mean() - 1.6).abs() < 1e-12);
        assert!(set.get("missing").is_none());
        let json = set.snapshot_json();
        assert!(json.contains("\"net.wait.total\""));
        assert!(json.contains("\"kind\": \"exact\""));
    }

    #[test]
    fn sketch_json_contains_quantiles_and_pmf() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 9);
        s.record_n(3, 1);
        let json = s.to_json();
        assert!(json.contains("\"count\": 10"));
        assert!(json.contains("\"p50\": 0"));
        assert!(json.contains("\"p999\": 3"));
        assert!(json.contains("\"values\": [0,3]"));
        assert!(json.contains("\"counts\": [9,1]"));
    }
}
