//! Tail tracking and analytic drift checks.
//!
//! The paper's Theorem 1 gives waiting-time distributions whose tails
//! decay geometrically: `P(w = j) ~ C·r^j` with `r = 1/σ`. This module
//! turns an exact [`DistSketch`] into the complementary tail
//! `P(w >= t)`, fits the geometric decay rate from the log-ccdf, and
//! measures drift between the observed distribution and an analytic
//! CDF via the Kolmogorov–Smirnov distance — the "is the simulator
//! still on theory?" gauge surfaced in run manifests.

use crate::json::JsonObject;
use crate::sketch::{points_json, DistSketch};

/// Complementary CDF points `(t, P(X >= t))` for `t = 0..=max`,
/// stopping after the tail reaches zero. Exact.
pub fn ccdf_points(sketch: &DistSketch) -> Vec<(u64, f64)> {
    let pmf = sketch.pmf_points();
    let Some(&(max, _)) = pmf.last() else { return Vec::new() };
    let mut out = Vec::with_capacity(max as usize + 1);
    // Walk downward accumulating P(X >= t) exactly once per t.
    let mut tail = 0.0;
    let mut rev: Vec<(u64, f64)> = Vec::with_capacity(max as usize + 1);
    let mut iter = pmf.iter().rev().peekable();
    for t in (0..=max).rev() {
        if let Some(&&(v, p)) = iter.peek() {
            if v == t {
                tail += p;
                iter.next();
            }
        }
        rev.push((t, tail));
    }
    out.extend(rev.into_iter().rev());
    out
}

/// Least-squares fit of `log P(X >= t) = a + t·log r` over the tail
/// region (the upper half of the support with nonzero mass, at least
/// two points). Returns the decay rate `r` in `(0, 1)`, or `None` when
/// the support is too small to fit.
///
/// For a geometric tail `P(w = j) ~ C·r^j` the ccdf also decays as
/// `r^t`, so the fitted slope estimates the paper's `1/σ` directly.
pub fn fit_geometric_tail(sketch: &DistSketch) -> Option<f64> {
    let ccdf = ccdf_points(sketch);
    // Tail region: from the median of the support upward, keeping
    // only strictly positive tail probabilities.
    let pts: Vec<(f64, f64)> = ccdf
        .iter()
        .skip(ccdf.len() / 2)
        .filter(|&&(_, p)| p > 0.0)
        .map(|&(t, p)| (t as f64, p.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let r = slope.exp();
    (r > 0.0 && r < 1.0).then_some(r)
}

/// Kolmogorov–Smirnov distance between the sketch's empirical CDF and
/// a model CDF, evaluated with the half-integer continuity correction
/// (`model_cdf(v + 0.5)`) used throughout `banyan-stats` so discrete
/// and continuous CDFs compare fairly. `0.0` on an empty sketch.
pub fn ks_distance(sketch: &DistSketch, model_cdf: impl Fn(f64) -> f64) -> f64 {
    if sketch.count() == 0 {
        return 0.0;
    }
    let mut worst = 0.0f64;
    for (v, _) in sketch.pmf_points() {
        let emp = sketch.cdf_at(v);
        let model = model_cdf(v as f64 + 0.5);
        let d = (emp - model).abs();
        if d > worst {
            worst = d;
        }
    }
    worst
}

/// A drift report comparing one observed sketch against analytic
/// theory: KS distance, fitted vs analytic geometric tail rate, and
/// observed vs analytic mean.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Which distribution this covers (e.g. `net.wait.stage01`).
    pub name: String,
    /// Observations behind the empirical side.
    pub count: u64,
    /// KS distance between empirical and analytic CDFs.
    pub ks: f64,
    /// Empirical mean (exact).
    pub observed_mean: f64,
    /// Analytic mean from Theorem 1 / stage constants.
    pub analytic_mean: f64,
    /// Fitted geometric tail decay rate, when the support allows a fit.
    pub fitted_tail_rate: Option<f64>,
    /// Analytic tail decay rate `1/σ`, when the model provides one.
    pub analytic_tail_rate: Option<f64>,
}

impl DriftReport {
    /// Build a report for `sketch` against an analytic CDF and moments.
    pub fn against(
        name: &str,
        sketch: &DistSketch,
        model_cdf: impl Fn(f64) -> f64,
        analytic_mean: f64,
        analytic_tail_rate: Option<f64>,
    ) -> Self {
        DriftReport {
            name: name.to_string(),
            count: sketch.count(),
            ks: ks_distance(sketch, model_cdf),
            observed_mean: sketch.mean(),
            analytic_mean,
            fitted_tail_rate: fit_geometric_tail(sketch),
            analytic_tail_rate,
        }
    }

    /// KS distance in parts-per-million, for the integer `Gauge`
    /// surface (`net.drift.ks_ppm`).
    pub fn ks_ppm(&self) -> u64 {
        (self.ks * 1e6).round() as u64
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("name", &self.name)
            .field_u64("count", self.count)
            .field_f64("ks", self.ks)
            .field_f64("observed_mean", self.observed_mean)
            .field_f64("analytic_mean", self.analytic_mean);
        match self.fitted_tail_rate {
            Some(r) => o.field_f64("fitted_tail_rate", r),
            None => o.field_raw("fitted_tail_rate", "null"),
        };
        match self.analytic_tail_rate {
            Some(r) => o.field_f64("analytic_tail_rate", r),
            None => o.field_raw("analytic_tail_rate", "null"),
        };
        o.finish()
    }
}

/// Serialize the tail of a sketch (`(t, P(X >= t))` pairs) as JSON.
pub fn ccdf_json(sketch: &DistSketch) -> String {
    points_json(&ccdf_points(sketch))
}

/// Format a drift list as a JSON array.
pub fn drift_array_json(reports: &[DriftReport]) -> String {
    let parts: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    format!("[{}]", parts.join(", "))
}

/// Render one human line for a drift report (used by `banyan report`).
pub fn drift_line(r: &DriftReport) -> String {
    let fitted = r.fitted_tail_rate.map_or("    n/a".to_string(), |x| format!("{x:.5}"));
    let analytic =
        r.analytic_tail_rate.map_or("    n/a".to_string(), |x| format!("{x:.5}"));
    format!(
        "{:<18} n={:>9}  E(w) obs {:>8.4} vs thy {:>8.4}  KS {:.5}  tail r obs {} vs thy {}",
        r.name,
        r.count,
        r.observed_mean,
        r.analytic_mean,
        r.ks,
        fitted,
        analytic
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric_sketch(r: f64, n_per_level: u64, levels: u64) -> DistSketch {
        // counts proportional to r^j — an exactly geometric pmf.
        let mut s = DistSketch::new_exact();
        for j in 0..levels {
            let c = (n_per_level as f64 * r.powi(j as i32)).round() as u64;
            if c > 0 {
                s.record_n(j, c);
            }
        }
        s
    }

    #[test]
    fn ccdf_points_sum_and_monotone() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 6);
        s.record_n(2, 3);
        s.record_n(3, 1);
        let pts = ccdf_points(&s);
        assert_eq!(pts[0], (0, 1.0));
        assert!((pts[1].1 - 0.4).abs() < 1e-12); // P(X >= 1)
        assert!((pts[2].1 - 0.4).abs() < 1e-12); // P(X >= 2)
        assert!((pts[3].1 - 0.1).abs() < 1e-12); // P(X >= 3)
        for w in pts.windows(2) {
            assert!(w[0].1 >= w[1].1, "ccdf must be non-increasing");
        }
    }

    #[test]
    fn geometric_fit_recovers_rate() {
        let r = 0.3;
        let s = geometric_sketch(r, 1_000_000, 12);
        let fitted = fit_geometric_tail(&s).expect("fit");
        assert!((fitted - r).abs() < 0.02, "fitted {fitted} vs true {r}");
    }

    #[test]
    fn fit_declines_on_tiny_support() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 10);
        assert!(fit_geometric_tail(&s).is_none());
        assert!(fit_geometric_tail(&DistSketch::new_exact()).is_none());
    }

    #[test]
    fn ks_zero_against_own_cdf() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 5);
        s.record_n(1, 3);
        s.record_n(2, 2);
        let clone = s.clone();
        // Model CDF = the sketch's own empirical CDF (floor of v + 0.5).
        let ks = ks_distance(&s, move |x| clone.cdf_at(x.floor().max(0.0) as u64));
        assert!(ks < 1e-12, "ks {ks}");
    }

    #[test]
    fn ks_detects_mean_shift() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 50);
        s.record_n(1, 50);
        // Model: all mass at 0.
        let ks = ks_distance(&s, |x| if x >= 0.0 { 1.0 } else { 0.0 });
        assert!((ks - 0.5).abs() < 1e-12);
        assert_eq!(ks_distance(&DistSketch::new_exact(), |_| 0.0), 0.0);
    }

    #[test]
    fn drift_report_serializes_with_null_rates() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 10);
        let r = DriftReport::against("net.wait.total", &s, |_| 1.0, 0.0, None);
        let json = r.to_json();
        assert!(json.contains("\"name\": \"net.wait.total\""));
        assert!(json.contains("\"fitted_tail_rate\": null"));
        assert!(json.contains("\"analytic_tail_rate\": null"));
        assert_eq!(r.ks_ppm(), (r.ks * 1e6).round() as u64);
    }
}
