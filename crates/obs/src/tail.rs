//! Tail tracking and analytic drift checks.
//!
//! The paper's Theorem 1 gives waiting-time distributions whose tails
//! decay geometrically: `P(w = j) ~ C·r^j` with `r = 1/σ`. This module
//! turns an exact [`DistSketch`] into the complementary tail
//! `P(w >= t)`, fits the geometric decay rate from the log-ccdf, and
//! measures drift between the observed distribution and an analytic
//! CDF via the Kolmogorov–Smirnov distance — the "is the simulator
//! still on theory?" gauge surfaced in run manifests.

use crate::json::JsonObject;
use crate::sketch::{points_json, DistSketch};

/// Complementary CDF points `(t, P(X >= t))` at the sketch's support
/// values, ascending. Exact: integer tail counts divided once, never
/// accumulated floats. Sparse — a heavy-traffic sketch with support
/// `{0, 10_000}` yields two points, not a dense `O(max)` vector; the
/// ccdf is constant between support points, so nothing is lost.
pub fn ccdf_points(sketch: &DistSketch) -> Vec<(u64, f64)> {
    let total = sketch.count();
    if total == 0 {
        return Vec::new();
    }
    let pts = sketch.count_points();
    let mut out = Vec::with_capacity(pts.len());
    // Count of observations >= the current support point; starts at the
    // full total (every observation is >= the smallest support value).
    let mut ge = total;
    for &(v, c) in &pts {
        out.push((v, ge as f64 / total as f64));
        ge -= c;
    }
    out
}

/// Least-squares fit of `log P(X >= t) = a + t·log r` over the tail
/// region (the upper half of the *support points*, at least two).
/// Returns the decay rate `r` in `(0, 1)`, or `None` when the support
/// is too small to fit.
///
/// For a geometric tail `P(w = j) ~ C·r^j` the ccdf also decays as
/// `r^t`, so the fitted slope estimates the paper's `1/σ` directly.
/// Fitting over support points only matters when the support has gaps:
/// a dense-range fit would weight every zero-mass plateau value as an
/// extra sample of the same ccdf level, flattening the least-squares
/// slope and biasing the fitted rate upward, away from `1/σ`.
pub fn fit_geometric_tail(sketch: &DistSketch) -> Option<f64> {
    let ccdf = ccdf_points(sketch);
    // Tail region: upper half of the support. Every ccdf value at a
    // support point is strictly positive (P(X >= v) >= P(X = v) > 0),
    // so no filtering is needed.
    let pts: Vec<(f64, f64)> = ccdf
        .iter()
        .skip(ccdf.len() / 2)
        .map(|&(t, p)| (t as f64, p.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let r = slope.exp();
    (r > 0.0 && r < 1.0).then_some(r)
}

/// Kolmogorov–Smirnov distance between the sketch's empirical CDF and
/// a model CDF, evaluated with the half-integer continuity correction
/// (`model_cdf(v ± 0.5)`) used throughout `banyan-stats` so discrete
/// and continuous CDFs compare fairly. `0.0` on an empty sketch.
///
/// The empirical CDF is a step function, so the supremum at each jump
/// has two candidates: the post-jump side `|F_emp(v) − F_model(v+½)|`
/// and the pre-jump side `|F_emp(v⁻) − F_model(v−½)|`. Both are
/// checked; dropping the pre-jump side (as an earlier version did)
/// misses deviations where the model CDF rises across gaps in the
/// sketch's support and systematically underestimates drift. Support
/// values between jumps need no candidates of their own: `F_emp` is
/// constant there and `F_model` monotone, so the deviation on a gap is
/// bounded by the candidates at its endpoints.
///
/// Kept structurally identical to `banyan_stats::distance::ks_distance`
/// (running integer counts, one division per candidate) so the two
/// return bit-equal results on matching data.
pub fn ks_distance(sketch: &DistSketch, model_cdf: impl Fn(f64) -> f64) -> f64 {
    let total = sketch.count();
    if total == 0 {
        return 0.0;
    }
    let mut acc = 0u64;
    let mut worst = 0.0f64;
    for (v, c) in sketch.count_points() {
        let before = acc as f64 / total as f64; // F_emp(v⁻)
        acc += c;
        let after = acc as f64 / total as f64; // F_emp(v)
        worst = worst.max((model_cdf(v as f64 - 0.5) - before).abs());
        worst = worst.max((model_cdf(v as f64 + 0.5) - after).abs());
    }
    worst
}

/// Evaluates a dense integer CDF table at a continuity-corrected point:
/// `table[floor(x)]`, clamped to `[0, 1]` outside the table.
/// [`ks_distance`] probes the model at `v ± 0.5`, so a discrete
/// analytic model tabulated at integers is compared at exactly `F(v)`
/// on the post-jump side. Shared by the CLI drift reports and the flow
/// engine's analytic-vs-event-sim gauges.
pub fn table_cdf(table: &[f64], x: f64) -> f64 {
    if x < 0.0 {
        return 0.0;
    }
    let i = x.floor() as usize;
    if i >= table.len() {
        1.0
    } else {
        table[i]
    }
}

/// A drift report comparing one observed sketch against analytic
/// theory: KS distance, fitted vs analytic geometric tail rate, and
/// observed vs analytic mean.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Which distribution this covers (e.g. `net.wait.stage01`).
    pub name: String,
    /// Observations behind the empirical side.
    pub count: u64,
    /// KS distance between empirical and analytic CDFs.
    pub ks: f64,
    /// Empirical mean (exact).
    pub observed_mean: f64,
    /// Analytic mean from Theorem 1 / stage constants.
    pub analytic_mean: f64,
    /// Fitted geometric tail decay rate, when the support allows a fit.
    pub fitted_tail_rate: Option<f64>,
    /// Analytic tail decay rate `1/σ`, when the model provides one.
    pub analytic_tail_rate: Option<f64>,
}

impl DriftReport {
    /// Build a report for `sketch` against an analytic CDF and moments.
    pub fn against(
        name: &str,
        sketch: &DistSketch,
        model_cdf: impl Fn(f64) -> f64,
        analytic_mean: f64,
        analytic_tail_rate: Option<f64>,
    ) -> Self {
        DriftReport {
            name: name.to_string(),
            count: sketch.count(),
            ks: ks_distance(sketch, model_cdf),
            observed_mean: sketch.mean(),
            analytic_mean,
            fitted_tail_rate: fit_geometric_tail(sketch),
            analytic_tail_rate,
        }
    }

    /// KS distance in parts-per-million, for the integer `Gauge`
    /// surface (`net.drift.ks_ppm`).
    pub fn ks_ppm(&self) -> u64 {
        (self.ks * 1e6).round() as u64
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("name", &self.name)
            .field_u64("count", self.count)
            .field_f64("ks", self.ks)
            .field_f64("observed_mean", self.observed_mean)
            .field_f64("analytic_mean", self.analytic_mean);
        match self.fitted_tail_rate {
            Some(r) => o.field_f64("fitted_tail_rate", r),
            None => o.field_raw("fitted_tail_rate", "null"),
        };
        match self.analytic_tail_rate {
            Some(r) => o.field_f64("analytic_tail_rate", r),
            None => o.field_raw("analytic_tail_rate", "null"),
        };
        o.finish()
    }
}

/// Serialize the tail of a sketch (`(t, P(X >= t))` pairs) as JSON.
pub fn ccdf_json(sketch: &DistSketch) -> String {
    points_json(&ccdf_points(sketch))
}

/// Format a drift list as a JSON array.
pub fn drift_array_json(reports: &[DriftReport]) -> String {
    let parts: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    format!("[{}]", parts.join(", "))
}

/// Render one human line for a drift report (used by `banyan report`).
pub fn drift_line(r: &DriftReport) -> String {
    let fitted = r
        .fitted_tail_rate
        .map_or("    n/a".to_string(), |x| format!("{x:.5}"));
    let analytic = r
        .analytic_tail_rate
        .map_or("    n/a".to_string(), |x| format!("{x:.5}"));
    format!(
        "{:<18} n={:>9}  E(w) obs {:>8.4} vs thy {:>8.4}  KS {:.5}  tail r obs {} vs thy {}",
        r.name, r.count, r.observed_mean, r.analytic_mean, r.ks, fitted, analytic
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric_sketch(r: f64, n_per_level: u64, levels: u64) -> DistSketch {
        // counts proportional to r^j — an exactly geometric pmf.
        let mut s = DistSketch::new_exact();
        for j in 0..levels {
            let c = (n_per_level as f64 * r.powi(j as i32)).round() as u64;
            if c > 0 {
                s.record_n(j, c);
            }
        }
        s
    }

    #[test]
    fn ccdf_points_sum_and_monotone() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 6);
        s.record_n(2, 3);
        s.record_n(3, 1);
        let pts = ccdf_points(&s);
        // Sparse: one point per support value, not per value in 0..=max.
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (0, 1.0));
        assert_eq!(pts[1].0, 2);
        assert!((pts[1].1 - 0.4).abs() < 1e-12); // P(X >= 2)
        assert_eq!(pts[2].0, 3);
        assert!((pts[2].1 - 0.1).abs() < 1e-12); // P(X >= 3)
        for w in pts.windows(2) {
            assert!(w[0].1 >= w[1].1, "ccdf must be non-increasing");
        }
    }

    #[test]
    fn ccdf_points_stay_sparse_on_gapped_support() {
        // A heavy-traffic-style sketch: two support points very far
        // apart must not allocate a dense O(max) vector.
        let mut s = DistSketch::new_exact();
        s.record_n(0, 1);
        s.record_n(10_000_000, 1);
        let pts = ccdf_points(&s);
        assert_eq!(pts, vec![(0, 1.0), (10_000_000, 0.5)]);
    }

    #[test]
    fn geometric_fit_recovers_rate() {
        let r = 0.3;
        let s = geometric_sketch(r, 1_000_000, 12);
        let fitted = fit_geometric_tail(&s).expect("fit");
        assert!((fitted - r).abs() < 0.02, "fitted {fitted} vs true {r}");
    }

    #[test]
    fn geometric_fit_unbiased_by_support_gaps() {
        // Mass only on even values, counts ∝ ρ^j at value 2j: the true
        // per-unit decay rate is √ρ. The old dense-range fit also fed
        // every odd value (a zero-mass plateau repeating the even
        // neighbour's ccdf) into the least squares, flattening the
        // slope and biasing the rate upward.
        let rho: f64 = 0.25;
        let mut s = DistSketch::new_exact();
        for j in 0..10u64 {
            let c = (1_000_000.0 * rho.powi(j as i32)).round() as u64;
            if c > 0 {
                s.record_n(2 * j, c);
            }
        }
        let fitted = fit_geometric_tail(&s).expect("fit");
        let want = rho.sqrt(); // 0.5 per unit t
        assert!(
            (fitted - want).abs() < 0.02,
            "fitted {fitted} vs true {want}"
        );
    }

    #[test]
    fn fit_declines_on_tiny_support() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 10);
        assert!(fit_geometric_tail(&s).is_none());
        assert!(fit_geometric_tail(&DistSketch::new_exact()).is_none());
    }

    #[test]
    fn ks_zero_against_own_cdf() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 5);
        s.record_n(1, 3);
        s.record_n(2, 2);
        let clone = s.clone();
        // Model CDF = the sketch's own empirical step CDF: 0 below the
        // support, then the exact cdf at floor(x).
        let model = move |x: f64| {
            if x < 0.0 {
                0.0
            } else {
                clone.cdf_at(x.floor() as u64)
            }
        };
        let ks = ks_distance(&s, model);
        assert!(ks < 1e-12, "ks {ks}");
    }

    #[test]
    fn ks_catches_pre_jump_deviation_across_support_gap() {
        // Support {0, 10} with 10% of the mass at 0; the model CDF
        // climbs linearly across the gap. Post-jump candidates alone:
        // |F(0.5) − 0.1| = 0.05 at v=0 and |F(10.5) − 1| = 0 at v=10 —
        // the old one-sided statistic reported 0.05. The true KS lies
        // on the pre-jump side of the v=10 jump, where the model has
        // climbed to 0.95 but the empirical CDF is still 0.1.
        let mut s = DistSketch::new_exact();
        s.record_n(0, 1);
        s.record_n(10, 9);
        let model = |x: f64| (x / 10.0).clamp(0.0, 1.0);
        let ks = ks_distance(&s, model);
        assert!(
            (ks - 0.85).abs() < 1e-12,
            "ks {ks}, want pre-jump 0.95 − 0.1"
        );
    }

    #[test]
    fn ks_detects_mean_shift() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 50);
        s.record_n(1, 50);
        // Model: all mass at 0.
        let ks = ks_distance(&s, |x| if x >= 0.0 { 1.0 } else { 0.0 });
        assert!((ks - 0.5).abs() < 1e-12);
        assert_eq!(ks_distance(&DistSketch::new_exact(), |_| 0.0), 0.0);
    }

    #[test]
    fn drift_report_serializes_with_null_rates() {
        let mut s = DistSketch::new_exact();
        s.record_n(0, 10);
        let r = DriftReport::against("net.wait.total", &s, |_| 1.0, 0.0, None);
        let json = r.to_json();
        assert!(json.contains("\"name\": \"net.wait.total\""));
        assert!(json.contains("\"fitted_tail_rate\": null"));
        assert!(json.contains("\"analytic_tail_rate\": null"));
        assert_eq!(r.ks_ppm(), (r.ks * 1e6).round() as u64);
    }
}
