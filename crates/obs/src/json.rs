//! Minimal JSON emission and parsing — just enough to serialize
//! snapshots and manifests, and to validate them back, without an
//! external crate.
//!
//! Writing goes through [`JsonObject`]; numbers are emitted via
//! [`fmt_f64`], which guarantees a valid JSON literal even for
//! non-finite values (serialized as `null`, the only representation
//! JSON has for them). Reading goes through [`JsonValue::parse`], a
//! small recursive-descent parser used by the artifact validator
//! (`manifest_check`) and the round-trip tests — the simulator's hot
//! paths still never parse JSON.

/// Escapes a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON value (`null` for NaN/infinity).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON object: collects `"key": value`
/// parts and renders them comma-joined. Values passed to `raw` must
/// already be valid JSON (numbers, nested objects, arrays).
#[derive(Debug, Default)]
pub struct JsonObject {
    parts: Vec<String>,
}

impl JsonObject {
    /// An empty object writer.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.parts
            .push(format!("\"{}\": \"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.parts.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Adds a float field (`null` if non-finite).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.parts
            .push(format!("\"{}\": {}", escape(key), fmt_f64(value)));
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.parts.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Renders as a single-line object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.parts.join(", "))
    }

    /// Renders with each field on its own line, indented by `indent`
    /// spaces (the closing brace at `indent - 2`).
    pub fn finish_pretty(&self, indent: usize) -> String {
        if self.parts.is_empty() {
            return "{}".to_string();
        }
        let pad = " ".repeat(indent);
        let close = " ".repeat(indent.saturating_sub(2));
        format!(
            "{{\n{pad}{}\n{close}}}",
            self.parts.join(&format!(",\n{pad}"))
        )
    }
}

/// A parsed JSON value. Objects preserve key order (and may hold
/// duplicate keys, resolved first-wins by [`JsonValue::get`]).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// The `null` literal (also how we serialize non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// All numbers as f64 — the manifests stay far below 2^53.
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as an ordered member list.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, `None` when the
    /// value is not a number or not integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array items, `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The ordered object members, `None` for non-objects.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// True for the `null` literal.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(b, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogates never appear in our own output; map
                        // unpaired ones to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&byte) if byte < 0x80 => {
                out.push(char::from(byte));
                *pos += 1;
            }
            Some(&byte) => {
                // Consume one multi-byte UTF-8 scalar. Decode just this
                // scalar: validating the whole remaining tail here made
                // parsing quadratic in document size (each character of
                // every string re-scanned megabytes of suffix).
                let len = match byte {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let end = (*pos + len).min(b.len());
                let scalar = std::str::from_utf8(&b[*pos..end]).map_err(|e| e.to_string())?;
                let c = scalar.chars().next().ok_or("truncated UTF-8 scalar")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(1.5), "1.5");
    }

    #[test]
    fn object_renders_balanced_json() {
        let mut o = JsonObject::new();
        o.field_str("name", "x\"y")
            .field_u64("count", 3)
            .field_raw("nested", "{\"a\": 1}");
        let s = o.finish();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\\\"y"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn pretty_renders_one_field_per_line() {
        let mut o = JsonObject::new();
        o.field_u64("a", 1).field_u64("b", 2);
        let s = o.finish_pretty(2);
        assert_eq!(s.lines().count(), 4);
        assert!(JsonObject::new().finish_pretty(2).contains("{}"));
    }

    #[test]
    fn control_chars_round_trip_through_parser() {
        let original = "line1\nline2\ttabbed\rret \u{1}\u{1f} end";
        let mut o = JsonObject::new();
        o.field_str("text", original);
        let doc = JsonValue::parse(&o.finish()).expect("parse");
        assert_eq!(doc.get("text").and_then(JsonValue::as_str), Some(original));
    }

    #[test]
    fn quote_and_backslash_round_trip() {
        let original = r#"she said "C:\path\to\file" loudly"#;
        let mut o = JsonObject::new();
        o.field_str("q", original);
        let rendered = o.finish();
        assert!(rendered.contains(r#"\"C:\\path"#));
        let doc = JsonValue::parse(&rendered).expect("parse");
        assert_eq!(doc.get("q").and_then(JsonValue::as_str), Some(original));
    }

    #[test]
    fn non_ascii_keys_round_trip() {
        let key = "délai·ξ·待ち時間";
        let mut o = JsonObject::new();
        o.field_f64(key, 2.5).field_str("emoji-🎲", "σ=3");
        let doc = JsonValue::parse(&o.finish()).expect("parse");
        assert_eq!(doc.get(key).and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(doc.get("emoji-🎲").and_then(JsonValue::as_str), Some("σ=3"));
    }

    #[test]
    fn non_finite_floats_parse_back_as_null() {
        let mut o = JsonObject::new();
        o.field_f64("nan", f64::NAN)
            .field_f64("inf", f64::INFINITY)
            .field_f64("ninf", f64::NEG_INFINITY)
            .field_f64("ok", -0.125);
        let doc = JsonValue::parse(&o.finish()).expect("parse");
        assert!(doc.get("nan").unwrap().is_null());
        assert!(doc.get("inf").unwrap().is_null());
        assert!(doc.get("ninf").unwrap().is_null());
        assert_eq!(doc.get("ok").and_then(JsonValue::as_f64), Some(-0.125));
    }

    #[test]
    fn nested_pretty_output_round_trips() {
        let mut inner = JsonObject::new();
        inner.field_u64("calls", 3).field_f64("secs", 0.25);
        let mut o = JsonObject::new();
        o.field_str("name", "x")
            .field_raw("spans", &inner.finish())
            .field_raw("list", "[1, 2.5, null, \"s\", true, [], {}]");
        let doc = JsonValue::parse(&o.finish_pretty(2)).expect("parse");
        assert_eq!(
            doc.get("spans").and_then(|s| s.get("calls")).and_then(JsonValue::as_u64),
            Some(3)
        );
        let list = doc.get("list").and_then(JsonValue::as_array).expect("array");
        assert_eq!(list.len(), 7);
        assert_eq!(list[0].as_u64(), Some(1));
        assert!(list[2].is_null());
        assert_eq!(list[4], JsonValue::Bool(true));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("{\"a\": 1,}").is_err());
        assert!(JsonValue::parse("[1 2]").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let doc = JsonValue::parse(r#"{"u": "\u0041\u00e9", "n": -1.5e3}"#).unwrap();
        assert_eq!(doc.get("u").and_then(JsonValue::as_str), Some("Aé"));
        assert_eq!(doc.get("n").and_then(JsonValue::as_f64), Some(-1500.0));
    }

    #[test]
    fn parser_stays_linear_on_string_heavy_megabyte_documents() {
        // Regression guard: the string scanner used to revalidate the
        // entire remaining document for every ordinary character,
        // making a parse of a megabyte-scale chrome trace quadratic
        // (minutes of CPU). Linear parsing clears this ~1.7 MB document
        // in milliseconds; the generous bound only catches a return of
        // the quadratic scan, not machine noise.
        let row = "{\"name\": \"stage—01/αβγ — span\", \"val\": 123456789}";
        let rows = vec![row; 30_000].join(", ");
        let doc = format!("{{\"rows\": [{rows}]}}");
        let t0 = std::time::Instant::now();
        let v = JsonValue::parse(&doc).unwrap();
        let arr = v.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 30_000);
        assert_eq!(
            arr[29_999].get("name").and_then(JsonValue::as_str),
            Some("stage—01/αβγ — span")
        );
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "parse took {:?} — the quadratic string scan is back",
            t0.elapsed()
        );
    }
}
