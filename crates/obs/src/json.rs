//! Minimal JSON emission — just enough to serialize snapshots and
//! manifests without an external crate.
//!
//! Only *writing* is implemented (the repo never parses JSON at
//! runtime); numbers are emitted via [`fmt_f64`], which guarantees a
//! valid JSON literal even for non-finite values (serialized as `null`,
//! the only representation JSON has for them).

/// Escapes a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON value (`null` for NaN/infinity).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON object: collects `"key": value`
/// parts and renders them comma-joined. Values passed to `raw` must
/// already be valid JSON (numbers, nested objects, arrays).
#[derive(Debug, Default)]
pub struct JsonObject {
    parts: Vec<String>,
}

impl JsonObject {
    /// An empty object writer.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.parts
            .push(format!("\"{}\": \"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.parts.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Adds a float field (`null` if non-finite).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.parts
            .push(format!("\"{}\": {}", escape(key), fmt_f64(value)));
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.parts.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Renders as a single-line object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.parts.join(", "))
    }

    /// Renders with each field on its own line, indented by `indent`
    /// spaces (the closing brace at `indent - 2`).
    pub fn finish_pretty(&self, indent: usize) -> String {
        if self.parts.is_empty() {
            return "{}".to_string();
        }
        let pad = " ".repeat(indent);
        let close = " ".repeat(indent.saturating_sub(2));
        format!(
            "{{\n{pad}{}\n{close}}}",
            self.parts.join(&format!(",\n{pad}"))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(1.5), "1.5");
    }

    #[test]
    fn object_renders_balanced_json() {
        let mut o = JsonObject::new();
        o.field_str("name", "x\"y")
            .field_u64("count", 3)
            .field_raw("nested", "{\"a\": 1}");
        let s = o.finish();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\\\"y"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn pretty_renders_one_field_per_line() {
        let mut o = JsonObject::new();
        o.field_u64("a", 1).field_u64("b", 2);
        let s = o.finish_pretty(2);
        assert_eq!(s.lines().count(), 4);
        assert!(JsonObject::new().finish_pretty(2).contains("{}"));
    }
}
