//! Prometheus text exposition (format 0.0.4), hand-rolled like
//! [`json`](crate::json).
//!
//! The [`Exposition`] builder renders metric families in the plain-text
//! scrape format Prometheus and OpenMetrics-compatible collectors
//! ingest: `# HELP` / `# TYPE` headers followed by sample lines, one
//! family per metric. Registry names use dots (`serve.http.requests_total`);
//! exposition names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so
//! [`sanitize_name`] maps every illegal byte to `_` and the original
//! dotted name is preserved verbatim in the `# HELP` line.
//!
//! Histograms render in the cumulative `_bucket{le="…"}` convention
//! (our bucket bounds are inclusive upper edges — exactly Prometheus's
//! `le`), plus `_sum`, `_count`, and an explicit `_overflow` counter
//! for observations beyond the last finite bound (the same count the
//! `le="+Inf"` minus last-finite-bucket difference hides).

use crate::json::fmt_f64;
use crate::registry::{MetricSnapshot, Registry};

/// The `Content-Type` a `/metrics` endpoint should serve.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Maps an internal metric name onto the exposition charset: bytes
/// outside `[a-zA-Z0-9_:]` become `_`, and a leading digit gets a `_`
/// prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push(if ok { c } else { '_' });
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value: backslash, double quote, and newline get
/// backslash escapes (the exposition format's exact escaping rules).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value. Values are finite in practice; a non-finite
/// value renders as the exposition's `NaN` rather than JSON's `null`.
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "NaN".to_string()
    }
}

/// Builder for one scrape body.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty scrape.
    pub fn new() -> Self {
        Exposition::default()
    }

    /// Emits `# HELP` and `# TYPE` headers for a family. `name` must
    /// already be sanitized.
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        // HELP text escapes backslash and newline (not quotes).
        let mut escaped = String::with_capacity(help.len());
        for c in help.chars() {
            match c {
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                _ => escaped.push(c),
            }
        }
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&escaped);
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// One sample line: `name{label="value",…} value`. `name` must be
    /// sanitized; label values are escaped here.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
    }

    /// A single-sample counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let name = sanitize_name(name);
        self.family(&name, "counter", help);
        self.out.push_str(&name);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// A single-sample gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        let name = sanitize_name(name);
        self.family(&name, "gauge", help);
        self.sample(&name, &[], value);
    }

    /// A gauge family whose samples the caller adds via
    /// [`sample`](Self::sample); returns the sanitized name.
    pub fn gauge_family(&mut self, name: &str, help: &str) -> String {
        let name = sanitize_name(name);
        self.family(&name, "gauge", help);
        name
    }

    /// A full histogram family in the cumulative `le` convention, plus
    /// the explicit `_overflow` counter.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[u64],
        buckets: &[u64],
        count: u64,
        sum: u64,
    ) {
        let name = sanitize_name(name);
        self.family(&name, "histogram", help);
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (bound, n) in bounds.iter().zip(buckets) {
            cumulative += n;
            let le = bound.to_string();
            self.sample(&bucket_name, &[("le", le.as_str())], cumulative as f64);
        }
        self.sample(&bucket_name, &[("le", "+Inf")], count as f64);
        self.sample(&format!("{name}_sum"), &[], sum as f64);
        self.sample(&format!("{name}_count"), &[], count as f64);
        let overflow = buckets.last().copied().unwrap_or(0);
        self.counter(
            &format!("{name}_overflow"),
            "observations beyond the last finite bucket bound",
            overflow,
        );
    }

    /// Renders every instrument of a registry: counters and gauges as
    /// single-sample families (gauges additionally expose their
    /// high-water mark as `<name>_high`), histograms in the cumulative
    /// `le` convention. The `# HELP` line carries the original dotted
    /// name.
    pub fn registry(&mut self, reg: &Registry) {
        for (name, metric) in reg.snapshot() {
            match metric {
                MetricSnapshot::Counter(v) => self.counter(&name, &name, v),
                MetricSnapshot::Gauge { value, high } => {
                    self.gauge(&name, &name, value as f64);
                    self.gauge(
                        &format!("{name}_high"),
                        &format!("{name} high-water mark"),
                        high as f64,
                    );
                }
                MetricSnapshot::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                    ..
                } => self.histogram(&name, &name, &bounds, &buckets, count, sum),
            }
        }
    }

    /// The scrape body.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_sanitize_to_the_exposition_charset() {
        assert_eq!(sanitize_name("serve.http.requests_total"), "serve_http_requests_total");
        assert_eq!(sanitize_name("net.drift.ks_ppm.wait"), "net_drift_ks_ppm_wait");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("ok:name_2"), "ok:name_2");
    }

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        assert_eq!(escape_label(r#"plain"#), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("two\nlines"), "two\\nlines");
        let mut e = Exposition::new();
        e.sample("m", &[("k", "v\"\\\n")], 1.0);
        assert_eq!(e.finish(), "m{k=\"v\\\"\\\\\\n\"} 1\n");
    }

    #[test]
    fn counter_and_gauge_families_have_help_and_type() {
        let mut e = Exposition::new();
        e.counter("serve.cache.hits", "serve.cache.hits", 42);
        e.gauge("rho", "offered load", 0.5);
        let s = e.finish();
        assert!(s.contains("# HELP serve_cache_hits serve.cache.hits\n"), "{s}");
        assert!(s.contains("# TYPE serve_cache_hits counter\n"), "{s}");
        assert!(s.contains("serve_cache_hits 42\n"), "{s}");
        assert!(s.contains("# TYPE rho gauge\n"), "{s}");
        assert!(s.contains("rho 0.5\n"), "{s}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf_and_overflow() {
        let mut e = Exposition::new();
        // bounds 0,1,4 with per-bucket counts 1,1,2 and 2 overflow.
        e.histogram("lat.us", "lat.us", &[0, 1, 4], &[1, 1, 2, 2], 6, 1012);
        let s = e.finish();
        assert!(s.contains("# TYPE lat_us histogram\n"), "{s}");
        assert!(s.contains("lat_us_bucket{le=\"0\"} 1\n"), "{s}");
        assert!(s.contains("lat_us_bucket{le=\"1\"} 2\n"), "{s}");
        assert!(s.contains("lat_us_bucket{le=\"4\"} 4\n"), "{s}");
        assert!(s.contains("lat_us_bucket{le=\"+Inf\"} 6\n"), "{s}");
        assert!(s.contains("lat_us_sum 1012\n"), "{s}");
        assert!(s.contains("lat_us_count 6\n"), "{s}");
        assert!(s.contains("# TYPE lat_us_overflow counter\n"), "{s}");
        assert!(s.contains("lat_us_overflow 2\n"), "{s}");
    }

    #[test]
    fn registry_renders_every_kind_sorted() {
        let reg = Registry::new();
        reg.counter("b.count").add(3);
        reg.gauge("a.gauge").set(7);
        reg.gauge("a.gauge").set(2);
        reg.histogram("c.hist", &[1, 2]).record(9);
        let mut e = Exposition::new();
        e.registry(&reg);
        let s = e.finish();
        let a = s.find("a_gauge 2\n").expect("gauge sample");
        let high = s.find("a_gauge_high 7\n").expect("high-water sample");
        let b = s.find("b_count 3\n").expect("counter sample");
        let c = s.find("c_hist_count 1\n").expect("histogram count");
        assert!(a < high && high < b && b < c, "sorted family order: {s}");
        assert!(s.contains("c_hist_overflow 1\n"), "{s}");
        // Well-formed: every non-comment line is `name[{labels}] value`.
        for line in s.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<f64>().expect("sample value parses");
        }
    }
}
